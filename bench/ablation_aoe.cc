/**
 * @file
 * Ablation (Section V-C text): precision of the Approximate Outlier
 * Estimation heuristic — the fraction of turn decisions where AOE's
 * choice is at least as good as the alternative branch (paper: ~90%
 * of the optimal decisions) — plus the joint-vs-coordinated load
 * comparison.
 */

#include "bench_common.hh"

#include "accel/window.hh"
#include "common/rng.hh"
#include "gmn/workload.hh"
#include "graph/dataset.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("AOE ablation: decision precision and loads",
                  {"Dataset", "AOE precision", "Joint loads",
                   "Coordinated loads", "Separate loads"});

void
runDataset(DatasetId did, ::benchmark::State &state)
{
    double precision_sum = 0;
    uint64_t joint = 0, coord = 0, separate = 0;
    int count = 0;
    for (auto _ : state) {
        // Use a small window so the sweep has real turn decisions.
        Dataset ds = makeDataset(did, benchSeed(), 8);
        for (const GraphPair &pair : ds.pairs) {
            WindowWork work;
            work.target = &pair.target;
            work.query = &pair.query;
            work.capNodes = std::max<uint32_t>(
                8, (pair.target.numNodes() + pair.query.numNodes()) / 8);
            work.hasMatching = true;
            precision_sum += measureAoePrecision(work);
            joint += scheduleLayer(SchedulerKind::Joint, work).loads;
            coord +=
                scheduleLayer(SchedulerKind::Coordinated, work).loads;
            separate +=
                scheduleLayer(SchedulerKind::SeparatePhase, work).loads;
            ++count;
        }
    }
    double precision = precision_sum / count;
    state.counters["precision"] = precision;

    table.addRow({datasetSpec(did).name, TextTable::fmtPct(precision),
                  std::to_string(joint), std::to_string(coord),
                  std::to_string(separate)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        cegma::bench::registerCase(
            "aoe/" + datasetSpec(did).name,
            [did](::benchmark::State &state) { runDataset(did, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
