/**
 * @file
 * Micro-kernel throughput benchmarks for the substrates: XXH32
 * hashing, dense GEMM, WL refinement, the EMF filter pass, and the
 * coordinated window scheduler. These are genuine wall-clock
 * google-benchmark measurements (multiple iterations).
 *
 * The parallel kernels (GEMM, A*B^T similarity, cosine normalization,
 * EMF tags) run under an explicit `threads:N` second argument so a
 * threads=1 vs threads=N comparison is one benchmark filter away; the
 * `*Naive` variants re-measure the pre-parallel seed loops as a fixed
 * baseline.
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "accel/window.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/similarity.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"
#include "hash/xxhash.hh"
#include "tensor/matrix.hh"

namespace {

using namespace cegma;

/** Pre-parallel seed GEMM (ikj, scalar) for baseline comparison. */
Matrix
matmulNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

/** Pre-parallel seed A*B^T (scalar single-accumulator dot). */
Matrix
matmulNTNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows(); ++j) {
            float acc = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += arow[k] * b.at(j, k);
            crow[j] = acc;
        }
    }
    return c;
}

void
BM_XxHash32(benchmark::State &state)
{
    std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)));
    Rng rng(1);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next64());
    for (auto _ : state)
        benchmark::DoNotOptimize(xxhash32(buf.data(), buf.size(), 0));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XxHash32)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_Gemm(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(2);
    Matrix a(n, n), b(n, n);
    a.fillXavier(rng);
    b.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmul(a, b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_Gemm)
    ->ArgNames({"n", "threads"})
    ->Args({64, 1})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void
BM_GemmNaive(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Rng rng(2);
    Matrix a(n, n), b(n, n);
    a.fillXavier(rng);
    b.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulNaive(a, b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(256);

void
BM_SimilarityNT(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(3);
    Matrix x(n, 128), y(n, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulNT(x, y));
    state.SetItemsProcessed(state.iterations() * n * n * 128);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_SimilarityNT)
    ->ArgNames({"n", "threads"})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

void
BM_SimilarityNTNaive(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Rng rng(3);
    Matrix x(n, 128), y(n, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulNTNaive(x, y));
    state.SetItemsProcessed(state.iterations() * n * n * 128);
}
BENCHMARK(BM_SimilarityNTNaive)->Arg(256);

void
BM_SimilarityCosine(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(7);
    Matrix x(n, 128), y(n, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            similarityMatrix(x, y, SimilarityKind::Cosine));
    }
    state.SetItemsProcessed(state.iterations() * n * n * 128);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_SimilarityCosine)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void
BM_EmfTags(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(9);
    Matrix features(n, 64);
    features.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(computeEmfTags(features));
    state.SetItemsProcessed(state.iterations() * n);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_EmfTags)
    ->ArgNames({"n", "threads"})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4});

void
BM_WlRefine(benchmark::State &state)
{
    Rng rng(4);
    Graph g = threadGraph(static_cast<NodeId>(state.range(0)),
                          static_cast<uint64_t>(state.range(0) * 1.16),
                          rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(wlRefine(g, 5));
    state.SetItemsProcessed(state.iterations() * g.numNodes() * 5);
}
BENCHMARK(BM_WlRefine)->Arg(500)->Arg(5000);

void
BM_EmfFilter(benchmark::State &state)
{
    Rng rng(5);
    size_t n = static_cast<size_t>(state.range(0));
    Matrix features(n, 64);
    features.fillXavier(rng);
    // Duplicate 90% of the rows from a small pool.
    for (size_t v = 0; v < n; ++v) {
        if (v % 10 != 0) {
            size_t src = (v / 10) * 10;
            std::memcpy(features.row(v), features.row(src),
                        64 * sizeof(float));
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(emfFilter(features));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EmfFilter)->Arg(512)->Arg(4096);

void
BM_CoordinatedScheduler(benchmark::State &state)
{
    Rng rng(6);
    NodeId n = static_cast<NodeId>(state.range(0));
    Graph t = threadGraph(n, n + n / 6, rng);
    Graph q = threadGraph(n, n + n / 6, rng);
    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = 512;
    work.hasMatching = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scheduleLayer(SchedulerKind::Coordinated, work));
}
BENCHMARK(BM_CoordinatedScheduler)->Arg(500)->Arg(5000);

} // namespace

int
main(int argc, char **argv)
{
    cegma::setVerbose(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
