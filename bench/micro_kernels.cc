/**
 * @file
 * Micro-kernel throughput benchmarks for the substrates: XXH32
 * hashing, dense GEMM, WL refinement, the EMF filter pass, and the
 * coordinated window scheduler. These are genuine wall-clock
 * google-benchmark measurements (multiple iterations).
 *
 * The parallel kernels (GEMM, A*B^T similarity, cosine normalization,
 * EMF tags) run under an explicit `threads:N` second argument so a
 * threads=1 vs threads=N comparison is one benchmark filter away, and
 * a `simd:0|1` argument pinning the dispatched kernels to scalar or
 * AVX2 so the vectorization speedup is measurable in isolation; the
 * `*Naive` variants re-measure the pre-parallel seed loops as a fixed
 * baseline.
 *
 * The `BM_SimilarityWindowed` / `BM_SimilarityStreamed` pair compares
 * the CGC joint-window schedule against full-matrix streaming on a
 * clone-search-sized pair; when `perf_event_open` is permitted they
 * attach LLC/L1D miss counters to the measured region (single
 * threaded, so the counting thread does the work), and they always
 * report the deterministic feature-line-load estimate from
 * `WindowSchedStats`.
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "accel/window.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "emf/emf.hh"
#include "gmn/similarity.hh"
#include "gmn/window_sched.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"
#include "hash/xxhash.hh"
#include "obs/perf_counters.hh"
#include "tensor/matrix.hh"

namespace {

using namespace cegma;

/**
 * Apply the bench's `simd` argument (0 = scalar, 1 = avx2); returns
 * false (after flagging the run) when AVX2 was requested but the
 * CPU/build lacks it, so those rows show as skipped rather than
 * silently re-measuring scalar.
 */
bool
applySimdArg(benchmark::State &state, int64_t simd)
{
    if (simd != 0 && !cpuSupportsAvx2()) {
        state.SkipWithError("AVX2 not available");
        return false;
    }
    setSimdLevel(simd != 0 ? SimdLevel::Avx2 : SimdLevel::Scalar);
    return true;
}

/** Pre-parallel seed GEMM (ikj, scalar) for baseline comparison. */
Matrix
matmulNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

/** Pre-parallel seed A*B^T (scalar single-accumulator dot). */
Matrix
matmulNTNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows(); ++j) {
            float acc = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += arow[k] * b.at(j, k);
            crow[j] = acc;
        }
    }
    return c;
}

void
BM_XxHash32(benchmark::State &state)
{
    std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)));
    Rng rng(1);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next64());
    for (auto _ : state)
        benchmark::DoNotOptimize(xxhash32(buf.data(), buf.size(), 0));
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XxHash32)->Arg(256)->Arg(4096)->Arg(65536);

/** The batched row-hash path the EMF tag stage runs on. */
void
BM_XxHash32Rows(benchmark::State &state)
{
    const size_t rows = static_cast<size_t>(state.range(0));
    const size_t row_bytes = 256;
    if (!applySimdArg(state, state.range(1)))
        return;
    std::vector<uint8_t> buf(rows * row_bytes);
    Rng rng(1);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next64());
    std::vector<uint32_t> tags(rows);
    for (auto _ : state) {
        xxhash32Rows(buf.data(), row_bytes, row_bytes, rows, 0,
                     tags.data());
        benchmark::DoNotOptimize(tags.data());
    }
    state.SetBytesProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_XxHash32Rows)
    ->ArgNames({"rows", "simd"})
    ->Args({4096, 0})
    ->Args({4096, 1});

void
BM_Gemm(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    if (!applySimdArg(state, state.range(2)))
        return;
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(2);
    Matrix a(n, n), b(n, n);
    a.fillXavier(rng);
    b.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmul(a, b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_Gemm)
    ->ArgNames({"n", "threads", "simd"})
    ->Args({64, 1, 1})
    ->Args({128, 1, 1})
    ->Args({256, 1, 0})
    ->Args({256, 1, 1})
    ->Args({256, 2, 1})
    ->Args({256, 4, 1})
    ->Args({256, 8, 0})
    ->Args({256, 8, 1});

void
BM_GemmNaive(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Rng rng(2);
    Matrix a(n, n), b(n, n);
    a.fillXavier(rng);
    b.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulNaive(a, b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(256);

void
BM_SimilarityNT(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    if (!applySimdArg(state, state.range(2)))
        return;
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(3);
    Matrix x(n, 128), y(n, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulNT(x, y));
    state.SetItemsProcessed(state.iterations() * n * n * 128);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_SimilarityNT)
    ->ArgNames({"n", "threads", "simd"})
    ->Args({128, 1, 1})
    ->Args({256, 1, 0})
    ->Args({256, 1, 1})
    ->Args({256, 2, 1})
    ->Args({256, 4, 1})
    ->Args({512, 1, 1})
    ->Args({512, 4, 1})
    ->Args({512, 8, 0})
    ->Args({512, 8, 1});

void
BM_SimilarityNTNaive(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Rng rng(3);
    Matrix x(n, 128), y(n, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(matmulNTNaive(x, y));
    state.SetItemsProcessed(state.iterations() * n * n * 128);
}
BENCHMARK(BM_SimilarityNTNaive)->Arg(256);

void
BM_SimilarityCosine(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    if (!applySimdArg(state, state.range(2)))
        return;
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(7);
    Matrix x(n, 128), y(n, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            similarityMatrix(x, y, SimilarityKind::Cosine));
    }
    state.SetItemsProcessed(state.iterations() * n * n * 128);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_SimilarityCosine)
    ->ArgNames({"n", "threads", "simd"})
    ->Args({256, 1, 0})
    ->Args({256, 1, 1})
    ->Args({256, 2, 1})
    ->Args({256, 4, 1})
    ->Args({256, 8, 0})
    ->Args({256, 8, 1});

void
BM_EmfTags(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    if (!applySimdArg(state, state.range(2)))
        return;
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(1)));
    Rng rng(9);
    Matrix features(n, 64);
    features.fillXavier(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(computeEmfTags(features));
    state.SetItemsProcessed(state.iterations() * n);
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_EmfTags)
    ->ArgNames({"n", "threads", "simd"})
    ->Args({4096, 1, 0})
    ->Args({4096, 1, 1})
    ->Args({4096, 2, 1})
    ->Args({4096, 4, 1});

/**
 * The joint-window vs streaming comparison on a clone-search-shaped
 * pair: a query graph's features against a corpus batch whose feature
 * block (m x f) overflows L2, the regime CGC targets. Runs single
 * threaded so the perf-counter group (which counts the calling
 * thread) sees all the work; `lines_est` is the deterministic
 * feature-line-load estimate, `llc_miss` / `l1d_miss` the measured
 * counters when the kernel permits them.
 */
void
similarityLocalityBench(benchmark::State &state, bool windowed)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const size_t m = static_cast<size_t>(state.range(1));
    const size_t f = 128;
    if (!applySimdArg(state, state.range(2)))
        return;
    ThreadPool::instance().setThreads(1);
    Rng rng(12);
    Matrix x(n, f), y(m, f);
    x.fillXavier(rng);
    y.fillXavier(rng);

    obs::CacheCounters counters;
    WindowSchedStats stats;
    uint64_t iters = 0;
    counters.start();
    for (auto _ : state) {
        if (windowed) {
            benchmark::DoNotOptimize(similarityMatrixWindowed(
                x, y, SimilarityKind::Cosine, {}, &stats));
        } else {
            benchmark::DoNotOptimize(similarityMatrixStreamed(
                x, y, SimilarityKind::Cosine));
        }
        ++iters;
    }
    obs::CacheCounterSample sample = counters.stop();
    state.SetItemsProcessed(state.iterations() * n * m * f);

    const double row_lines = f * sizeof(float) / 64.0;
    double lines_est;
    if (windowed) {
        lines_est = (stats.xTileLoads * stats.tileRowsX +
                     stats.yTileLoads * stats.tileRowsY) *
                    row_lines;
    } else {
        // Streaming touches all of Y once per x row (plus X once).
        lines_est = (static_cast<double>(n) * m + n) * row_lines;
    }
    state.counters["lines_est"] = lines_est;
    if (sample.valid && iters > 0) {
        state.counters["llc_miss"] =
            static_cast<double>(sample.llcMisses) /
            static_cast<double>(iters);
        state.counters["l1d_miss"] =
            static_cast<double>(sample.l1dMisses) /
            static_cast<double>(iters);
    }
}

void
BM_SimilarityWindowed(benchmark::State &state)
{
    similarityLocalityBench(state, true);
}
BENCHMARK(BM_SimilarityWindowed)
    ->ArgNames({"n", "m", "simd"})
    ->Args({256, 8192, 1})
    ->Args({1024, 8192, 1});

void
BM_SimilarityStreamed(benchmark::State &state)
{
    similarityLocalityBench(state, false);
}
BENCHMARK(BM_SimilarityStreamed)
    ->ArgNames({"n", "m", "simd"})
    ->Args({256, 8192, 1})
    ->Args({1024, 8192, 1});

void
BM_WlRefine(benchmark::State &state)
{
    Rng rng(4);
    Graph g = threadGraph(static_cast<NodeId>(state.range(0)),
                          static_cast<uint64_t>(state.range(0) * 1.16),
                          rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(wlRefine(g, 5));
    state.SetItemsProcessed(state.iterations() * g.numNodes() * 5);
}
BENCHMARK(BM_WlRefine)->Arg(500)->Arg(5000);

void
BM_EmfFilter(benchmark::State &state)
{
    Rng rng(5);
    size_t n = static_cast<size_t>(state.range(0));
    Matrix features(n, 64);
    features.fillXavier(rng);
    // Duplicate 90% of the rows from a small pool.
    for (size_t v = 0; v < n; ++v) {
        if (v % 10 != 0) {
            size_t src = (v / 10) * 10;
            std::memcpy(features.row(v), features.row(src),
                        64 * sizeof(float));
        }
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(emfFilter(features));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EmfFilter)->Arg(512)->Arg(4096);

void
BM_CoordinatedScheduler(benchmark::State &state)
{
    Rng rng(6);
    NodeId n = static_cast<NodeId>(state.range(0));
    Graph t = threadGraph(n, n + n / 6, rng);
    Graph q = threadGraph(n, n + n / 6, rng);
    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = 512;
    work.hasMatching = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            scheduleLayer(SchedulerKind::Coordinated, work));
}
BENCHMARK(BM_CoordinatedScheduler)->Arg(500)->Arg(5000);

} // namespace

int
main(int argc, char **argv)
{
    cegma::setVerbose(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
