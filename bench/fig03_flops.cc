/**
 * @file
 * Figure 3: percentage of FLOPs within one GMN layer (GraphSim-style:
 * standard GCN embedding with f_in = f_out = 64 and dot-product node
 * matching) across the six datasets.
 */

#include "bench_common.hh"

#include "analysis/flops.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 3: FLOP shares within one GMN layer (f=64)",
                  {"Dataset", "Aggregation", "Combination", "Matching"});

void
runDataset(DatasetId id, ::benchmark::State &state)
{
    FlopBreakdown bd;
    for (auto _ : state) {
        Dataset ds = makeDataset(id, benchSeed(), pairCap());
        bd = figure3Breakdown(ds, 64);
    }
    state.counters["matching_share"] = bd.matchingShare();

    table.addRow({datasetSpec(id).name,
                  TextTable::fmtPct(bd.aggregateShare()),
                  TextTable::fmtPct(bd.combineShare()),
                  TextTable::fmtPct(bd.matchingShare())});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId id : allDatasets()) {
        cegma::bench::registerCase(
            "fig03/" + datasetSpec(id).name,
            [id](::benchmark::State &state) { runDataset(id, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
