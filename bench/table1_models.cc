/**
 * @file
 * Table I: details of the evaluated GMN models, printed from the
 * model configurations plus a per-model workload census on a sample
 * pair (layers, matching layers, FLOPs).
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "common/rng.hh"
#include "graph/generators.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Table I: details of GMN models",
                  {"Model", "Layers", "Matching", "Similarity",
                   "CrossFeedback", "MatchUse", "FLOPs/pair(GITHUB)"});

void
runModel(ModelId id, ::benchmark::State &state)
{
    const ModelConfig &config = modelConfig(id);
    Dataset ds = makeDataset(DatasetId::GITHUB, benchSeed(), 8);
    uint64_t flops = 0;
    for (auto _ : state) {
        auto traces = buildTraces(id, ds, 8);
        flops = 0;
        for (const auto &trace : traces)
            flops += trace.totalFlops();
        flops /= traces.size();
    }
    state.counters["flops_per_pair"] = static_cast<double>(flops);

    table.addRow({config.name, std::to_string(config.numLayers),
                  config.layerwiseMatching ? "layer-wise" : "model-wise",
                  similarityName(config.similarity),
                  config.crossFeedback ? "yes" : "no",
                  config.matchUse == MatchUse::OnChipReuse
                      ? "on-chip reuse (b)"
                      : "write-back (a)",
                  TextTable::fmtCount(static_cast<double>(flops))});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (ModelId id : allModels()) {
        cegma::bench::registerCase(
            "table1/" + modelConfig(id).name,
            [id](::benchmark::State &state) { runModel(id, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
