/**
 * @file
 * Figure 21: component breakdown — end-to-end speedup of CEGMA-EMF
 * (EMF only), CEGMA-CGC (CGC only) and full CEGMA over AWB-GCN, per
 * dataset (paper averages: 3.6x / 2.9x / 6.5x, growing with graph
 * size: EMF 1.1x on AIDS -> 7.1x on RD-5K, CGC 1.5x -> 4.3x).
 */

#include "bench_common.hh"

#include <cmath>

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 21: speedup over AWB-GCN (component breakdown)",
    {"Dataset", "CEGMA-EMF", "CEGMA-CGC", "CEGMA"});

double logsum[3] = {0, 0, 0};
int combos = 0;

void
runDataset(DatasetId did, ::benchmark::State &state)
{
    // Per-dataset numbers average the three models (geometric mean).
    double dataset_log[3] = {0, 0, 0};
    int count = 0;
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        for (ModelId mid : allModels()) {
            auto traces = buildTraces(mid, ds, 0);
            double awb = runPlatform(PlatformId::AwbGcn, traces).cycles;
            int i = 0;
            for (PlatformId p : {PlatformId::CegmaEmf,
                                 PlatformId::CegmaCgc,
                                 PlatformId::Cegma}) {
                double speedup =
                    awb / runPlatform(p, traces).cycles;
                dataset_log[i] += std::log(speedup);
                logsum[i] += std::log(speedup);
                ++i;
            }
            ++count;
            ++combos;
        }
    }
    double geo[3];
    for (int i = 0; i < 3; ++i)
        geo[i] = std::exp(dataset_log[i] / count);
    state.counters["cegma_speedup"] = geo[2];

    table.addRow({datasetSpec(did).name, TextTable::fmtX(geo[0]),
                  TextTable::fmtX(geo[1]), TextTable::fmtX(geo[2])});
}

void
printTables()
{
    if (combos > 0) {
        table.addRow({"GEOMEAN",
                      TextTable::fmtX(std::exp(logsum[0] / combos)),
                      TextTable::fmtX(std::exp(logsum[1] / combos)),
                      TextTable::fmtX(std::exp(logsum[2] / combos))});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        cegma::bench::registerCase(
            "fig21/" + datasetSpec(did).name,
            [did](::benchmark::State &state) { runDataset(did, state); });
    }
    return cegma::bench::benchMain(argc, argv, printTables);
}
