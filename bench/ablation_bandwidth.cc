/**
 * @file
 * Off-chip bandwidth sensitivity: the paper's breakdown (Section V-C)
 * notes that small graphs leave baseline PEs waiting on loads while
 * large graphs underutilize the memory interface. Sweeping the HBM
 * bandwidth shows which regimes each machine is memory-bound in —
 * CEGMA's EMF+CGC cut makes it far less bandwidth-sensitive.
 */

#include "bench_common.hh"

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Ablation: HBM bandwidth sweep (GMN-Li)",
    {"GB/s", "Dataset", "AWB-GCN ms/pair", "CEGMA ms/pair", "speedup"});

void
runPoint(double gbps, DatasetId did, ::benchmark::State &state)
{
    double awb_ms = 0, cegma_ms = 0;
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(),
                                 std::min<uint32_t>(pairCap(), 16));
        auto traces = buildTraces(ModelId::GmnLi, ds, 0);
        AccelConfig awb = awbGcnConfig();
        AccelConfig cegma = cegmaConfig();
        awb.dramBytesPerCycle = gbps; // GB/s at 1 GHz == B/cycle
        cegma.dramBytesPerCycle = gbps;
        awb_ms = AcceleratorModel(awb).simulateAll(traces)
                     .msPerPair(GHz);
        cegma_ms = AcceleratorModel(cegma).simulateAll(traces)
                       .msPerPair(GHz);
    }
    state.counters["speedup"] = awb_ms / cegma_ms;

    table.addRow({TextTable::fmt(gbps, 0), datasetSpec(did).name,
                  TextTable::fmt(awb_ms, 4), TextTable::fmt(cegma_ms, 4),
                  TextTable::fmtX(awb_ms / cegma_ms)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (double gbps : {64.0, 128.0, 256.0, 512.0}) {
        for (DatasetId did : {DatasetId::AIDS, DatasetId::RD_5K}) {
            cegma::bench::registerCase(
                "bw/" + TextTable::fmt(gbps, 0) + "/" +
                    datasetSpec(did).name,
                [gbps, did](::benchmark::State &state) {
                    runPoint(gbps, did, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
