/**
 * @file
 * Figure 4: CDFs of node reuse distances in GraphSim under the
 * baseline separate-phase schedule (AIDS, COLLAB, RD-B; f=64,
 * batch 32, 128 KB input buffer). The paper's point: almost all
 * revisits land beyond the input buffer's 512-node reach.
 */

#include "bench_common.hh"
#include "reuse_common.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 4: baseline reuse-distance CDFs (GraphSim)",
    {"Dataset", "<2^4", "<2^6", "<2^8", "<2^10", "<2^12", "<2^14",
     "buffer-hit(512)"});

void
runDataset(DatasetId id, ::benchmark::State &state)
{
    IntDistribution distances;
    for (auto _ : state) {
        Dataset ds = makeDataset(id, benchSeed(), pairCap());
        distances = graphSimReuseDistances(
            ds, SchedulerKind::SeparatePhase, false);
    }
    state.counters["hit512"] = bufferHitFraction(distances, 512);

    table.addRow({datasetSpec(id).name,
                  TextTable::fmtPct(distances.cdfAtPow2(4)),
                  TextTable::fmtPct(distances.cdfAtPow2(6)),
                  TextTable::fmtPct(distances.cdfAtPow2(8)),
                  TextTable::fmtPct(distances.cdfAtPow2(10)),
                  TextTable::fmtPct(distances.cdfAtPow2(12)),
                  TextTable::fmtPct(distances.cdfAtPow2(14)),
                  TextTable::fmtPct(bufferHitFraction(distances, 512))});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId id :
         {DatasetId::AIDS, DatasetId::COLLAB, DatasetId::RD_B}) {
        cegma::bench::registerCase(
            "fig04/" + datasetSpec(id).name,
            [id](::benchmark::State &state) { runDataset(id, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
