/**
 * @file
 * Figure 18: percentage of remaining unique matching after the EMF
 * removes redundancy (paper: >90% of matching eliminated on average;
 * ~67% removed on AIDS, ~97% on RD-5K).
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "analysis/redundancy.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 18: remaining unique matching after the EMF",
    {"Dataset", "Model", "Remaining unique", "Eliminated"});

void
runCombo(DatasetId did, ModelId mid, ::benchmark::State &state)
{
    RedundancyStats stats;
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        stats = redundancyOf(traces);
    }
    state.counters["remaining"] = stats.remainingUniqueFraction();

    table.addRow({datasetSpec(did).name, modelConfig(mid).name,
                  TextTable::fmtPct(stats.remainingUniqueFraction()),
                  TextTable::fmtPct(stats.redundantFraction())});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        for (ModelId mid : allModels()) {
            cegma::bench::registerCase(
                "fig18/" + datasetSpec(did).name + "/" +
                    modelConfig(mid).name,
                [did, mid](::benchmark::State &state) {
                    runCombo(did, mid, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
