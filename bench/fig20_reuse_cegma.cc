/**
 * @file
 * Figure 20: CDFs of node reuse distances in GraphSim under CEGMA
 * (coordinated joint window + EMF filtering), same setup as Figure 4.
 * The paper's point: the CGC collapses reuse distances into the input
 * buffer's reach (e.g., 90.3% within 2^8 for RD-B).
 */

#include "bench_common.hh"
#include "reuse_common.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 20: CEGMA reuse-distance CDFs (GraphSim, CGC + EMF)",
    {"Dataset", "<2^4", "<2^6", "<2^8", "<2^10", "<2^12",
     "buffer-hit(512)", "baseline-hit(512)"});

void
runDataset(DatasetId id, ::benchmark::State &state)
{
    IntDistribution cegma_d, base_d;
    for (auto _ : state) {
        Dataset ds = makeDataset(id, benchSeed(), pairCap());
        cegma_d = graphSimReuseDistances(ds, SchedulerKind::Coordinated,
                                         true);
        base_d = graphSimReuseDistances(
            ds, SchedulerKind::SeparatePhase, false);
    }
    state.counters["hit512"] = bufferHitFraction(cegma_d, 512);

    table.addRow({datasetSpec(id).name,
                  TextTable::fmtPct(cegma_d.cdfAtPow2(4)),
                  TextTable::fmtPct(cegma_d.cdfAtPow2(6)),
                  TextTable::fmtPct(cegma_d.cdfAtPow2(8)),
                  TextTable::fmtPct(cegma_d.cdfAtPow2(10)),
                  TextTable::fmtPct(cegma_d.cdfAtPow2(12)),
                  TextTable::fmtPct(bufferHitFraction(cegma_d, 512)),
                  TextTable::fmtPct(bufferHitFraction(base_d, 512))});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId id :
         {DatasetId::AIDS, DatasetId::COLLAB, DatasetId::RD_B}) {
        cegma::bench::registerCase(
            "fig20/" + datasetSpec(id).name,
            [id](::benchmark::State &state) { runDataset(id, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
