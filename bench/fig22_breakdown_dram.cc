/**
 * @file
 * Figure 22: component breakdown of DRAM accesses — CEGMA-EMF,
 * CEGMA-CGC and full CEGMA relative to AWB-GCN, per dataset (paper
 * averages: EMF cuts 49%, CGC cuts 34%).
 */

#include "bench_common.hh"

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 22: DRAM accesses relative to AWB-GCN (breakdown)",
    {"Dataset", "CEGMA-EMF", "CEGMA-CGC", "CEGMA", "EMF cut",
     "CGC cut"});

double totals[4] = {0, 0, 0, 0}; // awb, emf, cgc, full

void
runDataset(DatasetId did, ::benchmark::State &state)
{
    double bytes[4] = {0, 0, 0, 0};
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        for (ModelId mid : allModels()) {
            auto traces = buildTraces(mid, ds, 0);
            int i = 0;
            for (PlatformId p : {PlatformId::AwbGcn, PlatformId::CegmaEmf,
                                 PlatformId::CegmaCgc,
                                 PlatformId::Cegma}) {
                bytes[i++] += static_cast<double>(
                    runPlatform(p, traces).dramBytes());
            }
        }
    }
    for (int i = 0; i < 4; ++i)
        totals[i] += bytes[i];
    state.counters["cegma_over_awb"] = bytes[3] / bytes[0];

    table.addRow({datasetSpec(did).name,
                  TextTable::fmt(bytes[1] / bytes[0], 2),
                  TextTable::fmt(bytes[2] / bytes[0], 2),
                  TextTable::fmt(bytes[3] / bytes[0], 2),
                  TextTable::fmtPct(1.0 - bytes[1] / bytes[0]),
                  TextTable::fmtPct(1.0 - bytes[2] / bytes[0])});
}

void
printTables()
{
    if (totals[0] > 0) {
        table.addRow({"TOTAL", TextTable::fmt(totals[1] / totals[0], 2),
                      TextTable::fmt(totals[2] / totals[0], 2),
                      TextTable::fmt(totals[3] / totals[0], 2),
                      TextTable::fmtPct(1.0 - totals[1] / totals[0]),
                      TextTable::fmtPct(1.0 - totals[2] / totals[0])});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        cegma::bench::registerCase(
            "fig22/" + datasetSpec(did).name,
            [did](::benchmark::State &state) { runDataset(did, state); });
    }
    return cegma::bench::benchMain(argc, argv, printTables);
}
