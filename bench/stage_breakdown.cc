/**
 * @file
 * Per-stage cycle breakdown: where each accelerator spends its
 * compute (aggregation / combination / matching) and how often layers
 * are memory-bound — the mechanistic story behind Figures 16/21
 * (baselines drown in matching compute and load stalls; CEGMA's EMF
 * removes the matching and the CGC hides the memory).
 */

#include "bench_common.hh"

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Per-stage cycle breakdown (GMN-Li, RD-B)",
    {"Platform", "Aggregate", "Combine", "Matching", "Memory",
     "mem-bound layers"});

void
runPlatformCase(PlatformId platform, ::benchmark::State &state)
{
    SimResult result;
    for (auto _ : state) {
        Dataset ds = makeDataset(DatasetId::RD_B, benchSeed(),
                                 std::min<uint32_t>(pairCap(), 16));
        auto traces = buildTraces(ModelId::GmnLi, ds, 0);
        result = runPlatform(platform, traces);
    }
    double agg = static_cast<double>(
        result.extra.get("stage_agg_cycles"));
    double comb = static_cast<double>(
        result.extra.get("stage_comb_cycles"));
    double match = static_cast<double>(
        result.extra.get("stage_match_cycles"));
    double mem = static_cast<double>(
        result.extra.get("stage_mem_cycles"));
    double compute = agg + comb + match;
    double layers = static_cast<double>(result.extra.get("layers"));
    double mem_bound =
        static_cast<double>(result.extra.get("mem_bound_layers"));
    state.counters["match_share"] = compute > 0 ? match / compute : 0;

    table.addRow(
        {platformName(platform), TextTable::fmtPct(agg / compute),
         TextTable::fmtPct(comb / compute),
         TextTable::fmtPct(match / compute),
         TextTable::fmt(mem / compute, 2) + "x of compute",
         TextTable::fmtPct(layers > 0 ? mem_bound / layers : 0)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (PlatformId p : {PlatformId::HyGcn, PlatformId::AwbGcn,
                         PlatformId::CegmaEmf, PlatformId::CegmaCgc,
                         PlatformId::Cegma}) {
        cegma::bench::registerCase(
            std::string("stage/") + platformName(p),
            [p](::benchmark::State &state) {
                runPlatformCase(p, state);
            });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
