/**
 * @file
 * Buffer-size sensitivity (Section III-B's claim): naively enlarging
 * the input buffer is not a scalable fix — AIDS would need ~4x the
 * 128 KB buffer to capture its revisits and REDDIT-BINARY ~128x —
 * while CEGMA recovers the locality at the original size. The sweep
 * reports the baseline's buffer-hit fraction and CEGMA's speedup over
 * AWB-GCN as the buffer grows.
 */

#include "bench_common.hh"
#include "reuse_common.hh"

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Ablation: input-buffer size sweep (GraphSim)",
    {"Dataset", "Buffer", "baseline hit-rate", "CEGMA/AWB speedup"});

void
runPoint(DatasetId did, uint32_t buffer_kib, ::benchmark::State &state)
{
    double hit = 0, speedup = 0;
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(),
                                 pairCap());

        // Baseline hit fraction at this capacity (nodes of 256 B).
        IntDistribution dist = graphSimReuseDistances(
            ds, SchedulerKind::SeparatePhase, false);
        uint64_t cap_nodes = buffer_kib * 1024ull / 256ull;
        hit = bufferHitFraction(dist, cap_nodes);

        // Speedup with both machines scaled to this buffer.
        auto traces = buildTraces(ModelId::GraphSim, ds, 0);
        AccelConfig awb = awbGcnConfig();
        AccelConfig cegma = cegmaConfig();
        awb.inputBufferBytes = buffer_kib * 1024ull;
        cegma.inputBufferBytes = buffer_kib * 1024ull;
        double awb_cycles =
            AcceleratorModel(awb).simulateAll(traces).cycles;
        double cegma_cycles =
            AcceleratorModel(cegma).simulateAll(traces).cycles;
        speedup = awb_cycles / cegma_cycles;
    }
    state.counters["hit"] = hit;
    state.counters["speedup"] = speedup;

    table.addRow({datasetSpec(did).name,
                  std::to_string(buffer_kib) + " KiB",
                  TextTable::fmtPct(hit), TextTable::fmtX(speedup)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : {DatasetId::AIDS, DatasetId::RD_B}) {
        for (uint32_t kib : {32u, 128u, 512u, 2048u, 16384u}) {
            cegma::bench::registerCase(
                "buffer/" + datasetSpec(did).name + "/" +
                    std::to_string(kib),
                [did, kib](::benchmark::State &state) {
                    runPoint(did, kib, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
