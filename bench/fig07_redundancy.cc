/**
 * @file
 * Figure 7: ratio between redundant and unique matching for the three
 * GMN models across the six datasets (paper: >90% redundant matching
 * on average, higher on large graphs).
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "analysis/redundancy.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 7: redundant vs unique matching",
                  {"Dataset", "Model", "Redundant:Unique",
                   "Redundant %"});

void
runCombo(DatasetId did, ModelId mid, ::benchmark::State &state)
{
    RedundancyStats stats;
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        stats = redundancyOf(traces);
    }
    state.counters["redundant_fraction"] = stats.redundantFraction();

    table.addRow({datasetSpec(did).name, modelConfig(mid).name,
                  TextTable::fmt(stats.redundantToUniqueRatio(), 2),
                  TextTable::fmtPct(stats.redundantFraction())});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        for (ModelId mid : allModels()) {
            cegma::bench::registerCase(
                "fig07/" + datasetSpec(did).name + "/" +
                    modelConfig(mid).name,
                [did, mid](::benchmark::State &state) {
                    runCombo(did, mid, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
