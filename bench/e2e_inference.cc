/**
 * @file
 * End-to-end functional inference wall-clock: dense vs EMF-skipped
 * dedup vs dedup + cross-pair memoization, per model, on a
 * duplicate-heavy clone-search dataset (RD-B thread graphs, the paper's
 * Fig. 18 >90%-duplicate regime, with every candidate graph recurring
 * across queries — the serving workload the memo layer targets).
 *
 * The three modes produce bit-identical scores (asserted by
 * dedup_exec_test); only the wall clock moves, which is exactly what
 * these benchmarks measure. `tools/bench_to_json --e2e` runs the same
 * sweep once and emits BENCH_e2e.json with speedup-vs-dense columns.
 */

#include <benchmark/benchmark.h>

#include "accel/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "graph/dataset.hh"

namespace {

using namespace cegma;

/** Mode selector for the benchmark's second argument. */
enum Mode
{
    kDense = 0,
    kDedup = 1,
    kDedupMemo = 2,
};

const char *
modeName(int64_t mode)
{
    switch (mode) {
      case kDense:
        return "dense";
      case kDedup:
        return "dedup";
      case kDedupMemo:
        return "dedup+memo";
    }
    return "?";
}

FunctionalOptions
modeOptions(int64_t mode)
{
    FunctionalOptions options;
    options.dedup = mode != kDense;
    options.memo = mode == kDedupMemo;
    return options;
}

/** Shared across iterations: generating the dataset is not the SUT. */
const Dataset &
cloneSearchSet()
{
    static const Dataset ds = makeCloneSearchDataset(DatasetId::RD_B,
                                                     /*num_queries=*/4,
                                                     /*num_candidates=*/4);
    return ds;
}

void
runE2e(benchmark::State &state, ModelId model)
{
    const Dataset &ds = cloneSearchSet();
    const FunctionalOptions options = modeOptions(state.range(0));
    double total_pairs = 0.0;
    for (auto _ : state) {
        FunctionalResult result = runFunctional(model, ds, options);
        benchmark::DoNotOptimize(result.scores.data());
        total_pairs += static_cast<double>(result.scores.size());
    }
    state.SetLabel(modeName(state.range(0)));
    state.counters["pairs_per_s"] =
        benchmark::Counter(total_pairs, benchmark::Counter::kIsRate);
}

void
BM_E2eGmnLi(benchmark::State &state)
{
    runE2e(state, ModelId::GmnLi);
}
BENCHMARK(BM_E2eGmnLi)
    ->ArgName("mode")
    ->Arg(kDense)
    ->Arg(kDedup)
    ->Arg(kDedupMemo)
    ->Unit(benchmark::kMillisecond);

void
BM_E2eGraphSim(benchmark::State &state)
{
    runE2e(state, ModelId::GraphSim);
}
BENCHMARK(BM_E2eGraphSim)
    ->ArgName("mode")
    ->Arg(kDense)
    ->Arg(kDedup)
    ->Arg(kDedupMemo)
    ->Unit(benchmark::kMillisecond);

void
BM_E2eSimGnn(benchmark::State &state)
{
    runE2e(state, ModelId::SimGnn);
}
BENCHMARK(BM_E2eSimGnn)
    ->ArgName("mode")
    ->Arg(kDense)
    ->Arg(kDedup)
    ->Arg(kDedupMemo)
    ->Unit(benchmark::kMillisecond);

/** Pair-parallel trace building (the simulator front end). */
void
BM_E2eBuildTraces(benchmark::State &state)
{
    const Dataset &ds = cloneSearchSet();
    ThreadPool::instance().setThreads(
        static_cast<uint32_t>(state.range(0)));
    for (auto _ : state) {
        auto traces = buildTraces(ModelId::GmnLi, ds);
        benchmark::DoNotOptimize(traces.data());
    }
    ThreadPool::instance().setThreads(1);
}
BENCHMARK(BM_E2eBuildTraces)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    cegma::setVerbose(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
