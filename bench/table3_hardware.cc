/**
 * @file
 * Table III: hardware configurations of CEGMA and the compared
 * platforms, printed from the simulator's configuration presets.
 */

#include "bench_common.hh"

#include "accel/platform.hh"
#include "sim/area.hh"
#include "sim/config.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable accel_table(
    "Table III: accelerator configurations",
    {"Platform", "MACs", "AggLanes", "InputBuf", "OtherBuf",
     "DRAM B/cyc", "EMF", "CGC"});

FigureTable sw_table("Table III: software platforms",
                     {"Platform", "PeakFLOP/s", "MemBW B/s",
                      "KernelOverhead", "UtilHalfFLOPs"});

FigureTable area_table(
    "Table III: CEGMA area (paper: 6.3 mm^2 @ 14 nm)",
    {"Component", "Logic mm^2", "Buffer mm^2", "Logic %", "Buffer %"});

void
addArea(::benchmark::State &state)
{
    AreaBreakdown area;
    for (auto _ : state)
        area = estimateArea(cegmaConfig());
    state.counters["total_mm2"] = area.total();
    area_table.addRow({"PE", TextTable::fmt(area.peLogic, 3),
                       TextTable::fmt(area.peBuffer, 3),
                       TextTable::fmtPct(area.peLogicShare()),
                       TextTable::fmtPct(area.peBufferShare())});
    area_table.addRow({"EMF", TextTable::fmt(area.emfLogic, 3),
                       TextTable::fmt(area.emfBuffer, 3),
                       TextTable::fmtPct(area.emfLogicShare()),
                       TextTable::fmtPct(area.emfBufferShare())});
    area_table.addRow({"CGC", TextTable::fmt(area.cgcLogic, 3),
                       TextTable::fmt(area.cgcBuffer, 3),
                       TextTable::fmtPct(area.cgcLogicShare()),
                       TextTable::fmtPct(area.cgcBufferShare())});
    area_table.addRow({"TOTAL", TextTable::fmt(area.total(), 2), "-",
                       "-", "-"});
}

void
addAccel(const AccelConfig &config, ::benchmark::State &state)
{
    for (auto _ : state) {
        ::benchmark::DoNotOptimize(config.inputBufferNodes(64));
    }
    accel_table.addRow(
        {config.name, std::to_string(config.denseMacs),
         std::to_string(config.aggLanes),
         TextTable::fmtBytes(static_cast<double>(config.inputBufferBytes)),
         TextTable::fmtBytes(static_cast<double>(config.otherBufferBytes)),
         TextTable::fmt(config.dramBytesPerCycle, 0),
         config.hasEmf ? "1024 comparators" : "-",
         config.hasCgc ? "joint window + AOE" : "-"});
}

void
addSoftware(const SoftwarePlatform &platform, ::benchmark::State &state)
{
    for (auto _ : state) {
        ::benchmark::DoNotOptimize(platform.opSeconds(1e6, 1e6));
    }
    sw_table.addRow({platform.name,
                     TextTable::fmtCount(platform.peakFlops),
                     TextTable::fmtCount(platform.memBandwidth),
                     TextTable::fmt(platform.kernelOverhead * 1e6, 1) +
                         " us",
                     TextTable::fmtCount(platform.utilHalfFlops)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (auto maker : {hygcnConfig, awbGcnConfig, cegmaEmfOnlyConfig,
                       cegmaCgcOnlyConfig, cegmaConfig}) {
        AccelConfig config = maker();
        cegma::bench::registerCase(
            "table3/" + config.name,
            [config](::benchmark::State &state) {
                addAccel(config, state);
            });
    }
    cegma::bench::registerCase("table3/area", addArea);
    for (auto maker : {pygCpuPlatform, pygGpuPlatform}) {
        SoftwarePlatform platform = maker();
        cegma::bench::registerCase(
            "table3/" + platform.name,
            [platform](::benchmark::State &state) {
                addSoftware(platform, state);
            });
    }
    return cegma::bench::benchMain(argc, argv, [] {
        accel_table.print();
        sw_table.print();
        area_table.print();
    });
}
