/**
 * @file
 * Figure 24: inference throughput (graph pairs per second) of
 * PyG-GPU, HyGCN, AWB-GCN and CEGMA (paper: CEGMA averages 353x /
 * 8.4x / 6.5x the throughput of PyG-GPU / HyGCN / AWB-GCN; e.g.
 * ~5000 pairs/s for GMN-Li on RD-5K vs 312 on PyG-GPU).
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "common/units.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 24: throughput (pairs/second)",
                  {"Dataset", "Model", "PyG-GPU", "HyGCN", "AWB-GCN",
                   "CEGMA"});

void
runCombo(DatasetId did, ModelId mid, ::benchmark::State &state)
{
    double tput[4];
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        int i = 0;
        for (PlatformId p : {PlatformId::PygGpu, PlatformId::HyGcn,
                             PlatformId::AwbGcn, PlatformId::Cegma}) {
            tput[i++] = runPlatform(p, traces).throughput(GHz);
        }
    }
    state.counters["cegma_pairs_per_s"] = tput[3];

    table.addRow({datasetSpec(did).name, modelConfig(mid).name,
                  TextTable::fmtCount(tput[0]),
                  TextTable::fmtCount(tput[1]),
                  TextTable::fmtCount(tput[2]),
                  TextTable::fmtCount(tput[3])});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        for (ModelId mid : allModels()) {
            cegma::bench::registerCase(
                "fig24/" + datasetSpec(did).name + "/" +
                    modelConfig(mid).name,
                [did, mid](::benchmark::State &state) {
                    runCombo(did, mid, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
