/**
 * @file
 * Figure 26: a four-pair AIDS batch's global adjacency matrix before
 * and after the EMF removes redundant matching — rendered as ASCII
 * density art plus the measured matching-cell reduction.
 */

#include "bench_common.hh"

#include <iostream>

#include "accel/accelerator.hh"
#include "gmn/workload.hh"
#include "graph/batch.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 26: EMF effect on the global adjacency",
                  {"View", "Matching cells", "Density"});

std::string beforeArt, afterArt;

void
run(::benchmark::State &state)
{
    Dataset ds = makeDataset(DatasetId::AIDS, benchSeed(), 4);
    GraphBatch batch;
    for (const auto &pair : ds.pairs)
        batch.pairs.push_back(&pair);
    GlobalAdjacency ga(batch);

    uint64_t total = 0, kept = 0;
    std::vector<std::vector<bool>> masks;
    for (auto _ : state) {
        masks.clear();
        total = kept = 0;
        for (const GraphPair *pair : batch.pairs) {
            PairTrace trace = buildTrace(ModelId::GraphSim, *pair);
            // Use the first matching layer's duplicate classes for
            // the picture (shallow neighborhoods duplicate most).
            const MatchingWork &match = trace.layers.front().matching;
            masks.push_back(emfKeepMask(match.dupClassTarget));
            total += match.totalPairs();
            kept += match.uniquePairs();
        }
        beforeArt = ga.renderAscii({}, 72);
        afterArt = ga.renderAscii(masks, 72);
    }
    state.counters["kept_fraction"] =
        static_cast<double>(kept) / static_cast<double>(total);

    table.addRow({"before EMF", std::to_string(total), "100.0%"});
    table.addRow({"after EMF", std::to_string(kept),
                  TextTable::fmtPct(static_cast<double>(kept) / total)});
}

} // namespace

int
main(int argc, char **argv)
{
    cegma::bench::registerCase("fig26/aids_batch4", run);
    return cegma::bench::benchMain(argc, argv, [] {
        table.print();
        std::cout << "\n(a) before EMF:\n"
                  << beforeArt << "\n(b) after EMF:\n"
                  << afterArt;
        std::cout.flush();
    });
}
