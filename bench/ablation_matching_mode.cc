/**
 * @file
 * Design-space ablation (Section II's layer-wise vs model-wise
 * discussion): layer-wise matching yields better accuracy but
 * multiplies the matching work by the layer count; this sweep
 * quantifies the cost side across layer counts — and how much of it
 * CEGMA's EMF claws back — using custom model configurations.
 */

#include "bench_common.hh"

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Ablation: layer-wise vs model-wise matching cost (RD-B)",
    {"Layers", "Matching", "match GFLOP", "AWB-GCN ms/pair",
     "CEGMA ms/pair", "speedup"});

void
runPoint(unsigned layers, bool layerwise, ::benchmark::State &state)
{
    ModelConfig config = modelConfig(ModelId::GraphSim);
    config.numLayers = layers;
    config.layerwiseMatching = layerwise;

    double match_gflop = 0, awb_ms = 0, cegma_ms = 0;
    for (auto _ : state) {
        Dataset ds = makeDataset(DatasetId::RD_B, benchSeed(),
                                 std::min<uint32_t>(pairCap(), 16));
        std::vector<PairTrace> traces;
        for (const auto &pair : ds.pairs)
            traces.push_back(buildCustomTrace(config, pair));
        match_gflop = 0;
        for (const auto &trace : traces)
            match_gflop += static_cast<double>(trace.matchFlopsTotal());
        match_gflop /= 1e9 * traces.size();
        awb_ms = runPlatform(PlatformId::AwbGcn, traces)
                     .msPerPair(GHz);
        cegma_ms = runPlatform(PlatformId::Cegma, traces)
                       .msPerPair(GHz);
    }
    state.counters["speedup"] = awb_ms / cegma_ms;

    table.addRow({std::to_string(layers),
                  layerwise ? "layer-wise" : "model-wise",
                  TextTable::fmt(match_gflop, 3),
                  TextTable::fmt(awb_ms, 4), TextTable::fmt(cegma_ms, 4),
                  TextTable::fmtX(awb_ms / cegma_ms)});
}

} // namespace

int
main(int argc, char **argv)
{
    for (unsigned layers : {2u, 3u, 5u}) {
        for (bool layerwise : {false, true}) {
            cegma::bench::registerCase(
                "mode/" + std::to_string(layers) + "/" +
                    (layerwise ? "layer" : "model"),
                [layers, layerwise](::benchmark::State &state) {
                    runPoint(layers, layerwise, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
