/**
 * @file
 * Tag-width / hash-collision sensitivity (Section IV-B's discussion):
 * the EMF trusts 32-bit XXHash tags, whose collision rate the paper
 * measures as negligible (no conflicts observed). This sweep truncates
 * the tags to fewer bits and measures (a) the false-duplicate rate —
 * node pairs merged by tag despite different features — and (b) the
 * fraction of matching results that would silently be wrong.
 */

#include "bench_common.hh"

#include "emf/emf.hh"
#include "gmn/model.hh"
#include "graph/dataset.hh"
#include "hash/xxhash.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Ablation: EMF tag width vs collision damage (GraphSim, RD-B)",
    {"Tag bits", "False duplicates", "Corrupted matches",
     "Unique kept"});

void
runWidth(unsigned bits, ::benchmark::State &state)
{
    uint64_t false_dups = 0, corrupted = 0, nodes_total = 0;
    uint64_t matches_total = 0, unique_kept = 0;
    for (auto _ : state) {
        false_dups = corrupted = nodes_total = 0;
        matches_total = unique_kept = 0;
        Dataset ds = makeDataset(DatasetId::RD_B, benchSeed(), 8);
        auto model = makeModel(ModelId::GraphSim, 3);
        for (const GraphPair &pair : ds.pairs) {
            auto detail = model->forwardDetailed(pair);
            const Matrix &x = detail.xLayers.back();
            const Matrix &y = detail.yLayers.back();

            // Truncated tags for the target side.
            uint32_t mask = bits >= 32
                                ? 0xffffffffu
                                : ((1u << bits) - 1u);
            std::vector<uint32_t> tags(x.rows());
            for (size_t v = 0; v < x.rows(); ++v) {
                tags[v] = hashFeatureVector(x.row(v), x.cols()) & mask;
            }
            EmfResult emf = emfFilterTags(tags);

            nodes_total += x.rows();
            unique_kept += emf.numUnique();
            matches_total += x.rows() * y.rows();
            for (size_t v = 0; v < x.rows(); ++v) {
                if (emf.uniqueOf[v] != v &&
                    !x.rowsEqual(v, emf.uniqueOf[v])) {
                    // Tag collision merged two distinct features; the
                    // whole copied similarity row is wrong.
                    ++false_dups;
                    corrupted += y.rows();
                }
            }
        }
    }
    double false_rate =
        static_cast<double>(false_dups) / std::max<uint64_t>(1,
                                                             nodes_total);
    double corrupt_rate = static_cast<double>(corrupted) /
                          std::max<uint64_t>(1, matches_total);
    state.counters["false_dup_rate"] = false_rate;

    table.addRow({std::to_string(bits), TextTable::fmtPct(false_rate, 3),
                  TextTable::fmtPct(corrupt_rate, 3),
                  TextTable::fmtPct(static_cast<double>(unique_kept) /
                                    nodes_total)});
}

} // namespace

int
main(int argc, char **argv)
{
    for (unsigned bits : {4u, 8u, 12u, 16u, 24u, 32u}) {
        cegma::bench::registerCase(
            "tagwidth/" + std::to_string(bits),
            [bits](::benchmark::State &state) { runWidth(bits, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
