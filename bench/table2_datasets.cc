/**
 * @file
 * Table II: dataset statistics — the paper's column values versus the
 * synthetic generators' measured averages.
 */

#include "bench_common.hh"

#include "graph/dataset.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Table II: details of datasets (paper vs generated)",
                  {"Dataset", "PaperNodes", "GenNodes", "PaperEdges",
                   "GenEdges", "TestPairs", "Scale"});

void
runDataset(DatasetId id, ::benchmark::State &state)
{
    const DatasetSpec &spec = datasetSpec(id);
    Dataset ds;
    for (auto _ : state)
        ds = makeDataset(id, benchSeed(), pairCap());
    state.counters["avg_nodes"] = ds.measuredAvgNodes();
    state.counters["avg_edges"] = ds.measuredAvgEdges();

    table.addRow({spec.name, TextTable::fmt(spec.avgNodes),
                  TextTable::fmt(ds.measuredAvgNodes()),
                  TextTable::fmt(spec.avgEdges),
                  TextTable::fmt(ds.measuredAvgEdges()),
                  std::to_string(spec.numTestPairs), spec.scale});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId id : allDatasets()) {
        cegma::bench::registerCase(
            "table2/" + datasetSpec(id).name,
            [id](::benchmark::State &state) { runDataset(id, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
