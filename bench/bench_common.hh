/**
 * @file
 * Shared plumbing for the figure/table benchmark harnesses.
 *
 * Each bench binary registers one google-benchmark case per evaluated
 * configuration (Iterations(1) — the measured quantity is the
 * simulated workload, counters carry the figure's metrics), collects
 * the figure's rows into a FigureTable, and prints the paper-style
 * table after RunSpecifiedBenchmarks().
 *
 * Environment knobs:
 *  - CEGMA_PAIRS: pairs sampled per dataset (default 32; pairs are
 *    i.i.d. so statistics are unbiased, runtime bounded)
 *  - CEGMA_SEED: dataset generation seed (default 7)
 */

#ifndef CEGMA_BENCH_BENCH_COMMON_HH
#define CEGMA_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"

namespace cegma {
namespace bench {

/** Pairs sampled per dataset (CEGMA_PAIRS, default 32). */
inline uint32_t
pairCap()
{
    if (const char *env = std::getenv("CEGMA_PAIRS"))
        return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    return 32;
}

/** Dataset seed (CEGMA_SEED, default 7). */
inline uint64_t
benchSeed()
{
    if (const char *env = std::getenv("CEGMA_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 7;
}

/** A titled result table printed after the benchmark run. */
class FigureTable
{
  public:
    FigureTable(std::string title, std::vector<std::string> header)
        : title_(std::move(title)), table_(std::move(header))
    {
    }

    void
    addRow(std::vector<std::string> row)
    {
        table_.addRow(std::move(row));
    }

    void
    print() const
    {
        std::cout << "\n=== " << title_ << " ===\n";
        table_.print(std::cout);
        std::cout.flush();
    }

  private:
    std::string title_;
    TextTable table_;
};

/** Register a single-iteration benchmark case. */
inline void
registerCase(const std::string &name,
             std::function<void(::benchmark::State &)> fn)
{
    ::benchmark::RegisterBenchmark(name.c_str(),
                                   [fn](::benchmark::State &state) {
                                       fn(state);
                                   })
        ->Iterations(1)
        ->Unit(::benchmark::kMillisecond);
}

/** Standard bench main: run cases, then print the figure tables. */
inline int
benchMain(int argc, char **argv,
          const std::function<void()> &print_tables)
{
    setVerbose(false);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    print_tables();
    return 0;
}

} // namespace bench
} // namespace cegma

#endif // CEGMA_BENCH_BENCH_COMMON_HH
