/**
 * @file
 * Figure 23: absolute cycle counts of the EMF components — hashing
 * (tag generation on the MAC subarray) and filtering (duplicate
 * comparator lookups) — per graph across the datasets (paper: 284 /
 * 429 cycles on average, 1488 / 655 on RD-12K; negligible against
 * millisecond deadlines).
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "common/units.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 23: EMF overhead cycles per graph (GMN-Li, f=64)",
    {"Dataset", "EMF-Hashing", "EMF-Filtering", "Total us @1GHz"});

void
runDataset(DatasetId did, ::benchmark::State &state)
{
    double hash = 0, filter = 0;
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(ModelId::GmnLi, ds, 0);
        SimResult result = runPlatform(PlatformId::Cegma, traces);
        double graphs =
            static_cast<double>(result.extra.get("graphs"));
        hash = static_cast<double>(
                   result.extra.get("emf_hash_cycles")) / graphs;
        filter = static_cast<double>(
                     result.extra.get("emf_filter_cycles")) / graphs;
    }
    state.counters["hash_cycles"] = hash;
    state.counters["filter_cycles"] = filter;

    table.addRow({datasetSpec(did).name, TextTable::fmt(hash, 0),
                  TextTable::fmt(filter, 0),
                  TextTable::fmt((hash + filter) / 1e3, 2)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        cegma::bench::registerCase(
            "fig23/" + datasetSpec(did).name,
            [did](::benchmark::State &state) { runDataset(did, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
