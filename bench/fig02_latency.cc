/**
 * @file
 * Figure 2: GMN-Li inference latency per pair on differently sized
 * random graphs (generated following [24]) for PyG-GPU (V100) and
 * AWB-GCN, with CEGMA added for reference. The paper's anchor points:
 * ~33 ms (V100) and ~24 ms (AWB-GCN) at 1,000 nodes, rising to
 * ~671 ms / ~514 ms at 5,000 nodes — we reproduce the shape
 * (superlinear growth, AWB-GCN < V100), not the absolute values.
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "graph/generators.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 2: latency per pair vs graph size (GMN-Li)",
                  {"Nodes", "PyG-GPU ms", "AWB-GCN ms", "CEGMA ms"});

constexpr uint32_t graphsPerSize = 8;

void
runSize(NodeId n, ::benchmark::State &state)
{
    // 8 original graphs per size, pairs per the Section V-A protocol.
    Rng rng(benchSeed() + n);
    Dataset ds;
    ds.spec = datasetSpec(DatasetId::RD_B);
    for (uint32_t i = 0; i < graphsPerSize; ++i) {
        Graph g = randomGraphLi(n, rng);
        ds.pairs.push_back(makePairFromOriginal(g, (i % 2) == 0, rng));
    }

    double ms[3] = {0, 0, 0};
    for (auto _ : state) {
        auto traces = buildTraces(ModelId::GmnLi, ds, 0);
        int idx = 0;
        for (PlatformId p : {PlatformId::PygGpu, PlatformId::AwbGcn,
                             PlatformId::Cegma}) {
            ms[idx++] = runPlatform(p, traces, graphsPerSize)
                            .msPerPair(GHz);
        }
    }
    state.counters["gpu_ms"] = ms[0];
    state.counters["awb_ms"] = ms[1];
    state.counters["cegma_ms"] = ms[2];

    table.addRow({std::to_string(n), TextTable::fmt(ms[0], 3),
                  TextTable::fmt(ms[1], 3), TextTable::fmt(ms[2], 4)});
}

} // namespace

int
main(int argc, char **argv)
{
    for (cegma::NodeId n : {100u, 500u, 1000u, 2000u, 5000u}) {
        cegma::bench::registerCase(
            "fig02/nodes:" + std::to_string(n),
            [n](::benchmark::State &state) { runSize(n, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
