/**
 * @file
 * Figure 17: DRAM accesses of HyGCN, AWB-GCN and CEGMA, normalized to
 * HyGCN (paper: CEGMA cuts 59% / 61% vs HyGCN / AWB-GCN on average,
 * most on GMN-Li — 98% — and least on SimGNN — ~32%).
 */

#include "bench_common.hh"

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 17: DRAM accesses normalized to HyGCN",
                  {"Dataset", "Model", "HyGCN", "AWB-GCN", "CEGMA",
                   "CEGMA reduction"});

double totalHygcn = 0, totalAwb = 0, totalCegma = 0;

void
runCombo(DatasetId did, ModelId mid, ::benchmark::State &state)
{
    double bytes[3];
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        int i = 0;
        for (PlatformId p : {PlatformId::HyGcn, PlatformId::AwbGcn,
                             PlatformId::Cegma}) {
            bytes[i++] = static_cast<double>(
                runPlatform(p, traces).dramBytes());
        }
    }
    totalHygcn += bytes[0];
    totalAwb += bytes[1];
    totalCegma += bytes[2];
    state.counters["cegma_over_hygcn"] = bytes[2] / bytes[0];

    table.addRow({datasetSpec(did).name, modelConfig(mid).name, "1.00",
                  TextTable::fmt(bytes[1] / bytes[0], 2),
                  TextTable::fmt(bytes[2] / bytes[0], 2),
                  TextTable::fmtPct(1.0 - bytes[2] / bytes[0])});
}

void
printTables()
{
    if (totalHygcn > 0) {
        table.addRow({"TOTAL", "-", "1.00",
                      TextTable::fmt(totalAwb / totalHygcn, 2),
                      TextTable::fmt(totalCegma / totalHygcn, 2),
                      TextTable::fmtPct(1.0 - totalCegma / totalHygcn)});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        for (ModelId mid : allModels()) {
            cegma::bench::registerCase(
                "fig17/" + datasetSpec(did).name + "/" +
                    modelConfig(mid).name,
                [did, mid](::benchmark::State &state) {
                    runCombo(did, mid, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, printTables);
}
