/**
 * @file
 * Shared trace construction for the reuse-distance figures (4 and 20):
 * GraphSim over a dataset with batch-32 execution, feature width 64,
 * and a 128 KB input buffer — the paper's profiling setup.
 */

#ifndef CEGMA_BENCH_REUSE_COMMON_HH
#define CEGMA_BENCH_REUSE_COMMON_HH

#include <vector>

#include "accel/accelerator.hh"
#include "accel/window.hh"
#include "analysis/reuse.hh"
#include "gmn/workload.hh"
#include "sim/config.hh"

namespace cegma {
namespace bench {

/**
 * Build the node-access trace of running GraphSim over `dataset` with
 * the given scheduler and profile its reuse distances.
 *
 * Baselines execute layer-major (a phase per layer across the whole
 * batch), so a node's inter-layer reuse spans the batch's working
 * set. CEGMA's coordinator fuses the stages at fine granularity and
 * proceeds pair-major (all layers of one pair, weights resident in
 * the 6.8 MB on-chip store), which is what collapses the reuse
 * distances in the paper's Figure 20.
 *
 * @param dataset the dataset (pairs already bounded by the caller)
 * @param kind scheduling scheme
 * @param use_emf apply the EMF keep-masks (CEGMA) or match all nodes
 * @param batch_size pairs per batch (paper: 32)
 */
inline IntDistribution
graphSimReuseDistances(const Dataset &dataset, SchedulerKind kind,
                       bool use_emf, uint32_t batch_size = 32)
{
    const bool pair_major = (kind == SchedulerKind::Coordinated ||
                             kind == SchedulerKind::Joint);
    AccelConfig cap_config = cegmaConfig();
    const uint32_t cap = cap_config.inputBufferNodes(64);

    std::vector<PairTrace> traces;
    for (const GraphPair &pair : dataset.pairs)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));

    IntDistribution distances;
    for (size_t begin = 0; begin < traces.size(); begin += batch_size) {
        size_t end = std::min(traces.size(), begin + batch_size);
        // Per-pair node-id offsets within the batch's global matrix.
        std::vector<uint32_t> offsets;
        uint32_t total = 0;
        for (size_t i = begin; i < end; ++i) {
            offsets.push_back(total);
            total += traces[i].pair->target.numNodes() +
                     traces[i].pair->query.numNodes();
        }

        std::vector<uint32_t> batch_trace;
        size_t num_layers = traces[begin].layers.size();
        auto emit_layer = [&](size_t i, size_t l) {
            const PairTrace &trace = traces[i];
            const LayerWork &layer = trace.layers[l];
            std::vector<bool> keep_t, keep_q;
            WindowWork work;
            work.target = &trace.pair->target;
            work.query = &trace.pair->query;
            work.capNodes = cap;
            work.hasMatching = layer.matching.present;
            if (use_emf && layer.matching.present) {
                keep_t = emfKeepMask(layer.matching.dupClassTarget);
                keep_q = emfKeepMask(layer.matching.dupClassQuery);
                work.matchTarget = &keep_t;
                work.matchQuery = &keep_q;
            }
            ScheduleResult sched = scheduleLayer(kind, work, true);
            uint32_t off = offsets[i - begin];
            for (uint32_t id : sched.accessTrace)
                batch_trace.push_back(off + id);
        };
        if (pair_major) {
            for (size_t i = begin; i < end; ++i) {
                for (size_t l = 0; l < num_layers; ++l)
                    emit_layer(i, l);
            }
        } else {
            for (size_t l = 0; l < num_layers; ++l) {
                for (size_t i = begin; i < end; ++i)
                    emit_layer(i, l);
            }
        }
        distances.merge(profileReuseDistances(batch_trace));
    }
    return distances;
}

} // namespace bench
} // namespace cegma

#endif // CEGMA_BENCH_REUSE_COMMON_HH
