/**
 * @file
 * Figures 8 and 12: input-buffer miss counts of the four window
 * schemes on the paper's worked example (the Fig. 5 pair: a 4-node
 * target and a 6-node query, 4-node input buffer). The paper's
 * counts: 26 misses for the separate-phase single window, ~25 for
 * the double independent window, fewer for the joint/coordinated
 * windows.
 *
 * Alongside the accelerator-simulated schemes, the table carries a
 * software mode: the joint-window scheduler from src/gmn/window_sched
 * run on a 16x-scaled version of the same pair (64x96 rows, 128-wide
 * features, budget sized for 16-row resident tiles — the same
 * quarter-of-a-side residency ratio as the 4-node buffer). Its
 * "loads" are resident rows brought into the tile (WindowSchedStats
 * tile loads), compared against full-matrix streaming, so the
 * simulated and software-measured miss *rates* (loads relative to the
 * streaming/separate-phase baseline of the same mode) are directly
 * comparable.
 */

#include "bench_common.hh"

#include "accel/window.hh"
#include "common/rng.hh"
#include "gmn/window_sched.hh"
#include "graph/graph.hh"
#include "tensor/matrix.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figures 8/12: window-scheme miss counts (example)",
                  {"Scheme", "Mode", "Loads", "Rate", "Steps", "Arcs",
                   "Matches"});

// Baseline loads of each mode (separate-phase for the simulator,
// streaming for software); the Rate column is loads / baseline.
double g_simBaseline = 0.0;

std::string
rateString(double loads, double baseline)
{
    if (baseline <= 0.0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", loads / baseline);
    return buf;
}

const char *
schemeName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::SeparatePhase:
        return "separate-phase (Fig. 8a)";
      case SchedulerKind::DoubleWindow:
        return "double independent (Fig. 8b)";
      case SchedulerKind::Joint:
        return "joint window (Fig. 12a)";
      case SchedulerKind::Coordinated:
        return "coordinated joint (Fig. 12b)";
    }
    return "?";
}

void
runScheme(SchedulerKind kind, ::benchmark::State &state)
{
    // The Fig. 5 example pair.
    Graph target = Graph::fromEdges(4, {{0, 2}, {1, 2}, {2, 3}});
    Graph query = Graph::fromEdges(
        6, {{0, 1}, {1, 2}, {2, 3}, {1, 4}, {3, 4}, {4, 5}});
    WindowWork work;
    work.target = &target;
    work.query = &query;
    work.capNodes = 4;
    work.hasMatching = true;

    ScheduleResult res;
    for (auto _ : state)
        res = scheduleLayer(kind, work);
    state.counters["misses"] = static_cast<double>(res.loads);

    if (kind == SchedulerKind::SeparatePhase)
        g_simBaseline = static_cast<double>(res.loads);
    table.addRow({schemeName(kind), "sim", std::to_string(res.loads),
                  rateString(static_cast<double>(res.loads),
                             g_simBaseline),
                  std::to_string(res.steps),
                  std::to_string(res.arcsProcessed),
                  std::to_string(res.matchesProcessed)});
}

/**
 * Software mode: the L2-tiled joint-window scheduler (or full-matrix
 * streaming as its baseline) on the scaled example pair. Loads are
 * resident rows fetched into tiles; streaming re-reads every
 * candidate row per query row.
 */
void
runSoftware(bool windowed, ::benchmark::State &state)
{
    Rng rng(5);
    Matrix x(64, 128), y(96, 128);
    x.fillXavier(rng);
    y.fillXavier(rng);

    // Budget for 16-row tiles per side: tile_rows = budget/2 /
    // row_bytes.
    WindowSchedConfig config;
    config.cacheBytes = 2 * 16 * x.cols() * sizeof(float);

    const double stream_loads =
        static_cast<double>(x.rows()) *
            (static_cast<double>(y.rows()) + 1.0);

    WindowSchedStats stats;
    Matrix s;
    for (auto _ : state) {
        if (windowed) {
            s = similarityMatrixWindowed(x, y, SimilarityKind::Cosine,
                                         config, &stats);
        } else {
            s = similarityMatrixStreamed(x, y, SimilarityKind::Cosine);
        }
    }
    ::benchmark::DoNotOptimize(s.data());

    double loads = stream_loads;
    if (windowed) {
        loads = static_cast<double>(stats.xTileLoads) * stats.tileRowsX +
                static_cast<double>(stats.yTileLoads) * stats.tileRowsY;
    }
    state.counters["misses"] = loads;
    state.counters["miss_rate"] = loads / stream_loads;

    table.addRow({windowed ? "software joint (window_sched, 64x96)"
                           : "software streaming (64x96)",
                  "sw",
                  std::to_string(static_cast<uint64_t>(loads)),
                  rateString(loads, stream_loads),
                  windowed ? std::to_string(stats.windows) : "-", "-",
                  "-"});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (SchedulerKind kind :
         {SchedulerKind::SeparatePhase, SchedulerKind::DoubleWindow,
          SchedulerKind::Joint, SchedulerKind::Coordinated}) {
        cegma::bench::registerCase(
            std::string("fig08/") + std::to_string(static_cast<int>(kind)),
            [kind](::benchmark::State &state) { runScheme(kind, state); });
    }
    cegma::bench::registerCase(
        "fig08/software-stream",
        [](::benchmark::State &state) { runSoftware(false, state); });
    cegma::bench::registerCase(
        "fig08/software-joint",
        [](::benchmark::State &state) { runSoftware(true, state); });
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
