/**
 * @file
 * Figures 8 and 12: input-buffer miss counts of the four window
 * schemes on the paper's worked example (the Fig. 5 pair: a 4-node
 * target and a 6-node query, 4-node input buffer). The paper's
 * counts: 26 misses for the separate-phase single window, ~25 for
 * the double independent window, fewer for the joint/coordinated
 * windows.
 */

#include "bench_common.hh"

#include "accel/window.hh"
#include "graph/graph.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figures 8/12: window-scheme miss counts (example)",
                  {"Scheme", "Misses", "Steps", "Arcs", "Matches"});

const char *
schemeName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::SeparatePhase:
        return "separate-phase (Fig. 8a)";
      case SchedulerKind::DoubleWindow:
        return "double independent (Fig. 8b)";
      case SchedulerKind::Joint:
        return "joint window (Fig. 12a)";
      case SchedulerKind::Coordinated:
        return "coordinated joint (Fig. 12b)";
    }
    return "?";
}

void
runScheme(SchedulerKind kind, ::benchmark::State &state)
{
    // The Fig. 5 example pair.
    Graph target = Graph::fromEdges(4, {{0, 2}, {1, 2}, {2, 3}});
    Graph query = Graph::fromEdges(
        6, {{0, 1}, {1, 2}, {2, 3}, {1, 4}, {3, 4}, {4, 5}});
    WindowWork work;
    work.target = &target;
    work.query = &query;
    work.capNodes = 4;
    work.hasMatching = true;

    ScheduleResult res;
    for (auto _ : state)
        res = scheduleLayer(kind, work);
    state.counters["misses"] = static_cast<double>(res.loads);

    table.addRow({schemeName(kind), std::to_string(res.loads),
                  std::to_string(res.steps),
                  std::to_string(res.arcsProcessed),
                  std::to_string(res.matchesProcessed)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (SchedulerKind kind :
         {SchedulerKind::SeparatePhase, SchedulerKind::DoubleWindow,
          SchedulerKind::Joint, SchedulerKind::Coordinated}) {
        cegma::bench::registerCase(
            std::string("fig08/") + std::to_string(static_cast<int>(kind)),
            [kind](::benchmark::State &state) { runScheme(kind, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
