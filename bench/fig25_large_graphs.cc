/**
 * @file
 * Figure 25: speedup of the platforms over PyG-CPU on large random
 * graphs generated following [24] (paper: CEGMA's advantage grows
 * with size — 10.8x/9.6x over HyGCN/AWB-GCN at 1,000 nodes, 37.5x/
 * 36.6x at 5,000 nodes — because larger graphs carry more duplicate
 * subgraphs). Averaged over the three GMN models.
 */

#include "bench_common.hh"

#include <cmath>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "graph/generators.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table(
    "Figure 25: speedup over PyG-CPU on large random graphs",
    {"Nodes", "PyG-GPU", "HyGCN", "AWB-GCN", "CEGMA",
     "CEGMA/AWB"});

constexpr uint32_t graphsPerSize = 8;

void
runSize(NodeId n, ::benchmark::State &state)
{
    Rng rng(benchSeed() * 31 + n);
    Dataset ds;
    ds.spec = datasetSpec(DatasetId::RD_B);
    for (uint32_t i = 0; i < graphsPerSize; ++i) {
        Graph g = randomGraphLi(n, rng);
        ds.pairs.push_back(makePairFromOriginal(g, (i % 2) == 0, rng));
    }

    double logsum[5] = {0, 0, 0, 0, 0};
    int count = 0;
    for (auto _ : state) {
        for (ModelId mid : allModels()) {
            auto traces = buildTraces(mid, ds, 0);
            double cycles[5];
            int i = 0;
            for (PlatformId p : mainPlatforms())
                cycles[i++] = runPlatform(p, traces, graphsPerSize)
                                  .cycles;
            for (int k = 1; k < 5; ++k)
                logsum[k] += std::log(cycles[0] / cycles[k]);
            logsum[0] += std::log(cycles[3] / cycles[4]); // AWB/CEGMA
            ++count;
        }
    }
    double geo[5];
    for (int k = 0; k < 5; ++k)
        geo[k] = std::exp(logsum[k] / count);
    state.counters["cegma_over_awb"] = geo[0];

    table.addRow({std::to_string(n), TextTable::fmtX(geo[1]),
                  TextTable::fmtX(geo[2]), TextTable::fmtX(geo[3]),
                  TextTable::fmtX(geo[4]), TextTable::fmtX(geo[0])});
}

} // namespace

int
main(int argc, char **argv)
{
    for (cegma::NodeId n : {1000u, 2000u, 3000u, 4000u, 5000u}) {
        cegma::bench::registerCase(
            "fig25/nodes:" + std::to_string(n),
            [n](::benchmark::State &state) { runSize(n, state); });
    }
    return cegma::bench::benchMain(argc, argv, [] { table.print(); });
}
