/**
 * @file
 * Figure 19: energy consumption of the accelerators normalized to
 * HyGCN (paper: CEGMA consumes 63% / 62% less energy than HyGCN /
 * AWB-GCN on average).
 */

#include "bench_common.hh"

#include "accel/runner.hh"
#include "sim/energy.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 19: energy normalized to HyGCN",
                  {"Dataset", "Model", "HyGCN", "AWB-GCN", "CEGMA",
                   "CEGMA saving"});

FigureTable component_table(
    "Figure 19 companion: CEGMA energy composition (all datasets)",
    {"Component", "Share"});

double compDram = 0, compSram = 0, compMac = 0, compLeak = 0;

double totalHygcn = 0, totalAwb = 0, totalCegma = 0;

void
runCombo(DatasetId did, ModelId mid, ::benchmark::State &state)
{
    EnergyModel energy;
    double nj[3];
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        int i = 0;
        for (PlatformId p : {PlatformId::HyGcn, PlatformId::AwbGcn,
                             PlatformId::Cegma}) {
            nj[i++] = runPlatform(p, traces).energyNj(energy);
        }
    }
    totalHygcn += nj[0];
    totalAwb += nj[1];
    totalCegma += nj[2];
    state.counters["cegma_over_hygcn"] = nj[2] / nj[0];

    // Component composition of CEGMA's energy (re-simulated so the
    // raw counters are available).
    {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        SimResult cegma = runPlatform(PlatformId::Cegma, traces);
        compDram += cegma.dramBytes() * energy.dramPjPerByte;
        compSram += cegma.sramBytes * energy.sramPjPerByte;
        compMac += cegma.macOps * energy.macPj;
        compLeak += cegma.cycles * energy.leakagePjPerCycle;
    }

    table.addRow({datasetSpec(did).name, modelConfig(mid).name, "1.00",
                  TextTable::fmt(nj[1] / nj[0], 2),
                  TextTable::fmt(nj[2] / nj[0], 2),
                  TextTable::fmtPct(1.0 - nj[2] / nj[0])});
}

void
printTables()
{
    if (totalHygcn > 0) {
        table.addRow({"TOTAL", "-", "1.00",
                      TextTable::fmt(totalAwb / totalHygcn, 2),
                      TextTable::fmt(totalCegma / totalHygcn, 2),
                      TextTable::fmtPct(1.0 - totalCegma / totalHygcn)});
    }
    table.print();
    double comp_total = compDram + compSram + compMac + compLeak;
    if (comp_total > 0) {
        component_table.addRow(
            {"DRAM", TextTable::fmtPct(compDram / comp_total)});
        component_table.addRow(
            {"SRAM", TextTable::fmtPct(compSram / comp_total)});
        component_table.addRow(
            {"MACs", TextTable::fmtPct(compMac / comp_total)});
        component_table.addRow(
            {"leakage/clock", TextTable::fmtPct(compLeak / comp_total)});
        component_table.print();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        for (ModelId mid : allModels()) {
            cegma::bench::registerCase(
                "fig19/" + datasetSpec(did).name + "/" +
                    modelConfig(mid).name,
                [did, mid](::benchmark::State &state) {
                    runCombo(did, mid, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, printTables);
}
