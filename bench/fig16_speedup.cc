/**
 * @file
 * Figure 16: end-to-end speedup of PyG-GPU, HyGCN, AWB-GCN and CEGMA
 * over the PyG-CPU baseline, for every model x dataset combination,
 * plus geometric means (paper: 3139x / 353x / 8.4x / 6.5x average
 * speedups of CEGMA over PyG-CPU / PyG-GPU / HyGCN / AWB-GCN).
 */

#include "bench_common.hh"

#include <cmath>

#include "accel/runner.hh"

namespace {

using namespace cegma;
using namespace cegma::bench;

FigureTable table("Figure 16: end-to-end speedup over PyG-CPU",
                  {"Dataset", "Model", "PyG-GPU", "HyGCN", "AWB-GCN",
                   "CEGMA"});

struct GeoMean
{
    double logsum[4] = {0, 0, 0, 0};
    int count = 0;
} geo;

void
runCombo(DatasetId did, ModelId mid, ::benchmark::State &state)
{
    double cycles[5];
    for (auto _ : state) {
        Dataset ds = makeDataset(did, benchSeed(), pairCap());
        auto traces = buildTraces(mid, ds, 0);
        int i = 0;
        for (PlatformId p : mainPlatforms())
            cycles[i++] = runPlatform(p, traces).cycles;
    }
    double speedups[4];
    for (int i = 0; i < 4; ++i) {
        speedups[i] = cycles[0] / cycles[i + 1];
        geo.logsum[i] += std::log(speedups[i]);
    }
    ++geo.count;
    state.counters["cegma_speedup"] = speedups[3];

    table.addRow({datasetSpec(did).name, modelConfig(mid).name,
                  TextTable::fmtX(speedups[0]),
                  TextTable::fmtX(speedups[1]),
                  TextTable::fmtX(speedups[2]),
                  TextTable::fmtX(speedups[3])});
}

void
printTables()
{
    if (geo.count > 0) {
        table.addRow(
            {"GEOMEAN", "-",
             TextTable::fmtX(std::exp(geo.logsum[0] / geo.count)),
             TextTable::fmtX(std::exp(geo.logsum[1] / geo.count)),
             TextTable::fmtX(std::exp(geo.logsum[2] / geo.count)),
             TextTable::fmtX(std::exp(geo.logsum[3] / geo.count))});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cegma;
    for (DatasetId did : allDatasets()) {
        for (ModelId mid : allModels()) {
            cegma::bench::registerCase(
                "fig16/" + datasetSpec(did).name + "/" +
                    modelConfig(mid).name,
                [did, mid](::benchmark::State &state) {
                    runCombo(did, mid, state);
                });
        }
    }
    return cegma::bench::benchMain(argc, argv, printTables);
}
