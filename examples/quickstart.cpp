/**
 * @file
 * Quickstart: build a graph pair by hand, run a functional GMN on it,
 * inspect the duplicate structure the EMF exploits, and simulate the
 * pair on CEGMA versus a baseline GNN accelerator.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/model.hh"
#include "gmn/workload.hh"
#include "graph/graph.hh"

using namespace cegma;

int
main()
{
    // 1. Build two graphs. The target is a small "molecule": a ring
    //    with two symmetric side chains; the query perturbs one edge.
    Graph target = Graph::fromEdges(
        8,
        {{0, 1}, {1, 2}, {2, 3}, {3, 0}, // ring
         {0, 4}, {4, 5},                 // side chain A
         {2, 6}, {6, 7}},                // side chain B (isomorphic)
        {0, 1, 0, 1, 0, 2, 0, 2});
    Rng rng(42);
    GraphPair pair = makePairFromOriginal(target, /*similar=*/true, rng);
    std::printf("pair: target %u nodes / %llu edges, query %u/%llu\n",
                pair.target.numNodes(),
                (unsigned long long)pair.target.numEdges(),
                pair.query.numNodes(),
                (unsigned long long)pair.query.numEdges());

    // 2. Run the functional GraphSim model.
    auto model = makeModel(ModelId::GraphSim, /*seed=*/7);
    auto detail = model->forwardDetailed(pair);
    std::printf("GraphSim similarity score: %.4f\n", detail.score);

    // 3. Inspect the duplicate structure the EMF exploits: hash the
    //    last layer's node features and count unique rows.
    EmfResult emf = emfFilter(detail.xLayers.back());
    std::printf("EMF on last-layer target features: %u unique of %zu "
                "nodes (%u duplicates filtered)\n",
                emf.numUnique(), detail.xLayers.back().rows(),
                emf.numDuplicates());

    // 4. Simulate the pair on CEGMA and on the AWB-GCN baseline.
    std::vector<PairTrace> traces{buildTrace(ModelId::GraphSim, pair)};
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces);
    SimResult cegma = runPlatform(PlatformId::Cegma, traces);
    std::printf("AWB-GCN : %.0f cycles, %llu DRAM bytes\n", awb.cycles,
                (unsigned long long)awb.dramBytes());
    std::printf("CEGMA   : %.0f cycles, %llu DRAM bytes\n", cegma.cycles,
                (unsigned long long)cegma.dramBytes());
    std::printf("speedup : %.2fx, DRAM cut: %.1f%%\n",
                awb.cycles / cegma.cycles,
                100.0 * (1.0 - static_cast<double>(cegma.dramBytes()) /
                                   awb.dramBytes()));
    return 0;
}
