/**
 * @file
 * Code-clone search — the paper's motivating batch workload (§I, §III):
 * match one query "function graph" against a database of candidates
 * under a real-time budget ("real-time code clone search applications
 * require searching within a second" [40]).
 *
 * The example
 *  1. builds a database of control-flow-like graphs with a few planted
 *     clones (1-edge perturbations of the query),
 *  2. retrieves the clones by EMF-tag coverage — the fraction of
 *     canonical WL signatures (exactly the node tags the EMF hashes)
 *     each side finds in the other,
 *  3. checks the 1-second deadline on every platform, and
 *  4. measures the *shared-query* EMF extension: with one query served
 *     against many candidates, duplicate candidate nodes (by canonical
 *     WL signature) reuse matching rows across pairs, not just within
 *     one pair.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "gmn/model.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

using namespace cegma;

namespace {

/**
 * EMF-tag coverage score: the fraction of one graph's deep WL node
 * signatures found in the other, taking the weaker direction. Two
 * nodes carry the same tag exactly when their l-hop neighborhoods are
 * isomorphic (the EMF's duplicate criterion), so a 1-edge clone covers
 * nearly everything while unrelated functions share only generic
 * roles.
 */
double
tagCoverageScore(const std::vector<uint64_t> &a,
                 const std::vector<uint64_t> &b)
{
    std::unordered_set<uint64_t> sa(a.begin(), a.end());
    std::unordered_set<uint64_t> sb(b.begin(), b.end());
    auto covered = [](const std::vector<uint64_t> &nodes,
                      const std::unordered_set<uint64_t> &other) {
        size_t hits = 0;
        for (uint64_t sig : nodes)
            hits += other.count(sig) > 0;
        return nodes.empty()
                   ? 0.0
                   : static_cast<double>(hits) / nodes.size();
    };
    return std::min(covered(a, sb), covered(b, sa));
}

} // namespace

int
main()
{
    constexpr uint32_t db_size = 512;
    constexpr uint32_t num_clones = 4;
    Rng rng(2026);

    // The query "function": a sparse control-flow-like graph.
    Graph query = sparseSocialGraph(60, 95, rng);

    // Database: random functions plus planted near-clones.
    std::vector<Graph> database;
    std::vector<bool> is_clone(db_size, false);
    for (uint32_t i = 0; i < db_size; ++i) {
        if (i % (db_size / num_clones) == 1) {
            database.push_back(query.substituteEdges(1, rng));
            is_clone[i] = true;
        } else {
            NodeId n = sampleGraphSize(60, 0.3, 10, rng);
            database.push_back(sparseSocialGraph(n, n * 3 / 2, rng));
        }
    }

    // Rank every candidate by EMF-tag coverage at depth 3.
    auto model = makeModel(ModelId::GraphSim, 99);
    const unsigned depth = model->config().numLayers;
    WlColoring wl_query = wlRefine(query, depth);
    std::vector<std::pair<double, uint32_t>> ranking;
    std::vector<GraphPair> pairs;
    pairs.reserve(db_size);
    for (uint32_t i = 0; i < db_size; ++i) {
        GraphPair pair{database[i], query, is_clone[i]};
        WlColoring wl = wlRefine(pair.target, depth);
        ranking.push_back({tagCoverageScore(wl.signatures[depth],
                                            wl_query.signatures[depth]),
                           i});
        pairs.push_back(std::move(pair));
    }
    std::sort(ranking.rbegin(), ranking.rend());

    std::printf("top-8 candidates (query matched against %u functions):\n",
                db_size);
    uint32_t clones_in_top = 0;
    for (int k = 0; k < 8; ++k) {
        auto [score, idx] = ranking[k];
        bool clone = is_clone[idx];
        clones_in_top += clone && k < 8;
        std::printf("  #%d: candidate %4u coverage %.4f %s\n", k + 1,
                    idx, score, clone ? "<-- planted clone" : "");
    }
    std::printf("planted clones found in top-8: %u / %u\n\n",
                clones_in_top, num_clones);

    // Deadline check: whole-database search latency per platform.
    std::vector<PairTrace> traces;
    for (const GraphPair &pair : pairs)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));
    std::printf("%-9s %12s  %s\n", "platform", "search time",
                "meets 1 s deadline?");
    for (PlatformId p : mainPlatforms()) {
        double secs = runPlatform(p, traces).seconds(GHz);
        std::printf("%-9s %10.3f ms  %s\n", platformName(p), secs * 1e3,
                    secs < 1.0 ? "yes" : "NO");
    }

    // Shared-query extension: canonical WL signatures dedup candidate
    // rows *across* pairs because the query side is fixed.
    const ModelConfig &config = model->config();
    uint64_t per_pair_unique = 0, total_rows = 0;
    std::unordered_set<uint64_t> global_sigs;
    for (const GraphPair &pair : pairs) {
        WlColoring wl = wlRefine(pair.target, config.numLayers);
        per_pair_unique += wl.numClasses[config.numLayers];
        total_rows += pair.target.numNodes();
        for (uint64_t sig : wl.signatures[config.numLayers])
            global_sigs.insert(sig);
    }
    std::printf("\nshared-query EMF extension (last matching layer):\n"
                "  matching rows, no dedup        : %llu\n"
                "  per-pair EMF (paper)           : %llu\n"
                "  cross-pair dedup (shared query): %zu\n",
                (unsigned long long)total_rows,
                (unsigned long long)per_pair_unique, global_sigs.size());
    return 0;
}
