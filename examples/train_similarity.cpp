/**
 * @file
 * Training example: fit the Siamese GCN on a synthetic dataset's
 * train split (the paper's protocol: 8:1:1 train/val/test with
 * similar pairs at 1 substituted edge and dissimilar at 4) and report
 * the accuracy gain, then profile the trained-model workload on the
 * accelerators — demonstrating the full trace-driven flow end to end.
 */

#include <cstdio>
#include <vector>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "graph/dataset.hh"
#include "train/siamese.hh"

using namespace cegma;

int
main()
{
    // Build GITHUB-style pairs and split 8:1:1.
    Dataset ds = makeDataset(DatasetId::GITHUB, 2026, 200);
    size_t train_end = ds.pairs.size() * 8 / 10;
    size_t val_end = ds.pairs.size() * 9 / 10;
    std::vector<GraphPair> train(ds.pairs.begin(),
                                 ds.pairs.begin() + train_end);
    std::vector<GraphPair> val(ds.pairs.begin() + train_end,
                               ds.pairs.begin() + val_end);
    std::vector<GraphPair> test(ds.pairs.begin() + val_end,
                                ds.pairs.end());
    std::printf("GITHUB split: %zu train / %zu val / %zu test pairs\n",
                train.size(), val.size(), test.size());

    TrainConfig config;
    config.epochs = 10;
    SiameseGcn model(config, 7);

    TrainReport report = trainSiamese(model, train, test);
    std::printf("accuracy before training: %.1f%%\n",
                report.initialAccuracy * 100.0);
    for (size_t e = 0; e < report.epochLoss.size(); ++e)
        std::printf("  epoch %2zu: mean loss %.4f\n", e + 1,
                    report.epochLoss[e]);
    std::printf("accuracy after training : %.1f%% (val: %.1f%%)\n",
                report.finalAccuracy * 100.0,
                model.accuracy(val) * 100.0);

    // The trained model's inference workload is what the accelerator
    // serves; profile the test split.
    std::vector<PairTrace> traces;
    for (const GraphPair &pair : test)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces);
    SimResult cegma = runPlatform(PlatformId::Cegma, traces);
    std::printf("\ninference on the test split (GraphSim-class "
                "workload):\n  AWB-GCN %.3f ms, CEGMA %.3f ms "
                "(%.1fx)\n",
                awb.seconds(GHz) * 1e3, cegma.seconds(GHz) * 1e3,
                awb.cycles / cegma.cycles);
    return 0;
}
