/**
 * @file
 * Molecular similarity screening — the AIDS-style workload (§I:
 * "searching a graph in large chemistry/biology databases requires
 * millions of matching queries"). Screens a compound library against
 * a query molecule with GMN-Li and reports throughput per platform.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "gmn/model.hh"
#include "graph/generators.hh"

using namespace cegma;

namespace {

/** Mean best-match euclidean similarity (higher = more similar). */
double
assignmentScore(const Matrix &s)
{
    double total = 0.0;
    for (size_t i = 0; i < s.rows(); ++i) {
        float best = s.at(i, 0);
        for (size_t j = 1; j < s.cols(); ++j)
            best = std::max(best, s.at(i, j));
        total += best;
    }
    return s.rows() ? total / static_cast<double>(s.rows()) : 0.0;
}

} // namespace

int
main()
{
    constexpr uint32_t library_size = 256;
    Rng rng(17);

    // Query compound and a library with a few derivatives of it.
    Graph compound = moleculeGraph(18, 12, rng);
    std::vector<Graph> library;
    std::vector<bool> is_derivative(library_size, false);
    for (uint32_t i = 0; i < library_size; ++i) {
        if (i % 64 == 3) {
            library.push_back(compound.substituteEdges(1, rng));
            is_derivative[i] = true;
        } else {
            NodeId n = sampleGraphSize(15.69, 0.35, 6, rng);
            library.push_back(moleculeGraph(n, 12, rng));
        }
    }

    // Screen with GMN-Li (layer-wise euclidean matching).
    auto model = makeModel(ModelId::GmnLi, 5);
    std::vector<std::pair<double, uint32_t>> ranking;
    std::vector<GraphPair> pairs;
    for (uint32_t i = 0; i < library_size; ++i) {
        GraphPair pair{library[i], compound, is_derivative[i]};
        auto detail = model->forwardDetailed(pair);
        ranking.push_back({assignmentScore(detail.simLayers.back()), i});
        pairs.push_back(std::move(pair));
    }
    std::sort(ranking.rbegin(), ranking.rend());

    std::printf("screening %u compounds against the query:\n",
                library_size);
    for (int k = 0; k < 6; ++k) {
        auto [score, idx] = ranking[k];
        std::printf("  #%d: compound %3u score %9.4f %s\n", k + 1, idx,
                    score,
                    is_derivative[idx] ? "<-- known derivative" : "");
    }

    // Library-scale throughput: pairs per second on each platform.
    std::vector<PairTrace> traces;
    for (const GraphPair &pair : pairs)
        traces.push_back(buildTrace(ModelId::GmnLi, pair));
    std::printf("\n%-9s %16s %18s\n", "platform", "pairs/second",
                "1M-compound scan");
    for (PlatformId p : mainPlatforms()) {
        SimResult result = runPlatform(p, traces);
        double tput = result.throughput(GHz);
        std::printf("%-9s %14.0f %15.1f s\n", platformName(p), tput,
                    1e6 / tput);
    }
    return 0;
}
