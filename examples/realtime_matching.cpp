/**
 * @file
 * Real-time graph matching — the latency-critical scenario from §III-A:
 * autonomous-driving perception needs graph-matching results in about
 * 20 ms per frame. Each frame produces a scene graph matched against a
 * reference; the example checks which platforms sustain the deadline
 * and what frame rate each achieves.
 */

#include <cstdio>
#include <vector>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "graph/generators.hh"

using namespace cegma;

int
main()
{
    constexpr double deadline_ms = 20.0;
    constexpr uint32_t frames = 16;
    Rng rng(99);

    // Reference scene graph (point-cloud-like: repeated local
    // structure around object landmarks) and per-frame variants.
    Graph reference = threadGraph(500, 580, rng);
    std::vector<GraphPair> pairs;
    for (uint32_t f = 0; f < frames; ++f) {
        // Frame-to-frame drift: a few landmark edges change.
        pairs.push_back(
            makePairFromOriginal(reference, /*similar=*/true, rng));
    }

    std::vector<PairTrace> traces;
    for (const GraphPair &pair : pairs)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));

    std::printf("frame matching: 500-node scene graphs, GraphSim, "
                "%.0f ms deadline\n\n",
                deadline_ms);
    std::printf("%-9s %14s %10s   %s\n", "platform", "ms/frame", "fps",
                "meets deadline?");
    for (PlatformId p : mainPlatforms()) {
        SimResult result = runPlatform(p, traces, /*batch=*/1);
        double ms = result.msPerPair(GHz);
        std::printf("%-9s %12.3f %10.1f   %s\n", platformName(p), ms,
                    1e3 / ms, ms <= deadline_ms ? "yes" : "NO");
    }

    // Show the EMF leverage on this workload: how much matching the
    // duplicate point-cloud structure removes.
    uint64_t total = 0, unique = 0;
    for (const auto &trace : traces) {
        total += trace.totalMatchPairs();
        unique += trace.uniqueMatchPairs();
    }
    std::printf("\nEMF filtered %.1f%% of the %llu matching pairs per "
                "frame batch\n",
                100.0 * (1.0 - static_cast<double>(unique) / total),
                (unsigned long long)total);
    return 0;
}
