/**
 * @file
 * The retrieval cascade: filter -> shortlist -> (caller's) exact
 * verify, following the Neural Subgraph Matching decomposition.
 *
 * Serving a query against an N-graph corpus exhaustively costs N exact
 * GMN scores. The cascade spends two cheap stages first:
 *
 *   1. *Tag filter* (tag_index.hh): an inverted index over canonical
 *      WL signatures prunes candidates whose tag overlap with the
 *      query falls below a threshold.
 *   2. *Coarse shortlist* (coarse.hh): survivors are ranked by the
 *      model's own query-conditioned coarse scorer over stored
 *      per-graph descriptors when the model decomposes its head
 *      (SimGNN), else by squared L2 distance between pooled per-graph
 *      embedding chains (or a WL sketch for cross-feedback models),
 *      and cut to the top C.
 *
 * Only the shortlist reaches the exact GMN — and those scores are
 * bit-identical to what exhaustive mode produces for the same pairs,
 * because the cascade changes *which* pairs are scored, never *how*.
 * Exhaustive mode therefore stays the oracle: cascade trades recall
 * (a true top-k hit pruned early is gone) for a per-query cost that
 * scales with the shortlist, not the corpus.
 */

#ifndef CEGMA_RETRIEVAL_RETRIEVAL_HH
#define CEGMA_RETRIEVAL_RETRIEVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "retrieval/coarse.hh"
#include "retrieval/tag_index.hh"

namespace cegma {

class GmnModel;

/** Candidate selection policy of a `SearchService`. */
enum class RetrievalMode
{
    Exhaustive, ///< score every corpus graph (the oracle)
    Cascade,    ///< tag filter -> coarse shortlist -> exact verify
};

/** @return "exhaustive" / "cascade". */
const char *retrievalModeName(RetrievalMode mode);

/** Knobs of the cascade. */
struct RetrievalConfig
{
    RetrievalMode mode = RetrievalMode::Exhaustive;

    /**
     * Exact-verify budget per query: at most this many survivors reach
     * the GMN. 0 = unlimited (tag filter only).
     */
    size_t shortlist = 64;

    /**
     * Stage-1 threshold: candidates must share at least
     * ceil(tagPrune * |query tags|) WL tags. <= 0 disables pruning.
     * Off by default: WL-tag overlap is a *structural* filter, the
     * right tool when relevance means "near-clone of the query", but
     * it can prune candidates an exact model ranks highly for
     * non-structural reasons — so recall-gated deployments leave it at
     * 0 and lean on the model-aware shortlist, while clone-retrieval
     * workloads opt in for the extra pruning.
     */
    double tagPrune = 0.0;

    /** WL depth of the tag index (levels of neighborhood context). */
    unsigned tagLevel = 1;

    /** WL-sketch width for models without per-graph embeddings. */
    unsigned sketchDim = 128;
};

/** Per-query stage sizes, for metrics and tests. */
struct RetrievalStages
{
    size_t corpus = 0;     ///< candidates entering the cascade
    size_t survivors = 0;  ///< after the tag filter
    size_t shortlisted = 0; ///< after the coarse stage = exact scores run
};

/**
 * Both corpus-side structures of the cascade, built once at corpus
 * load. Content-keyed where possible: the tag index depends only on
 * the graphs, the coarse vectors additionally on the model's weights
 * (or only the graphs, for the sketch fallback). Immutable and
 * thread-safe after `build`.
 */
class RetrievalIndex
{
  public:
    /** Build both stages over `corpus` for `model`. */
    void build(const std::vector<Graph> &corpus, const GmnModel &model,
               const RetrievalConfig &config);

    /**
     * Run stages 1–2 for `query`: the candidate ids the exact stage
     * must score, ascending. `stages` (optional) receives the
     * per-stage sizes.
     */
    std::vector<uint32_t> shortlist(const Graph &query,
                                    const GmnModel &model,
                                    RetrievalStages *stages = nullptr) const;

    /**
     * Re-point the query-time knobs (shortlist budget, tag-prune
     * threshold) without rebuilding the corpus-side structures. The
     * build-time knobs (`tagLevel`, `sketchDim`) keep the values the
     * index was built with — sweeping those requires a rebuild. Not
     * thread-safe against concurrent `shortlist` calls; benchmarks
     * sweep knobs between measurement passes, not during one.
     */
    void setQueryKnobs(size_t shortlist, double tag_prune)
    {
        config_.shortlist = shortlist;
        config_.tagPrune = tag_prune;
    }

    const RetrievalConfig &config() const { return config_; }
    const TagIndex &tags() const { return tags_; }
    const CoarseIndex &coarse() const { return coarse_; }
    size_t bytes() const { return tags_.bytes() + coarse_.bytes(); }

  private:
    RetrievalConfig config_;
    TagIndex tags_;
    CoarseIndex coarse_;
};

} // namespace cegma

#endif // CEGMA_RETRIEVAL_RETRIEVAL_HH
