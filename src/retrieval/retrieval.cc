#include "retrieval/retrieval.hh"

#include "gmn/model.hh"
#include "obs/trace.hh"

namespace cegma {

const char *
retrievalModeName(RetrievalMode mode)
{
    return mode == RetrievalMode::Cascade ? "cascade" : "exhaustive";
}

void
RetrievalIndex::build(const std::vector<Graph> &corpus,
                      const GmnModel &model, const RetrievalConfig &config)
{
    CEGMA_TRACE_SCOPE_CAT("retrievalIndex.build", "retrieval");
    config_ = config;
    tags_.build(corpus, config.tagLevel);
    coarse_.build(corpus, model, config.tagLevel, config.sketchDim);
}

std::vector<uint32_t>
RetrievalIndex::shortlist(const Graph &query, const GmnModel &model,
                          RetrievalStages *stages) const
{
    std::vector<uint32_t> survivors =
        tags_.survivors(query, config_.tagPrune);
    std::vector<uint32_t> shortlisted;
    if (coarse_.modelAware()) {
        std::unique_ptr<CoarseScorer> scorer = model.coarseScorer(query);
        shortlisted = coarse_.shortlistScored(*scorer, survivors,
                                              config_.shortlist);
    } else {
        std::vector<float> qvec = coarseVector(
            query, model, config_.tagLevel, config_.sketchDim);
        shortlisted = coarse_.shortlist(qvec, survivors,
                                        config_.shortlist);
    }
    if (stages != nullptr) {
        stages->corpus = tags_.corpusSize();
        stages->survivors = survivors.size();
        stages->shortlisted = shortlisted.size();
    }
    return shortlisted;
}

} // namespace cegma
