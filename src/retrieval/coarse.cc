#include "retrieval/coarse.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/parallel.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "graph/wl_refine.hh"
#include "obs/trace.hh"

namespace cegma {

std::vector<float>
wlSketch(const Graph &g, unsigned level, unsigned dim)
{
    std::vector<float> sketch(dim, 0.0f);
    if (g.numNodes() == 0)
        return sketch;
    WlColoring wl = wlRefine(g, level);
    for (const auto &sigs : wl.signatures) {
        for (uint64_t sig : sigs) {
            // Bucket from the low bits, sign from a high bit — both
            // sides of the signature's avalanche, so bucket and sign
            // are independent enough for a signed count sketch.
            auto bucket = static_cast<size_t>(sig % dim);
            float sign = (sig >> 63) != 0 ? -1.0f : 1.0f;
            sketch[bucket] += sign;
        }
    }
    // Node-count normalization keeps clones of differently sized bases
    // comparable on one distance scale.
    auto inv = 1.0f / static_cast<float>(g.numNodes());
    for (float &v : sketch)
        v *= inv;
    return sketch;
}

std::vector<float>
coarseVector(const Graph &g, const GmnModel &model, unsigned sketch_level,
             unsigned sketch_dim)
{
    std::shared_ptr<const GraphEmbedding> chain = model.graphEmbedding(g);
    if (chain == nullptr)
        return wlSketch(g, sketch_level, sketch_dim);

    std::vector<float> out;
    for (const Matrix &layer : chain->layers) {
        Matrix pooled = columnMeans(layer);
        out.insert(out.end(), pooled.data(),
                   pooled.data() + pooled.size());
    }
    return out;
}

void
CoarseIndex::build(const std::vector<Graph> &corpus, const GmnModel &model,
                   unsigned sketch_level, unsigned sketch_dim)
{
    CEGMA_TRACE_SCOPE_CAT("coarseIndex.build", "retrieval");
    modelAware_ = false;
    if (corpus.empty()) {
        vectors_ = Matrix();
        norms_ = Matrix();
        return;
    }
    if (model.coarseDim() > 0) {
        // The model decomposes its head per graph: store its own
        // descriptors and let its scorer rank (shortlistScored). The
        // descriptors go through the memo like the generic chain path.
        modelAware_ = true;
        vectors_ = Matrix(corpus.size(), model.coarseDim());
        parallelFor(0, corpus.size(), 1, [&](size_t g0, size_t g1) {
            for (size_t g = g0; g < g1; ++g)
                model.coarseDescriptor(corpus[g], vectors_.row(g));
        });
        norms_ = Matrix();
        return;
    }
    // The first vector fixes the dimension (a constant of the model /
    // sketch config); the rest fill their rows in parallel.
    std::vector<float> first =
        coarseVector(corpus[0], model, sketch_level, sketch_dim);
    vectors_ = Matrix(corpus.size(), first.size());
    std::copy(first.begin(), first.end(), vectors_.row(0));
    parallelFor(1, corpus.size(), 1, [&](size_t g0, size_t g1) {
        for (size_t g = g0; g < g1; ++g) {
            std::vector<float> v =
                coarseVector(corpus[g], model, sketch_level, sketch_dim);
            assert(v.size() == vectors_.cols());
            std::copy(v.begin(), v.end(), vectors_.row(g));
        }
    });
    norms_ = rowSquaredNorms(vectors_);
}

std::vector<uint32_t>
CoarseIndex::shortlist(const std::vector<float> &query_vec,
                       const std::vector<uint32_t> &survivors,
                       size_t shortlist_size) const
{
    if (shortlist_size == 0 || survivors.size() <= shortlist_size)
        return survivors;
    CEGMA_TRACE_SCOPE_CAT("retrieval.shortlist", "retrieval");
    assert(query_vec.size() == vectors_.cols());

    // ||q - c||^2 = ||q||^2 + ||c||^2 - 2 q.c with the corpus norms
    // precomputed and the dot SIMD-dispatched; the query norm is a
    // shared constant so ranking drops it.
    std::vector<std::pair<float, uint32_t>> ranked(survivors.size());
    for (size_t i = 0; i < survivors.size(); ++i) {
        uint32_t c = survivors[i];
        float d = norms_.at(c, 0) -
                  2.0f * dot(query_vec.data(), vectors_.row(c),
                             vectors_.cols());
        ranked[i] = {d, c};
    }
    // (distance, id) is a strict total order, so the selected set is a
    // deterministic function of the vectors alone.
    std::nth_element(ranked.begin(), ranked.begin() + shortlist_size,
                     ranked.end());
    std::vector<uint32_t> out(shortlist_size);
    for (size_t i = 0; i < shortlist_size; ++i)
        out[i] = ranked[i].second;
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<uint32_t>
CoarseIndex::shortlistScored(const CoarseScorer &scorer,
                             const std::vector<uint32_t> &survivors,
                             size_t shortlist_size) const
{
    if (shortlist_size == 0 || survivors.size() <= shortlist_size)
        return survivors;
    CEGMA_TRACE_SCOPE_CAT("retrieval.shortlist", "retrieval");
    assert(modelAware_);

    // Negated score so the (key, id) pair orders best-first under the
    // same ascending strict total order the distance path uses — the
    // selected set is a deterministic function of the descriptors.
    std::vector<std::pair<float, uint32_t>> ranked(survivors.size());
    parallelFor(0, survivors.size(), 64, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            uint32_t c = survivors[i];
            ranked[i] = {-scorer(vectors_.row(c), vectors_.cols()), c};
        }
    });
    std::nth_element(ranked.begin(), ranked.begin() + shortlist_size,
                     ranked.end());
    std::vector<uint32_t> out(shortlist_size);
    for (size_t i = 0; i < shortlist_size; ++i)
        out[i] = ranked[i].second;
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace cegma
