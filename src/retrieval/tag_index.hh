/**
 * @file
 * Stage 1 of the retrieval cascade: an inverted index over canonical
 * WL signatures (the software analogue of the EMF's content tags).
 *
 * `wlRefine` produces *cross-graph canonical* 64-bit signatures: equal
 * signatures mean isomorphic depth-l neighborhoods even for nodes in
 * different graphs (graph/wl_refine.hh). A graph's level-l *tag set* —
 * its distinct depth-l signatures — is therefore a cheap structural
 * sketch, and tag-set overlap is a lower-bound style filter for clone
 * search: a query that perturbs k edges of a corpus graph disturbs only
 * the l-hop neighborhoods of the touched endpoints, so the clone keeps
 * almost all of the query's tags while unrelated graphs share few.
 *
 * The index is content-keyed like the memo layer: tags depend only on
 * graph structure + labels, never on a model, so one index serves every
 * model. Query cost is O(sum of posting lengths of the query's tags)
 * increments into a per-query counter array — independent of the GMN,
 * and in practice orders of magnitude below one exact pair score.
 */

#ifndef CEGMA_RETRIEVAL_TAG_INDEX_HH
#define CEGMA_RETRIEVAL_TAG_INDEX_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hh"

namespace cegma {

/** The distinct level-`level` WL signatures of `g`, sorted. */
std::vector<uint64_t> wlTagSet(const Graph &g, unsigned level);

/**
 * Inverted index: WL tag -> posting list of corpus graph ids. Built
 * once at corpus load (parallel tag extraction, serial inversion);
 * immutable and thread-safe afterwards.
 */
class TagIndex
{
  public:
    /** Build over `corpus` at WL depth `level`. */
    void build(const std::vector<Graph> &corpus, unsigned level);

    /**
     * Candidates sharing at least `ceil(min_overlap * |queryTags|)`
     * tags with `query`, ascending by corpus id. `min_overlap` <= 0
     * (or an empty tag set) keeps everyone — the filter only ever
     * *prunes*, it never invents candidates.
     *
     * Thread-safe for concurrent queries (the scratch counter array is
     * call-local).
     */
    std::vector<uint32_t> survivors(const Graph &query,
                                    double min_overlap) const;

    /** WL depth the index was built at. */
    unsigned level() const { return level_; }

    /** Number of distinct tags across the corpus. */
    size_t numTags() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

    /** Total posting entries (sum of per-graph distinct tag counts). */
    size_t numPostings() const { return postings_.size(); }

    /** Corpus size the index covers. */
    size_t corpusSize() const { return corpusSize_; }

    /** Approximate resident bytes of the index. */
    size_t bytes() const;

  private:
    unsigned level_ = 0;
    size_t corpusSize_ = 0;
    std::unordered_map<uint64_t, uint32_t> slotOf_; ///< tag -> slot
    std::vector<uint32_t> offsets_;  ///< CSR offsets, numTags()+1
    std::vector<uint32_t> postings_; ///< graph ids, grouped by slot
};

} // namespace cegma

#endif // CEGMA_RETRIEVAL_TAG_INDEX_HH
