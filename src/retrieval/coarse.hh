/**
 * @file
 * Stage 2 of the retrieval cascade: a coarse shortlist over pooled
 * per-graph embedding chains.
 *
 * The memo pipeline already produces each graph's layer-embedding
 * chain once (gmn/memo.hh); pooling every layer's node features to a
 * mean vector and concatenating gives a compact per-graph vector —
 * (numLayers + 1) x nodeDim floats instead of the full chain's
 * numNodes x that — whose L2 distance tracks the exact GMN score well
 * enough to rank a shortlist. Corpus vectors are computed once at
 * index build and stored in one flat matrix; a query costs one pooled
 * chain plus `|survivors|` dot-free squared-distance sweeps.
 *
 * When the model decomposes its exact head per graph
 * (`GmnModel::coarseDim() > 0`, e.g.\ SimGNN's NTN over projected
 * readouts), the index instead stores the model's own coarse
 * descriptors and ranks with the model's query-conditioned
 * `CoarseScorer` — the model's head resolves score differences at
 * noise level that no generic embedding distance can, which is what
 * the recall floor of the CI gate requires.
 *
 * GMN-Li has no partner-independent chain (cross feedback), so
 * `GmnModel::graphEmbedding` returns null there and the stage falls
 * back to a model-free WL feature sketch: every canonical signature
 * hashes to a bucket and a sign, node counts accumulate, and clones —
 * which share almost all depth-l neighborhoods — land close in sketch
 * space. The sketch is content-keyed, so it never needs the model.
 */

#ifndef CEGMA_RETRIEVAL_COARSE_HH
#define CEGMA_RETRIEVAL_COARSE_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "tensor/matrix.hh"

namespace cegma {

class CoarseScorer;
class GmnModel;

/**
 * Model-free WL feature sketch of `g`: signatures at every level up to
 * `level` hash into `dim` signed buckets (one count per node per
 * level). Deterministic; equal for isomorphic graphs.
 */
std::vector<float> wlSketch(const Graph &g, unsigned level, unsigned dim);

/**
 * Coarse vector of `g` under `model`: the pooled embedding chain when
 * the model has one, else the WL sketch at `sketch_level`/`sketch_dim`.
 * Chain pooling goes through the model's memo cache when wired, so
 * corpus-index builds warm the same entries exact scoring reuses.
 */
std::vector<float> coarseVector(const Graph &g, const GmnModel &model,
                                unsigned sketch_level,
                                unsigned sketch_dim);

/**
 * The corpus-side store of coarse vectors plus the shortlist kernel.
 * Built once at corpus load; immutable and thread-safe afterwards.
 */
class CoarseIndex
{
  public:
    /** Compute and store one vector per corpus graph (parallel). */
    void build(const std::vector<Graph> &corpus, const GmnModel &model,
               unsigned sketch_level, unsigned sketch_dim);

    /**
     * The `shortlist_size` survivors closest to `query_vec` in squared
     * L2 distance, ascending by corpus id. Ties break toward the lower
     * id, so the selected *set* is a deterministic function of the
     * vectors alone (thread-count independent). `shortlist_size` = 0
     * means unlimited: all survivors pass through.
     */
    std::vector<uint32_t>
    shortlist(const std::vector<float> &query_vec,
              const std::vector<uint32_t> &survivors,
              size_t shortlist_size) const;

    /**
     * Model-aware variant: the `shortlist_size` survivors with the
     * highest `scorer` value over their stored descriptors, ascending
     * by corpus id; ties break toward the lower id, 0 = unlimited.
     * Only valid when `modelAware()`.
     */
    std::vector<uint32_t>
    shortlistScored(const CoarseScorer &scorer,
                    const std::vector<uint32_t> &survivors,
                    size_t shortlist_size) const;

    /**
     * True when the rows are model coarse descriptors (the model
     * provides `coarseDim() > 0`) rather than generic pooled-chain /
     * sketch vectors; rank with `shortlistScored` then.
     */
    bool modelAware() const { return modelAware_; }

    size_t corpusSize() const { return vectors_.rows(); }
    size_t dim() const { return vectors_.cols(); }
    size_t bytes() const
    {
        return (vectors_.size() + norms_.size()) * sizeof(float);
    }

  private:
    Matrix vectors_; ///< corpusSize x dim, row g = coarse vector of g
    Matrix norms_;   ///< corpusSize x 1, squared L2 norm of each row
    bool modelAware_ = false;
};

} // namespace cegma

#endif // CEGMA_RETRIEVAL_COARSE_HH
