#include "retrieval/tag_index.hh"

#include <algorithm>
#include <cmath>

#include "common/parallel.hh"
#include "graph/wl_refine.hh"
#include "obs/trace.hh"

namespace cegma {

std::vector<uint64_t>
wlTagSet(const Graph &g, unsigned level)
{
    WlColoring wl = wlRefine(g, level);
    const std::vector<uint64_t> &sigs = wl.signatures.back();
    std::vector<uint64_t> tags(sigs.begin(), sigs.end());
    std::sort(tags.begin(), tags.end());
    tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
    return tags;
}

void
TagIndex::build(const std::vector<Graph> &corpus, unsigned level)
{
    CEGMA_TRACE_SCOPE_CAT("tagIndex.build", "retrieval");
    level_ = level;
    corpusSize_ = corpus.size();
    slotOf_.clear();
    offsets_.clear();
    postings_.clear();
    if (corpus.empty())
        return;

    // Per-graph tag extraction is the expensive part (one WL refine per
    // graph) and embarrassingly parallel; each slot is written by
    // exactly one chunk, so the result is thread-count independent.
    std::vector<std::vector<uint64_t>> tagSets(corpus.size());
    parallelFor(0, corpus.size(), 1, [&](size_t g0, size_t g1) {
        for (size_t g = g0; g < g1; ++g)
            tagSets[g] = wlTagSet(corpus[g], level);
    });

    // Serial inversion: assign slots in first-occurrence order (a
    // deterministic function of the corpus), count, then fill CSR.
    size_t total = 0;
    for (const auto &tags : tagSets)
        total += tags.size();
    std::vector<uint32_t> counts;
    for (const auto &tags : tagSets) {
        for (uint64_t tag : tags) {
            auto [it, inserted] = slotOf_.try_emplace(
                tag, static_cast<uint32_t>(counts.size()));
            if (inserted)
                counts.push_back(0);
            ++counts[it->second];
        }
    }
    offsets_.assign(counts.size() + 1, 0);
    for (size_t s = 0; s < counts.size(); ++s)
        offsets_[s + 1] = offsets_[s] + counts[s];
    postings_.resize(total);
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t g = 0; g < tagSets.size(); ++g) {
        for (uint64_t tag : tagSets[g]) {
            uint32_t slot = slotOf_.find(tag)->second;
            postings_[cursor[slot]++] = static_cast<uint32_t>(g);
        }
    }
}

std::vector<uint32_t>
TagIndex::survivors(const Graph &query, double min_overlap) const
{
    CEGMA_TRACE_SCOPE_CAT("retrieval.filter", "retrieval");
    std::vector<uint32_t> out;
    if (corpusSize_ == 0)
        return out;

    std::vector<uint64_t> tags = wlTagSet(query, level_);
    auto needed = static_cast<uint32_t>(std::ceil(
        std::max(min_overlap, 0.0) * static_cast<double>(tags.size())));
    if (needed == 0) {
        // Nothing to prune on: every candidate survives.
        out.resize(corpusSize_);
        for (size_t c = 0; c < corpusSize_; ++c)
            out[c] = static_cast<uint32_t>(c);
        return out;
    }

    // Count tag overlaps through the posting lists. The counter array
    // is corpus-sized but touched only along postings of the query's
    // tags; one increment per posting entry.
    std::vector<uint32_t> overlap(corpusSize_, 0);
    for (uint64_t tag : tags) {
        auto it = slotOf_.find(tag);
        if (it == slotOf_.end())
            continue;
        uint32_t slot = it->second;
        for (uint32_t p = offsets_[slot]; p < offsets_[slot + 1]; ++p)
            ++overlap[postings_[p]];
    }
    for (size_t c = 0; c < corpusSize_; ++c) {
        if (overlap[c] >= needed)
            out.push_back(static_cast<uint32_t>(c));
    }
    return out;
}

size_t
TagIndex::bytes() const
{
    // unordered_map nodes are roughly key+value+two pointers+hash.
    return slotOf_.size() * (sizeof(uint64_t) + sizeof(uint32_t) + 24) +
           offsets_.capacity() * sizeof(uint32_t) +
           postings_.capacity() * sizeof(uint32_t);
}

} // namespace cegma
