/**
 * @file
 * AVX2 implementations of the dispatched tensor kernels.
 *
 * Bit-identical to kernels_scalar.cc by construction: the same
 * operand groupings, separate mul/add instructions (this TU compiles
 * with -mavx2 but *not* -mfma, plus -ffp-contract=off, so no fused
 * multiply-add can change a rounding), and the same reduction tree —
 * the scalar `reduce8` is a transliteration of the extract / movehl /
 * shuffle sequence in `hsum8` below. All loads are unaligned-safe
 * (`loadu`); `Matrix` data is 64-byte aligned so full-tensor sweeps
 * stay line-aligned, but row pointers inherit only the alignment
 * `cols` provides.
 *
 * This file is only compiled when the toolchain targets x86-64 with
 * AVX2 available (CEGMA_HAVE_AVX2); callers gate on
 * `cpuSupportsAvx2()` at runtime.
 */

#include "tensor/kernels.hh"

#ifdef CEGMA_HAVE_AVX2

#include <immintrin.h>

namespace cegma {

namespace {

/** The fixed 8-lane tree: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)). */
inline float
hsum8(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi); // [l0+l4, l1+l5, l2+l6, l3+l7]
    __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s)); // [s0+s2, s1+s3]
    __m128 r = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x1));
    return _mm_cvtss_f32(r);
}

float
dotAvx2(const float *a, const float *b, size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm256_add_ps(
            acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                _mm256_loadu_ps(b + i)));
        acc1 = _mm256_add_ps(
            acc1, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                _mm256_loadu_ps(b + i + 8)));
        acc2 = _mm256_add_ps(
            acc2, _mm256_mul_ps(_mm256_loadu_ps(a + i + 16),
                                _mm256_loadu_ps(b + i + 16)));
        acc3 = _mm256_add_ps(
            acc3, _mm256_mul_ps(_mm256_loadu_ps(a + i + 24),
                                _mm256_loadu_ps(b + i + 24)));
    }
    // 8..31-element remainder drains into lane group 0 (as in scalar).
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_add_ps(
            acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                _mm256_loadu_ps(b + i)));
    }
    __m256 m = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                             _mm256_add_ps(acc2, acc3));
    float sum = hsum8(m);
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
ntRowAvx2(const float *arow, const float *b, size_t k, size_t j0,
          size_t j1, float *crow)
{
    for (size_t j = j0; j < j1; ++j)
        crow[j] = dotAvx2(arow, b + j * k, k);
}

void
quadAxpyAvx2(float *c, const float a[4], const float *b0,
             const float *b1, const float *b2, const float *b3,
             size_t n)
{
    const __m256 a0 = _mm256_set1_ps(a[0]);
    const __m256 a1 = _mm256_set1_ps(a[1]);
    const __m256 a2 = _mm256_set1_ps(a[2]);
    const __m256 a3 = _mm256_set1_ps(a[3]);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256 t01 = _mm256_add_ps(
            _mm256_mul_ps(a0, _mm256_loadu_ps(b0 + j)),
            _mm256_mul_ps(a1, _mm256_loadu_ps(b1 + j)));
        __m256 t23 = _mm256_add_ps(
            _mm256_mul_ps(a2, _mm256_loadu_ps(b2 + j)),
            _mm256_mul_ps(a3, _mm256_loadu_ps(b3 + j)));
        _mm256_storeu_ps(c + j,
                         _mm256_add_ps(_mm256_loadu_ps(c + j),
                                       _mm256_add_ps(t01, t23)));
    }
    for (; j < n; ++j) {
        float t01 = a[0] * b0[j] + a[1] * b1[j];
        float t23 = a[2] * b2[j] + a[3] * b3[j];
        c[j] += t01 + t23;
    }
}

void
axpyAvx2(float *c, float a, const float *b, size_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            c + j,
            _mm256_add_ps(_mm256_loadu_ps(c + j),
                          _mm256_mul_ps(av, _mm256_loadu_ps(b + j))));
    }
    for (; j < n; ++j)
        c[j] += a * b[j];
}

void
cosineScaleRowAvx2(float *s, float inv_x, const float *inv_y, size_t n)
{
    const __m256 ix = _mm256_set1_ps(inv_x);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            s + j,
            _mm256_mul_ps(
                _mm256_loadu_ps(s + j),
                _mm256_mul_ps(ix, _mm256_loadu_ps(inv_y + j))));
    }
    for (; j < n; ++j)
        s[j] *= inv_x * inv_y[j];
}

void
euclidFinishRowAvx2(float *s, float sq_x, const float *sq_y, size_t n)
{
    const __m256 two = _mm256_set1_ps(2.0f);
    const __m256 sx = _mm256_set1_ps(sq_x);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256 v = _mm256_sub_ps(
            _mm256_sub_ps(_mm256_mul_ps(two, _mm256_loadu_ps(s + j)),
                          sx),
            _mm256_loadu_ps(sq_y + j));
        _mm256_storeu_ps(s + j, v);
    }
    for (; j < n; ++j)
        s[j] = 2.0f * s[j] - sq_x - sq_y[j];
}

} // namespace

const TensorKernels kAvx2Kernels = {
    dotAvx2,  ntRowAvx2,          quadAxpyAvx2,
    axpyAvx2, cosineScaleRowAvx2, euclidFinishRowAvx2,
};

} // namespace cegma

#endif // CEGMA_HAVE_AVX2
