/**
 * @file
 * A minimal dense row-major float matrix plus the linear-algebra kernels
 * the GMN models need (GEMM, A*B^T, row norms, softmax, activations).
 *
 * This is the numeric substrate for the *functional* GMN reference; the
 * cycle-level simulator never touches these values, only their shapes.
 *
 * The kernels are cache-blocked and row-parallel over the shared
 * thread pool (common/parallel.hh). Chunk boundaries and per-row
 * reduction orders are fixed by the shapes alone, so every kernel is
 * bit-deterministic regardless of the thread count — the property the
 * WL-oracle/EMF duplicate machinery depends on.
 */

#ifndef CEGMA_TENSOR_MATRIX_HH
#define CEGMA_TENSOR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "tensor/workspace.hh"

namespace cegma {

class Rng;

/**
 * Dense row-major float matrix. Storage is 64-byte aligned and
 * recycled through the size-bucketed workspace pool
 * (tensor/workspace.hh), so the SIMD kernels' whole-tensor sweeps
 * start on a cache-line boundary and per-pair temporaries stop
 * hitting the OS allocator once the pool is warm.
 */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A zero-initialized rows x cols matrix. */
    Matrix(size_t rows, size_t cols);

    /** A rows x cols matrix with the given (row-major) contents. */
    Matrix(size_t rows, size_t cols, std::vector<float> data);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Pointer to the start of row r. */
    float *row(size_t r) { return data_.data() + r * cols_; }
    const float *row(size_t r) const { return data_.data() + r * cols_; }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to `v`. */
    void fill(float v);

    /** Fill with Xavier/Glorot-uniform values from `rng`. */
    void fillXavier(Rng &rng);

    /** Elementwise exact equality with another matrix. */
    bool equals(const Matrix &other) const;

    /** Elementwise approximate equality within `tol`. */
    bool approxEquals(const Matrix &other, float tol = 1e-5f) const;

    /** Rows r_a and r_b are bitwise identical. */
    bool rowsEqual(size_t r_a, size_t r_b) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    WorkspaceFloatVector data_;
};

/** C = A * B. Shapes: (m x k) * (k x n) -> (m x n). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n). */
Matrix matmulNT(const Matrix &a, const Matrix &b);

/** C = A + B (same shape). */
Matrix add(const Matrix &a, const Matrix &b);

/** Add row-vector `bias` (1 x n) to every row of `a` in place. */
void addBiasInPlace(Matrix &a, const Matrix &bias);

/** Horizontal concatenation [A | B | ...]; all must share row count. */
Matrix hconcat(const std::vector<const Matrix *> &parts);

/** In-place ReLU. */
void reluInPlace(Matrix &a);

/** In-place logistic sigmoid. */
void sigmoidInPlace(Matrix &a);

/** In-place tanh. */
void tanhInPlace(Matrix &a);

/** In-place row-wise softmax. */
void softmaxRowsInPlace(Matrix &a);

/** L2 norm of each row, as an (rows x 1) column. */
Matrix rowL2Norms(const Matrix &a);

/** Squared L2 norm of each row, as an (rows x 1) column. */
Matrix rowSquaredNorms(const Matrix &a);

/** Sum over rows -> (1 x cols) row vector. */
Matrix columnSums(const Matrix &a);

/** Mean over rows -> (1 x cols) row vector. */
Matrix columnMeans(const Matrix &a);

/** Transposed copy. */
Matrix transpose(const Matrix &a);

/**
 * Dot product of two equal-length float spans, dispatched to the
 * active SIMD level (common/simd.hh). Both levels use the same
 * 32-way lane-split accumulation order, so the result is bit-identical
 * whether the AVX2 or the scalar kernel ran.
 */
float dot(const float *a, const float *b, size_t n);

} // namespace cegma

#endif // CEGMA_TENSOR_MATRIX_HH
