/**
 * @file
 * The dispatched inner kernels behind the tensor / similarity hot
 * loops: one implementation per `SimdLevel`, selected at runtime
 * (common/simd.hh).
 *
 * Bit-identity contract (the repo's determinism bar): for every
 * kernel, the scalar and AVX2 implementations perform *the same*
 * floating-point operations on *the same* operand groupings —
 *
 *  - `dot` splits the reduction over 32 partial accumulators (four
 *    groups of eight lanes), drains the 8..31-element remainder into
 *    the first lane group, merges groups pairwise
 *    ((g0+g1) + (g2+g3), per lane), reduces the eight lanes with the
 *    fixed tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), and folds the
 *    final <8 tail serially — in both implementations;
 *  - the elementwise kernels use the same expression tree per element
 *    (lane width cannot change the bits of independent elements);
 *  - no implementation uses FMA contraction (the kernel TUs compile
 *    with -ffp-contract=off, and the AVX2 TU enables -mavx2 only).
 *
 * So `CEGMA_SIMD=avx2` and `CEGMA_SIMD=scalar` produce bit-identical
 * tensors everywhere, and the scalar path doubles as the oracle in
 * tests/simd_test.cc.
 *
 * One carve-out: NaN *payload* bits. x86 propagates the first NaN
 * operand's payload, and the compiler may legally commute scalar
 * multiplies and adds, so when two different NaNs meet (e.g. a
 * propagated input NaN against an inf-minus-inf "indefinite") the
 * surviving payload is codegen-dependent. The contract is therefore:
 * every finite and infinite value is bit-exact across levels, and a
 * cell is NaN under one level iff it is NaN under the other. Real
 * model tensors never contain NaN, so end-to-end outputs stay fully
 * bit-identical (the model grid in simd_test asserts exact equality).
 *
 * This header is internal to src/tensor and src/gmn; everything else
 * goes through the `Matrix` kernels (matrix.hh) or the similarity API.
 */

#ifndef CEGMA_TENSOR_KERNELS_HH
#define CEGMA_TENSOR_KERNELS_HH

#include <cstddef>

#include "common/simd.hh"

namespace cegma {

/** One SimdLevel's implementations of the inner kernels. */
struct TensorKernels
{
    /** Reduction: sum_i a[i] * b[i] (lane-split order, see above). */
    float (*dot)(const float *a, const float *b, size_t n);

    /**
     * A*B^T row sweep: crow[j] = dot(arow, b + j*k, k) for j in
     * [j0, j1). One indirect call covers a whole j-tile of a row.
     */
    void (*ntRow)(const float *arow, const float *b, size_t k,
                  size_t j0, size_t j1, float *crow);

    /**
     * GEMM quad update: c[j] += (a[0]*b0[j] + a[1]*b1[j]) +
     * (a[2]*b2[j] + a[3]*b3[j]) — four B rows per pass, the fixed
     * pairwise grouping in both implementations.
     */
    void (*quadAxpy)(float *c, const float a[4], const float *b0,
                     const float *b1, const float *b2, const float *b3,
                     size_t n);

    /** GEMM k-tail update: c[j] += a * b[j]. */
    void (*axpy)(float *c, float a, const float *b, size_t n);

    /** Cosine normalization: s[j] *= inv_x * inv_y[j]. */
    void (*cosineScaleRow)(float *s, float inv_x, const float *inv_y,
                           size_t n);

    /** Euclidean finish: s[j] = 2*s[j] - sq_x - sq_y[j]. */
    void (*euclidFinishRow)(float *s, float sq_x, const float *sq_y,
                            size_t n);
};

/** The kernel table of the *active* level (one relaxed load). */
const TensorKernels &tensorKernels();

/** The kernel table of an explicit level (tests, benches). */
const TensorKernels &tensorKernels(SimdLevel level);

/** The scalar reference table (always available). */
extern const TensorKernels kScalarKernels;

#ifdef CEGMA_HAVE_AVX2
/** The AVX2 table (gate behind `cpuSupportsAvx2()` before calling). */
extern const TensorKernels kAvx2Kernels;
#endif

} // namespace cegma

#endif // CEGMA_TENSOR_KERNELS_HH
