#include "tensor/workspace.hh"

#include <bit>
#include <cstdlib>
#include <new>
#include <string_view>

namespace cegma {

namespace {

void *alignedNew(std::size_t bytes)
{
    return ::operator new(bytes, std::align_val_t(WorkspacePool::kAlignment));
}

void alignedDelete(void *p) noexcept
{
    ::operator delete(p, std::align_val_t(WorkspacePool::kAlignment));
}

/**
 * Set by ~ThreadCache: tensor frees that happen *after* this thread's
 * cache was destroyed (e.g. from another thread_local's destructor)
 * must not resurrect it — they go straight to the shared pool.
 * Trivially destructible, so reading it at any point is safe.
 */
thread_local bool g_thread_cache_dead = false;

} // namespace

struct WorkspacePool::ThreadCache
{
    std::vector<void *> free[kNumBuckets];

    ~ThreadCache()
    {
        g_thread_cache_dead = true;
        WorkspacePool &pool = WorkspacePool::instance();
        for (int idx = 0; idx < kNumBuckets; ++idx) {
            for (void *p : free[idx])
                pool.parkShared(idx, p);
            free[idx].clear();
        }
    }
};

WorkspacePool::WorkspacePool() : sharedBudget_(256u << 20)
{
    const char *env = std::getenv("CEGMA_WORKSPACE");
    if (env != nullptr && std::string_view(env) == "off")
        enabled_ = false;
}

WorkspacePool &WorkspacePool::instance()
{
    // Leaked on purpose: worker threads flush their caches on exit,
    // which may happen after main() returns.
    static WorkspacePool *pool = new WorkspacePool;
    return *pool;
}

WorkspacePool::ThreadCache &WorkspacePool::threadCache()
{
    static thread_local ThreadCache cache;
    return cache;
}

int WorkspacePool::bucketIndex(std::size_t bytes) noexcept
{
    if (bytes <= kMinBucketBytes)
        return 0;
    // ceil(log2(bytes)) - log2(kMinBucketBytes)
    return std::bit_width(bytes - 1) - 6;
}

std::size_t WorkspacePool::bucketBytes(int idx) noexcept
{
    return kMinBucketBytes << idx;
}

void *WorkspacePool::popShared(int idx) noexcept
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (shared_[idx].empty())
        return nullptr;
    void *p = shared_[idx].back();
    shared_[idx].pop_back();
    sharedBytes_ -= bucketBytes(idx);
    return p;
}

void WorkspacePool::parkShared(int idx, void *p) noexcept
{
    const std::size_t bytes = bucketBytes(idx);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (sharedBytes_ + bytes <= sharedBudget_.load(std::memory_order_relaxed)) {
            shared_[idx].push_back(p);
            sharedBytes_ += bytes;
            return;
        }
    }
    cachedBytes_.fetch_sub(bytes, std::memory_order_relaxed);
    alignedDelete(p);
}

void *WorkspacePool::acquire(std::size_t bytes)
{
    if (!enabled_ || bytes > kMaxBucketBytes) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (bytes > kMaxBucketBytes)
            oversized_.fetch_add(1, std::memory_order_relaxed);
        return alignedNew(bytes);
    }
    const int idx = bucketIndex(bytes);
    if (!g_thread_cache_dead) {
        auto &list = threadCache().free[idx];
        if (!list.empty()) {
            void *p = list.back();
            list.pop_back();
            cachedBytes_.fetch_sub(bucketBytes(idx), std::memory_order_relaxed);
            hits_.fetch_add(1, std::memory_order_relaxed);
            return p;
        }
    }
    if (void *p = popShared(idx)) {
        cachedBytes_.fetch_sub(bucketBytes(idx), std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return p;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Allocate the full bucket so the block is recyclable for any
    // request that maps to the same bucket.
    return alignedNew(bucketBytes(idx));
}

void WorkspacePool::release(void *p, std::size_t bytes) noexcept
{
    if (p == nullptr)
        return;
    if (!enabled_ || bytes > kMaxBucketBytes) {
        alignedDelete(p);
        return;
    }
    const int idx = bucketIndex(bytes);
    cachedBytes_.fetch_add(bucketBytes(idx), std::memory_order_relaxed);
    if (!g_thread_cache_dead) {
        auto &list = threadCache().free[idx];
        if (list.size() < kThreadCacheBlocks) {
            list.push_back(p);
            return;
        }
    }
    parkShared(idx, p);
}

void WorkspacePool::setSharedBudgetBytes(std::size_t bytes)
{
    sharedBudget_.store(bytes, std::memory_order_relaxed);
    // Trim anything already parked beyond the new budget.
    std::vector<void *> evicted;
    std::size_t evictedBytes = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int idx = kNumBuckets - 1; idx >= 0 && sharedBytes_ > bytes; --idx) {
            while (!shared_[idx].empty() && sharedBytes_ > bytes) {
                evicted.push_back(shared_[idx].back());
                shared_[idx].pop_back();
                sharedBytes_ -= bucketBytes(idx);
                evictedBytes += bucketBytes(idx);
            }
        }
    }
    cachedBytes_.fetch_sub(evictedBytes, std::memory_order_relaxed);
    for (void *p : evicted)
        alignedDelete(p);
}

std::size_t WorkspacePool::sharedBudgetBytes() const
{
    return sharedBudget_.load(std::memory_order_relaxed);
}

WorkspaceStats WorkspacePool::stats() const
{
    WorkspaceStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.oversized = oversized_.load(std::memory_order_relaxed);
    s.cachedBytes = cachedBytes_.load(std::memory_order_relaxed);
    return s;
}

void WorkspacePool::drainThreadCache() noexcept
{
    if (g_thread_cache_dead)
        return;
    ThreadCache &cache = threadCache();
    for (int idx = 0; idx < kNumBuckets; ++idx) {
        for (void *p : cache.free[idx])
            parkShared(idx, p);
        cache.free[idx].clear();
    }
}

void WorkspacePool::trimShared() noexcept
{
    std::vector<void *> evicted;
    std::size_t evictedBytes = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int idx = 0; idx < kNumBuckets; ++idx) {
            for (void *p : shared_[idx]) {
                evicted.push_back(p);
                evictedBytes += bucketBytes(idx);
            }
            shared_[idx].clear();
        }
        sharedBytes_ = 0;
    }
    cachedBytes_.fetch_sub(evictedBytes, std::memory_order_relaxed);
    for (void *p : evicted)
        alignedDelete(p);
}

} // namespace cegma
