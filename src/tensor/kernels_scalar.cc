/**
 * @file
 * Scalar reference implementations of the dispatched tensor kernels —
 * the bit-exactness oracle for the AVX2 path.
 *
 * The accumulation structure deliberately mirrors the AVX2 kernels
 * lane for lane (see kernels.hh); this TU compiles with
 * -ffp-contract=off and auto-vectorization disabled so "scalar" means
 * scalar: one IEEE-754 operation per source expression, giving the
 * tests a SIMD-free oracle and the benches an honest baseline.
 */

#include "tensor/kernels.hh"

namespace cegma {

namespace {

/**
 * The fixed 8-lane reduction tree both levels share: pairs across the
 * 128-bit halves first (l0+l4 ...), then across quarters, then the
 * final pair — exactly the extract/movehl/shuffle sequence the AVX2
 * kernel performs.
 */
inline float
reduce8(const float lane[8])
{
    float s0 = lane[0] + lane[4];
    float s1 = lane[1] + lane[5];
    float s2 = lane[2] + lane[6];
    float s3 = lane[3] + lane[7];
    float t0 = s0 + s2;
    float t1 = s1 + s3;
    return t0 + t1;
}

float
dotScalar(const float *a, const float *b, size_t n)
{
    // Four groups of eight lanes: group g's lane r accumulates
    // elements i with i mod 32 == 8g + r.
    float acc[32] = {};
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        for (size_t g = 0; g < 4; ++g)
            for (size_t r = 0; r < 8; ++r)
                acc[8 * g + r] += a[i + 8 * g + r] * b[i + 8 * g + r];
    }
    // 8..31-element remainder drains into lane group 0.
    for (; i + 8 <= n; i += 8) {
        for (size_t r = 0; r < 8; ++r)
            acc[r] += a[i + r] * b[i + r];
    }
    // Pairwise group merge, per lane: (g0+g1) + (g2+g3).
    float lane[8];
    for (size_t r = 0; r < 8; ++r)
        lane[r] = (acc[r] + acc[8 + r]) + (acc[16 + r] + acc[24 + r]);
    float sum = reduce8(lane);
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
ntRowScalar(const float *arow, const float *b, size_t k, size_t j0,
            size_t j1, float *crow)
{
    for (size_t j = j0; j < j1; ++j)
        crow[j] = dotScalar(arow, b + j * k, k);
}

void
quadAxpyScalar(float *c, const float a[4], const float *b0,
               const float *b1, const float *b2, const float *b3,
               size_t n)
{
    for (size_t j = 0; j < n; ++j) {
        float t01 = a[0] * b0[j] + a[1] * b1[j];
        float t23 = a[2] * b2[j] + a[3] * b3[j];
        c[j] += t01 + t23;
    }
}

void
axpyScalar(float *c, float a, const float *b, size_t n)
{
    for (size_t j = 0; j < n; ++j)
        c[j] += a * b[j];
}

void
cosineScaleRowScalar(float *s, float inv_x, const float *inv_y,
                     size_t n)
{
    for (size_t j = 0; j < n; ++j)
        s[j] *= inv_x * inv_y[j];
}

void
euclidFinishRowScalar(float *s, float sq_x, const float *sq_y, size_t n)
{
    for (size_t j = 0; j < n; ++j)
        s[j] = 2.0f * s[j] - sq_x - sq_y[j];
}

} // namespace

const TensorKernels kScalarKernels = {
    dotScalar,        ntRowScalar,          quadAxpyScalar,
    axpyScalar,       cosineScaleRowScalar, euclidFinishRowScalar,
};

const TensorKernels &
tensorKernels(SimdLevel level)
{
#ifdef CEGMA_HAVE_AVX2
    if (level == SimdLevel::Avx2 && cpuSupportsAvx2())
        return kAvx2Kernels;
#else
    (void)level;
#endif
    return kScalarKernels;
}

const TensorKernels &
tensorKernels()
{
    return tensorKernels(simdLevel());
}

} // namespace cegma
