/**
 * @file
 * Size-bucketed workspace pool backing per-request / per-pair tensor
 * allocation (DESIGN.md §7e).
 *
 * The serving hot path allocates the same handful of tensor shapes
 * over and over — per-pair similarity matrices in
 * `GmnModel::forwardDetailed`, per-candidate head inputs in the
 * cascade's coarse scorer, per-batch score buffers. The PR-4 traces
 * show those allocations as visible spans. This pool turns the steady
 * state into pointer pops:
 *
 *   - requests are rounded up to power-of-two byte buckets
 *     (64 B .. 64 MiB); anything larger bypasses the pool entirely;
 *   - each thread keeps a small per-bucket free list (no locking);
 *   - thread overflow spills into one shared, byte-budgeted pool
 *     (`--workspace-mb`) guarded by a single mutex — it is only
 *     touched when a thread cache misses or overflows;
 *   - every block is 64-byte aligned, matching `AlignedAllocator`'s
 *     contract, so the SIMD kernels see identical alignment whether a
 *     block is fresh or recycled.
 *
 * Determinism: the pool hands out raw storage only; callers
 * (std::vector value-initialization, kernel writes) define every byte
 * read downstream, so recycling cannot change results — only where
 * the bytes live. `CEGMA_WORKSPACE=off` turns the pool into a
 * pass-through to plain aligned new/delete for A/B debugging.
 *
 * Telemetry: relaxed-atomic hit/miss/byte counters surface as
 * `workspace.{hits,misses,bytes}` gauges in the PR-4 registry (wired
 * by SearchService) and as `workspace.miss_rate` in
 * `bench_to_json --serving`.
 */

#ifndef CEGMA_TENSOR_WORKSPACE_HH
#define CEGMA_TENSOR_WORKSPACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cegma {

/** Point-in-time counters for the pool (all relaxed reads). */
struct WorkspaceStats
{
    uint64_t hits = 0;       ///< acquisitions served from a free list
    uint64_t misses = 0;     ///< acquisitions that hit the OS allocator
    uint64_t oversized = 0;  ///< bypasses (> kMaxBucketBytes), subset of misses
    uint64_t cachedBytes = 0; ///< bytes currently parked in free lists
};

/**
 * Process-wide size-bucketed allocation pool. Thread-safe; the
 * singleton is intentionally leaked so worker threads may release
 * blocks at any point during shutdown without static-destruction
 * ordering hazards (same reasoning as the ThreadPool singleton).
 */
class WorkspacePool
{
  public:
    static constexpr std::size_t kAlignment = 64;
    /** Smallest bucket: one cache line. */
    static constexpr std::size_t kMinBucketBytes = 64;
    /** Largest pooled bucket; bigger requests bypass the pool. */
    static constexpr std::size_t kMaxBucketBytes =
        static_cast<std::size_t>(1) << 26; // 64 MiB
    static constexpr int kNumBuckets = 21; // 2^6 .. 2^26
    /** Per-thread free-list depth per bucket before spilling. */
    static constexpr std::size_t kThreadCacheBlocks = 8;

    static WorkspacePool &instance();

    /**
     * A 64-byte aligned block of at least `bytes` bytes (never null
     * for bytes > 0; throws std::bad_alloc like operator new).
     */
    void *acquire(std::size_t bytes);

    /**
     * Return a block obtained from acquire(). `bytes` must be the
     * original request size (the allocator contract already hands it
     * back), so the bucket is recovered without a header.
     */
    void release(void *p, std::size_t bytes) noexcept;

    /** Cap on bytes parked in the *shared* pool (excess is freed). */
    void setSharedBudgetBytes(std::size_t bytes);
    std::size_t sharedBudgetBytes() const;

    WorkspaceStats stats() const;

    /** False when CEGMA_WORKSPACE=off pinned the pool to pass-through. */
    bool enabled() const { return enabled_; }

    /** Flush the calling thread's free lists into the shared pool. */
    void drainThreadCache() noexcept;
    /** Free every block parked in the shared pool (test hook). */
    void trimShared() noexcept;

    /** Bucket index for a request size (exposed for tests). */
    static int bucketIndex(std::size_t bytes) noexcept;
    /** Block size of bucket `idx`. */
    static std::size_t bucketBytes(int idx) noexcept;

  private:
    WorkspacePool();
    ~WorkspacePool() = delete; // leaked singleton

    struct ThreadCache;
    ThreadCache &threadCache();

    void *popShared(int idx) noexcept;
    /** Park in the shared pool if under budget; else free. */
    void parkShared(int idx, void *p) noexcept;

    bool enabled_ = true;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> oversized_{0};
    std::atomic<uint64_t> cachedBytes_{0};

    mutable std::mutex mutex_;
    std::vector<void *> shared_[kNumBuckets]; // guarded by mutex_
    std::size_t sharedBytes_ = 0;             // guarded by mutex_
    std::atomic<std::size_t> sharedBudget_;
};

/**
 * C++17 allocator routing through the WorkspacePool. Same alignment
 * guarantee as AlignedAllocator; drop-in for containers whose
 * lifetime is a request, a pair, or a batch.
 */
template <typename T, std::size_t Alignment = WorkspacePool::kAlignment>
struct PooledAllocator
{
    static_assert(Alignment >= alignof(T),
                  "alignment must not weaken the type's natural one");
    static_assert(Alignment <= WorkspacePool::kAlignment,
                  "the pool only guarantees 64-byte alignment");

    using value_type = T;

    PooledAllocator() noexcept = default;

    template <typename U>
    PooledAllocator(const PooledAllocator<U, Alignment> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = PooledAllocator<U, Alignment>;
    };

    T *allocate(std::size_t n)
    {
        if (n == 0)
            return nullptr;
        return static_cast<T *>(
            WorkspacePool::instance().acquire(n * sizeof(T)));
    }

    void deallocate(T *p, std::size_t n) noexcept
    {
        WorkspacePool::instance().release(p, n * sizeof(T));
    }

    friend bool operator==(const PooledAllocator &,
                           const PooledAllocator &) noexcept
    {
        return true;
    }

    friend bool operator!=(const PooledAllocator &,
                           const PooledAllocator &) noexcept
    {
        return false;
    }
};

/** The pool-backed, cache-line aligned buffer behind `Matrix`. */
using WorkspaceFloatVector = std::vector<float, PooledAllocator<float>>;

} // namespace cegma

#endif // CEGMA_TENSOR_WORKSPACE_HH
