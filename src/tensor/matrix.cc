#include "tensor/matrix.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    cegma_assert(data_.size() == rows * cols);
}

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::fillXavier(Rng &rng)
{
    if (rows_ == 0 || cols_ == 0)
        return;
    float limit = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
    for (auto &v : data_)
        v = static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * limit);
}

bool
Matrix::equals(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           std::memcmp(data_.data(), other.data_.data(),
                       data_.size() * sizeof(float)) == 0;
}

bool
Matrix::approxEquals(const Matrix &other, float tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

bool
Matrix::rowsEqual(size_t r_a, size_t r_b) const
{
    cegma_assert(r_a < rows_ && r_b < rows_);
    return std::memcmp(row(r_a), row(r_b), cols_ * sizeof(float)) == 0;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    cegma_assert(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    // ikj loop order: streams B rows, cache-friendly for row-major data.
    for (size_t i = 0; i < a.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

Matrix
matmulNT(const Matrix &a, const Matrix &b)
{
    cegma_assert(a.cols() == b.cols());
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows(); ++j)
            crow[j] = dot(arow, b.row(j), a.cols());
    }
    return c;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    cegma_assert(a.rows() == b.rows() && a.cols() == b.cols());
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    return c;
}

void
addBiasInPlace(Matrix &a, const Matrix &bias)
{
    cegma_assert(bias.rows() == 1 && bias.cols() == a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        float *row = a.row(i);
        for (size_t j = 0; j < a.cols(); ++j)
            row[j] += bias.at(0, j);
    }
}

Matrix
hconcat(const std::vector<const Matrix *> &parts)
{
    cegma_assert(!parts.empty());
    size_t rows = parts[0]->rows();
    size_t cols = 0;
    for (const Matrix *m : parts) {
        cegma_assert(m->rows() == rows);
        cols += m->cols();
    }
    Matrix out(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
        float *dst = out.row(i);
        for (const Matrix *m : parts) {
            std::memcpy(dst, m->row(i), m->cols() * sizeof(float));
            dst += m->cols();
        }
    }
    return out;
}

void
reluInPlace(Matrix &a)
{
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = a.data()[i] > 0.0f ? a.data()[i] : 0.0f;
}

void
sigmoidInPlace(Matrix &a)
{
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
}

void
tanhInPlace(Matrix &a)
{
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = std::tanh(a.data()[i]);
}

void
softmaxRowsInPlace(Matrix &a)
{
    for (size_t i = 0; i < a.rows(); ++i) {
        float *row = a.row(i);
        float mx = row[0];
        for (size_t j = 1; j < a.cols(); ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (size_t j = 0; j < a.cols(); ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        for (size_t j = 0; j < a.cols(); ++j)
            row[j] /= sum;
    }
}

Matrix
rowL2Norms(const Matrix &a)
{
    Matrix out(a.rows(), 1);
    for (size_t i = 0; i < a.rows(); ++i)
        out.at(i, 0) = std::sqrt(dot(a.row(i), a.row(i), a.cols()));
    return out;
}

Matrix
rowSquaredNorms(const Matrix &a)
{
    Matrix out(a.rows(), 1);
    for (size_t i = 0; i < a.rows(); ++i)
        out.at(i, 0) = dot(a.row(i), a.row(i), a.cols());
    return out;
}

Matrix
columnSums(const Matrix &a)
{
    Matrix out(1, a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *row = a.row(i);
        for (size_t j = 0; j < a.cols(); ++j)
            out.at(0, j) += row[j];
    }
    return out;
}

Matrix
columnMeans(const Matrix &a)
{
    Matrix out = columnSums(a);
    if (a.rows() == 0)
        return out;
    for (size_t j = 0; j < a.cols(); ++j)
        out.at(0, j) /= static_cast<float>(a.rows());
    return out;
}

Matrix
transpose(const Matrix &a)
{
    Matrix out(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            out.at(j, i) = a.at(i, j);
    return out;
}

float
dot(const float *a, const float *b, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace cegma
