#include "tensor/matrix.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "obs/trace.hh"
#include "tensor/kernels.hh"

namespace cegma {

namespace {

// Cache-blocking parameters, shared by the GEMM variants. A KC-row
// panel of B (KC * n floats in matmul) or a JB-row panel of B (JB *
// k floats in matmulNT) stays resident in L1/L2 while a chunk of A
// rows streams over it. Fixed constants keep the reduction order — and
// therefore the bit pattern of every output — independent of the
// machine and the thread count.
constexpr size_t kGemmKc = 256; ///< matmul: B panel rows per k-block
constexpr size_t kGemmNtJb = 64; ///< matmulNT: B rows per j-tile
constexpr size_t kTransposeTile = 32;
constexpr size_t kElemwiseGrain = size_t(1) << 16; ///< floats per chunk

} // namespace

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end())
{
    // Copies into the aligned buffer; this ctor is for tests and
    // fixtures, never a hot path.
    cegma_assert(data_.size() == rows * cols);
}

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::fillXavier(Rng &rng)
{
    if (rows_ == 0 || cols_ == 0)
        return;
    float limit = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
    for (auto &v : data_)
        v = static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * limit);
}

bool
Matrix::equals(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           std::memcmp(data_.data(), other.data_.data(),
                       data_.size() * sizeof(float)) == 0;
}

bool
Matrix::approxEquals(const Matrix &other, float tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

bool
Matrix::rowsEqual(size_t r_a, size_t r_b) const
{
    cegma_assert(r_a < rows_ && r_b < rows_);
    return std::memcmp(row(r_a), row(r_b), cols_ * sizeof(float)) == 0;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    CEGMA_TRACE_SCOPE_CAT("matmul", "kernel.gemm");
    cegma_assert(a.cols() == b.rows());
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    Matrix c(m, n);
    if (m == 0 || k == 0 || n == 0)
        return c;
    // Raw pointers by value: member access through the chunk lambda's
    // capture frame costs measurably in the hot loops.
    const float *ad = a.data();
    const float *bd = b.data();
    float *cd = c.data();
    const TensorKernels &kern = tensorKernels();
    size_t grain = grainForRows(m, 2 * k * n);
    parallelFor(0, m, grain, [=](size_t r0, size_t r1) {
        // ikj order inside each k-block: streams B rows (cache
        // friendly for row-major data) while the KC-row B panel stays
        // hot across the chunk's A rows. Four B rows per pass over the
        // C row quarters the C-row traffic; the per-pass update runs
        // in the dispatched quadAxpy kernel (8 lanes under AVX2).
        for (size_t k0 = 0; k0 < k; k0 += kGemmKc) {
            size_t k1 = std::min(k, k0 + kGemmKc);
            for (size_t i = r0; i < r1; ++i) {
                float *crow = cd + i * n;
                const float *arow = ad + i * k;
                size_t kk = k0;
                for (; kk + 4 <= k1; kk += 4) {
                    const float *a4 = arow + kk;
                    if (a4[0] == 0.0f && a4[1] == 0.0f &&
                        a4[2] == 0.0f && a4[3] == 0.0f) {
                        continue; // e.g. post-ReLU sparsity
                    }
                    const float *b0 = bd + kk * n;
                    kern.quadAxpy(crow, a4, b0, b0 + n, b0 + 2 * n,
                                  b0 + 3 * n, n);
                }
                for (; kk < k1; ++kk) {
                    float aik = arow[kk];
                    if (aik == 0.0f)
                        continue;
                    kern.axpy(crow, aik, bd + kk * n, n);
                }
            }
        }
    });
    return c;
}

Matrix
matmulNT(const Matrix &a, const Matrix &b)
{
    CEGMA_TRACE_SCOPE_CAT("matmulNT", "kernel.gemm");
    cegma_assert(a.cols() == b.cols());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    Matrix c(m, n);
    if (m == 0 || n == 0)
        return c;
    const float *ad = a.data();
    const float *bd = b.data();
    float *cd = c.data();
    const TensorKernels &kern = tensorKernels();
    size_t grain = grainForRows(m, 2 * k * n);
    parallelFor(0, m, grain, [=](size_t r0, size_t r1) {
        // j-tiling keeps a JB-row panel of B in cache across the
        // chunk's A rows.
        for (size_t j0 = 0; j0 < n; j0 += kGemmNtJb) {
            size_t j1 = std::min(n, j0 + kGemmNtJb);
            for (size_t i = r0; i < r1; ++i) {
                const float *arow = ad + i * k;
                float *crow = cd + i * n;
                kern.ntRow(arow, bd, k, j0, j1, crow);
            }
        }
    });
    return c;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    cegma_assert(a.rows() == b.rows() && a.cols() == b.cols());
    Matrix c(a.rows(), a.cols());
    parallelFor(0, a.size(), kElemwiseGrain, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            c.data()[i] = a.data()[i] + b.data()[i];
    });
    return c;
}

void
addBiasInPlace(Matrix &a, const Matrix &bias)
{
    cegma_assert(bias.rows() == 1 && bias.cols() == a.cols());
    const float *brow = bias.row(0);
    size_t grain = grainForRows(a.rows(), a.cols());
    parallelFor(0, a.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            float *row = a.row(i);
            for (size_t j = 0; j < a.cols(); ++j)
                row[j] += brow[j];
        }
    });
}

Matrix
hconcat(const std::vector<const Matrix *> &parts)
{
    cegma_assert(!parts.empty());
    size_t rows = parts[0]->rows();
    size_t cols = 0;
    for (const Matrix *m : parts) {
        cegma_assert(m->rows() == rows);
        cols += m->cols();
    }
    Matrix out(rows, cols);
    size_t grain = grainForRows(rows, cols);
    parallelFor(0, rows, grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            float *dst = out.row(i);
            for (const Matrix *m : parts) {
                std::memcpy(dst, m->row(i), m->cols() * sizeof(float));
                dst += m->cols();
            }
        }
    });
    return out;
}

void
reluInPlace(Matrix &a)
{
    float *data = a.data();
    parallelFor(0, a.size(), kElemwiseGrain, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            data[i] = data[i] > 0.0f ? data[i] : 0.0f;
    });
}

void
sigmoidInPlace(Matrix &a)
{
    float *data = a.data();
    parallelFor(0, a.size(), kElemwiseGrain / 8,
                [&](size_t i0, size_t i1) {
                    for (size_t i = i0; i < i1; ++i)
                        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
                });
}

void
tanhInPlace(Matrix &a)
{
    float *data = a.data();
    parallelFor(0, a.size(), kElemwiseGrain / 8,
                [&](size_t i0, size_t i1) {
                    for (size_t i = i0; i < i1; ++i)
                        data[i] = std::tanh(data[i]);
                });
}

void
softmaxRowsInPlace(Matrix &a)
{
    if (a.cols() == 0)
        return;
    size_t grain = grainForRows(a.rows(), 5 * a.cols());
    parallelFor(0, a.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            float *row = a.row(i);
            float mx = row[0];
            for (size_t j = 1; j < a.cols(); ++j)
                mx = std::max(mx, row[j]);
            float sum = 0.0f;
            for (size_t j = 0; j < a.cols(); ++j) {
                row[j] = std::exp(row[j] - mx);
                sum += row[j];
            }
            for (size_t j = 0; j < a.cols(); ++j)
                row[j] /= sum;
        }
    });
}

Matrix
rowL2Norms(const Matrix &a)
{
    Matrix out(a.rows(), 1);
    const TensorKernels &kern = tensorKernels();
    size_t grain = grainForRows(a.rows(), 2 * a.cols());
    parallelFor(0, a.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            out.at(i, 0) =
                std::sqrt(kern.dot(a.row(i), a.row(i), a.cols()));
        }
    });
    return out;
}

Matrix
rowSquaredNorms(const Matrix &a)
{
    Matrix out(a.rows(), 1);
    const TensorKernels &kern = tensorKernels();
    size_t grain = grainForRows(a.rows(), 2 * a.cols());
    parallelFor(0, a.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i)
            out.at(i, 0) = kern.dot(a.row(i), a.row(i), a.cols());
    });
    return out;
}

Matrix
columnSums(const Matrix &a)
{
    // Serial on purpose: a parallel row reduction would either need
    // per-thread partials (order depends on chunking) or atomics; the
    // op is O(rows * cols) light and never hot.
    Matrix out(1, a.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *row = a.row(i);
        for (size_t j = 0; j < a.cols(); ++j)
            out.at(0, j) += row[j];
    }
    return out;
}

Matrix
columnMeans(const Matrix &a)
{
    Matrix out = columnSums(a);
    if (a.rows() == 0)
        return out;
    for (size_t j = 0; j < a.cols(); ++j)
        out.at(0, j) /= static_cast<float>(a.rows());
    return out;
}

Matrix
transpose(const Matrix &a)
{
    Matrix out(a.cols(), a.rows());
    const size_t tb = kTransposeTile;
    size_t grain = std::max<size_t>(1, grainForRows(a.rows(), a.cols()));
    // Round the row grain up to a whole number of tiles so chunk
    // boundaries and tile boundaries coincide.
    grain = ((grain + tb - 1) / tb) * tb;
    parallelFor(0, a.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i0 = r0; i0 < r1; i0 += tb) {
            size_t i1 = std::min(r1, i0 + tb);
            for (size_t j0 = 0; j0 < a.cols(); j0 += tb) {
                size_t j1 = std::min(a.cols(), j0 + tb);
                for (size_t i = i0; i < i1; ++i)
                    for (size_t j = j0; j < j1; ++j)
                        out.at(j, i) = a.at(i, j);
            }
        }
    });
    return out;
}

float
dot(const float *a, const float *b, size_t n)
{
    return tensorKernels().dot(a, b, n);
}

} // namespace cegma
