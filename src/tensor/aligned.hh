/**
 * @file
 * A 64-byte (cache-line) aligned allocator and the aligned float
 * buffer type `Matrix` stores its data in.
 *
 * Why 64: the AVX2 kernels issue 32-byte vector loads, and a 64-byte
 * base guarantees a tensor never straddles a cache line at element 0 —
 * row pointers are only as aligned as `cols` allows, so the kernels
 * still use unaligned load instructions (free on aligned addresses,
 * correct on the rest), but whole-tensor sweeps stay line-aligned and
 * the L2-resident window tiles of window_sched start on line
 * boundaries. UBSan's alignment check stays happy because no code path
 * ever casts a float pointer to a wider vector type outside the
 * intrinsic load/store wrappers.
 */

#ifndef CEGMA_TENSOR_ALIGNED_HH
#define CEGMA_TENSOR_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace cegma {

/** Minimal C++17 allocator returning 64-byte aligned storage. */
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator
{
    static_assert(Alignment >= alignof(T),
                  "alignment must not weaken the type's natural one");
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");

    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Alignment>;
    };

    T *allocate(std::size_t n)
    {
        if (n == 0)
            return nullptr;
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Alignment)));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Alignment));
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }

    friend bool operator!=(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return false;
    }
};

/** The cache-line aligned buffer behind `Matrix`. */
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

} // namespace cegma

#endif // CEGMA_TENSOR_ALIGNED_HH
