/**
 * @file
 * A trainable Siamese GCN similarity model with contrastive loss —
 * the training counterpart to the inference-only models in gmn/
 * (the paper trains its GMNs on each dataset before profiling, §V-A).
 *
 * Architecture: a shared encoder (1 -> d, tanh), L GCN layers
 * (mean-aggregate then dense-tanh), sum pooling to a graph vector,
 * and the squared euclidean distance between the two graph vectors.
 * Training minimizes the contrastive loss
 *   L = d               for similar pairs
 *   L = max(0, m - d)   for dissimilar pairs
 * so similar pairs pull together and dissimilar pairs push apart to
 * the margin; classification thresholds the distance.
 */

#ifndef CEGMA_TRAIN_SIAMESE_HH
#define CEGMA_TRAIN_SIAMESE_HH

#include <vector>

#include "graph/dataset.hh"
#include "train/grad_layers.hh"

namespace cegma {

/** Training hyperparameters. */
struct TrainConfig
{
    unsigned numLayers = 3;
    size_t hiddenDim = 32;
    double learningRate = 5e-3;
    double margin = 4.0;
    unsigned epochs = 12;
};

/** Trainable Siamese GCN. */
class SiameseGcn
{
  public:
    SiameseGcn(const TrainConfig &config, uint64_t seed);

    /** Squared euclidean distance between graph embeddings. */
    double distance(const GraphPair &pair);

    /**
     * One training step on a pair: forward, contrastive loss,
     * backward, Adam update. @return the loss value.
     */
    double trainStep(const GraphPair &pair);

    /**
     * Classify by thresholding the distance at margin/2.
     * @return true if predicted similar.
     */
    bool predictSimilar(const GraphPair &pair);

    /** Accuracy over a set of pairs. */
    double accuracy(const std::vector<GraphPair> &pairs);

    const TrainConfig &config() const { return config_; }

  private:
    /** Per-side forward caches for backprop (shared weights run two
     *  forwards per pair, so caches live outside the layers). */
    struct SideCache
    {
        const Graph *graph = nullptr;
        Matrix encoderIn, encoderOut;
        std::vector<Matrix> layerIn;  ///< aggregated input per layer
        std::vector<Matrix> layerOut; ///< dense output per layer
        Matrix embedding;             ///< pooled graph vector
    };

    /** Forward one side, filling `cache`. */
    Matrix forwardSide(const Graph &g, SideCache &cache);

    /**
     * Backward one side from the embedding gradient. Dense-layer
     * parameter gradients accumulate in the shared layers.
     */
    void backwardSide(const SideCache &cache, const Matrix &d_embed);

    TrainConfig config_;
    DenseLayer encoder_;
    std::vector<DenseLayer> layers_;
    SideCache cacheT_, cacheQ_;
};

/** Outcome of a training run. */
struct TrainReport
{
    double initialAccuracy = 0.0;
    double finalAccuracy = 0.0;
    std::vector<double> epochLoss;
};

/**
 * Train on `train_pairs`, evaluate on `test_pairs` before and after.
 */
TrainReport trainSiamese(SiameseGcn &model,
                         const std::vector<GraphPair> &train_pairs,
                         const std::vector<GraphPair> &test_pairs);

} // namespace cegma

#endif // CEGMA_TRAIN_SIAMESE_HH
