/**
 * @file
 * Differentiable building blocks with hand-written backward passes
 * and an Adam optimizer — the minimal training substrate for fitting
 * GMN-style similarity models on the synthetic datasets (the paper
 * trains its models before profiling them, §V-A).
 *
 * Scope: dense layers with tanh/ReLU, mean graph aggregation, and
 * sum pooling. Gradients are validated against finite differences in
 * tests/train_test.cc.
 */

#ifndef CEGMA_TRAIN_GRAD_LAYERS_HH
#define CEGMA_TRAIN_GRAD_LAYERS_HH

#include <vector>

#include "graph/graph.hh"
#include "nn/linear.hh"
#include "tensor/matrix.hh"

namespace cegma {

class Rng;

/** Adam state for one parameter matrix. */
struct AdamState
{
    Matrix m; ///< first-moment estimate
    Matrix v; ///< second-moment estimate
    uint64_t step = 0;

    /** Lazily size the moments to match `param`. */
    void ensureShape(const Matrix &param);

    /**
     * One Adam update of `param` against `grad`.
     *
     * @param lr learning rate (beta1=0.9, beta2=0.999, eps=1e-8)
     */
    void update(Matrix &param, const Matrix &grad, double lr);
};

/**
 * A dense layer (y = act(x W + b)) that caches its forward operands
 * and accumulates parameter gradients on backward.
 */
class DenseLayer
{
  public:
    DenseLayer(size_t in_dim, size_t out_dim, Rng &rng,
               Activation act = Activation::Tanh);

    /** Forward; caches x and y for the subsequent backward. */
    Matrix forward(const Matrix &x);

    /**
     * Backward: consumes dL/dy for the most recent forward, adds to
     * the weight/bias gradient accumulators, returns dL/dx.
     */
    Matrix backward(const Matrix &dy);

    /**
     * Stateless backward with caller-provided forward caches —
     * required when one layer runs several forwards (e.g.\ both sides
     * of a Siamese model) before the backward pass.
     *
     * @param dy dL/dy
     * @param x the forward's input
     * @param y the forward's (post-activation) output
     */
    Matrix backwardWith(const Matrix &dy, const Matrix &x,
                        const Matrix &y);

    /** Zero the gradient accumulators. */
    void zeroGrad();

    /** Apply one Adam step and clear the accumulators. */
    void adamStep(double lr);

    size_t inDim() const { return weight_.rows(); }
    size_t outDim() const { return weight_.cols(); }

    Matrix &weight() { return weight_; }
    Matrix &bias() { return bias_; }
    const Matrix &weightGrad() const { return gradWeight_; }
    const Matrix &biasGrad() const { return gradBias_; }

  private:
    Activation act_;
    Matrix weight_, bias_;
    Matrix gradWeight_, gradBias_;
    Matrix cachedX_, cachedY_;
    AdamState adamW_, adamB_;
};

/**
 * Backward of aggregateMean (nn/gcn.hh): given dL/d(aggregated),
 * return dL/d(input features). The mean over {self + neighbors} is a
 * symmetric-normalized linear operator, so the backward distributes
 * each row's gradient to itself and its neighbors scaled by
 * 1/(deg+1) of the *destination* row.
 */
Matrix aggregateMeanBackward(const Graph &g, const Matrix &d_agg);

/** Sum pooling over nodes: (n x f) -> (1 x f). */
Matrix sumPool(const Matrix &x);

/** Backward of sumPool: broadcast dh to every node row. */
Matrix sumPoolBackward(const Matrix &dh, size_t num_nodes);

} // namespace cegma

#endif // CEGMA_TRAIN_GRAD_LAYERS_HH
