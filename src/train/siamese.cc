#include "train/siamese.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/gcn.hh"

namespace cegma {

namespace {

/**
 * Degree-augmented input features [label + 1, log1p(degree)]: with
 * mean aggregation, uniform inputs stay uniform through every layer,
 * so the degree column is what lets the network see structure.
 */
Matrix
trainableFeatures(const Graph &g)
{
    Matrix x(g.numNodes(), 2);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        x.at(v, 0) = static_cast<float>(g.label(v) + 1);
        x.at(v, 1) = std::log1p(static_cast<float>(g.degree(v)));
    }
    return x;
}

} // namespace

SiameseGcn::SiameseGcn(const TrainConfig &config, uint64_t seed)
    : config_(config),
      encoder_([&] {
          Rng rng(seed);
          return DenseLayer(2, config.hiddenDim, rng, Activation::Tanh);
      }())
{
    Rng rng(seed ^ 0xabcdef12u);
    for (unsigned l = 0; l < config_.numLayers; ++l) {
        layers_.emplace_back(config_.hiddenDim, config_.hiddenDim, rng,
                             Activation::Tanh);
    }
}

Matrix
SiameseGcn::forwardSide(const Graph &g, SideCache &cache)
{
    cache.graph = &g;
    cache.layerIn.clear();
    cache.layerOut.clear();

    cache.encoderIn = trainableFeatures(g);
    cache.encoderOut = encoder_.forward(cache.encoderIn);

    Matrix x = cache.encoderOut;
    for (DenseLayer &layer : layers_) {
        Matrix agg = aggregateMean(g, x, {});
        cache.layerIn.push_back(agg);
        x = layer.forward(agg);
        cache.layerOut.push_back(x);
    }
    cache.embedding = sumPool(x);
    return cache.embedding;
}

void
SiameseGcn::backwardSide(const SideCache &cache, const Matrix &d_embed)
{
    cegma_assert(cache.graph != nullptr);
    Matrix dx = sumPoolBackward(d_embed, cache.graph->numNodes());
    for (size_t l = layers_.size(); l > 0; --l) {
        Matrix d_agg = layers_[l - 1].backwardWith(
            dx, cache.layerIn[l - 1], cache.layerOut[l - 1]);
        dx = aggregateMeanBackward(*cache.graph, d_agg);
    }
    encoder_.backwardWith(dx, cache.encoderIn, cache.encoderOut);
}

double
SiameseGcn::distance(const GraphPair &pair)
{
    Matrix ht = forwardSide(pair.target, cacheT_);
    Matrix hq = forwardSide(pair.query, cacheQ_);
    double d = 0.0;
    for (size_t j = 0; j < ht.cols(); ++j) {
        double diff = ht.at(0, j) - hq.at(0, j);
        d += diff * diff;
    }
    return d;
}

double
SiameseGcn::trainStep(const GraphPair &pair)
{
    double d = distance(pair);

    // Contrastive loss and dL/dd.
    double loss, dl_dd;
    if (pair.similar) {
        loss = d;
        dl_dd = 1.0;
    } else if (d < config_.margin) {
        loss = config_.margin - d;
        dl_dd = -1.0;
    } else {
        return 0.0; // margin satisfied: no gradient
    }

    // dd/dht = 2 (ht - hq); dd/dhq = -2 (ht - hq).
    const Matrix &ht = cacheT_.embedding;
    const Matrix &hq = cacheQ_.embedding;
    Matrix d_ht(1, ht.cols()), d_hq(1, hq.cols());
    for (size_t j = 0; j < ht.cols(); ++j) {
        float diff = 2.0f * (ht.at(0, j) - hq.at(0, j)) *
                     static_cast<float>(dl_dd);
        d_ht.at(0, j) = diff;
        d_hq.at(0, j) = -diff;
    }

    backwardSide(cacheT_, d_ht);
    backwardSide(cacheQ_, d_hq);

    encoder_.adamStep(config_.learningRate);
    for (DenseLayer &layer : layers_)
        layer.adamStep(config_.learningRate);
    return loss;
}

bool
SiameseGcn::predictSimilar(const GraphPair &pair)
{
    return distance(pair) < config_.margin / 2.0;
}

double
SiameseGcn::accuracy(const std::vector<GraphPair> &pairs)
{
    if (pairs.empty())
        return 0.0;
    size_t correct = 0;
    for (const GraphPair &pair : pairs)
        correct += predictSimilar(pair) == pair.similar;
    return static_cast<double>(correct) / pairs.size();
}

TrainReport
trainSiamese(SiameseGcn &model, const std::vector<GraphPair> &train_pairs,
             const std::vector<GraphPair> &test_pairs)
{
    TrainReport report;
    report.initialAccuracy = model.accuracy(test_pairs);
    for (unsigned epoch = 0; epoch < model.config().epochs; ++epoch) {
        double total = 0.0;
        for (const GraphPair &pair : train_pairs)
            total += model.trainStep(pair);
        report.epochLoss.push_back(
            train_pairs.empty() ? 0.0 : total / train_pairs.size());
    }
    report.finalAccuracy = model.accuracy(test_pairs);
    return report;
}

} // namespace cegma
