#include "train/grad_layers.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "nn/gcn.hh"

namespace cegma {

void
AdamState::ensureShape(const Matrix &param)
{
    if (m.rows() != param.rows() || m.cols() != param.cols()) {
        m = Matrix(param.rows(), param.cols());
        v = Matrix(param.rows(), param.cols());
        step = 0;
    }
}

void
AdamState::update(Matrix &param, const Matrix &grad, double lr)
{
    constexpr double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    ensureShape(param);
    ++step;
    double bias1 = 1.0 - std::pow(beta1, static_cast<double>(step));
    double bias2 = 1.0 - std::pow(beta2, static_cast<double>(step));
    for (size_t i = 0; i < param.size(); ++i) {
        double g = grad.data()[i];
        double mi = beta1 * m.data()[i] + (1.0 - beta1) * g;
        double vi = beta2 * v.data()[i] + (1.0 - beta2) * g * g;
        m.data()[i] = static_cast<float>(mi);
        v.data()[i] = static_cast<float>(vi);
        double mhat = mi / bias1;
        double vhat = vi / bias2;
        param.data()[i] -=
            static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps));
    }
}

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Rng &rng,
                       Activation act)
    : act_(act), weight_(in_dim, out_dim), bias_(1, out_dim),
      gradWeight_(in_dim, out_dim), gradBias_(1, out_dim)
{
    weight_.fillXavier(rng);
}

Matrix
DenseLayer::forward(const Matrix &x)
{
    cegma_assert(x.cols() == weight_.rows());
    cachedX_ = x;
    Matrix y = matmul(x, weight_);
    addBiasInPlace(y, bias_);
    applyActivation(y, act_);
    cachedY_ = y;
    return y;
}

Matrix
DenseLayer::backward(const Matrix &dy)
{
    return backwardWith(dy, cachedX_, cachedY_);
}

Matrix
DenseLayer::backwardWith(const Matrix &dy, const Matrix &x,
                         const Matrix &y_out)
{
    cegma_assert(dy.rows() == y_out.rows() && dy.cols() == y_out.cols());
    cegma_assert(x.rows() == dy.rows() && x.cols() == weight_.rows());

    // Through the activation: dz = dy * act'(z), expressed via y.
    Matrix dz = dy;
    switch (act_) {
      case Activation::None:
        break;
      case Activation::Relu:
        for (size_t i = 0; i < dz.size(); ++i) {
            if (y_out.data()[i] <= 0.0f)
                dz.data()[i] = 0.0f;
        }
        break;
      case Activation::Sigmoid:
        for (size_t i = 0; i < dz.size(); ++i) {
            float y = y_out.data()[i];
            dz.data()[i] *= y * (1.0f - y);
        }
        break;
      case Activation::Tanh:
        for (size_t i = 0; i < dz.size(); ++i) {
            float y = y_out.data()[i];
            dz.data()[i] *= 1.0f - y * y;
        }
        break;
    }

    // Parameter gradients: dW = x^T dz, db = column sums of dz.
    Matrix dw = matmul(transpose(x), dz);
    for (size_t i = 0; i < dw.size(); ++i)
        gradWeight_.data()[i] += dw.data()[i];
    Matrix db = columnSums(dz);
    for (size_t i = 0; i < db.size(); ++i)
        gradBias_.data()[i] += db.data()[i];

    // Input gradient: dx = dz W^T.
    return matmulNT(dz, weight_);
}

void
DenseLayer::zeroGrad()
{
    gradWeight_.fill(0.0f);
    gradBias_.fill(0.0f);
}

void
DenseLayer::adamStep(double lr)
{
    adamW_.update(weight_, gradWeight_, lr);
    adamB_.update(bias_, gradBias_, lr);
    zeroGrad();
}

Matrix
aggregateMeanBackward(const Graph &g, const Matrix &d_agg)
{
    cegma_assert(d_agg.rows() == g.numNodes());
    const size_t f = d_agg.cols();
    Matrix dx(g.numNodes(), f);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        float inv = 1.0f / static_cast<float>(g.degree(v) + 1);
        const float *src = d_agg.row(v);
        // Self term.
        float *self = dx.row(v);
        for (size_t j = 0; j < f; ++j)
            self[j] += inv * src[j];
        // Neighbor terms: x_u contributed to agg_v with weight inv_v.
        for (NodeId u : g.neighbors(v)) {
            float *dst = dx.row(u);
            for (size_t j = 0; j < f; ++j)
                dst[j] += inv * src[j];
        }
    }
    return dx;
}

Matrix
sumPool(const Matrix &x)
{
    return columnSums(x);
}

Matrix
sumPoolBackward(const Matrix &dh, size_t num_nodes)
{
    cegma_assert(dh.rows() == 1);
    Matrix dx(num_nodes, dh.cols());
    for (size_t v = 0; v < num_nodes; ++v) {
        float *row = dx.row(v);
        for (size_t j = 0; j < dh.cols(); ++j)
            row[j] = dh.at(0, j);
    }
    return dx;
}

} // namespace cegma
