#include "graph/dataset.hh"

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "graph/generators.hh"

namespace cegma {

const std::vector<DatasetId> &
allDatasets()
{
    static const std::vector<DatasetId> ids = {
        DatasetId::AIDS, DatasetId::COLLAB, DatasetId::GITHUB,
        DatasetId::RD_B, DatasetId::RD_5K, DatasetId::RD_12K,
    };
    return ids;
}

const std::vector<DatasetId> &
extendedDatasets()
{
    static const std::vector<DatasetId> ids = {
        DatasetId::AIDS,  DatasetId::COLLAB, DatasetId::GITHUB,
        DatasetId::RD_B,  DatasetId::RD_5K,  DatasetId::RD_12K,
        DatasetId::BIN_CFG,
    };
    return ids;
}

const DatasetSpec &
datasetSpec(DatasetId id)
{
    static const DatasetSpec specs[] = {
        {DatasetId::AIDS, "AIDS", 15.69, 16.20, 200, "small-sized", true},
        {DatasetId::COLLAB, "COLLAB", 74.49, 2457.78, 500, "small-sized",
         false},
        {DatasetId::GITHUB, "GITHUB", 113.79, 234.64, 1273, "middle-sized",
         false},
        {DatasetId::RD_B, "RD-B", 429.63, 497.75, 200, "middle-sized",
         false},
        {DatasetId::RD_5K, "RD-5K", 508.52, 594.87, 500, "large-sized",
         false},
        {DatasetId::RD_12K, "RD-12K", 391.41, 456.89, 1193, "large-sized",
         false},
        // Beyond Table II: binary-function CFGs (the GMN binary-diff
        // deployment scenario). Sizes model stripped-binary functions
        // of a few dozen to a few hundred basic blocks.
        {DatasetId::BIN_CFG, "BIN-CFG", 92.0, 112.0, 600, "middle-sized",
         true},
    };
    for (const auto &spec : specs) {
        if (spec.id == id)
            return spec;
    }
    panic("unknown dataset id %d", static_cast<int>(id));
}

double
Dataset::measuredAvgNodes() const
{
    if (pairs.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &pair : pairs)
        total += pair.target.numNodes() + pair.query.numNodes();
    return total / (2.0 * static_cast<double>(pairs.size()));
}

double
Dataset::measuredAvgEdges() const
{
    if (pairs.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &pair : pairs)
        total += static_cast<double>(pair.target.numEdges()) +
                 static_cast<double>(pair.query.numEdges());
    return total / (2.0 * static_cast<double>(pairs.size()));
}

Graph
makeDatasetGraph(DatasetId id, NodeId n, Rng &rng)
{
    const DatasetSpec &spec = datasetSpec(id);
    double edge_ratio = spec.avgEdges / spec.avgNodes;
    auto target_edges = static_cast<uint64_t>(edge_ratio * n);
    switch (id) {
      case DatasetId::AIDS:
        return moleculeGraph(n, 12, rng);
      case DatasetId::COLLAB:
        return egoCollabGraph(n, target_edges, rng);
      case DatasetId::GITHUB:
        return sparseSocialGraph(n, target_edges, rng);
      case DatasetId::RD_B:
      case DatasetId::RD_5K:
      case DatasetId::RD_12K:
        return threadGraph(n, target_edges, rng);
      case DatasetId::BIN_CFG:
        return binaryCfgGraph(n, rng);
    }
    panic("unknown dataset id %d", static_cast<int>(id));
}

GraphPair
makePairFromOriginal(const Graph &original, bool similar, Rng &rng)
{
    GraphPair pair;
    pair.similar = similar;
    pair.target = original;
    pair.query = original.substituteEdges(similar ? 1 : 4, rng);
    return pair;
}

namespace {

/**
 * SplitMix64-style finalizer over (seed, salt, index): every graph of
 * a corpus gets its own decorrelated RNG stream, so generation can be
 * index-parallel and still produce the same bits at any thread count.
 */
uint64_t
deriveSeed(uint64_t seed, uint64_t salt, uint64_t index)
{
    uint64_t z = seed + salt + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

CloneSearchCorpus
makeCloneSearchCorpus(DatasetId base, uint32_t num_queries,
                      uint32_t num_candidates, uint64_t seed)
{
    const DatasetSpec &spec = datasetSpec(base);
    CloneSearchCorpus corpus;

    uint64_t mixed = seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<uint64_t>(base) + 0x517cc1b727220a95ULL;

    // The candidate database, generated once and reused across every
    // query (each candidate graph appears in num_queries pairs).
    // Per-graph derived RNG streams make generation embarrassingly
    // parallel — the retrieval benchmarks build 10^5–10^6 candidates,
    // where a single serial stream is minutes of setup — and each
    // graph's bits depend only on (seed, index), never on the thread
    // count or on how many graphs precede it.
    corpus.candidates.resize(num_candidates);
    corpus.candidateIds.resize(num_candidates);
    parallelFor(0, num_candidates, 1, [&](size_t c0, size_t c1) {
        for (size_t c = c0; c < c1; ++c) {
            // The derived stream seed doubles as the candidate's
            // stable 64-bit id: a pure function of (seed, base, index)
            // that survives insertion order and corpus growth, unlike
            // the dense vector index.
            uint64_t stream = deriveSeed(mixed, /*salt=*/1, c);
            corpus.candidateIds[c] = stream;
            Rng rng(stream);
            NodeId n = sampleGraphSize(spec.avgNodes, 0.35, 5, rng);
            corpus.candidates[c] = makeDatasetGraph(base, n, rng);
        }
    });

    // Each query is a 1-edge perturbation of one candidate (a "clone"
    // planted in the database), scanned against all of it.
    corpus.queries.resize(num_queries);
    parallelFor(0, num_queries, 1, [&](size_t q0, size_t q1) {
        for (size_t q = q0; q < q1; ++q) {
            Rng rng(deriveSeed(mixed, /*salt=*/2, q));
            corpus.queries[q] =
                corpus
                    .candidates[q %
                                std::max<uint32_t>(num_candidates, 1)]
                    .substituteEdges(1, rng);
        }
    });
    return corpus;
}

Dataset
makeCloneSearchDataset(DatasetId base, uint32_t num_queries,
                       uint32_t num_candidates, uint64_t seed)
{
    Dataset ds;
    ds.spec = datasetSpec(base);

    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(base, num_queries, num_candidates, seed);
    ds.pairs.reserve(static_cast<size_t>(num_queries) * num_candidates);
    for (uint32_t q = 0; q < num_queries; ++q) {
        for (uint32_t c = 0; c < num_candidates; ++c) {
            GraphPair pair;
            pair.target = corpus.candidates[c];
            pair.query = corpus.queries[q];
            pair.similar = c == q % std::max<uint32_t>(num_candidates, 1);
            ds.pairs.push_back(std::move(pair));
        }
    }
    return ds;
}

MutationPool
makeMutationPool(DatasetId base, uint32_t count, uint64_t seed)
{
    const DatasetSpec &spec = datasetSpec(base);
    uint64_t mixed = seed * 0x9e3779b97f4a7c15ULL +
                     static_cast<uint64_t>(base) + 0x517cc1b727220a95ULL;
    MutationPool pool;
    pool.graphs.resize(count);
    pool.ids.resize(count);
    // salt=3 keeps the pool's streams — and therefore its ids —
    // disjoint from the bootstrap candidates (salt=1) and queries
    // (salt=2) of the same (seed, base).
    parallelFor(0, count, 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            uint64_t stream = deriveSeed(mixed, /*salt=*/3, i);
            pool.ids[i] = stream;
            Rng rng(stream);
            NodeId n = sampleGraphSize(spec.avgNodes, 0.35, 5, rng);
            pool.graphs[i] = makeDatasetGraph(base, n, rng);
        }
    });
    return pool;
}

Dataset
makeDataset(DatasetId id, uint64_t seed, uint32_t max_pairs)
{
    const DatasetSpec &spec = datasetSpec(id);
    Dataset ds;
    ds.spec = spec;

    uint32_t count = spec.numTestPairs;
    if (max_pairs > 0)
        count = std::min(count, max_pairs);

    // Mix the dataset id into the seed so datasets are independent.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(id) + 1);

    ds.pairs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        NodeId n = sampleGraphSize(spec.avgNodes, 0.35, 5, rng);
        Graph original = makeDatasetGraph(id, n, rng);
        bool similar = (i % 2) == 0;
        ds.pairs.push_back(makePairFromOriginal(original, similar, rng));
    }
    return ds;
}

} // namespace cegma
