#include "graph/wl_refine.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "hash/xxhash.hh"

namespace cegma {

namespace {

/** Compact a signature vector into dense first-occurrence class ids. */
std::vector<uint32_t>
compact(const std::vector<uint64_t> &sigs, uint32_t &num_classes)
{
    std::unordered_map<uint64_t, uint32_t> ids;
    ids.reserve(sigs.size());
    std::vector<uint32_t> colors(sigs.size());
    for (size_t v = 0; v < sigs.size(); ++v) {
        auto it = ids.find(sigs[v]);
        if (it == ids.end()) {
            it = ids.emplace(sigs[v],
                             static_cast<uint32_t>(ids.size())).first;
        }
        colors[v] = it->second;
    }
    num_classes = static_cast<uint32_t>(ids.size());
    return colors;
}

} // namespace

double
WlColoring::duplicateFraction(size_t l) const
{
    cegma_assert(l < colors.size());
    size_t n = colors[l].size();
    if (n == 0)
        return 0.0;
    return 1.0 - static_cast<double>(numClasses[l]) / static_cast<double>(n);
}

WlColoring
wlRefine(const Graph &g, unsigned num_layers)
{
    WlColoring out;
    const NodeId n = g.numNodes();

    // Level 0: hash of the node label (canonical across graphs).
    std::vector<uint64_t> sigs(n);
    for (NodeId v = 0; v < n; ++v) {
        uint32_t label = g.label(v);
        uint32_t lo = xxhash32(&label, sizeof(label), 0x57ac0001u);
        uint32_t hi = xxhash32(&label, sizeof(label), 0x57ac0002u);
        sigs[v] = (static_cast<uint64_t>(hi) << 32) | lo;
    }
    out.signatures.push_back(sigs);
    out.numClasses.emplace_back();
    out.colors.push_back(compact(sigs, out.numClasses.back()));

    std::vector<uint64_t> next(n);
    std::vector<uint64_t> neigh;
    for (unsigned l = 0; l < num_layers; ++l) {
        const auto &cur = out.signatures.back();
        for (NodeId v = 0; v < n; ++v) {
            neigh.clear();
            for (NodeId u : g.neighbors(v))
                neigh.push_back(cur[u]);
            std::sort(neigh.begin(), neigh.end());

            XxHash32Stream lo(0xcefa0001u), hi(0xcefa0002u);
            lo.update(&cur[v], sizeof(uint64_t));
            hi.update(&cur[v], sizeof(uint64_t));
            if (!neigh.empty()) {
                lo.update(neigh.data(), neigh.size() * sizeof(uint64_t));
                hi.update(neigh.data(), neigh.size() * sizeof(uint64_t));
            }
            next[v] = (static_cast<uint64_t>(hi.digest()) << 32) |
                      lo.digest();
        }
        out.signatures.push_back(next);
        out.numClasses.emplace_back();
        out.colors.push_back(compact(next, out.numClasses.back()));
    }
    return out;
}

} // namespace cegma
