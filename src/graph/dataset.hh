/**
 * @file
 * The six evaluation datasets from Table II of the paper, realized as
 * seeded synthetic graph-pair collections, plus the paper's pair
 * construction protocol (substitute 1 edge for a similar pair, 4 edges
 * for a dissimilar pair; evaluate on the 10% test split).
 */

#ifndef CEGMA_GRAPH_DATASET_HH
#define CEGMA_GRAPH_DATASET_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace cegma {

class Rng;

/**
 * Dataset identifiers: the six Table II rows, plus families added by
 * this repository beyond the paper (currently BIN_CFG, the GMN binary
 * function-search workload).
 */
enum class DatasetId
{
    AIDS,
    COLLAB,
    GITHUB,
    RD_B,
    RD_5K,
    RD_12K,
    BIN_CFG,
};

/**
 * The paper's six datasets, in Table II presentation order. Table
 * reproductions and paper-comparison benches iterate this list, so it
 * deliberately excludes the repository's extra families.
 */
const std::vector<DatasetId> &allDatasets();

/** Every dataset family, including the extra-paper ones (BIN-CFG). */
const std::vector<DatasetId> &extendedDatasets();

/** Static description of a dataset (the Table II row). */
struct DatasetSpec
{
    DatasetId id;
    std::string name;       ///< Display name, e.g.\ "AIDS".
    double avgNodes;        ///< Paper's average node count.
    double avgEdges;        ///< Paper's average edge count.
    uint32_t numTestPairs;  ///< Paper's test-set pair count.
    std::string scale;      ///< small/middle/large-sized.
    bool labeled;           ///< Whether nodes carry type labels.
};

/** @return the Table II spec for `id`. */
const DatasetSpec &datasetSpec(DatasetId id);

/** A (target, query) graph pair with its similarity ground truth. */
struct GraphPair
{
    Graph target;
    Graph query;
    bool similar; ///< true if the query is the 1-edge perturbation.
};

/**
 * A non-owning (target, query) view over graphs that live elsewhere —
 * what the scoring hot paths take, so pairing a corpus graph with a
 * query never deep-copies either side. Converts implicitly from a
 * `GraphPair`, so owning call sites are unchanged. The referenced
 * graphs must outlive the view (it is a call-scope type, not storage).
 */
struct GraphPairView
{
    const Graph &target;
    const Graph &query;

    GraphPairView(const Graph &target_graph, const Graph &query_graph)
        : target(target_graph), query(query_graph)
    {
    }

    GraphPairView(const GraphPair &pair) // NOLINT(google-explicit-*)
        : target(pair.target), query(pair.query)
    {
    }
};

/** A realized dataset: spec plus generated test pairs. */
struct Dataset
{
    DatasetSpec spec;
    std::vector<GraphPair> pairs;

    /** Measured average node count across both sides of all pairs. */
    double measuredAvgNodes() const;

    /** Measured average edge count across both sides of all pairs. */
    double measuredAvgEdges() const;
};

/**
 * Build dataset `id` deterministically from `seed`.
 *
 * @param id which dataset
 * @param seed RNG seed (default reproduces the repository's tables)
 * @param max_pairs if nonzero, generate at most this many pairs
 *        (benchmarks use this to bound runtime; statistics are
 *        unaffected because pairs are i.i.d.)
 */
Dataset makeDataset(DatasetId id, uint64_t seed = 7,
                    uint32_t max_pairs = 0);

/** Generate one original graph for dataset `id` of size `n`. */
Graph makeDatasetGraph(DatasetId id, NodeId n, Rng &rng);

/**
 * Make a (target, query) pair from an original graph per the paper's
 * protocol: positive pairs substitute 1 edge, negative pairs 4.
 */
GraphPair makePairFromOriginal(const Graph &original, bool similar,
                               Rng &rng);

/**
 * The raw material of a clone-search evaluation: the candidate
 * database and the query graphs, *before* they are crossed into pairs.
 * The serving subsystem indexes `candidates` as the service corpus and
 * streams `queries` at it; `makeCloneSearchDataset` crosses the same
 * graphs into a pair grid, so a service run and a `runFunctional` run
 * over the dataset score bit-identical (graph, graph) combinations.
 */
struct CloneSearchCorpus
{
    std::vector<Graph> candidates;
    std::vector<Graph> queries; ///< query q perturbs candidate q % C

    /**
     * Stable 64-bit id of each candidate: the graph's derived
     * generator-stream seed, a pure function of (corpus seed, dataset,
     * index). Unlike a dense vector index, the id survives insertion
     * order and corpus growth — candidate c keeps the same id whether
     * the corpus was built with 10^3 or 10^6 entries, and whether or
     * not earlier entries were since removed. This is what tombstones
     * key on in the live-corpus subsystem.
     */
    std::vector<uint64_t> candidateIds;
};

/**
 * Generate the candidates/queries of the clone-search protocol
 * (`makeCloneSearchDataset` calls this, so the graphs match bit for
 * bit). Every graph draws from its own (seed, index)-derived RNG
 * stream, so generation is index-parallel over the shared pool and
 * the output is identical at any thread count — sized for the
 * retrieval benchmarks' 10^5–10^6-candidate corpora.
 */
CloneSearchCorpus makeCloneSearchCorpus(DatasetId base,
                                        uint32_t num_queries,
                                        uint32_t num_candidates,
                                        uint64_t seed = 7);

/**
 * A clone-search-style evaluation set over `base`'s graph family:
 * `num_queries` query graphs, each paired against the same
 * `num_candidates` candidate graphs (num_queries * num_candidates
 * pairs). Every graph therefore appears in many pairs — the serving
 * regime where cross-pair memoization pays — and the REDDIT-style
 * families additionally carry the paper's >90% duplicate-node ratios
 * (the Fig. 18 regime for the EMF-skipped similarity).
 */
Dataset makeCloneSearchDataset(DatasetId base, uint32_t num_queries,
                               uint32_t num_candidates,
                               uint64_t seed = 7);

/**
 * Fresh graphs to stream *into* a live corpus: same family and size
 * distribution as `makeCloneSearchCorpus(base, ...)` but drawn from a
 * disjoint salt, so pool ids never collide with the bootstrap
 * candidates' ids and a mutation schedule can insert pool entry i
 * under `ids[i]` deterministically.
 */
struct MutationPool
{
    std::vector<Graph> graphs;
    std::vector<uint64_t> ids; ///< stable ids, disjoint from corpus ids
};

/** Build a `count`-entry mutation pool for `base` (index-parallel). */
MutationPool makeMutationPool(DatasetId base, uint32_t count,
                              uint64_t seed = 7);

} // namespace cegma

#endif // CEGMA_GRAPH_DATASET_HH
