/**
 * @file
 * The undirected labeled graph type used throughout CEGMA, stored in
 * compressed sparse row (CSR) form with sorted adjacency lists.
 */

#ifndef CEGMA_GRAPH_GRAPH_HH
#define CEGMA_GRAPH_GRAPH_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace cegma {

using NodeId = uint32_t;

/** An undirected edge as an (unordered) node pair. */
using Edge = std::pair<NodeId, NodeId>;

/**
 * An undirected graph with optional integer node labels, in CSR form.
 *
 * Adjacency lists are sorted, self-loops are rejected, and parallel
 * edges are deduplicated at construction.
 */
class Graph
{
  public:
    /** An empty graph. */
    Graph() = default;

    /**
     * Build from an edge list.
     *
     * @param num_nodes node count; all edge endpoints must be < num_nodes
     * @param edges undirected edges (duplicates and self-loops dropped)
     * @param labels per-node labels; empty means all nodes labeled 0
     */
    static Graph fromEdges(NodeId num_nodes,
                           const std::vector<Edge> &edges,
                           std::vector<uint32_t> labels = {});

    /** @return node count. */
    NodeId numNodes() const { return numNodes_; }

    /** @return undirected edge count. */
    uint64_t numEdges() const { return neighbors_.size() / 2; }

    /** @return directed-arc count (2x undirected edges). */
    uint64_t numArcs() const { return neighbors_.size(); }

    /** @return degree of node v. */
    uint32_t degree(NodeId v) const;

    /** @return sorted neighbor list of node v. */
    std::span<const NodeId> neighbors(NodeId v) const;

    /** @return label of node v. */
    uint32_t label(NodeId v) const { return labels_[v]; }

    /** @return the full label vector. */
    const std::vector<uint32_t> &labels() const { return labels_; }

    /** @return number of distinct label values present. */
    uint32_t numDistinctLabels() const;

    /** @return true if the (u, v) edge exists. */
    bool hasEdge(NodeId u, NodeId v) const;

    /** @return the canonical (u < v) undirected edge list. */
    std::vector<Edge> edgeList() const;

    /**
     * Copy with `k` edges substituted: `k` random existing edges are
     * removed and `k` random non-edges added (the paper's similar /
     * dissimilar pair construction with n_positive=1 / n_negative=4).
     */
    Graph substituteEdges(uint32_t k, class Rng &rng) const;

  private:
    NodeId numNodes_ = 0;
    std::vector<uint64_t> rowOffsets_;
    std::vector<NodeId> neighbors_;
    std::vector<uint32_t> labels_;
};

} // namespace cegma

#endif // CEGMA_GRAPH_GRAPH_HH
