#include "graph/graph.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

namespace {

/** Pack an undirected edge into a canonical 64-bit key. */
uint64_t
edgeKey(NodeId u, NodeId v)
{
    if (u > v)
        std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
}

} // namespace

Graph
Graph::fromEdges(NodeId num_nodes, const std::vector<Edge> &edges,
                 std::vector<uint32_t> labels)
{
    Graph g;
    g.numNodes_ = num_nodes;
    if (labels.empty()) {
        g.labels_.assign(num_nodes, 0);
    } else {
        cegma_assert(labels.size() == num_nodes);
        g.labels_ = std::move(labels);
    }

    // Deduplicate, drop self loops, then build CSR via counting sort.
    std::unordered_set<uint64_t> seen;
    seen.reserve(edges.size() * 2);
    std::vector<Edge> unique;
    unique.reserve(edges.size());
    for (const auto &[u, v] : edges) {
        cegma_assert(u < num_nodes && v < num_nodes);
        if (u == v)
            continue;
        if (seen.insert(edgeKey(u, v)).second)
            unique.push_back({u, v});
    }

    std::vector<uint32_t> deg(num_nodes, 0);
    for (const auto &[u, v] : unique) {
        ++deg[u];
        ++deg[v];
    }
    g.rowOffsets_.assign(num_nodes + 1, 0);
    for (NodeId v = 0; v < num_nodes; ++v)
        g.rowOffsets_[v + 1] = g.rowOffsets_[v] + deg[v];
    g.neighbors_.resize(g.rowOffsets_[num_nodes]);

    std::vector<uint64_t> cursor(g.rowOffsets_.begin(),
                                 g.rowOffsets_.end() - 1);
    for (const auto &[u, v] : unique) {
        g.neighbors_[cursor[u]++] = v;
        g.neighbors_[cursor[v]++] = u;
    }
    for (NodeId v = 0; v < num_nodes; ++v) {
        std::sort(g.neighbors_.begin() + g.rowOffsets_[v],
                  g.neighbors_.begin() + g.rowOffsets_[v + 1]);
    }
    return g;
}

uint32_t
Graph::degree(NodeId v) const
{
    cegma_assert(v < numNodes_);
    return static_cast<uint32_t>(rowOffsets_[v + 1] - rowOffsets_[v]);
}

std::span<const NodeId>
Graph::neighbors(NodeId v) const
{
    cegma_assert(v < numNodes_);
    return {neighbors_.data() + rowOffsets_[v],
            neighbors_.data() + rowOffsets_[v + 1]};
}

uint32_t
Graph::numDistinctLabels() const
{
    std::unordered_set<uint32_t> distinct(labels_.begin(), labels_.end());
    return static_cast<uint32_t>(distinct.size());
}

bool
Graph::hasEdge(NodeId u, NodeId v) const
{
    auto ns = neighbors(u);
    return std::binary_search(ns.begin(), ns.end(), v);
}

std::vector<Edge>
Graph::edgeList() const
{
    std::vector<Edge> out;
    out.reserve(numEdges());
    for (NodeId u = 0; u < numNodes_; ++u) {
        for (NodeId v : neighbors(u)) {
            if (u < v)
                out.push_back({u, v});
        }
    }
    return out;
}

Graph
Graph::substituteEdges(uint32_t k, Rng &rng) const
{
    std::vector<Edge> edges = edgeList();
    if (edges.empty() || numNodes_ < 3)
        return *this;

    k = std::min<uint32_t>(k, static_cast<uint32_t>(edges.size()));

    // Remove k random existing edges.
    auto removed = rng.sampleDistinct(static_cast<uint32_t>(edges.size()), k);
    std::sort(removed.begin(), removed.end(), std::greater<>());
    for (uint32_t idx : removed) {
        edges[idx] = edges.back();
        edges.pop_back();
    }

    // Add k random non-edges (w.r.t. the current working edge set).
    std::unordered_set<uint64_t> present;
    present.reserve(edges.size() * 2);
    for (const auto &[u, v] : edges)
        present.insert((static_cast<uint64_t>(std::min(u, v)) << 32) |
                       std::max(u, v));
    uint32_t added = 0;
    uint32_t attempts = 0;
    const uint32_t max_attempts = 64 * (k + 1);
    while (added < k && attempts < max_attempts) {
        ++attempts;
        NodeId u = static_cast<NodeId>(rng.nextBounded(numNodes_));
        NodeId v = static_cast<NodeId>(rng.nextBounded(numNodes_));
        if (u == v)
            continue;
        uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                       std::max(u, v);
        if (present.insert(key).second) {
            edges.push_back({u, v});
            ++added;
        }
    }

    return fromEdges(numNodes_, edges, labels_);
}

} // namespace cegma
