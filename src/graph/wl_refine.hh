/**
 * @file
 * Weisfeiler-Lehman color refinement: the exact oracle for CEGMA's
 * duplicate nodes.
 *
 * A GNN layer computes a node's new feature from its own feature and the
 * multiset of its neighbors' features. With the deterministic,
 * class-ordered aggregation our nn layers use, two nodes get bitwise
 * identical layer-l features exactly when their depth-l WL colors match.
 * WL refinement therefore predicts the Elastic Matching Filter's
 * duplicate sets without running the floating-point model — and the
 * tests validate that prediction against the real forward pass.
 *
 * Colors are derived from XXHash signatures of (own color, sorted
 * neighbor colors), so they are *canonical across graphs*: equal
 * signatures mean isomorphic depth-l neighborhoods even for nodes in
 * different graphs (used by the shared-query search extension).
 */

#ifndef CEGMA_GRAPH_WL_REFINE_HH
#define CEGMA_GRAPH_WL_REFINE_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace cegma {

/** Per-layer WL coloring of one graph. */
struct WlColoring
{
    /**
     * signatures[l][v]: canonical 64-bit signature of node v's depth-l
     * neighborhood. Layer 0 encodes the node label only.
     */
    std::vector<std::vector<uint64_t>> signatures;

    /**
     * colors[l][v]: compact per-graph class id in [0, numClasses[l]),
     * assigned in first-occurrence order of the signatures.
     */
    std::vector<std::vector<uint32_t>> colors;

    /** numClasses[l]: number of distinct depth-l classes. */
    std::vector<uint32_t> numClasses;

    /** @return number of refinement levels stored (layers + 1). */
    size_t numLevels() const { return colors.size(); }

    /** Duplicate fraction at level l: 1 - numClasses/numNodes. */
    double duplicateFraction(size_t l) const;
};

/**
 * Run `num_layers` rounds of WL refinement on `g`.
 *
 * @param g the graph
 * @param num_layers rounds beyond the initial label coloring
 * @return coloring with num_layers + 1 levels
 */
WlColoring wlRefine(const Graph &g, unsigned num_layers);

} // namespace cegma

#endif // CEGMA_GRAPH_WL_REFINE_HH
