/**
 * @file
 * Batched graph pairs and the global adjacency matrix layout of
 * Figure 15: target-graph edges in the top-left block, query-graph
 * edges in the bottom-right block, and per-pair cross-graph matching
 * blocks along the diagonal of the top-right area.
 */

#ifndef CEGMA_GRAPH_BATCH_HH
#define CEGMA_GRAPH_BATCH_HH

#include <string>
#include <vector>

#include "graph/dataset.hh"

namespace cegma {

/** A batch of graph pairs (non-owning views into a dataset). */
struct GraphBatch
{
    std::vector<const GraphPair *> pairs;

    /** Total target-side nodes in the batch. */
    NodeId numTargetNodes() const;

    /** Total query-side nodes in the batch. */
    NodeId numQueryNodes() const;

    /** Total cross-graph matching pairs, sum of |V_t| * |V_q|. */
    uint64_t numMatchingPairs() const;
};

/** Split a dataset into consecutive batches of `batch_size` pairs. */
std::vector<GraphBatch> makeBatches(const Dataset &dataset,
                                    uint32_t batch_size);

/**
 * The Figure 15 global adjacency layout for one batch.
 *
 * Row/column index space: all pairs' target nodes first (in pair
 * order), then all pairs' query nodes. Target node `t` of pair `p`
 * sits at row targetOffset(p) + t; query node `q` at column
 * numTargetNodes() + queryOffset(p) + q.
 */
class GlobalAdjacency
{
  public:
    /** Build the layout for `batch`. */
    explicit GlobalAdjacency(const GraphBatch &batch);

    NodeId numTargetNodes() const { return numTarget_; }
    NodeId numQueryNodes() const { return numQuery_; }
    NodeId numGlobalNodes() const { return numTarget_ + numQuery_; }
    size_t numPairs() const { return batch_->pairs.size(); }

    /** Global row index of the first target node of pair p. */
    NodeId targetOffset(size_t p) const { return targetOffsets_[p]; }

    /** Offset of the first query node of pair p within the query block. */
    NodeId queryOffset(size_t p) const { return queryOffsets_[p]; }

    /** The pair that owns global target-block row `row`. */
    size_t pairOfTargetRow(NodeId row) const;

    /**
     * Render a dense 0/1 picture of the matrix for visualization
     * (Figure 26). `match_mask[p]` may mark target rows of pair p whose
     * matching was filtered by the EMF; those cells render as 0.
     *
     * @param match_mask optional per-pair bitmaps of *kept* target rows
     *        (empty = keep everything)
     * @return row-major numGlobalNodes^2 vector of 0/1 chars
     */
    std::vector<uint8_t> renderDense(
        const std::vector<std::vector<bool>> &match_mask = {}) const;

    /** ASCII-art rendering (one char per `cell` x `cell` block). */
    std::string renderAscii(
        const std::vector<std::vector<bool>> &match_mask = {},
        unsigned max_width = 96) const;

  private:
    const GraphBatch *batch_;
    NodeId numTarget_ = 0;
    NodeId numQuery_ = 0;
    std::vector<NodeId> targetOffsets_;
    std::vector<NodeId> queryOffsets_;
};

} // namespace cegma

#endif // CEGMA_GRAPH_BATCH_HH
