/**
 * @file
 * Seeded synthetic graph generators.
 *
 * These stand in for the paper's real datasets (Table II): each family
 * reproduces the topology statistics that drive CEGMA's mechanisms —
 * average node/edge counts (window scheduling, DRAM traffic) and the
 * prevalence of duplicate l-hop neighborhoods (EMF hit rate). See
 * DESIGN.md, "Substitutions".
 */

#ifndef CEGMA_GRAPH_GENERATORS_HH
#define CEGMA_GRAPH_GENERATORS_HH

#include "graph/graph.hh"

namespace cegma {

class Rng;

/** Erdős–Rényi G(n, m): n nodes, m uniformly random distinct edges. */
Graph erdosRenyiGnm(NodeId n, uint64_t m, Rng &rng);

/**
 * Barabási–Albert preferential attachment: each new node attaches to
 * `m_attach` existing nodes chosen proportionally to degree.
 */
Graph barabasiAlbert(NodeId n, uint32_t m_attach, Rng &rng);

/**
 * AIDS-style molecule graph: a labeled backbone tree with ring closures
 * and repeated functional groups. Labels follow a skewed atom-type
 * distribution (C-heavy), so duplicate leaves/groups are common but far
 * less prevalent than in the social-graph families.
 *
 * @param n node count
 * @param num_labels number of atom-type labels to draw from
 */
Graph moleculeGraph(NodeId n, uint32_t num_labels, Rng &rng);

/**
 * COLLAB-style ego-collaboration graph: a handful of overlapping
 * near-cliques around an ego node. Dense (average degree ~60); nodes
 * fully inside one clique are structurally equivalent, giving sizable
 * duplicate classes despite the density.
 *
 * @param n node count
 * @param target_edges approximate edge count to hit
 */
Graph egoCollabGraph(NodeId n, uint64_t target_edges, Rng &rng);

/**
 * GITHUB-style sparse social graph: preferential attachment backbone
 * plus a few random chords; power-law-ish degrees with many degree-1
 * followers (duplicates).
 */
Graph sparseSocialGraph(NodeId n, uint64_t target_edges, Rng &rng);

/**
 * REDDIT-style discussion-thread graph: a forest of reply threads —
 * a few hub posts with many leaf replies, hubs joined by a sparse
 * tree, plus a few chords. Edge count stays within a few percent of
 * node count (Table II: |E| ~ 1.16 |V|), and the many same-hub leaves
 * produce the >90% duplicate-matching ratios the paper reports.
 */
Graph threadGraph(NodeId n, uint64_t target_edges, Rng &rng);

/**
 * The random graphs used by the paper's scaling studies (Figs. 2 and
 * 25), "generated following [24]": sparse uniform random graphs with a
 * constant average degree, so duplicate local structure grows with n.
 *
 * @param n node count
 * @param avg_degree average node degree (default 2 — REDDIT-like
 *        sparsity; see EXPERIMENTS.md)
 */
Graph randomGraphLi(NodeId n, Rng &rng, double avg_degree = 2.0);

/**
 * Binary-function control-flow graph: the GMN paper's binary-diff /
 * vulnerability-search use case, where each graph is one function's
 * CFG of basic blocks. Synthesized by structured-program composition —
 * straight-line chains, if/else diamonds, and natural loops with back
 * edges, closed by a return block and a few goto/shared-epilogue
 * chords — so out-degrees stay <= 2 like compiler output. Nodes carry
 * instruction-class labels (ALU-heavy with memory/branch/call/return
 * classes following a skewed mix), giving the high duplicate-block
 * ratios that make binary corpora a strong dedup/memo workload.
 */
Graph binaryCfgGraph(NodeId n, Rng &rng);

/**
 * Sample a graph size around `avg` with lognormal spread `sigma`,
 * clamped to at least `min_n`.
 */
NodeId sampleGraphSize(double avg, double sigma, NodeId min_n, Rng &rng);

} // namespace cegma

#endif // CEGMA_GRAPH_GENERATORS_HH
