#include "graph/batch.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cegma {

NodeId
GraphBatch::numTargetNodes() const
{
    NodeId total = 0;
    for (const GraphPair *pair : pairs)
        total += pair->target.numNodes();
    return total;
}

NodeId
GraphBatch::numQueryNodes() const
{
    NodeId total = 0;
    for (const GraphPair *pair : pairs)
        total += pair->query.numNodes();
    return total;
}

uint64_t
GraphBatch::numMatchingPairs() const
{
    uint64_t total = 0;
    for (const GraphPair *pair : pairs) {
        total += static_cast<uint64_t>(pair->target.numNodes()) *
                 pair->query.numNodes();
    }
    return total;
}

std::vector<GraphBatch>
makeBatches(const Dataset &dataset, uint32_t batch_size)
{
    cegma_assert(batch_size > 0);
    std::vector<GraphBatch> batches;
    GraphBatch current;
    for (const GraphPair &pair : dataset.pairs) {
        current.pairs.push_back(&pair);
        if (current.pairs.size() == batch_size) {
            batches.push_back(std::move(current));
            current = GraphBatch{};
        }
    }
    if (!current.pairs.empty())
        batches.push_back(std::move(current));
    return batches;
}

GlobalAdjacency::GlobalAdjacency(const GraphBatch &batch)
    : batch_(&batch)
{
    for (const GraphPair *pair : batch.pairs) {
        targetOffsets_.push_back(numTarget_);
        queryOffsets_.push_back(numQuery_);
        numTarget_ += pair->target.numNodes();
        numQuery_ += pair->query.numNodes();
    }
}

size_t
GlobalAdjacency::pairOfTargetRow(NodeId row) const
{
    cegma_assert(row < numTarget_);
    auto it = std::upper_bound(targetOffsets_.begin(), targetOffsets_.end(),
                               row);
    return static_cast<size_t>(it - targetOffsets_.begin()) - 1;
}

std::vector<uint8_t>
GlobalAdjacency::renderDense(
    const std::vector<std::vector<bool>> &match_mask) const
{
    const NodeId total = numGlobalNodes();
    std::vector<uint8_t> pic(static_cast<size_t>(total) * total, 0);
    auto set = [&](NodeId r, NodeId c) {
        pic[static_cast<size_t>(r) * total + c] = 1;
    };

    for (size_t p = 0; p < batch_->pairs.size(); ++p) {
        const GraphPair &pair = *batch_->pairs[p];
        NodeId t_off = targetOffsets_[p];
        NodeId q_off = numTarget_ + queryOffsets_[p];

        // Intra-graph blocks (both triangles: adjacency is symmetric).
        for (NodeId u = 0; u < pair.target.numNodes(); ++u)
            for (NodeId v : pair.target.neighbors(u))
                set(t_off + u, t_off + v);
        for (NodeId u = 0; u < pair.query.numNodes(); ++u)
            for (NodeId v : pair.query.neighbors(u))
                set(q_off + u, q_off + v);

        // Cross-graph matching block: all-to-all, unless masked out.
        const std::vector<bool> *mask =
            p < match_mask.size() ? &match_mask[p] : nullptr;
        for (NodeId u = 0; u < pair.target.numNodes(); ++u) {
            if (mask && u < mask->size() && !(*mask)[u])
                continue;
            for (NodeId v = 0; v < pair.query.numNodes(); ++v)
                set(t_off + u, q_off + v);
        }
    }
    return pic;
}

std::string
GlobalAdjacency::renderAscii(
    const std::vector<std::vector<bool>> &match_mask,
    unsigned max_width) const
{
    const NodeId total = numGlobalNodes();
    std::vector<uint8_t> pic = renderDense(match_mask);
    unsigned cell = (total + max_width - 1) / max_width;
    cell = std::max(1u, cell);
    unsigned dim = (total + cell - 1) / cell;

    std::string out;
    out.reserve((dim + 1) * dim);
    for (unsigned br = 0; br < dim; ++br) {
        for (unsigned bc = 0; bc < dim; ++bc) {
            uint64_t ones = 0;
            for (NodeId r = br * cell;
                 r < std::min<NodeId>((br + 1) * cell, total); ++r) {
                for (NodeId c = bc * cell;
                     c < std::min<NodeId>((bc + 1) * cell, total); ++c) {
                    ones += pic[static_cast<size_t>(r) * total + c];
                }
            }
            double density = static_cast<double>(ones) /
                             (static_cast<double>(cell) * cell);
            char ch = ' ';
            if (density > 0.66) {
                ch = '#';
            } else if (density > 0.33) {
                ch = '+';
            } else if (density > 0.0) {
                ch = '.';
            }
            out.push_back(ch);
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace cegma
