#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

namespace {

uint64_t
edgeKey(NodeId u, NodeId v)
{
    if (u > v)
        std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
}

/** Add up to `count` random chords not already present. */
void
addRandomChords(std::vector<Edge> &edges, std::unordered_set<uint64_t> &seen,
                NodeId n, uint64_t count, Rng &rng)
{
    uint64_t added = 0;
    uint64_t attempts = 0;
    const uint64_t max_attempts = 32 * (count + 8);
    while (added < count && attempts < max_attempts) {
        ++attempts;
        NodeId u = static_cast<NodeId>(rng.nextBounded(n));
        NodeId v = static_cast<NodeId>(rng.nextBounded(n));
        if (u == v)
            continue;
        if (seen.insert(edgeKey(u, v)).second) {
            edges.push_back({u, v});
            ++added;
        }
    }
}

} // namespace

Graph
erdosRenyiGnm(NodeId n, uint64_t m, Rng &rng)
{
    cegma_assert(n >= 2);
    uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
    m = std::min(m, max_edges);
    std::vector<Edge> edges;
    edges.reserve(m);
    std::unordered_set<uint64_t> seen;
    seen.reserve(m * 2);
    addRandomChords(edges, seen, n, m, rng);
    return Graph::fromEdges(n, edges);
}

Graph
barabasiAlbert(NodeId n, uint32_t m_attach, Rng &rng)
{
    cegma_assert(n >= 2 && m_attach >= 1);
    std::vector<Edge> edges;
    std::unordered_set<uint64_t> seen;
    // endpoint multiset: each occurrence weights a node by its degree.
    std::vector<NodeId> endpoints;
    endpoints.push_back(0);
    for (NodeId v = 1; v < n; ++v) {
        uint32_t attach = std::min<uint32_t>(m_attach, v);
        std::unordered_set<NodeId> targets;
        uint32_t guard = 0;
        while (targets.size() < attach && guard < 16 * attach + 32) {
            ++guard;
            NodeId t = endpoints[rng.nextBounded(endpoints.size())];
            targets.insert(t);
        }
        for (NodeId t : targets) {
            if (seen.insert(edgeKey(v, t)).second) {
                edges.push_back({v, t});
                endpoints.push_back(v);
                endpoints.push_back(t);
            }
        }
    }
    return Graph::fromEdges(n, edges);
}

Graph
moleculeGraph(NodeId n, uint32_t num_labels, Rng &rng)
{
    cegma_assert(n >= 2 && num_labels >= 1);
    std::vector<Edge> edges;
    std::unordered_set<uint64_t> seen;
    std::vector<uint32_t> degree(n, 0);

    // Backbone: a random tree honoring a valence cap of 4. Half the
    // atoms attach to recent hubs (repeated methyl-like groups), which
    // produces the duplicate functional groups the paper observes in
    // molecular data.
    for (NodeId v = 1; v < n; ++v) {
        NodeId parent;
        uint32_t guard = 0;
        do {
            if (v >= 4 && rng.nextBool(0.5)) {
                // Attach to a recent backbone atom, forming sibling
                // leaves that share isomorphic neighborhoods.
                parent = static_cast<NodeId>(
                    v - 1 - rng.nextBounded(std::min<NodeId>(v, 4)));
            } else {
                parent = static_cast<NodeId>(rng.nextBounded(v));
            }
            ++guard;
        } while (degree[parent] >= 4 && guard < 64);
        edges.push_back({v, parent});
        seen.insert(edgeKey(v, parent));
        ++degree[v];
        ++degree[parent];
    }

    // Ring closures: roughly one extra edge per 12 atoms keeps
    // |E| close to |V| as in the AIDS statistics.
    addRandomChords(edges, seen, n, n / 12, rng);

    // Skewed atom-type labels: carbon-heavy, tail across the rest.
    std::vector<uint32_t> labels(n);
    for (NodeId v = 0; v < n; ++v) {
        double r = rng.nextDouble();
        if (r < 0.72) {
            labels[v] = 0; // "carbon"
        } else if (r < 0.86) {
            labels[v] = 1; // "oxygen"
        } else if (r < 0.96) {
            labels[v] = 2; // "nitrogen"
        } else {
            labels[v] = 3 + static_cast<uint32_t>(
                rng.nextBounded(std::max<uint32_t>(1, num_labels - 3)));
        }
    }
    return Graph::fromEdges(n, edges, std::move(labels));
}

Graph
egoCollabGraph(NodeId n, uint64_t target_edges, Rng &rng)
{
    cegma_assert(n >= 3);
    // Partition nodes (minus the ego, node 0) into 1-3 communities.
    uint32_t num_comms = 1 + static_cast<uint32_t>(rng.nextBounded(3));
    std::vector<uint32_t> comm(n, 0);
    for (NodeId v = 1; v < n; ++v)
        comm[v] = static_cast<uint32_t>(rng.nextBounded(num_comms));

    // Possible intra-community edges (ego joins every community).
    std::vector<uint64_t> comm_size(num_comms, 0);
    for (NodeId v = 1; v < n; ++v)
        ++comm_size[comm[v]];
    uint64_t possible = 0;
    for (uint64_t s : comm_size) {
        uint64_t members = s + 1; // +1 for the ego
        possible += members * (members - 1) / 2;
    }
    double p = possible ? std::min(1.0,
        static_cast<double>(target_edges) / static_cast<double>(possible))
        : 1.0;

    std::vector<Edge> edges;
    std::unordered_set<uint64_t> seen;
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            bool same = (u == 0) || (v == 0) || (comm[u] == comm[v]);
            if (same && rng.nextBool(p)) {
                if (seen.insert(edgeKey(u, v)).second)
                    edges.push_back({u, v});
            }
        }
    }
    return Graph::fromEdges(n, edges);
}

Graph
sparseSocialGraph(NodeId n, uint64_t target_edges, Rng &rng)
{
    cegma_assert(n >= 2);
    uint32_t attach = std::max<uint32_t>(
        1, static_cast<uint32_t>(target_edges / std::max<NodeId>(1, n)));
    Graph base = barabasiAlbert(n, attach, rng);
    std::vector<Edge> edges = base.edgeList();
    std::unordered_set<uint64_t> seen;
    for (const auto &[u, v] : edges)
        seen.insert(edgeKey(u, v));
    if (edges.size() < target_edges)
        addRandomChords(edges, seen, n, target_edges - edges.size(), rng);
    return Graph::fromEdges(n, edges);
}

Graph
threadGraph(NodeId n, uint64_t target_edges, Rng &rng)
{
    cegma_assert(n >= 2);
    // Hubs are original posts; the rest are replies attaching to a hub
    // (or an existing reply) with strong preference for big threads.
    NodeId num_hubs = std::max<NodeId>(2, n / 48);
    std::vector<Edge> edges;
    std::unordered_set<uint64_t> seen;

    // Hub backbone tree.
    for (NodeId h = 1; h < num_hubs; ++h) {
        NodeId parent = static_cast<NodeId>(rng.nextBounded(h));
        edges.push_back({h, parent});
        seen.insert(edgeKey(h, parent));
    }

    // Replies: preferential attachment restricted mostly to hubs so
    // hubs collect many structurally equivalent leaves.
    std::vector<NodeId> endpoints;
    for (NodeId h = 0; h < num_hubs; ++h)
        endpoints.push_back(h);
    for (NodeId v = num_hubs; v < n; ++v) {
        NodeId parent;
        if (rng.nextBool(0.85)) {
            parent = endpoints[rng.nextBounded(endpoints.size())];
        } else {
            parent = static_cast<NodeId>(rng.nextBounded(v));
        }
        if (parent == v)
            parent = static_cast<NodeId>(rng.nextBounded(num_hubs));
        edges.push_back({v, parent});
        seen.insert(edgeKey(v, parent));
        endpoints.push_back(parent); // rich-get-richer on thread size
    }

    if (edges.size() < target_edges)
        addRandomChords(edges, seen, n, target_edges - edges.size(), rng);
    return Graph::fromEdges(n, edges);
}

Graph
binaryCfgGraph(NodeId n, Rng &rng)
{
    cegma_assert(n >= 2);
    std::vector<Edge> edges;
    std::unordered_set<uint64_t> seen;
    std::vector<uint32_t> labels;
    labels.reserve(n);

    auto newBlock = [&labels](uint32_t label) {
        labels.push_back(label);
        return static_cast<NodeId>(labels.size() - 1);
    };
    auto addEdge = [&](NodeId u, NodeId v) {
        if (u != v && seen.insert(edgeKey(u, v)).second)
            edges.push_back({u, v});
    };
    // Instruction-class mix of straight-line blocks: ALU-heavy, then
    // loads/stores, call sites, and a tail of rarer classes (FP,
    // shifts, vector) — the skew that makes duplicate blocks common.
    auto bodyLabel = [&rng]() -> uint32_t {
        double r = rng.nextDouble();
        if (r < 0.55)
            return 0; // arithmetic/logic
        if (r < 0.80)
            return 1; // load/store
        if (r < 0.92)
            return 3; // call site
        return 5 + static_cast<uint32_t>(rng.nextBounded(3));
    };
    constexpr uint32_t kBranch = 2;
    constexpr uint32_t kReturn = 4;

    // Grow the function as a sequence of structured regions hanging off
    // a moving frontier block, exactly the way a compiler lays out
    // reducible control flow. Each region's guard keeps the block
    // count landing exactly on n.
    NodeId frontier = newBlock(bodyLabel()); // function entry
    while (static_cast<NodeId>(labels.size()) < n) {
        NodeId remaining = n - static_cast<NodeId>(labels.size());
        double r = rng.nextDouble();
        if (remaining >= 4 && r < 0.28) {
            // if/else diamond: cond -> {then, else} -> join.
            NodeId cond = newBlock(kBranch);
            NodeId then_b = newBlock(bodyLabel());
            NodeId else_b = newBlock(bodyLabel());
            NodeId join = newBlock(bodyLabel());
            addEdge(frontier, cond);
            addEdge(cond, then_b);
            addEdge(cond, else_b);
            addEdge(then_b, join);
            addEdge(else_b, join);
            frontier = join;
        } else if (remaining >= 3 && r < 0.48) {
            // Natural loop: header -> body [-> body2] -> header back
            // edge; execution leaves through the header.
            NodeId header = newBlock(kBranch);
            NodeId body = newBlock(bodyLabel());
            addEdge(frontier, header);
            addEdge(header, body);
            NodeId tail = body;
            if (remaining >= 4 && rng.nextBool(0.5)) {
                NodeId body2 = newBlock(bodyLabel());
                addEdge(tail, body2);
                tail = body2;
            }
            addEdge(tail, header);
            frontier = header;
        } else {
            NodeId block = newBlock(bodyLabel());
            addEdge(frontier, block);
            frontier = block;
        }
    }
    // The last frontier is the function's return block; a few chords
    // model early returns and shared epilogues (gotos).
    labels[frontier] = kReturn;
    addRandomChords(edges, seen, n, n / 24, rng);
    return Graph::fromEdges(n, edges, std::move(labels));
}

Graph
randomGraphLi(NodeId n, Rng &rng, double avg_degree)
{
    uint64_t m = static_cast<uint64_t>(
        std::llround(avg_degree * static_cast<double>(n) / 2.0));
    return erdosRenyiGnm(n, std::max<uint64_t>(1, m), rng);
}

NodeId
sampleGraphSize(double avg, double sigma, NodeId min_n, Rng &rng)
{
    // Lognormal around avg: E[exp(sigma Z - sigma^2/2)] = 1.
    double z = rng.nextGaussian();
    double v = avg * std::exp(sigma * z - sigma * sigma / 2.0);
    auto n = static_cast<NodeId>(std::llround(v));
    return std::max(min_n, n);
}

} // namespace cegma
