/**
 * @file
 * The live corpus: the graph store behind `SearchService`, supporting
 * online insert/remove under an epoch/snapshot scheme while queries
 * are in flight.
 *
 * Consistency model (MVCC by epoch stamping, no copying):
 *
 *   - Entries live in append-only *slots*. A slot is written fully
 *     (graph, tags, coarse descriptor) while still invisible, then a
 *     `flush()` publishes all staged mutations as one new epoch E by
 *     bumping the published-slot bound (inserts) and stamping
 *     tombstones `diedEpoch = E` (removes).
 *   - A `CorpusSnapshot` pins (epoch, bound) at a batch flush; slot s
 *     is visible to it iff `s < bound && epoch < diedEpoch(s)`. A
 *     snapshot therefore keeps seeing entries removed *after* it was
 *     pinned, and never sees entries inserted after — a consistent
 *     view with zero per-snapshot copying, O(mutations) per epoch.
 *   - Slot storage is chunked with a fixed directory of atomic chunk
 *     pointers, so readers never race a reallocation; published slot
 *     payloads are immutable until reclaimed.
 *   - An epoch E is *retired* (counted in `epochsReclaimed`) once a
 *     newer epoch exists and E's last pinned snapshot is released.
 *     Compaction then reclaims what no live or future snapshot can
 *     see: tombstoned slots' payloads and their posting entries are
 *     dropped once `diedEpoch <= min(pinned epochs)`. Because
 *     everything compaction touches is invisible to every possible
 *     snapshot, compaction timing can never change a query result.
 *
 * Index maintenance is incremental: inserts extend the WL-tag posting
 * lists and store a per-graph coarse descriptor computed at insert
 * (the descriptor callback runs the model's pool-parallel kernels);
 * removes are free at mutation time — tombstone filtering happens at
 * query time via the visibility check — and are physically erased by
 * periodic compaction when the dead-posting ratio passes the
 * configured threshold. Removal also fires a hook the service uses to
 * invalidate the removed graph's content-keyed memo entries (an
 * optimization, never a correctness requirement: memo entries replay
 * identical bits).
 *
 * Determinism: `shortlist` is a pure function of (snapshot-visible
 * entries, stored descriptor bits, query, knobs) — independent of
 * thread count, posting order, and compaction timing — so an offline
 * replay of the same mutation schedule reproduces every served
 * shortlist and score bit for bit.
 */

#ifndef CEGMA_CORPUS_LIVE_CORPUS_HH
#define CEGMA_CORPUS_LIVE_CORPUS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hh"
#include "retrieval/retrieval.hh"

namespace cegma {

class GmnModel;
struct CorpusStore;

/** Epoch value meaning "still alive". */
inline constexpr uint64_t kSlotAlive = ~0ull;

/** `ServeConfig.mutation`: knobs of the live-corpus subsystem. */
struct MutationConfig
{
    /**
     * Slot capacity: bootstrap size + total inserts over the corpus
     * lifetime must fit (slots are append-only; compaction reclaims
     * payload bytes, not slot numbers). The chunk directory is sized
     * from this at bootstrap, which is what lets readers walk slots
     * without any lock. Inserts past the cap are refused with a
     * warning. The default costs ~16 KiB of directory.
     */
    size_t maxSlots = 1u << 21;

    /**
     * Compact the posting lists (and reclaim dead slots' payloads)
     * when reclaimable postings exceed this fraction of all postings.
     * <= 0 compacts at every flush; >= 1 never compacts.
     */
    double compactTombstoneRatio = 0.25;
};

/**
 * An immutable view of the corpus at one epoch. Obtained from
 * `LiveCorpus::pin()`; releasing the last `shared_ptr` unpins the
 * epoch, which is what lets retired epochs be reclaimed. Cheap to
 * hold — a snapshot is (store ref, epoch, bound), not a copy.
 */
class CorpusSnapshot
{
  public:
    ~CorpusSnapshot();

    CorpusSnapshot(const CorpusSnapshot &) = delete;
    CorpusSnapshot &operator=(const CorpusSnapshot &) = delete;

    /** The epoch this snapshot observes. */
    uint64_t epoch() const { return epoch_; }

    /** Slots below this bound existed at pin time (visible or dead). */
    uint32_t bound() const { return bound_; }

    /** Number of entries visible to this snapshot. */
    size_t liveCount() const { return live_; }

    /** True when slot `s` is visible to this snapshot. */
    bool visible(uint32_t s) const;

    /** Graph in slot `s` (must be `visible(s)`). */
    const Graph &graph(uint32_t s) const;

    /** Stable 64-bit id of slot `s` (must be `visible(s)`). */
    uint64_t id(uint32_t s) const;

    /** All visible slots, ascending — the exhaustive candidate list. */
    std::vector<uint32_t> liveSlots() const;

    /** `id(s)` for every visible slot, ascending by slot. */
    std::vector<uint64_t> liveIds() const;

  private:
    friend class LiveCorpus;
    CorpusSnapshot(std::shared_ptr<CorpusStore> store, uint64_t epoch,
                   uint32_t bound, size_t live);

    std::shared_ptr<CorpusStore> store_;
    uint64_t epoch_;
    uint32_t bound_;
    size_t live_;
};

/**
 * The mutable corpus. Thread safety: any number of concurrent readers
 * (pin / snapshot access / shortlist) against any number of mutator
 * threads (insert / remove / flush; mutators serialize on an internal
 * mutex). Snapshots stay valid across — and are never changed by —
 * concurrent mutations, flushes, and compactions.
 */
class LiveCorpus
{
  public:
    using SnapshotPtr = std::shared_ptr<const CorpusSnapshot>;

    /**
     * Computes a graph's stored coarse descriptor at insert time,
     * writing into the slot's own vector (out-param so the callback
     * never materializes a per-graph temporary — it runs once per
     * corpus entry at bootstrap and once per insert).
     */
    using DescriptorFn =
        std::function<void(const Graph &, std::vector<float> &)>;

    /** Fired at flush for each removed graph (memo invalidation). */
    using RemovalHook = std::function<void(const Graph &)>;

    explicit LiveCorpus(const MutationConfig &config = {});
    ~LiveCorpus();

    /**
     * Turn on incremental retrieval-index maintenance (WL-tag postings
     * at `retrieval.tagLevel` plus per-slot coarse descriptors via
     * `descriptor`). `model_aware` selects ranking by the model's
     * `CoarseScorer` instead of L2 distance. Must be called before
     * `bootstrap`.
     */
    void enableIndex(const RetrievalConfig &retrieval, bool model_aware,
                     DescriptorFn descriptor);

    /** Install the removed-graph hook. Call before mutating. */
    void setRemovalHook(RemovalHook hook);

    /**
     * Load the initial corpus as epoch 0. Call exactly once, before
     * any concurrent use. Tags and descriptors are computed
     * index-parallel on the pool. `ids[i]` is `graphs[i]`'s stable id
     * (ids must be distinct); slot order is `graphs` order, so a
     * never-mutated corpus scores in exactly the legacy vector order.
     */
    void bootstrap(std::vector<Graph> graphs, std::vector<uint64_t> ids);

    /**
     * Stage an insert under stable id `id`. The entry becomes visible
     * at the next `flush()`. Fails (false) on a duplicate live/staged
     * id or when the slot cap is reached.
     */
    bool insert(uint64_t id, Graph g);

    /**
     * Stage a remove of `id`. Entries stay visible to already-pinned
     * snapshots; snapshots pinned after the next `flush()` no longer
     * see it. Fails (false) when `id` is not live/staged.
     */
    bool remove(uint64_t id);

    /**
     * Publish all staged mutations as one new epoch. No-op (returning
     * the current epoch) when nothing is staged. May trigger posting
     * compaction per `MutationConfig::compactTombstoneRatio`.
     *
     * @return the epoch now current
     */
    uint64_t flush();

    /** Pin the current epoch; release the pointer to unpin. */
    SnapshotPtr pin() const;

    /**
     * Stages 1–2 of the retrieval cascade against `snap`'s view: the
     * visible slots the exact stage must score, ascending. Requires
     * `enableIndex`. Pure function of (snapshot view, query, knobs);
     * see the file comment's determinism contract.
     */
    std::vector<uint32_t> shortlist(const CorpusSnapshot &snap,
                                    const Graph &query,
                                    const GmnModel &model,
                                    RetrievalStages *stages = nullptr) const;

    /**
     * Re-point the query-time cascade knobs (shortlist budget,
     * tag-prune threshold); build-time knobs are fixed. Not
     * thread-safe against concurrent `shortlist` calls.
     */
    void setQueryKnobs(size_t shortlist, double tag_prune);

    /// @name Stats (monotonic unless noted; safe to poll concurrently)
    /// @{
    uint64_t epoch() const;           ///< current epoch
    size_t liveCount() const;         ///< visible entries at current epoch
    uint32_t slotCount() const;       ///< published slots (incl. dead)
    uint64_t inserts() const;         ///< accepted inserts
    uint64_t removes() const;         ///< accepted removes
    size_t tombstones() const;        ///< dead slots awaiting reclaim
    uint64_t epochsReclaimed() const; ///< retired epochs
    uint64_t compactions() const;     ///< compaction passes run
    size_t indexBytes() const;        ///< postings + descriptors + tags
    /// @}

    const MutationConfig &config() const { return config_; }
    const RetrievalConfig &retrievalConfig() const { return retrieval_; }

  private:
    struct Index;

    void compactLocked(uint64_t min_retain);
    std::vector<uint32_t> survivorsLocked(const CorpusSnapshot &snap,
                                          const std::vector<uint64_t> &tags) const;

    MutationConfig config_;
    RetrievalConfig retrieval_;
    bool maintainIndex_ = false;
    bool modelAware_ = false;
    DescriptorFn descriptor_;
    RemovalHook removalHook_;

    std::shared_ptr<CorpusStore> store_;
    std::unique_ptr<Index> index_;
};

} // namespace cegma

#endif // CEGMA_CORPUS_LIVE_CORPUS_HH
