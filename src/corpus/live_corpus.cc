#include "corpus/live_corpus.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gmn/model.hh"
#include "obs/trace.hh"
#include "retrieval/coarse.hh"
#include "retrieval/tag_index.hh"
#include "tensor/matrix.hh"

namespace cegma {

/**
 * The slot store plus the epoch/pin registry. Shared (shared_ptr)
 * between the corpus and every outstanding snapshot, so a snapshot
 * stays safe even if it outlives the `LiveCorpus` that produced it.
 */
struct CorpusStore
{
    static constexpr uint32_t kChunkBits = 9;
    static constexpr uint32_t kChunkSize = 1u << kChunkBits;

    struct Slot
    {
        uint64_t id = 0;
        Graph graph;
        std::vector<uint64_t> tags;  ///< WL tag set (index enabled)
        std::vector<float> coarse;   ///< stored descriptor (")
        float coarseNorm = 0.0f;     ///< squared L2 of `coarse`
        /**
         * First epoch that does NOT see this slot; `kSlotAlive` while
         * live. Written exactly once (at the publishing flush) after
         * which the payload above is immutable until compaction —
         * which only runs once no snapshot can reach the slot.
         */
        std::atomic<uint64_t> diedEpoch{kSlotAlive};
        bool payloadFreed = false; ///< mutator-only (compaction state)
    };

    struct Chunk
    {
        std::array<Slot, kChunkSize> slots;
    };

    explicit CorpusStore(size_t max_slots)
        : capacity(max_slots),
          dir((max_slots + kChunkSize - 1) / kChunkSize)
    {
    }

    Slot &slot(uint32_t s)
    {
        return dir[s >> kChunkBits].load(std::memory_order_acquire)
            ->slots[s & (kChunkSize - 1)];
    }

    const Slot &slot(uint32_t s) const
    {
        return dir[s >> kChunkBits].load(std::memory_order_acquire)
            ->slots[s & (kChunkSize - 1)];
    }

    /** Mutator-only: make sure slot `s` is backed by a chunk. */
    void ensureChunk(uint32_t s)
    {
        uint32_t c = s >> kChunkBits;
        if (dir[c].load(std::memory_order_relaxed) == nullptr) {
            chunks.push_back(std::make_unique<Chunk>());
            dir[c].store(chunks.back().get(), std::memory_order_release);
        }
    }

    /** Pin the current epoch (under `pinMutex`). */
    void pinCurrent(uint64_t &epoch, uint32_t &bound, size_t &live)
    {
        std::lock_guard<std::mutex> lock(pinMutex);
        epoch = currentEpoch;
        bound = currentBound;
        live = currentLive;
        ++pins[epoch];
    }

    void unpin(uint64_t epoch)
    {
        std::lock_guard<std::mutex> lock(pinMutex);
        auto it = pins.find(epoch);
        if (--it->second == 0)
            pins.erase(it);
        advanceRetired();
    }

    /**
     * Retire every epoch that is superseded and no longer pinned
     * (`pinMutex` held). The `epochsReclaimed` counter is the
     * no-unbounded-growth proof the acceptance gate asserts.
     */
    void advanceRetired()
    {
        while (oldestLive < currentEpoch && pins.count(oldestLive) == 0) {
            ++oldestLive;
            epochsReclaimed.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Oldest pinned epoch, or the current one when nothing is pinned
     *  (`pinMutex` taken inside). Compaction's reclaim horizon. */
    uint64_t minRetainEpoch() const
    {
        std::lock_guard<std::mutex> lock(pinMutex);
        return pins.empty() ? currentEpoch : pins.begin()->first;
    }

    const size_t capacity;

    /**
     * Chunk directory: fixed size, so readers index it without any
     * lock; `ensureChunk` publishes new chunks with a release store
     * before any slot in them becomes visible.
     */
    std::vector<std::atomic<Chunk *>> dir;
    std::vector<std::unique_ptr<Chunk>> chunks; ///< mutator-only

    /** Published-slot bound; release-stored at flush. */
    std::atomic<uint32_t> publishedSlots{0};

    /// @name Epoch/pin registry, all guarded by `pinMutex`
    /// @{
    mutable std::mutex pinMutex;
    uint64_t currentEpoch = 0;
    uint32_t currentBound = 0;
    size_t currentLive = 0;
    std::map<uint64_t, uint32_t> pins; ///< epoch -> pin count
    uint64_t oldestLive = 0;           ///< oldest unretired epoch
    /// @}

    std::atomic<uint64_t> epochsReclaimed{0};
    std::atomic<uint64_t> epochGauge{0};
    std::atomic<size_t> liveGauge{0};
};

/** Live inverted WL-tag index plus mutation staging state. */
struct LiveCorpus::Index
{
    /**
     * Guards the posting map for the (brief) shared-lock survivor
     * walks against exclusive-lock insert batches and compactions.
     * Exact scoring never holds it — visibility filtering makes
     * tombstoning free at mutation time.
     */
    mutable std::shared_mutex mutex;
    std::unordered_map<uint64_t, std::vector<uint32_t>> postings;
    size_t postingCount = 0;
    size_t deadPostings = 0; ///< postings of tombstoned slots

    /// @name Mutation staging, guarded by `mutMutex`
    /// @{
    std::mutex mutMutex;
    std::vector<uint32_t> stagedInserts;
    std::vector<uint32_t> stagedRemoves;
    std::unordered_map<uint64_t, uint32_t> slotOfId;
    uint32_t nextSlot = 0;
    bool capacityWarned = false;
    /// @}

    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> removes{0};
    std::atomic<size_t> reclaimedSlots{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<size_t> payloadBytes{0}; ///< resident tag+coarse bytes
};

namespace {

size_t
slotPayloadBytes(const CorpusStore::Slot &slot)
{
    return slot.tags.size() * sizeof(uint64_t) +
           slot.coarse.size() * sizeof(float);
}

float
squaredNorm(const std::vector<float> &v)
{
    float n = 0.0f;
    for (float x : v)
        n += x * x;
    return n;
}

} // namespace

CorpusSnapshot::CorpusSnapshot(std::shared_ptr<CorpusStore> store,
                               uint64_t epoch, uint32_t bound,
                               size_t live)
    : store_(std::move(store)), epoch_(epoch), bound_(bound), live_(live)
{
}

CorpusSnapshot::~CorpusSnapshot()
{
    store_->unpin(epoch_);
}

bool
CorpusSnapshot::visible(uint32_t s) const
{
    return s < bound_ &&
           epoch_ < store_->slot(s).diedEpoch.load(
                        std::memory_order_acquire);
}

const Graph &
CorpusSnapshot::graph(uint32_t s) const
{
    return store_->slot(s).graph;
}

uint64_t
CorpusSnapshot::id(uint32_t s) const
{
    return store_->slot(s).id;
}

std::vector<uint32_t>
CorpusSnapshot::liveSlots() const
{
    std::vector<uint32_t> slots;
    slots.reserve(live_);
    for (uint32_t s = 0; s < bound_; ++s) {
        if (visible(s))
            slots.push_back(s);
    }
    return slots;
}

std::vector<uint64_t>
CorpusSnapshot::liveIds() const
{
    std::vector<uint64_t> ids;
    ids.reserve(live_);
    for (uint32_t s = 0; s < bound_; ++s) {
        if (visible(s))
            ids.push_back(id(s));
    }
    return ids;
}

LiveCorpus::LiveCorpus(const MutationConfig &config)
    : config_(config), index_(std::make_unique<Index>())
{
}

LiveCorpus::~LiveCorpus() = default;

void
LiveCorpus::enableIndex(const RetrievalConfig &retrieval, bool model_aware,
                        DescriptorFn descriptor)
{
    cegma_assert(store_ == nullptr); // before bootstrap
    retrieval_ = retrieval;
    maintainIndex_ = true;
    modelAware_ = model_aware;
    descriptor_ = std::move(descriptor);
}

void
LiveCorpus::setRemovalHook(RemovalHook hook)
{
    removalHook_ = std::move(hook);
}

void
LiveCorpus::bootstrap(std::vector<Graph> graphs,
                      std::vector<uint64_t> ids)
{
    CEGMA_TRACE_SCOPE_CAT("corpus.bootstrap", "corpus");
    cegma_assert(store_ == nullptr);
    cegma_assert(graphs.size() == ids.size());
    uint32_t n = static_cast<uint32_t>(graphs.size());

    // Size the chunk directory once: the fixed capacity is what lets
    // readers index it lock-free forever after.
    size_t cap = std::max(config_.maxSlots, static_cast<size_t>(n) * 2);
    store_ = std::make_shared<CorpusStore>(cap);
    for (uint32_t s = 0; s < n; ++s)
        store_->ensureChunk(s);

    // Fill slots index-parallel: the tag sets and coarse descriptors
    // are the expensive part of an index build (10^5-scale corpora),
    // and each slot is written independently before anything is
    // published.
    parallelFor(0, n, 1, [&](size_t s0, size_t s1) {
        for (size_t s = s0; s < s1; ++s) {
            CorpusStore::Slot &slot =
                store_->slot(static_cast<uint32_t>(s));
            slot.id = ids[s];
            slot.graph = std::move(graphs[s]);
            if (maintainIndex_) {
                slot.tags = wlTagSet(slot.graph, retrieval_.tagLevel);
                if (descriptor_) {
                    descriptor_(slot.graph, slot.coarse);
                    slot.coarseNorm = squaredNorm(slot.coarse);
                }
            }
        }
    });

    size_t payload = 0;
    {
        std::lock_guard<std::mutex> mut(index_->mutMutex);
        for (uint32_t s = 0; s < n; ++s) {
            const CorpusStore::Slot &slot = store_->slot(s);
            bool fresh = index_->slotOfId.emplace(slot.id, s).second;
            cegma_assert(fresh); // bootstrap ids must be distinct
            payload += slotPayloadBytes(slot);
        }
        index_->nextSlot = n;
        if (maintainIndex_) {
            std::unique_lock<std::shared_mutex> ix(index_->mutex);
            for (uint32_t s = 0; s < n; ++s) {
                for (uint64_t tag : store_->slot(s).tags)
                    index_->postings[tag].push_back(s);
                index_->postingCount += store_->slot(s).tags.size();
            }
        }
    }
    index_->payloadBytes.store(payload, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> pin(store_->pinMutex);
        store_->currentBound = n;
        store_->currentLive = n;
    }
    store_->publishedSlots.store(n, std::memory_order_release);
    store_->liveGauge.store(n, std::memory_order_relaxed);
}

bool
LiveCorpus::insert(uint64_t id, Graph g)
{
    cegma_assert(store_ != nullptr);
    std::lock_guard<std::mutex> mut(index_->mutMutex);
    if (index_->slotOfId.count(id) != 0)
        return false;
    if (index_->nextSlot >= store_->capacity) {
        if (!index_->capacityWarned) {
            index_->capacityWarned = true;
            warn("LiveCorpus: slot capacity %zu reached; refusing "
                 "inserts (raise MutationConfig::maxSlots)",
                 store_->capacity);
        }
        return false;
    }
    uint32_t s = index_->nextSlot++;
    store_->ensureChunk(s);
    CorpusStore::Slot &slot = store_->slot(s);
    slot.id = id;
    slot.graph = std::move(g);
    slot.diedEpoch.store(kSlotAlive, std::memory_order_relaxed);
    slot.payloadFreed = false;
    if (maintainIndex_) {
        // Tag extraction and the descriptor run here, at insert: the
        // descriptor callback drives the model's pool-parallel
        // kernels, so the index cost lands on the mutation path, not
        // on any query.
        slot.tags = wlTagSet(slot.graph, retrieval_.tagLevel);
        if (descriptor_) {
            descriptor_(slot.graph, slot.coarse);
            slot.coarseNorm = squaredNorm(slot.coarse);
        }
    }
    index_->payloadBytes.fetch_add(slotPayloadBytes(slot),
                                   std::memory_order_relaxed);
    index_->slotOfId.emplace(id, s);
    index_->stagedInserts.push_back(s);
    index_->inserts.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
LiveCorpus::remove(uint64_t id)
{
    cegma_assert(store_ != nullptr);
    std::lock_guard<std::mutex> mut(index_->mutMutex);
    auto it = index_->slotOfId.find(id);
    if (it == index_->slotOfId.end())
        return false;
    index_->stagedRemoves.push_back(it->second);
    // Un-mapping now lets the same id be re-inserted within the same
    // staged batch (landing in a fresh slot, visible from the same
    // epoch the removal takes effect).
    index_->slotOfId.erase(it);
    index_->removes.fetch_add(1, std::memory_order_relaxed);
    return true;
}

uint64_t
LiveCorpus::flush()
{
    cegma_assert(store_ != nullptr);
    std::lock_guard<std::mutex> mut(index_->mutMutex);
    if (index_->stagedInserts.empty() && index_->stagedRemoves.empty()) {
        std::lock_guard<std::mutex> pin(store_->pinMutex);
        return store_->currentEpoch;
    }
    CEGMA_TRACE_SCOPE_CAT("corpus.flush", "corpus");

    // Stamp tombstones first: a snapshot pinned at epoch E stays
    // unaffected (E < E+1), and nothing new is visible until the
    // bound/epoch publish below.
    uint64_t new_epoch;
    {
        std::lock_guard<std::mutex> pin(store_->pinMutex);
        new_epoch = store_->currentEpoch + 1;
    }
    size_t dead = 0;
    for (uint32_t s : index_->stagedRemoves) {
        CorpusStore::Slot &slot = store_->slot(s);
        slot.diedEpoch.store(new_epoch, std::memory_order_release);
        dead += slot.tags.size();
        if (removalHook_)
            removalHook_(slot.graph);
    }
    if (maintainIndex_ && !index_->stagedInserts.empty()) {
        std::unique_lock<std::shared_mutex> ix(index_->mutex);
        for (uint32_t s : index_->stagedInserts) {
            for (uint64_t tag : store_->slot(s).tags)
                index_->postings[tag].push_back(s);
            index_->postingCount += store_->slot(s).tags.size();
        }
    }
    if (dead > 0) {
        std::unique_lock<std::shared_mutex> ix(index_->mutex);
        index_->deadPostings += dead;
    }

    size_t inserted = index_->stagedInserts.size();
    size_t removed = index_->stagedRemoves.size();
    index_->stagedInserts.clear();
    index_->stagedRemoves.clear();

    // Publish: pin() reads (epoch, bound, live) under the same mutex,
    // so a snapshot always observes a consistent triple.
    {
        std::lock_guard<std::mutex> pin(store_->pinMutex);
        store_->currentBound = index_->nextSlot;
        store_->currentEpoch = new_epoch;
        store_->currentLive += inserted;
        store_->currentLive -= removed;
        store_->publishedSlots.store(index_->nextSlot,
                                     std::memory_order_release);
        store_->liveGauge.store(store_->currentLive,
                                std::memory_order_relaxed);
        store_->epochGauge.store(new_epoch, std::memory_order_relaxed);
        store_->advanceRetired();
    }

    // Reclaim once enough postings point at tombstones nothing can
    // see. The horizon is the oldest pinned epoch, which can only
    // move *forward* while we hold mutMutex (new pins land at
    // new_epoch), so acting on it here is safe.
    bool want_compact;
    {
        std::shared_lock<std::shared_mutex> ix(index_->mutex);
        want_compact =
            index_->deadPostings > 0 &&
            static_cast<double>(index_->deadPostings) >=
                config_.compactTombstoneRatio *
                    static_cast<double>(
                        std::max<size_t>(index_->postingCount, 1));
    }
    // Even with no index, dead payloads (the graphs) are reclaimed on
    // the same trigger, using slot counts instead of posting counts.
    if (!maintainIndex_) {
        size_t total = index_->nextSlot;
        size_t dead_slots =
            index_->removes.load(std::memory_order_relaxed) -
            index_->reclaimedSlots.load(std::memory_order_relaxed);
        want_compact = dead_slots > 0 &&
                       static_cast<double>(dead_slots) >=
                           config_.compactTombstoneRatio *
                               static_cast<double>(
                                   std::max<size_t>(total, 1));
    }
    if (want_compact)
        compactLocked(store_->minRetainEpoch());
    return new_epoch;
}

void
LiveCorpus::compactLocked(uint64_t min_retain)
{
    CEGMA_TRACE_SCOPE_CAT("corpus.compact", "corpus");
    // A slot is reclaimable when every pinned epoch — and any future
    // pin, which lands at the current epoch or later — satisfies
    // `epoch >= diedEpoch`, i.e. diedEpoch <= min_retain. Everything
    // touched below is invisible to every reachable snapshot, which
    // is the "compaction never changes results" contract.
    uint32_t bound = store_->publishedSlots.load(std::memory_order_acquire);
    std::vector<uint8_t> drop(bound, 0);
    size_t dropped_slots = 0;
    size_t freed_bytes = 0;
    for (uint32_t s = 0; s < bound; ++s) {
        CorpusStore::Slot &slot = store_->slot(s);
        if (slot.payloadFreed)
            continue;
        if (slot.diedEpoch.load(std::memory_order_acquire) <= min_retain) {
            drop[s] = 1;
            ++dropped_slots;
            freed_bytes += slotPayloadBytes(slot);
            slot.payloadFreed = true;
            slot.graph = Graph();
            slot.tags = {};
            slot.coarse = {};
        }
    }
    if (dropped_slots == 0)
        return;

    if (maintainIndex_) {
        std::unique_lock<std::shared_mutex> ix(index_->mutex);
        size_t remaining = 0;
        size_t remaining_dead = 0;
        for (auto it = index_->postings.begin();
             it != index_->postings.end();) {
            auto &list = it->second;
            list.erase(std::remove_if(list.begin(), list.end(),
                                      [&](uint32_t s) {
                                          return s < bound && drop[s];
                                      }),
                       list.end());
            if (list.empty()) {
                it = index_->postings.erase(it);
                continue;
            }
            remaining += list.size();
            for (uint32_t s : list) {
                if (store_->slot(s).diedEpoch.load(
                        std::memory_order_acquire) != kSlotAlive)
                    ++remaining_dead;
            }
            ++it;
        }
        index_->postingCount = remaining;
        index_->deadPostings = remaining_dead;
    }
    index_->reclaimedSlots.fetch_add(dropped_slots,
                                     std::memory_order_relaxed);
    index_->payloadBytes.fetch_sub(freed_bytes,
                                   std::memory_order_relaxed);
    index_->compactions.fetch_add(1, std::memory_order_relaxed);
}

LiveCorpus::SnapshotPtr
LiveCorpus::pin() const
{
    cegma_assert(store_ != nullptr);
    uint64_t epoch;
    uint32_t bound;
    size_t live;
    store_->pinCurrent(epoch, bound, live);
    return SnapshotPtr(
        new CorpusSnapshot(store_, epoch, bound, live));
}

std::vector<uint32_t>
LiveCorpus::survivorsLocked(const CorpusSnapshot &snap,
                            const std::vector<uint64_t> &tags) const
{
    // Mirrors TagIndex::survivors, with the snapshot's visibility
    // check standing in for "is in the corpus": tombstoned and
    // not-yet-published slots fall out here, which is why removals
    // cost nothing at mutation time.
    double min_overlap = retrieval_.tagPrune;
    if (min_overlap <= 0.0 || tags.empty())
        return snap.liveSlots();

    uint32_t bound = snap.bound();
    std::vector<uint32_t> counts(bound, 0);
    {
        std::shared_lock<std::shared_mutex> ix(index_->mutex);
        for (uint64_t tag : tags) {
            auto it = index_->postings.find(tag);
            if (it == index_->postings.end())
                continue;
            for (uint32_t s : it->second) {
                if (s < bound)
                    ++counts[s];
            }
        }
    }
    auto needed = static_cast<size_t>(std::ceil(
        min_overlap * static_cast<double>(tags.size())));
    needed = std::max<size_t>(needed, 1);
    std::vector<uint32_t> out;
    for (uint32_t s = 0; s < bound; ++s) {
        if (counts[s] >= needed && snap.visible(s))
            out.push_back(s);
    }
    return out;
}

std::vector<uint32_t>
LiveCorpus::shortlist(const CorpusSnapshot &snap, const Graph &query,
                      const GmnModel &model,
                      RetrievalStages *stages) const
{
    cegma_assert(maintainIndex_);
    CEGMA_TRACE_SCOPE_CAT("corpus.shortlist", "corpus");
    std::vector<uint64_t> tags = wlTagSet(query, retrieval_.tagLevel);
    std::vector<uint32_t> surv = survivorsLocked(snap, tags);
    if (stages) {
        stages->corpus = snap.liveCount();
        stages->survivors = surv.size();
    }

    size_t budget = retrieval_.shortlist;
    if (budget == 0 || surv.size() <= budget) {
        if (stages)
            stages->shortlisted = surv.size();
        return surv;
    }

    // Rank survivors by the stored descriptors: the model's own
    // query-conditioned coarse scorer when it decomposes its head,
    // else squared L2 against the query's coarse vector (constant
    // ||q||^2 dropped). Keys land in indexed output slots, so the
    // ranking is bit-identical at any thread count; (key, slot) ties
    // break toward the lower slot.
    std::vector<std::pair<float, uint32_t>> keyed(surv.size());
    if (modelAware_) {
        std::unique_ptr<CoarseScorer> scorer = model.coarseScorer(query);
        cegma_assert(scorer != nullptr);
        parallelFor(0, surv.size(), 64, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                const CorpusStore::Slot &slot = store_->slot(surv[i]);
                float score = (*scorer)(slot.coarse.data(),
                                        slot.coarse.size());
                keyed[i] = {-score, surv[i]};
            }
        });
    } else {
        std::vector<float> qvec = coarseVector(
            query, model, retrieval_.tagLevel, retrieval_.sketchDim);
        parallelFor(0, surv.size(), 64, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                const CorpusStore::Slot &slot = store_->slot(surv[i]);
                cegma_assert(slot.coarse.size() == qvec.size());
                float key = slot.coarseNorm -
                            2.0f * dot(qvec.data(), slot.coarse.data(),
                                       qvec.size());
                keyed[i] = {key, surv[i]};
            }
        });
    }
    std::nth_element(keyed.begin(),
                     keyed.begin() + static_cast<ptrdiff_t>(budget),
                     keyed.end());
    keyed.resize(budget);
    std::vector<uint32_t> out(budget);
    for (size_t i = 0; i < budget; ++i)
        out[i] = keyed[i].second;
    std::sort(out.begin(), out.end());
    if (stages)
        stages->shortlisted = out.size();
    return out;
}

void
LiveCorpus::setQueryKnobs(size_t shortlist, double tag_prune)
{
    retrieval_.shortlist = shortlist;
    retrieval_.tagPrune = tag_prune;
}

uint64_t
LiveCorpus::epoch() const
{
    return store_ ? store_->epochGauge.load(std::memory_order_relaxed)
                  : 0;
}

size_t
LiveCorpus::liveCount() const
{
    return store_ ? store_->liveGauge.load(std::memory_order_relaxed)
                  : 0;
}

uint32_t
LiveCorpus::slotCount() const
{
    return store_ ? store_->publishedSlots.load(std::memory_order_acquire)
                  : 0;
}

uint64_t
LiveCorpus::inserts() const
{
    return index_->inserts.load(std::memory_order_relaxed);
}

uint64_t
LiveCorpus::removes() const
{
    return index_->removes.load(std::memory_order_relaxed);
}

size_t
LiveCorpus::tombstones() const
{
    return index_->removes.load(std::memory_order_relaxed) -
           index_->reclaimedSlots.load(std::memory_order_relaxed);
}

uint64_t
LiveCorpus::epochsReclaimed() const
{
    return store_
               ? store_->epochsReclaimed.load(std::memory_order_relaxed)
               : 0;
}

uint64_t
LiveCorpus::compactions() const
{
    return index_->compactions.load(std::memory_order_relaxed);
}

size_t
LiveCorpus::indexBytes() const
{
    size_t posting_bytes = 0;
    {
        std::shared_lock<std::shared_mutex> ix(index_->mutex);
        posting_bytes =
            index_->postingCount * sizeof(uint32_t) +
            index_->postings.size() *
                (sizeof(uint64_t) + sizeof(std::vector<uint32_t>));
    }
    return posting_bytes +
           index_->payloadBytes.load(std::memory_order_relaxed);
}

} // namespace cegma
