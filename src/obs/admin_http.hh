/**
 * @file
 * A dependency-free embedded HTTP/1.1 admin server — the scrape
 * surface of the live telemetry plane (`/metrics`, `/varz`,
 * `/healthz`, `/tracez`, ...). Deliberately minimal:
 *
 *   - One accept thread, connections handled serially: an admin plane
 *     is scraped a few times a second by one collector, not by user
 *     traffic, so a serial loop *is* the connection bound (at most one
 *     in flight) and there is no thread pool to size, leak, or drain.
 *   - GET/HEAD only, `Connection: close`, bounded request size, and
 *     socket I/O timeouts — a stuck or malicious client can delay one
 *     scrape, never wedge the server or the process.
 *   - The accept loop polls with a short timeout and re-checks a stop
 *     flag, so `stop()` joins promptly without signals or pipe tricks.
 *
 * Handlers are plain callbacks registered per path before `start()`.
 * They run on the admin thread; anything they touch must be safe
 * against the serving threads (the registry snapshot and the windowed
 * stats are — that is the whole design of obs/).
 *
 * Binding: loopback by default (an admin plane is not a public API);
 * port 0 asks the kernel for an ephemeral port, reported by `port()`
 * so tests and scripts can scrape without racing a fixed number.
 */

#ifndef CEGMA_OBS_ADMIN_HTTP_HH
#define CEGMA_OBS_ADMIN_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace cegma::obs {

/** One parsed request (the subset an admin plane needs). */
struct HttpRequest
{
    std::string method; ///< "GET" / "HEAD" (others are rejected)
    std::string target; ///< path only; the query string is stripped
};

/** What a handler returns. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/** See the file comment for the execution model. */
class AdminServer
{
  public:
    struct Config
    {
        std::string bindAddress = "127.0.0.1";
        uint16_t port = 0;          ///< 0 = kernel-assigned ephemeral
        int ioTimeoutMs = 2000;     ///< per-socket read/write timeout
        size_t maxRequestBytes = 8192;
    };

    AdminServer() = default;
    ~AdminServer() { stop(); }

    AdminServer(const AdminServer &) = delete;
    AdminServer &operator=(const AdminServer &) = delete;

    /**
     * Register (or replace) the handler for exact path `path`.
     * Handlers registered after `start()` take effect on the next
     * request.
     */
    void handle(const std::string &path,
                std::function<HttpResponse(const HttpRequest &)> fn);

    /**
     * Bind, listen, and start the accept thread.
     * @return true on success; on failure `status()` says why and the
     *         server stays stopped (callers degrade gracefully).
     */
    bool start(const Config &config);

    /** Stop accepting, join the accept thread. Idempotent. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** The bound port (resolved when `Config::port` was 0), 0 if not running. */
    uint16_t port() const
    {
        return port_.load(std::memory_order_acquire);
    }

    /** Requests served since `start()` (any status). */
    uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /**
     * Responses whose header or body send failed (peer closed early,
     * reset, or I/O timeout). A failed header send skips the body
     * entirely — see serveConnection.
     */
    uint64_t writeErrors() const
    {
        return writeErrors_.load(std::memory_order_relaxed);
    }

    /** Human-readable state: "ok", or the last start failure. */
    std::string status() const;

  private:
    void acceptLoop();
    void serveConnection(int fd);

    Config config_;
    int listenFd_ = -1;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<uint16_t> port_{0};
    std::atomic<uint64_t> served_{0};
    std::atomic<uint64_t> writeErrors_{0};

    mutable std::mutex mutex_; ///< guards handlers_ and status_
    std::map<std::string,
             std::function<HttpResponse(const HttpRequest &)>>
        handlers_;
    std::string statusMsg_ = "not started";
};

} // namespace cegma::obs

#endif // CEGMA_OBS_ADMIN_HTTP_HH
