#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "obs/build_info.hh"

namespace cegma::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_dropped{0};

/**
 * One thread's span ring. The mutex is effectively uncontended: the
 * owning thread takes it per commit, and only `collectSpans` /
 * `clearTrace` (rare) take it from outside.
 */
class ThreadSpanRing
{
  public:
    ThreadSpanRing(uint32_t tid, size_t capacity)
        : tid_(tid), spans_(capacity > 0 ? capacity : 1)
    {
    }

    void push(SpanRecord span)
    {
        span.tid = tid_;
        std::lock_guard<std::mutex> lock(mutex_);
        if (pushed_ >= spans_.size())
            g_dropped.fetch_add(1, std::memory_order_relaxed);
        spans_[pushed_ % spans_.size()] = span;
        ++pushed_;
    }

    void collect(std::vector<SpanRecord> &out) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t kept = std::min(pushed_, spans_.size());
        size_t first = pushed_ - kept; // oldest retained push index
        for (size_t i = 0; i < kept; ++i)
            out.push_back(spans_[(first + i) % spans_.size()]);
    }

    void clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pushed_ = 0;
    }

  private:
    const uint32_t tid_;
    mutable std::mutex mutex_;
    std::vector<SpanRecord> spans_;
    size_t pushed_ = 0; ///< total commits; retained = min(., capacity)
};

/** Global ring registry: rings outlive their threads for export. */
struct RingRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadSpanRing>> rings;
    uint32_t nextTid = 1;
    size_t capacity = size_t{1} << 15;
};

RingRegistry &
registry()
{
    static RingRegistry *reg = new RingRegistry; // never destroyed:
    // worker threads may commit spans during static destruction.
    return *reg;
}

ThreadSpanRing &
threadRing()
{
    thread_local std::shared_ptr<ThreadSpanRing> ring = [] {
        RingRegistry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto created = std::make_shared<ThreadSpanRing>(reg.nextTid++,
                                                        reg.capacity);
        reg.rings.push_back(created);
        return created;
    }();
    return *ring;
}

} // namespace

bool
tracingEnabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setTracingEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

std::atomic<bool> g_attribution{false};
thread_local StageAccum *t_stage_accum = nullptr;

} // namespace

bool
attributionEnabled()
{
    return g_attribution.load(std::memory_order_relaxed);
}

void
setAttributionEnabled(bool enabled)
{
    g_attribution.store(enabled, std::memory_order_relaxed);
}

StageAccum *
currentStageAccum()
{
    return t_stage_accum;
}

void
setCurrentStageAccum(StageAccum *accum)
{
    t_stage_accum = accum;
}

void
setTraceRingCapacity(size_t spans)
{
    RingRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.capacity = spans > 0 ? spans : 1;
}

void
recordSpan(const char *name, const char *cat, uint64_t start_ns,
           uint64_t dur_ns, const char *arg_name, uint64_t arg_value)
{
    if (!tracingEnabled())
        return;
    SpanRecord span;
    span.name = name;
    span.cat = cat;
    span.startNs = start_ns;
    span.durNs = dur_ns;
    span.argName = arg_name;
    span.argValue = arg_value;
    threadRing().push(span);
}

std::vector<SpanRecord>
collectSpans()
{
    RingRegistry &reg = registry();
    std::vector<std::shared_ptr<ThreadSpanRing>> rings;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        rings = reg.rings;
    }
    std::vector<SpanRecord> spans;
    for (const auto &ring : rings)
        ring->collect(spans);
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.tid < b.tid;
              });
    return spans;
}

uint64_t
droppedSpans()
{
    return g_dropped.load(std::memory_order_relaxed);
}

void
clearTrace()
{
    RingRegistry &reg = registry();
    std::vector<std::shared_ptr<ThreadSpanRing>> rings;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        rings = reg.rings;
    }
    for (const auto &ring : rings)
        ring->clear();
    g_dropped.store(0, std::memory_order_relaxed);
}

namespace {

/**
 * Render `spans` as Chrome trace_event JSON. Timestamps are rebased
 * to the earliest span so the trace opens at t=0.
 */
std::string
renderChromeTrace(const std::vector<SpanRecord> &spans)
{
    uint64_t base = spans.empty() ? 0 : spans.front().startNs;
    std::string out = "{\"displayTimeUnit\": \"ms\",\n\"otherData\": "
                      "{\"build\": ";
    out += buildInfoJson();
    char buf[64];
    std::snprintf(buf, sizeof(buf), ", \"dropped_spans\": %" PRIu64,
                  droppedSpans());
    out += buf;
    out += "},\n\"traceEvents\": [\n";
    for (size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord &s = spans[i];
        char line[384];
        int n = std::snprintf(
            line, sizeof(line),
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": %" PRIu32
            ", \"ts\": %.3f, \"dur\": %.3f",
            s.name, s.cat, s.tid,
            static_cast<double>(s.startNs - base) / 1e3,
            static_cast<double>(s.durNs) / 1e3);
        out.append(line, static_cast<size_t>(n));
        if (s.argName != nullptr) {
            n = std::snprintf(line, sizeof(line),
                              ", \"args\": {\"%s\": %" PRIu64 "}",
                              s.argName, s.argValue);
            out.append(line, static_cast<size_t>(n));
        }
        out += i + 1 < spans.size() ? "},\n" : "}\n";
    }
    out += "]}\n";
    return out;
}

} // namespace

std::string
chromeTraceJson()
{
    return renderChromeTrace(collectSpans());
}

size_t
writeChromeTrace(const std::string &path)
{
    std::vector<SpanRecord> spans = collectSpans();
    std::string json = renderChromeTrace(spans);
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (out == nullptr)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fwrite(json.data(), 1, json.size(), out);
    if (out != stdout)
        std::fclose(out);
    return spans.size();
}

} // namespace cegma::obs
