/**
 * @file
 * Build identification, generated at configure time (see
 * src/obs/CMakeLists.txt and build_info.cc.in): git hash, compiler,
 * flags, build type, and sanitizer mode. Every metrics/trace JSON
 * export embeds this stamp, and the CLIs print it under `--version`,
 * so a result file is always traceable to the build that produced it.
 */

#ifndef CEGMA_OBS_BUILD_INFO_HH
#define CEGMA_OBS_BUILD_INFO_HH

#include <string>

namespace cegma::obs {

/** Short git hash of the configured checkout ("unknown" outside git). */
const char *buildGitHash();

/** Compiler id and version, e.g. "GNU 12.2.0". */
const char *buildCompiler();

/** The configured CMAKE_CXX_FLAGS (may be empty). */
const char *buildFlags();

/** CMake build type, e.g. "Release". */
const char *buildType();

/** Sanitizer mode: "none", "thread", or "address". */
const char *buildSanitizer();

/** One human-readable line (the `--version` output). */
std::string buildInfoString();

/** One JSON object with the same fields. */
std::string buildInfoJson();

} // namespace cegma::obs

#endif // CEGMA_OBS_BUILD_INFO_HH
