/**
 * @file
 * Hardware cache-miss counters over `perf_event_open(2)`, used by the
 * benches to show that the joint-window scheduler actually trades
 * DRAM traffic for cache residency (the claim behind CGC) rather than
 * just reordering work.
 *
 * The counters are per *calling thread* (pid = 0, any CPU): a
 * measured section must run its work on the calling thread, so the
 * benches pin the pool to one thread around measured regions.
 *
 * Containers and locked-down kernels frequently refuse
 * `perf_event_open` (EPERM/EACCES under
 * `kernel.perf_event_paranoid`, ENOSYS in some sandboxes). That is a
 * supported configuration, not an error: `available()` turns false,
 * `status()` says why, and samples come back with `valid == false` so
 * callers print "n/a" instead of zeros.
 */

#ifndef CEGMA_OBS_PERF_COUNTERS_HH
#define CEGMA_OBS_PERF_COUNTERS_HH

#include <cstdint>

namespace cegma::obs {

/** One measured interval; `valid` is false when counters are off. */
struct CacheCounterSample
{
    uint64_t llcReferences = 0; ///< last-level cache accesses
    uint64_t llcMisses = 0;     ///< last-level cache misses
    uint64_t l1dMisses = 0;     ///< L1D read misses
    bool valid = false;
};

/**
 * A group of three hardware cache counters (LLC references, LLC
 * misses, L1D read misses) that enable and disable atomically.
 * Construction opens the group; when the kernel refuses, the object
 * degrades to a no-op whose samples are `valid == false`.
 */
class CacheCounters
{
  public:
    CacheCounters();
    ~CacheCounters();

    CacheCounters(const CacheCounters &) = delete;
    CacheCounters &operator=(const CacheCounters &) = delete;

    /** Whether the group opened (kernel + permissions allow it). */
    bool available() const { return fds_[0] >= 0; }

    /** Human-readable availability ("ok" or the open failure). */
    const char *status() const { return status_; }

    /** Zero and enable the group (no-op when unavailable). */
    void start();

    /** Disable the group and read the interval's counts. */
    CacheCounterSample stop();

    /**
     * Read the running counts without disabling the group — the
     * scrape-time view a provider gauge polls while the measured
     * thread keeps working. `valid == false` when unavailable.
     */
    CacheCounterSample sample() const;

  private:
    int fds_[3] = {-1, -1, -1}; ///< leader (LLC refs), LLC miss, L1D
    const char *status_ = "not opened";
};

} // namespace cegma::obs

#endif // CEGMA_OBS_PERF_COUNTERS_HH
