/**
 * @file
 * Per-request span tracing for the CEGMA runtime.
 *
 * Model: every thread owns a fixed-capacity ring of completed spans
 * (name, category, start, duration, thread id). `CEGMA_TRACE_SCOPE`
 * drops an RAII scope into a function; when tracing is enabled the
 * scope commits one span to the calling thread's ring on destruction,
 * and when it is disabled the whole mechanism costs one relaxed
 * atomic load and a branch — cheap enough to leave in the GEMM and
 * similarity kernels permanently.
 *
 * Rings keep the *newest* spans: on overflow the oldest span in that
 * thread's ring is overwritten (and counted in `droppedSpans()`), so
 * a bounded trace of a long run always ends with the most recent
 * activity. Rings are registered globally and outlive their threads,
 * so an export after the pool quiesces still sees worker spans.
 *
 * Export: `writeChromeTrace()` emits Chrome `trace_event` JSON
 * ("X" complete events, microsecond timestamps) with the build-info
 * stamp in `otherData` — loadable directly in Perfetto / chrome://tracing.
 *
 * Span names and categories must be string literals (or otherwise
 * outlive the export): rings store the pointers, not copies.
 */

#ifndef CEGMA_OBS_TRACE_HH
#define CEGMA_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace cegma::obs {

/** One completed span, as stored in a thread's ring. */
struct SpanRecord
{
    const char *name = nullptr;
    const char *cat = nullptr;
    uint64_t startNs = 0; ///< steady-clock ns (see `nowNs`)
    uint64_t durNs = 0;
    uint32_t tid = 0;           ///< small per-thread id (not the OS tid)
    const char *argName = nullptr; ///< optional numeric argument
    uint64_t argValue = 0;
};

/** Monotonic nanoseconds on the tracing timeline. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** @return whether span recording is on (one relaxed load). */
bool tracingEnabled();

/** Turn span recording on or off (off is the default). */
void setTracingEnabled(bool enabled);

/**
 * Capacity (in spans) of rings created *after* this call; existing
 * rings keep their size. Call before enabling tracing. Default 32768
 * spans per thread (~2 MiB/thread).
 */
void setTraceRingCapacity(size_t spans);

/** Record one explicit span (used for queue-wait style intervals). */
void recordSpan(const char *name, const char *cat, uint64_t start_ns,
                uint64_t dur_ns, const char *arg_name = nullptr,
                uint64_t arg_value = 0);

/** All retained spans from every ring, start-time ordered. */
std::vector<SpanRecord> collectSpans();

/** Spans overwritten by ring overflow since the last `clearTrace`. */
uint64_t droppedSpans();

/** Drop every retained span (rings stay registered). */
void clearTrace();

/**
 * Write the retained spans as Chrome trace_event JSON to `path`
 * ("-" = stdout). @return number of spans written.
 */
size_t writeChromeTrace(const std::string &path);

/** The same trace_event JSON as a string (tests, embedding). */
std::string chromeTraceJson();

/**
 * RAII span: records [construction, destruction) into the calling
 * thread's ring when tracing is enabled, else does nothing.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name, const char *cat = "app")
    {
        if (tracingEnabled()) {
            name_ = name;
            cat_ = cat;
            start_ = nowNs();
        }
    }

    /** Span with one numeric argument (e.g. batch size). */
    TraceScope(const char *name, const char *cat, const char *arg_name,
               uint64_t arg_value)
        : TraceScope(name, cat)
    {
        if (name_ != nullptr) {
            argName_ = arg_name;
            argValue_ = arg_value;
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    ~TraceScope()
    {
        if (name_ != nullptr) {
            recordSpan(name_, cat_, start_, nowNs() - start_, argName_,
                       argValue_);
        }
    }

  private:
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    uint64_t start_ = 0;
    const char *argName_ = nullptr;
    uint64_t argValue_ = 0;
};

/**
 * Per-request stage-time accumulator for critical-path attribution:
 * one instance per in-flight request, shared by every pair-parallel
 * worker scoring that request's pairs (hence the relaxed atomics —
 * the counts are telemetry, never control flow).
 */
struct StageAccum
{
    std::atomic<uint64_t> embedNs{0};
    std::atomic<uint64_t> dedupNs{0};
    std::atomic<uint64_t> matchNs{0};
    std::atomic<uint64_t> headNs{0};
    std::atomic<uint64_t> memoNs{0};
};

/** Pointer-to-member selecting one `StageAccum` slot. */
using StageSlot = std::atomic<uint64_t> StageAccum::*;

/**
 * @return whether per-request stage attribution is on (one relaxed
 * load — the entire cost of the feature when disabled).
 */
bool attributionEnabled();

/** Turn per-request stage attribution on or off (off by default). */
void setAttributionEnabled(bool enabled);

/**
 * The calling thread's current request accumulator (null when the
 * thread is not scoring an attributed request). The serving layer
 * points this at the right request's accumulator around each pair.
 */
StageAccum *currentStageAccum();
void setCurrentStageAccum(StageAccum *accum);

/**
 * Attribute `ns` to `slot` of the calling thread's current request,
 * if attribution is on and a request is current. Used by code that
 * times itself (the memo cache) rather than via `StageScope`.
 */
inline void
attributeStageNs(StageSlot slot, uint64_t ns)
{
    if (!attributionEnabled())
        return;
    StageAccum *accum = currentStageAccum();
    if (accum != nullptr)
        (accum->*slot).fetch_add(ns, std::memory_order_relaxed);
}

/**
 * A stage scope: times one pipeline stage into a `Histogram` (in
 * microseconds, when a sink is wired), attributes the same duration
 * to the current request's `StageAccum` slot (when attribution is on
 * and a slot was named), *and* emits a trace span (when tracing is
 * on). With none of the three active it costs two relaxed loads and
 * the null checks — the models run it unconditionally.
 */
class StageScope
{
  public:
    StageScope(const char *name, Histogram *hist,
               StageSlot slot = nullptr, const char *cat = "stage")
        : hist_(hist)
    {
        bool tracing = tracingEnabled();
        if (tracing)
            name_ = name;
        if (slot != nullptr && attributionEnabled()) {
            accum_ = currentStageAccum();
            slot_ = slot;
        }
        if (hist_ != nullptr || tracing || accum_ != nullptr) {
            cat_ = cat;
            start_ = nowNs();
        }
    }

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

    ~StageScope()
    {
        if (hist_ == nullptr && name_ == nullptr && accum_ == nullptr)
            return;
        uint64_t dur = nowNs() - start_;
        if (hist_ != nullptr)
            hist_->record(dur / 1000);
        if (accum_ != nullptr)
            (accum_->*slot_).fetch_add(dur, std::memory_order_relaxed);
        if (name_ != nullptr)
            recordSpan(name_, cat_, start_, dur);
    }

  private:
    Histogram *hist_ = nullptr;
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    StageAccum *accum_ = nullptr;
    StageSlot slot_ = nullptr;
    uint64_t start_ = 0;
};

/**
 * RAII binding of the calling thread's current request accumulator:
 * sets on construction, restores the previous binding on destruction
 * (nesting-safe, though the serving loops never nest it).
 */
class ScopedStageAccum
{
  public:
    explicit ScopedStageAccum(StageAccum *accum)
        : previous_(currentStageAccum())
    {
        setCurrentStageAccum(accum);
    }

    ScopedStageAccum(const ScopedStageAccum &) = delete;
    ScopedStageAccum &operator=(const ScopedStageAccum &) = delete;

    ~ScopedStageAccum() { setCurrentStageAccum(previous_); }

  private:
    StageAccum *previous_;
};

} // namespace cegma::obs

#define CEGMA_TRACE_CONCAT2(a, b) a##b
#define CEGMA_TRACE_CONCAT(a, b) CEGMA_TRACE_CONCAT2(a, b)

/** Trace the enclosing scope as span `name` (category "app"). */
#define CEGMA_TRACE_SCOPE(name)                                             \
    ::cegma::obs::TraceScope CEGMA_TRACE_CONCAT(cegma_trace_scope_,         \
                                                __LINE__)(name)

/** Trace the enclosing scope as span `name` under category `cat`. */
#define CEGMA_TRACE_SCOPE_CAT(name, cat)                                    \
    ::cegma::obs::TraceScope CEGMA_TRACE_CONCAT(cegma_trace_scope_,         \
                                                __LINE__)(name, cat)

#endif // CEGMA_OBS_TRACE_HH
