#include "obs/metrics.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/build_info.hh"

namespace cegma::obs {

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

FloatGauge &
MetricsRegistry::floatGauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = floatGauges_[name];
    if (!slot)
        slot = std::make_unique<FloatGauge>();
    return *slot;
}

Gauge &
MetricsRegistry::providerGauge(const std::string &name,
                               std::function<int64_t()> provider)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    slot->provider_ = std::move(provider);
    return *slot;
}

FloatGauge &
MetricsRegistry::providerFloatGauge(const std::string &name,
                                    std::function<double()> provider)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = floatGauges_[name];
    if (!slot)
        slot = std::make_unique<FloatGauge>();
    slot->provider_ = std::move(provider);
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &unit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(unit);
    return *slot;
}

RegistrySnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot snap;
    snap.metrics.reserve(counters_.size() + gauges_.size() +
                         floatGauges_.size() + histograms_.size());
    for (const auto &[name, counter] : counters_) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::Counter;
        v.counter = counter->value();
        snap.metrics.push_back(std::move(v));
    }
    for (const auto &[name, gauge] : gauges_) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::Gauge;
        v.gauge = gauge->value();
        snap.metrics.push_back(std::move(v));
    }
    for (const auto &[name, gauge] : floatGauges_) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::FloatGauge;
        v.fgauge = gauge->value();
        snap.metrics.push_back(std::move(v));
    }
    for (const auto &[name, hist] : histograms_) {
        MetricValue v;
        v.name = name;
        v.kind = MetricValue::Kind::Histogram;
        v.hist = hist->summary();
        v.unit = hist->unit();
        snap.metrics.push_back(std::move(v));
    }
    return snap;
}

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
promMetricName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            c = '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
RegistrySnapshot::toJson() const
{
    std::string out = "{\"build\": ";
    out += buildInfoJson();
    out += ", \"metrics\": {";
    bool first = true;
    for (const MetricValue &m : metrics) {
        if (!first)
            out += ", ";
        first = false;
        appendf(out, "\"%s\": ", m.name.c_str());
        switch (m.kind) {
          case MetricValue::Kind::Counter:
            appendf(out, "%" PRIu64, m.counter);
            break;
          case MetricValue::Kind::Gauge:
            appendf(out, "%" PRId64, m.gauge);
            break;
          case MetricValue::Kind::FloatGauge:
            appendf(out, "%.6g", m.fgauge);
            break;
          case MetricValue::Kind::Histogram:
            appendf(out,
                    "{\"unit\": \"%s\", \"count\": %" PRIu64
                    ", \"sum\": %.3f, \"mean\": %.3f, \"max\": %.3f, "
                    "\"p50\": %" PRIu64 ", \"p95\": %" PRIu64
                    ", \"p99\": %" PRIu64 "}",
                    m.unit.c_str(), m.hist.count, m.hist.sum,
                    m.hist.mean, m.hist.max, m.hist.p50, m.hist.p95,
                    m.hist.p99);
            break;
        }
    }
    out += "}}";
    return out;
}

std::string
RegistrySnapshot::toPrometheus() const
{
    std::string out;
    // Build identification as the conventional info-style gauge: the
    // payload lives in label values, which is exactly where escaping
    // matters (git describe output, compiler flag strings).
    appendf(out, "# TYPE cegma_build_info gauge\n");
    out += "cegma_build_info{git=\"" +
           promEscapeLabelValue(buildGitHash()) + "\",compiler=\"" +
           promEscapeLabelValue(buildCompiler()) + "\",type=\"" +
           promEscapeLabelValue(buildType()) + "\",sanitizer=\"" +
           promEscapeLabelValue(buildSanitizer()) + "\",flags=\"" +
           promEscapeLabelValue(buildFlags()) + "\"} 1\n";
    for (const MetricValue &m : metrics) {
        std::string name = promMetricName(m.name);
        switch (m.kind) {
          case MetricValue::Kind::Counter:
            appendf(out, "# TYPE %s counter\n", name.c_str());
            appendf(out, "%s %" PRIu64 "\n", name.c_str(), m.counter);
            break;
          case MetricValue::Kind::Gauge:
            appendf(out, "# TYPE %s gauge\n", name.c_str());
            appendf(out, "%s %" PRId64 "\n", name.c_str(), m.gauge);
            break;
          case MetricValue::Kind::FloatGauge:
            appendf(out, "# TYPE %s gauge\n", name.c_str());
            appendf(out, "%s %.6g\n", name.c_str(), m.fgauge);
            break;
          case MetricValue::Kind::Histogram:
            appendf(out, "# TYPE %s summary\n", name.c_str());
            appendf(out, "%s{quantile=\"0.5\"} %" PRIu64 "\n",
                    name.c_str(), m.hist.p50);
            appendf(out, "%s{quantile=\"0.95\"} %" PRIu64 "\n",
                    name.c_str(), m.hist.p95);
            appendf(out, "%s{quantile=\"0.99\"} %" PRIu64 "\n",
                    name.c_str(), m.hist.p99);
            appendf(out, "%s_sum %.3f\n", name.c_str(), m.hist.sum);
            appendf(out, "%s_count %" PRIu64 "\n", name.c_str(),
                    m.hist.count);
            break;
        }
    }
    return out;
}

} // namespace cegma::obs
