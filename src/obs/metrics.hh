/**
 * @file
 * The process-level metrics registry: named counters, gauges, and
 * exact-quantile histograms (built on `IntDistribution`) behind one
 * exposition surface — JSON and Prometheus text.
 *
 * Design rules, in priority order:
 *   1. Recording must be cheap enough for per-stage use on the
 *      serving hot path: counters and gauges are single relaxed
 *      atomics; a histogram record is one uncontended mutex plus a
 *      map insert (the same machinery `ServiceMetrics` always paid).
 *   2. Registration returns *stable references*: `counter("x")` hands
 *      out an object that lives as long as the registry, so call
 *      sites resolve the name once (at wiring time) and never touch
 *      the registry map again.
 *   3. Registries are instances, not a forced global. The serving
 *      layer owns one per `SearchService` so concurrent services (and
 *      tests) do not bleed into each other; `MetricsRegistry::global()`
 *      is the process-wide default the CLI tools report from.
 *
 * Exposition: `snapshot()` copies every metric under the registration
 * lock (each histogram under its own lock) into a `RegistrySnapshot`
 * that renders as a JSON object (with the build-info stamp, see
 * obs/build_info.hh) or Prometheus text (`# TYPE` + summary
 * quantiles).
 */

#ifndef CEGMA_OBS_METRICS_HH
#define CEGMA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace cegma::obs {

/** A monotonically increasing 64-bit counter (relaxed atomics). */
class Counter
{
  public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * A settable signed gauge. Alternatively a gauge can be registered
 * with a *provider* callback (`MetricsRegistry::providerGauge`), in
 * which case `value()` polls the provider — the Prometheus "collect"
 * pattern for values something else already owns (cache bytes, queue
 * depth).
 */
class Gauge
{
  public:
    void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        if (provider_)
            return provider_();
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<int64_t> value_{0};
    std::function<int64_t()> provider_; ///< set once at registration
};

/**
 * A double-valued gauge for quantities that are genuinely fractional
 * (rates, ratios, SLO burn rates). Same provider pattern as `Gauge`.
 * Stored as the bit pattern in a relaxed atomic, so set/read are as
 * cheap as the integer gauge.
 */
class FloatGauge
{
  public:
    void set(double v)
    {
        bits_.store(toBits(v), std::memory_order_relaxed);
    }

    double value() const
    {
        if (provider_)
            return provider_();
        return fromBits(bits_.load(std::memory_order_relaxed));
    }

  private:
    friend class MetricsRegistry;

    static uint64_t toBits(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        return bits;
    }

    static double fromBits(uint64_t bits)
    {
        double v;
        __builtin_memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::atomic<uint64_t> bits_{0};
    std::function<double()> provider_; ///< set once at registration
};

/** Point-in-time summary of one histogram. */
struct HistogramSummary
{
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double max = 0.0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
};

/**
 * An exact-quantile histogram over unsigned integer samples: a
 * mutex-guarded `IntDistribution` (value -> count map, so quantiles
 * are exact over the recorded samples) plus a running sum/max. The
 * unit tag ("us", "bytes", ...) travels into the exposition.
 */
class Histogram
{
  public:
    explicit Histogram(std::string unit) : unit_(std::move(unit)) {}

    void record(uint64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dist_.add(value);
        stat_.add(static_cast<double>(value));
    }

    HistogramSummary summary() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        HistogramSummary s;
        s.count = dist_.total();
        s.sum = stat_.sum();
        s.mean = stat_.mean();
        s.max = stat_.max();
        s.p50 = dist_.valueAtQuantile(0.50);
        s.p95 = dist_.valueAtQuantile(0.95);
        s.p99 = dist_.valueAtQuantile(0.99);
        return s;
    }

    /** Exact quantile over everything recorded so far. */
    uint64_t valueAtQuantile(double q) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return dist_.valueAtQuantile(q);
    }

    /** Sum of all recorded samples. */
    double sum() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stat_.sum();
    }

    uint64_t count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return dist_.total();
    }

    const std::string &unit() const { return unit_; }

  private:
    mutable std::mutex mutex_;
    IntDistribution dist_;
    RunningStat stat_;
    std::string unit_;
};

/** One metric copied out of a registry. */
struct MetricValue
{
    enum class Kind
    {
        Counter,
        Gauge,
        FloatGauge,
        Histogram,
    };

    std::string name;
    Kind kind = Kind::Counter;
    uint64_t counter = 0;   ///< Kind::Counter
    int64_t gauge = 0;      ///< Kind::Gauge
    double fgauge = 0.0;    ///< Kind::FloatGauge
    HistogramSummary hist;  ///< Kind::Histogram
    std::string unit;       ///< Kind::Histogram
};

/** A point-in-time copy of a whole registry, name-ordered. */
struct RegistrySnapshot
{
    std::vector<MetricValue> metrics;

    /**
     * One JSON object: `{"build": {...}, "metrics": {name: ...}}`.
     * Counters and gauges render as numbers, histograms as objects
     * with count/sum/mean/max/p50/p95/p99/unit.
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition: metric names sanitized to
     * `[a-zA-Z0-9_]`, counters/gauges as singles, histograms as
     * summaries (quantile series + `_sum` + `_count`).
     */
    std::string toPrometheus() const;
};

/**
 * A named set of metrics. `counter`/`gauge`/`histogram` find-or-create
 * and hand back stable references (never invalidated while the
 * registry lives); creation takes the registry mutex, recording
 * through the returned reference does not.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide default registry. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    FloatGauge &floatGauge(const std::string &name);

    /**
     * Register (or re-bind) a gauge whose value is polled from
     * `provider` at read time. The provider must stay valid for the
     * registry's lifetime (or until re-bound).
     */
    Gauge &providerGauge(const std::string &name,
                         std::function<int64_t()> provider);

    /** The double-valued twin of `providerGauge`. */
    FloatGauge &providerFloatGauge(const std::string &name,
                                   std::function<double()> provider);

    /**
     * Find-or-create a histogram. The unit is fixed by the first
     * registration; later calls ignore their `unit` argument.
     */
    Histogram &histogram(const std::string &name,
                         const std::string &unit = "");

    /** Copy every metric out (see `RegistrySnapshot`). */
    RegistrySnapshot snapshot() const;

  private:
    // node-based maps: values never move, so references stay stable.
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<FloatGauge>> floatGauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Prometheus text-format helpers, exported so the exposition can be
 * lint-tested against the format grammar.
 */

/** Metric-name sanitization: every non-[a-zA-Z0-9_] becomes '_'. */
std::string promMetricName(const std::string &name);

/**
 * Label-value escaping per the Prometheus text exposition spec:
 * backslash, double quote, and newline become `\\`, `\"`, and `\n`.
 */
std::string promEscapeLabelValue(const std::string &value);

/**
 * The per-request stage timing sinks a model records into (wired by
 * whoever owns the registry — see `InferenceOptions::stages`). Null
 * members are simply not recorded.
 */
struct StageSink
{
    Histogram *embedUs = nullptr; ///< per-graph embedding chain
    Histogram *matchUs = nullptr; ///< similarity (+ cross messages)
    Histogram *dedupUs = nullptr; ///< EMF confirm + gather/scatter
    Histogram *headUs = nullptr;  ///< readout / CNN / MLP head
};

} // namespace cegma::obs

#endif // CEGMA_OBS_METRICS_HH
