#include "obs/perf_counters.hh"

#ifdef __linux__

#include <cerrno>
#include <cstring>

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace cegma::obs {

namespace {

int
openCounter(uint32_t type, uint64_t config, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0; // leader starts the group
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

uint64_t
readCount(int fd)
{
    uint64_t value = 0;
    if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value))
        value = 0;
    return value;
}

const char *
openFailureName(int err)
{
    switch (err) {
      case EACCES:
      case EPERM:
        return "perf_event_open denied (kernel.perf_event_paranoid)";
      case ENOENT:
      case ENODEV:
        return "cache events not supported on this CPU/PMU";
      case ENOSYS:
        return "perf_event_open not available (sandboxed kernel)";
      default:
        return "perf_event_open failed";
    }
}

} // namespace

CacheCounters::CacheCounters()
{
    fds_[0] = openCounter(PERF_TYPE_HARDWARE,
                          PERF_COUNT_HW_CACHE_REFERENCES, -1);
    if (fds_[0] < 0) {
        status_ = openFailureName(errno);
        return;
    }
    fds_[1] = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                          fds_[0]);
    fds_[2] = openCounter(PERF_TYPE_HW_CACHE,
                          PERF_COUNT_HW_CACHE_L1D |
                              (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                              (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
                          fds_[0]);
    if (fds_[1] < 0 || fds_[2] < 0) {
        // All or nothing: a partial group would silently compare
        // columns measured under different multiplexing.
        status_ = openFailureName(errno);
        for (int &fd : fds_) {
            if (fd >= 0)
                close(fd);
            fd = -1;
        }
        return;
    }
    status_ = "ok";
}

CacheCounters::~CacheCounters()
{
    for (int fd : fds_) {
        if (fd >= 0)
            close(fd);
    }
}

void
CacheCounters::start()
{
    if (!available())
        return;
    ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

CacheCounterSample
CacheCounters::stop()
{
    CacheCounterSample sample;
    if (!available())
        return sample;
    ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    sample.llcReferences = readCount(fds_[0]);
    sample.llcMisses = readCount(fds_[1]);
    sample.l1dMisses = readCount(fds_[2]);
    sample.valid = true;
    return sample;
}

CacheCounterSample
CacheCounters::sample() const
{
    CacheCounterSample sample;
    if (!available())
        return sample;
    sample.llcReferences = readCount(fds_[0]);
    sample.llcMisses = readCount(fds_[1]);
    sample.l1dMisses = readCount(fds_[2]);
    sample.valid = true;
    return sample;
}

} // namespace cegma::obs

#else // !__linux__

namespace cegma::obs {

CacheCounters::CacheCounters()
{
    status_ = "perf_event_open is Linux-only";
}

CacheCounters::~CacheCounters() = default;

void
CacheCounters::start()
{
}

CacheCounterSample
CacheCounters::stop()
{
    return {};
}

CacheCounterSample
CacheCounters::sample() const
{
    return {};
}

} // namespace cegma::obs

#endif // __linux__
