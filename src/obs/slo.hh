/**
 * @file
 * Rolling-window statistics and SLO tracking for the live telemetry
 * plane — the layer between the lifetime-exact metrics registry
 * (obs/metrics.hh) and the admin server's `/metrics` endpoint.
 *
 * The lifetime histograms answer "what happened since the process
 * started"; a scheduler (or an alerting rule) needs "what is happening
 * *now*". Every type here implements the same scheme: N fixed buckets
 * laid out on a monotonic clock, each stamped with the bucket-sequence
 * number it belongs to. A record lands in the bucket of the current
 * sequence (lazily resetting a bucket whose stamp is stale), and a
 * read merges exactly the buckets whose stamps still fall inside the
 * window. Rotation is therefore driven purely by the clock value, so a
 * test can inject a fake clock and assert bucket rotation, merge-on-
 * read quantiles, and burn-rate math *exactly* — no sleeps, no slop.
 *
 * Concurrency: each windowed object is one mutex; records are
 * per-request (not per-pair), so contention is the same order as the
 * registry histograms the serving path already pays.
 *
 * Also here: `CriticalPath`, the per-request stage attribution record
 * (queue/embed/dedup/match/head/memo micro-times) the serving layer
 * returns in `QueryResult::breakdown`, and `TailExemplars`, the
 * bounded top-K-slowest-per-window store `/tracez` renders — so tail
 * latency is explained, not just measured.
 */

#ifndef CEGMA_OBS_SLO_HH
#define CEGMA_OBS_SLO_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace cegma::obs {

/**
 * Injectable monotonic clock (nanoseconds). Empty means the real
 * steady clock (`obs::nowNs`); tests install a deterministic one.
 */
using ClockFn = std::function<uint64_t()>;

/**
 * A counter over a rolling window: `add` lands in the current bucket,
 * `total`/`ratePerSec` merge the buckets still inside the window.
 */
class WindowedCounter
{
  public:
    /**
     * @param window_ns window length; reads cover [now - window, now]
     * @param buckets   rotation granularity (window_ns / buckets per
     *                  bucket); more buckets = smoother expiry
     */
    WindowedCounter(uint64_t window_ns, uint32_t buckets,
                    ClockFn clock = nullptr);

    void add(uint64_t delta = 1);

    /** Sum over the buckets still inside the window. */
    uint64_t total() const;

    /** `total()` divided by the window length in seconds. */
    double ratePerSec() const;

    uint64_t windowNs() const { return windowNs_; }

  private:
    struct Bucket
    {
        uint64_t seq = UINT64_MAX; ///< bucket-sequence stamp
        uint64_t count = 0;
    };

    uint64_t now() const;
    uint64_t liveTotal(uint64_t now_ns) const; ///< callers hold mutex_

    const uint64_t windowNs_;
    const uint64_t bucketNs_;
    ClockFn clock_;
    mutable std::mutex mutex_;
    std::vector<Bucket> buckets_;
};

/** Point-in-time summary of a windowed distribution. */
struct WindowedSummary
{
    uint64_t count = 0;
    double sum = 0.0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
};

/**
 * An exact-quantile distribution over a rolling window: per-bucket
 * `IntDistribution`s merged on read, so the 1-minute p99 is exact over
 * precisely the samples recorded in the last minute.
 */
class WindowedDistribution
{
  public:
    WindowedDistribution(uint64_t window_ns, uint32_t buckets,
                         ClockFn clock = nullptr);

    void record(uint64_t value);

    /** Merge the live buckets and summarize (exact quantiles). */
    WindowedSummary summary() const;

    /** Samples per second over the window. */
    double ratePerSec() const;

    uint64_t windowNs() const { return windowNs_; }

  private:
    struct Bucket
    {
        uint64_t seq = UINT64_MAX;
        IntDistribution dist;
        double sum = 0.0;
    };

    uint64_t now() const;

    const uint64_t windowNs_;
    const uint64_t bucketNs_;
    ClockFn clock_;
    mutable std::mutex mutex_;
    std::vector<Bucket> buckets_;
};

/** Static SLO definition for the serving layer. */
struct SloConfig
{
    /**
     * Latency target in milliseconds; 0 disables SLO tracking. A
     * request is "good" when it completes successfully within the
     * target, "bad" when it fails (rejected / expired / shed /
     * drain-dropped) or completes over the target.
     */
    double targetMs = 0.0;

    /**
     * Fraction of requests that must be good (e.g. 0.99). The error
     * budget is `1 - objective`; burn rate 1.0 means the budget is
     * being consumed exactly at the sustainable pace, >1 means an
     * alerting-worthy burn.
     */
    double objective = 0.99;

    bool enabled() const { return targetMs > 0.0; }
};

/**
 * Multi-window SLO burn-rate tracking (the Google SRE-workbook
 * multi-window multi-burn-rate shape): good/bad counts per rolling
 * window, burn rate = badFraction / errorBudget per window. Short
 * windows catch fast burns, long windows confirm sustained ones.
 */
class SloTracker
{
  public:
    /** The default horizons: 10 s, 1 min, 5 min. */
    static std::vector<uint64_t> defaultWindowsNs();

    SloTracker(SloConfig config,
               std::vector<uint64_t> windows_ns = defaultWindowsNs(),
               uint32_t buckets = 12, ClockFn clock = nullptr);

    const SloConfig &config() const { return config_; }
    size_t windows() const { return good_.size(); }
    uint64_t windowNs(size_t w) const { return good_[w]->windowNs(); }

    /** Record one request outcome against the SLO. */
    void record(bool good);

    /** Fraction of requests in window `w` that were bad (0 if none). */
    double badFraction(size_t w) const;

    /**
     * Error-budget burn rate over window `w`:
     * `badFraction(w) / (1 - objective)`. 0 when the window is empty.
     */
    double burnRate(size_t w) const;

  private:
    SloConfig config_;
    // unique_ptr because WindowedCounter owns a mutex (immovable).
    std::vector<std::unique_ptr<WindowedCounter>> good_;
    std::vector<std::unique_ptr<WindowedCounter>> bad_;
};

/**
 * Per-request critical-path attribution: where one request's time
 * went, stage by stage. Stage times are summed across the pair-
 * parallel workers that scored the request's pairs, so they are
 * *thread*-time — their total can exceed the request's wall time by up
 * to the pool width (that surplus is exactly the parallelism the
 * request enjoyed).
 */
struct CriticalPath
{
    uint64_t requestId = 0;

    // Wall-clock segments.
    uint64_t queueUs = 0; ///< submit -> batch flush
    uint64_t totalUs = 0; ///< submit -> result ready

    // Thread-time per stage across this request's scored pairs.
    uint64_t embedUs = 0;
    uint64_t dedupUs = 0;
    uint64_t matchUs = 0;
    uint64_t headUs = 0;
    uint64_t memoUs = 0;

    uint32_t batchSize = 0; ///< batch the request rode in
    uint64_t epoch = 0;     ///< corpus epoch it scored against
    uint64_t startNs = 0;   ///< submit time on the trace timeline

    /** Sum of the per-stage thread-times (excludes queue wait). */
    uint64_t stageSumUs() const
    {
        return embedUs + dedupUs + matchUs + headUs + memoUs;
    }

    /** One JSON object (used by `/tracez` and tests). */
    std::string toJson() const;
};

/**
 * Bounded tail-exemplar store: the top-K slowest `CriticalPath`
 * records per rolling window, a few windows retained, so `/tracez`
 * can always explain the *current* tail rather than the slowest
 * request since boot. Memory is O(topK * windows), regardless of
 * traffic.
 */
class TailExemplars
{
  public:
    TailExemplars(size_t top_k, uint64_t window_ns, uint32_t windows,
                  ClockFn clock = nullptr);

    void record(const CriticalPath &path);

    /**
     * Every retained exemplar across the live windows, slowest first.
     */
    std::vector<CriticalPath> collect() const;

    size_t topK() const { return topK_; }

  private:
    struct Bucket
    {
        uint64_t seq = UINT64_MAX;
        std::vector<CriticalPath> paths; ///< min-heap by totalUs
    };

    uint64_t now() const;

    const size_t topK_;
    const uint64_t windowNs_;
    ClockFn clock_;
    mutable std::mutex mutex_;
    std::vector<Bucket> buckets_;
};

} // namespace cegma::obs

#endif // CEGMA_OBS_SLO_HH
