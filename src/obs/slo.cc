#include "obs/slo.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.hh"

namespace cegma::obs {

// ---- WindowedCounter ------------------------------------------------

WindowedCounter::WindowedCounter(uint64_t window_ns, uint32_t buckets,
                                 ClockFn clock)
    : windowNs_(window_ns > 0 ? window_ns : 1),
      bucketNs_(std::max<uint64_t>(
          1, (window_ns > 0 ? window_ns : 1) /
                 std::max<uint32_t>(1, buckets))),
      clock_(std::move(clock)),
      buckets_(std::max<uint32_t>(1, buckets))
{
}

uint64_t
WindowedCounter::now() const
{
    return clock_ ? clock_() : nowNs();
}

void
WindowedCounter::add(uint64_t delta)
{
    uint64_t seq = now() / bucketNs_;
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &b = buckets_[seq % buckets_.size()];
    if (b.seq != seq) {
        b.seq = seq;
        b.count = 0;
    }
    b.count += delta;
}

uint64_t
WindowedCounter::liveTotal(uint64_t now_ns) const
{
    // A bucket is live when its whole span is within the window
    // ending now: seq in (current - buckets, current]. Stale stamps
    // (from a lapse in traffic) just fail the test and are skipped.
    uint64_t seq = now_ns / bucketNs_;
    uint64_t oldest =
        seq >= buckets_.size() ? seq - buckets_.size() + 1 : 0;
    uint64_t sum = 0;
    for (const Bucket &b : buckets_) {
        if (b.seq != UINT64_MAX && b.seq >= oldest && b.seq <= seq)
            sum += b.count;
    }
    return sum;
}

uint64_t
WindowedCounter::total() const
{
    uint64_t t = now();
    std::lock_guard<std::mutex> lock(mutex_);
    return liveTotal(t);
}

double
WindowedCounter::ratePerSec() const
{
    return static_cast<double>(total()) /
           (static_cast<double>(windowNs_) / 1e9);
}

// ---- WindowedDistribution -------------------------------------------

WindowedDistribution::WindowedDistribution(uint64_t window_ns,
                                           uint32_t buckets,
                                           ClockFn clock)
    : windowNs_(window_ns > 0 ? window_ns : 1),
      bucketNs_(std::max<uint64_t>(
          1, (window_ns > 0 ? window_ns : 1) /
                 std::max<uint32_t>(1, buckets))),
      clock_(std::move(clock)),
      buckets_(std::max<uint32_t>(1, buckets))
{
}

uint64_t
WindowedDistribution::now() const
{
    return clock_ ? clock_() : nowNs();
}

void
WindowedDistribution::record(uint64_t value)
{
    uint64_t seq = now() / bucketNs_;
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &b = buckets_[seq % buckets_.size()];
    if (b.seq != seq) {
        b.seq = seq;
        b.dist = IntDistribution();
        b.sum = 0.0;
    }
    b.dist.add(value);
    b.sum += static_cast<double>(value);
}

WindowedSummary
WindowedDistribution::summary() const
{
    uint64_t seq = now() / bucketNs_;
    uint64_t oldest =
        seq >= buckets_.size() ? seq - buckets_.size() + 1 : 0;
    IntDistribution merged;
    WindowedSummary s;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Bucket &b : buckets_) {
        if (b.seq != UINT64_MAX && b.seq >= oldest && b.seq <= seq) {
            merged.merge(b.dist);
            s.sum += b.sum;
        }
    }
    s.count = merged.total();
    s.p50 = merged.valueAtQuantile(0.50);
    s.p95 = merged.valueAtQuantile(0.95);
    s.p99 = merged.valueAtQuantile(0.99);
    return s;
}

double
WindowedDistribution::ratePerSec() const
{
    return static_cast<double>(summary().count) /
           (static_cast<double>(windowNs_) / 1e9);
}

// ---- SloTracker -----------------------------------------------------

std::vector<uint64_t>
SloTracker::defaultWindowsNs()
{
    return {uint64_t{10} * 1000000000ull, uint64_t{60} * 1000000000ull,
            uint64_t{300} * 1000000000ull};
}

SloTracker::SloTracker(SloConfig config,
                       std::vector<uint64_t> windows_ns,
                       uint32_t buckets, ClockFn clock)
    : config_(config)
{
    good_.reserve(windows_ns.size());
    bad_.reserve(windows_ns.size());
    for (uint64_t w : windows_ns) {
        good_.push_back(
            std::make_unique<WindowedCounter>(w, buckets, clock));
        bad_.push_back(
            std::make_unique<WindowedCounter>(w, buckets, clock));
    }
}

void
SloTracker::record(bool good)
{
    for (size_t w = 0; w < good_.size(); ++w)
        (good ? *good_[w] : *bad_[w]).add();
}

double
SloTracker::badFraction(size_t w) const
{
    uint64_t good = good_[w]->total();
    uint64_t bad = bad_[w]->total();
    uint64_t total = good + bad;
    return total > 0
               ? static_cast<double>(bad) / static_cast<double>(total)
               : 0.0;
}

double
SloTracker::burnRate(size_t w) const
{
    double budget = 1.0 - config_.objective;
    if (budget <= 0.0)
        budget = 1e-9; // objective 1.0: any badness is an infinite burn
    return badFraction(w) / budget;
}

// ---- CriticalPath ---------------------------------------------------

std::string
CriticalPath::toJson() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"id\": %" PRIu64 ", \"total_us\": %" PRIu64
        ", \"queue_us\": %" PRIu64 ", \"batch\": %" PRIu32
        ", \"epoch\": %" PRIu64 ", \"stages_us\": {\"embed\": %" PRIu64
        ", \"dedup\": %" PRIu64 ", \"match\": %" PRIu64
        ", \"head\": %" PRIu64 ", \"memo\": %" PRIu64
        "}, \"stage_sum_us\": %" PRIu64 "}",
        requestId, totalUs, queueUs, batchSize, epoch, embedUs, dedupUs,
        matchUs, headUs, memoUs, stageSumUs());
    return buf;
}

// ---- TailExemplars --------------------------------------------------

namespace {

/** Min-heap order on total latency: the cheapest exemplar on top. */
bool
fasterOf(const CriticalPath &a, const CriticalPath &b)
{
    return a.totalUs > b.totalUs;
}

} // namespace

TailExemplars::TailExemplars(size_t top_k, uint64_t window_ns,
                             uint32_t windows, ClockFn clock)
    : topK_(top_k > 0 ? top_k : 1),
      windowNs_(window_ns > 0 ? window_ns : 1), clock_(std::move(clock)),
      buckets_(std::max<uint32_t>(1, windows))
{
}

uint64_t
TailExemplars::now() const
{
    return clock_ ? clock_() : nowNs();
}

void
TailExemplars::record(const CriticalPath &path)
{
    uint64_t seq = now() / windowNs_;
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &b = buckets_[seq % buckets_.size()];
    if (b.seq != seq) {
        b.seq = seq;
        b.paths.clear();
    }
    if (b.paths.size() < topK_) {
        b.paths.push_back(path);
        std::push_heap(b.paths.begin(), b.paths.end(), fasterOf);
        return;
    }
    // Full bucket: replace the fastest retained exemplar if this one
    // is slower — the bucket converges on the K slowest of its window.
    if (path.totalUs > b.paths.front().totalUs) {
        std::pop_heap(b.paths.begin(), b.paths.end(), fasterOf);
        b.paths.back() = path;
        std::push_heap(b.paths.begin(), b.paths.end(), fasterOf);
    }
}

std::vector<CriticalPath>
TailExemplars::collect() const
{
    uint64_t seq = now() / windowNs_;
    uint64_t oldest =
        seq >= buckets_.size() ? seq - buckets_.size() + 1 : 0;
    std::vector<CriticalPath> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const Bucket &b : buckets_) {
            if (b.seq != UINT64_MAX && b.seq >= oldest && b.seq <= seq)
                out.insert(out.end(), b.paths.begin(), b.paths.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const CriticalPath &a, const CriticalPath &b) {
                  if (a.totalUs != b.totalUs)
                      return a.totalUs > b.totalUs;
                  return a.requestId < b.requestId;
              });
    return out;
}

} // namespace cegma::obs
