#include "obs/admin_http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace cegma::obs {

namespace {

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 413: return "Payload Too Large";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

/** Write all of `data` (handles partial sends; SIGPIPE suppressed). */
bool
sendAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

void
AdminServer::handle(const std::string &path,
                    std::function<HttpResponse(const HttpRequest &)> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    handlers_[path] = std::move(fn);
}

std::string
AdminServer::status() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return statusMsg_;
}

bool
AdminServer::start(const Config &config)
{
    auto fail = [this](const char *what) {
        std::lock_guard<std::mutex> lock(mutex_);
        statusMsg_ = std::string(what) + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    if (running())
        return true;
    stopping_.store(false, std::memory_order_release);
    config_ = config;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind");
    if (::listen(listenFd_, 16) != 0)
        return fail("listen");

    // Resolve the actual port (meaningful when config.port was 0).
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0)
        return fail("getsockname");
    port_.store(ntohs(bound.sin_port), std::memory_order_release);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        statusMsg_ = "ok";
    }
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
AdminServer::stop()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false, std::memory_order_release);
    port_.store(0, std::memory_order_release);
}

void
AdminServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        // Poll with a short timeout so stop() is honored promptly —
        // closing a listening fd does not reliably wake a blocked
        // accept() on every platform.
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 50);
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        timeval tv{};
        tv.tv_sec = config_.ioTimeoutMs / 1000;
        tv.tv_usec = (config_.ioTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        serveConnection(fd);
        ::close(fd);
    }
}

void
AdminServer::serveConnection(int fd)
{
    // Read until the end of the request head (or the size bound); the
    // admin plane has no request bodies worth reading.
    std::string req;
    char buf[2048];
    bool have_head = false;
    while (req.size() < config_.maxRequestBytes) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<size_t>(n));
        if (req.find("\r\n\r\n") != std::string::npos ||
            req.find("\n\n") != std::string::npos) {
            have_head = true;
            break;
        }
    }

    HttpResponse resp;
    HttpRequest parsed;
    if (!have_head) {
        resp.status = req.size() >= config_.maxRequestBytes ? 413 : 400;
        resp.body = "bad request\n";
    } else {
        // Request line: METHOD SP TARGET SP VERSION.
        size_t eol = req.find_first_of("\r\n");
        std::string line = req.substr(0, eol);
        size_t sp1 = line.find(' ');
        size_t sp2 = line.find(' ', sp1 == std::string::npos
                                         ? std::string::npos
                                         : sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos) {
            resp.status = 400;
            resp.body = "bad request line\n";
        } else {
            parsed.method = line.substr(0, sp1);
            parsed.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            size_t query = parsed.target.find('?');
            if (query != std::string::npos)
                parsed.target.resize(query);
            if (parsed.method != "GET" && parsed.method != "HEAD") {
                resp.status = 405;
                resp.body = "method not allowed\n";
            } else {
                std::function<HttpResponse(const HttpRequest &)> fn;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    auto it = handlers_.find(parsed.target);
                    if (it != handlers_.end())
                        fn = it->second;
                }
                if (!fn) {
                    resp.status = 404;
                    resp.body = "not found\n";
                } else {
                    resp = fn(parsed);
                }
            }
        }
    }

    char head[256];
    int n = std::snprintf(head, sizeof(head),
                          "HTTP/1.1 %d %s\r\n"
                          "Content-Type: %s\r\n"
                          "Content-Length: %zu\r\n"
                          "Connection: close\r\n\r\n",
                          resp.status, reasonPhrase(resp.status),
                          resp.contentType.c_str(), resp.body.size());
    // Propagate short writes: a peer that closed mid-response fails
    // the header send, and writing the body into a dead socket would
    // be wasted syscalls (and a second failure). The connection is
    // torn down either way — `Connection: close` — so a failed send
    // only increments the error counter.
    bool sent = sendAll(fd, head, static_cast<size_t>(n));
    if (sent && parsed.method != "HEAD")
        sent = sendAll(fd, resp.body.data(), resp.body.size());
    if (!sent)
        writeErrors_.fetch_add(1, std::memory_order_relaxed);
    served_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace cegma::obs
