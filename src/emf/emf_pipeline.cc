#include "emf/emf_pipeline.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace cegma {

EmfPipelineResult
runEmfPipeline(const std::vector<uint32_t> &tags, uint64_t feature_bytes,
               const EmfPipelineConfig &config)
{
    CEGMA_TRACE_SCOPE_CAT("emf.pipeline", "kernel");
    cegma_assert(config.hashLanes > 0 && config.taskBufferDepth > 0);
    cegma_assert(config.numSubsets > 0 && config.pipelineWidth > 0);

    EmfPipelineResult result;
    result.sets.isUnique.assign(tags.size(), 0);
    result.sets.uniqueOf.resize(tags.size());
    result.sets.recordSet.reserve(tags.size());
    result.sets.tagMap.reserve(tags.size());
    result.subsetSizes.assign(config.numSubsets, 0);

    // Producer state: the MAC subarray hashes waves of hashLanes
    // vectors; a finished wave must fit in the TaskBuffer before the
    // next wave starts (back-pressure).
    const uint64_t wave_cycles = config.hashWaveCycles(feature_bytes);
    uint32_t next_node = 0;
    uint64_t wave_remaining =
        tags.empty() ? 0 : wave_cycles; // current wave countdown
    std::vector<uint32_t> finished_wave; // hashed, waiting to enqueue

    // TaskBuffer between the producer and the filter.
    std::deque<uint32_t> task_buffer;

    // Filter state: tag -> unique node index (the RecordSet content),
    // with the per-subset occupancy tracked for the lookup latency.
    std::unordered_map<uint32_t, uint32_t> record;
    record.reserve(tags.size());
    uint32_t round_robin = 0;
    uint64_t lookup_busy = 0; // cycles left in a multi-pass lookup

    uint64_t cycle = 0;
    while (next_node < tags.size() || !finished_wave.empty() ||
           !task_buffer.empty() || wave_remaining > 0) {
        ++cycle;

        // ---- Producer -----------------------------------------------
        if (!finished_wave.empty()) {
            // Drain the finished wave into the TaskBuffer. While any
            // of it remains, the MAC subarray cannot start the next
            // wave: back-pressure.
            while (!finished_wave.empty() &&
                   task_buffer.size() < config.taskBufferDepth) {
                task_buffer.push_back(finished_wave.back());
                finished_wave.pop_back();
            }
            if (!finished_wave.empty())
                ++result.stallCycles;
        } else if (wave_remaining > 0) {
            ++result.hashCycles;
            if (--wave_remaining == 0) {
                uint32_t lanes = std::min<uint32_t>(
                    config.hashLanes,
                    static_cast<uint32_t>(tags.size()) - next_node);
                // Push in reverse so draining from the back keeps the
                // node-index scan order of Algorithm 1.
                for (uint32_t lane = lanes; lane > 0; --lane)
                    finished_wave.push_back(next_node + lane - 1);
                next_node += lanes;
                if (next_node < tags.size())
                    wave_remaining = wave_cycles;
            }
        }
        result.taskBufferPeak = std::max(
            result.taskBufferPeak,
            static_cast<uint32_t>(task_buffer.size()));

        // ---- DuplicateFilter ----------------------------------------
        if (lookup_busy > 0) {
            --lookup_busy;
            continue;
        }
        if (task_buffer.empty()) {
            ++result.filterIdleCycles;
            continue;
        }

        // Lookup latency: every subset scans its FIFO through its DC
        // bank; single-pass lookups retire pipelineWidth tasks per
        // cycle, multi-pass lookups serialize.
        uint32_t largest_subset = *std::max_element(
            result.subsetSizes.begin(), result.subsetSizes.end());
        uint64_t passes = (largest_subset + config.comparatorsPerSubset -
                           1) / config.comparatorsPerSubset;
        uint32_t retire = passes <= 1 ? config.pipelineWidth : 1;
        lookup_busy = passes > 1 ? passes - 1 : 0;

        for (uint32_t k = 0; k < retire && !task_buffer.empty(); ++k) {
            uint32_t node = task_buffer.front();
            task_buffer.pop_front();
            uint32_t tag = tags[node];
            auto it = record.find(tag);
            if (it == record.end()) {
                // Miss: insert into the TagBuffer round-robin.
                record.emplace(tag, node);
                result.sets.recordSet.push_back({node, tag});
                result.sets.isUnique[node] = 1;
                result.sets.uniqueOf[node] = node;
                ++result.subsetSizes[round_robin];
                round_robin = (round_robin + 1) % config.numSubsets;
            } else {
                // Hit: write the affiliation to the MapBuffer.
                result.sets.tagMap.push_back({node, it->second});
                result.sets.uniqueOf[node] = it->second;
            }
        }
    }

    result.cycles = cycle;
    return result;
}

EmfPipelineResult
hashAndRunEmfPipeline(const Matrix &features, uint32_t seed,
                      const EmfPipelineConfig &config)
{
    return runEmfPipeline(computeEmfTags(features, seed),
                          features.cols() * sizeof(float), config);
}

} // namespace cegma
