#include "emf/emf.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "hash/xxhash.hh"

namespace cegma {

namespace {

EmfResult
filterFromTags(const std::vector<uint32_t> &tags)
{
    EmfResult result;
    const size_t n = tags.size();
    result.isUnique.assign(n, 0);
    result.uniqueOf.resize(n);
    // Worst case every node is unique (or every node past the first a
    // duplicate); reserving both to n trades one allocation each for
    // zero realloc churn inside the scan loop.
    result.recordSet.reserve(n);
    result.tagMap.reserve(n);

    // tag -> index of the unique node that registered it.
    std::unordered_map<uint32_t, uint32_t> record;
    record.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        auto it = record.find(tags[i]);
        if (it == record.end()) {
            record.emplace(tags[i], i);
            result.recordSet.push_back({i, tags[i]});
            result.isUnique[i] = 1;
            result.uniqueOf[i] = i;
        } else {
            result.tagMap.push_back({i, it->second});
            result.uniqueOf[i] = it->second;
        }
    }
    return result;
}

} // namespace

std::vector<uint32_t>
computeEmfTags(const Matrix &features, uint32_t seed)
{
    std::vector<uint32_t> tags(features.rows());
    const size_t row_bytes = features.cols() * sizeof(float);
    // XXH32 consumes ~1 byte/cycle, so weight the grain by row bytes.
    size_t grain = grainForRows(features.rows(), 4 * features.cols());
    parallelFor(0, features.rows(), grain, [&](size_t v0, size_t v1) {
        // Batch API: under AVX2 dispatch eight rows hash in parallel
        // lanes; per-row digests are independent, so the result is
        // bit-identical at any thread count and SIMD level.
        xxhash32Rows(features.row(v0), row_bytes, row_bytes, v1 - v0,
                     seed, tags.data() + v0);
    });
    return tags;
}

EmfResult
emfFilter(const Matrix &features, uint32_t seed)
{
    return filterFromTags(computeEmfTags(features, seed));
}

EmfResult
emfFilterTags(const std::vector<uint32_t> &tags)
{
    return filterFromTags(tags);
}

uint64_t
EmfCycleModel::hashCycles(uint64_t nodes, uint64_t feature_bytes) const
{
    cegma_assert(hashLanes > 0);
    uint64_t stripes = (feature_bytes + 15) / 16;
    uint64_t waves = (nodes + hashLanes - 1) / hashLanes;
    // One stripe per cycle per lane, plus a 3-cycle merge/avalanche
    // drain per wave.
    return waves * (stripes + 3);
}

uint64_t
EmfCycleModel::filterCycles(const std::vector<uint32_t> &classes) const
{
    cegma_assert(comparators > 0);
    // The TagBuffer is banked into parallel loop-back FIFO subsets
    // (Fig. 11), so while the RecordSet fits the comparator array the
    // filter sustains `pipelineWidth` tag lookups per cycle; larger
    // RecordSets serialize over ceil(|R| / comparators) passes.
    constexpr double pipelineWidth = 4.0;
    double cycles = 0.0;
    uint64_t record_size = 0;
    std::unordered_map<uint32_t, bool> seen;
    seen.reserve(classes.size());
    for (uint32_t cls : classes) {
        double passes = static_cast<double>(record_size) / comparators;
        cycles += std::max(1.0 / pipelineWidth, passes);
        if (seen.try_emplace(cls, true).second)
            ++record_size;
    }
    return static_cast<uint64_t>(cycles + 0.999);
}

} // namespace cegma
