/**
 * @file
 * Cycle-stepped microarchitectural model of the Elastic Matching
 * Filter (paper Fig. 11), one level below the analytical
 * EmfCycleModel:
 *
 *  - the MAC subarray hashes `hashLanes` node feature vectors per
 *    wave (one 16-byte XXH32 stripe per lane per cycle) and pushes
 *    (node index, tag) task entries into the TaskBuffer;
 *  - the TaskBuffer is a finite-depth FIFO; when it fills, the
 *    producer stalls (back-pressure onto the MAC subarray);
 *  - the DuplicateFilter FSM pops tasks and searches the TagBuffer —
 *    a set of loop-back FIFO subsets scanned in parallel by the
 *    duplicate comparators (DCs); single-pass lookups pipeline
 *    `pipelineWidth`-wide;
 *  - hits write (dup idx, unique idx) entries to the MapBuffer;
 *    misses insert into the TagBuffer subsets round-robin.
 *
 * The model reports total/stall cycles and buffer high-water marks,
 * and its RecordSet/TagMap are validated against the functional
 * Algorithm 1 implementation.
 */

#ifndef CEGMA_EMF_EMF_PIPELINE_HH
#define CEGMA_EMF_EMF_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "emf/emf.hh"

namespace cegma {

/** Microarchitectural parameters of the EMF (Table III defaults). */
struct EmfPipelineConfig
{
    /** Node vectors hashed concurrently by the MAC subarray. */
    uint32_t hashLanes = 32;
    /** TaskBuffer FIFO depth in (idx, tag) entries. */
    uint32_t taskBufferDepth = 64;
    /** TagBuffer loop-back FIFO subsets (parallel lookup banks). */
    uint32_t numSubsets = 32;
    /** 32-bit identity comparators per subset (32 x 32 = 1024). */
    uint32_t comparatorsPerSubset = 32;
    /** Tasks retired per cycle when lookups are single-pass. */
    uint32_t pipelineWidth = 4;

    /** Total duplicate comparators. */
    uint32_t totalComparators() const
    {
        return numSubsets * comparatorsPerSubset;
    }

    /** Cycles for one hash wave over `feature_bytes`-byte vectors. */
    uint64_t
    hashWaveCycles(uint64_t feature_bytes) const
    {
        return (feature_bytes + 15) / 16 + 3; // stripes + drain
    }
};

/** Outcome of one pipeline run. */
struct EmfPipelineResult
{
    uint64_t cycles = 0;       ///< total cycles to drain everything
    uint64_t hashCycles = 0;   ///< cycles the producer was hashing
    uint64_t stallCycles = 0;  ///< producer stalls on a full TaskBuffer
    uint64_t filterIdleCycles = 0; ///< filter starved for tasks
    uint32_t taskBufferPeak = 0;   ///< TaskBuffer high-water mark
    std::vector<uint32_t> subsetSizes; ///< final TagBuffer occupancy

    /** The RecordSet/TagMap the hardware produced. */
    EmfResult sets;
};

/**
 * Run the EMF pipeline over per-node tags (as produced by hashing the
 * layer l-1 feature vectors of `feature_bytes` bytes each).
 */
EmfPipelineResult runEmfPipeline(const std::vector<uint32_t> &tags,
                                 uint64_t feature_bytes,
                                 const EmfPipelineConfig &config = {});

/**
 * Convenience entry point: hash `features` rows to tags (row-parallel
 * over the thread pool, see `computeEmfTags`) and run the pipeline on
 * them. `feature_bytes` is taken from the row width.
 */
EmfPipelineResult hashAndRunEmfPipeline(
    const Matrix &features, uint32_t seed = 0,
    const EmfPipelineConfig &config = {});

} // namespace cegma

#endif // CEGMA_EMF_EMF_PIPELINE_HH
