/**
 * @file
 * The Elastic Matching Filter (paper Section IV-B, Algorithm 1).
 *
 * Functional model: hash each node's feature vector with XXHash32 into
 * a tag; the first node carrying a tag enters the RecordSet (a unique
 * node), later carriers enter the TagMap pointing at their unique
 * representative. Matching rows/columns of duplicate nodes are then
 * skipped and copied from the representative's results.
 *
 * Hardware cycle model: the MAC subarray pipelines the XXH32 stripe
 * recurrence over `hashLanes` nodes concurrently; the DuplicateFilter
 * looks each tag up against the TagBuffer through `comparators`
 * parallel 32-bit identity comparators (Fig. 11 / Fig. 23).
 */

#ifndef CEGMA_EMF_EMF_HH
#define CEGMA_EMF_EMF_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/matrix.hh"

namespace cegma {

/** Outcome of one EMF pass over a set of node features. */
struct EmfResult
{
    /** RecordSet entries: (unique node index, tag), in scan order. */
    std::vector<std::pair<uint32_t, uint32_t>> recordSet;

    /** TagMap entries: (duplicate node index, unique node index). */
    std::vector<std::pair<uint32_t, uint32_t>> tagMap;

    /**
     * Per node: nonzero iff the node's tag was first seen at the node.
     * Stored as bytes, not `std::vector<bool>`: the bit-packed proxy
     * reads are slow on the hot dedup paths and hostile to parallel
     * writers (two bits of one word may be written from two chunks).
     */
    std::vector<uint8_t> isUnique;

    /** Per node: index of its unique representative (self if unique). */
    std::vector<uint32_t> uniqueOf;

    /** @return unique node count. */
    uint32_t numUnique() const
    {
        return static_cast<uint32_t>(recordSet.size());
    }

    /** @return duplicate node count. */
    uint32_t numDuplicates() const
    {
        return static_cast<uint32_t>(tagMap.size());
    }
};

/**
 * Run Algorithm 1 over the rows of a feature matrix (the layer l-1
 * outputs). Hashes raw IEEE-754 bits; two rows collide exactly when
 * bitwise identical (modulo the hash's ~1e-7 collision rate, which the
 * paper measures as negligible).
 */
EmfResult emfFilter(const Matrix &features, uint32_t seed = 0);

/** Run Algorithm 1 over precomputed 32-bit tags. */
EmfResult emfFilterTags(const std::vector<uint32_t> &tags);

/**
 * XXHash32 tag per feature row — the hashing stage of Algorithm 1 on
 * its own. Row-parallel over the pool (the hardware analogue hashes
 * `hashLanes` nodes concurrently); per-row tags are independent, so
 * the result is bit-identical at any thread count.
 */
std::vector<uint32_t> computeEmfTags(const Matrix &features,
                                     uint32_t seed = 0);

/** Cycle model of the EMF hardware (Table III / Fig. 23). */
struct EmfCycleModel
{
    uint32_t hashLanes = 32;     ///< nodes hashed concurrently
    uint32_t comparators = 1024; ///< parallel duplicate comparators

    /**
     * Cycles to hash `nodes` feature vectors of `feature_bytes` bytes:
     * the XXH32 recurrence consumes one 16-byte stripe per cycle per
     * lane.
     */
    uint64_t hashCycles(uint64_t nodes, uint64_t feature_bytes) const;

    /**
     * Cycles to filter a tag stream whose duplicate structure is given
     * by `classes` (class id per node, first occurrence = unique).
     * Each lookup costs ceil(|RecordSet| / comparators) cycles plus one
     * cycle to insert into the TagBuffer or write the MapBuffer.
     */
    uint64_t filterCycles(const std::vector<uint32_t> &classes) const;
};

} // namespace cegma

#endif // CEGMA_EMF_EMF_HH
