#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

namespace cegma {

namespace {

thread_local bool tl_in_pool_task = false;

uint32_t
resolveThreads()
{
    if (const char *env = std::getenv("CEGMA_THREADS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<uint32_t>(n);
    }
    uint32_t hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

} // namespace

ThreadPool &
ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

bool
ThreadPool::inParallelRegion()
{
    return tl_in_pool_task;
}

uint32_t
ThreadPool::threads()
{
    std::lock_guard<std::mutex> lk(mutex_);
    if (target_ == 0)
        target_ = resolveThreads();
    return target_;
}

void
ThreadPool::setThreads(uint32_t n)
{
    std::lock_guard<std::mutex> job_lk(jobMutex_);
    uint32_t resolved = n == 0 ? resolveThreads() : n;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (resolved == target_)
            return;
    }
    stopWorkers();
    std::lock_guard<std::mutex> lk(mutex_);
    target_ = resolved;
}

void
ThreadPool::ensureStarted()
{
    std::lock_guard<std::mutex> lk(mutex_);
    if (target_ == 0)
        target_ = resolveThreads();
    // The caller participates, so the pool holds target_ - 1 workers.
    // New workers start at the *current* job sequence so they don't
    // mistake an already-finished job for fresh work.
    while (workers_.size() + 1 < target_)
        workers_.emplace_back([this, seq = jobSeq_] { workerMain(seq); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (workers_.empty())
            return;
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    std::lock_guard<std::mutex> lk(mutex_);
    workers_.clear();
    shutdown_ = false;
}

void
ThreadPool::drainTasks(const std::function<void(size_t)> &task)
{
    bool saved = tl_in_pool_task;
    tl_in_pool_task = true;
    for (;;) {
        size_t t = nextTask_.fetch_add(1, std::memory_order_relaxed);
        if (t >= jobTasks_)
            break;
        try {
            task(t);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mutex_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
    tl_in_pool_task = saved;
}

void
ThreadPool::workerMain(uint64_t seen)
{
    for (;;) {
        const std::function<void(size_t)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_.wait(lk,
                       [&] { return shutdown_ || jobSeq_ != seen; });
            if (shutdown_)
                return;
            seen = jobSeq_;
            job = job_;
        }
        if (job)
            drainTasks(*job);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (--workersLeft_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::run(size_t num_tasks, const std::function<void(size_t)> &task)
{
    // One top-level job at a time; later callers queue up here.
    std::lock_guard<std::mutex> job_lk(jobMutex_);
    ensureStarted();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_ = &task;
        jobTasks_ = num_tasks;
        nextTask_.store(0, std::memory_order_relaxed);
        workersLeft_ = workers_.size();
        error_ = nullptr;
        ++jobSeq_;
    }
    wake_.notify_all();
    drainTasks(task);
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lk(mutex_);
        done_.wait(lk, [&] { return workersLeft_ == 0; });
        job_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    size_t chunks = (end - begin + grain - 1) / grain;

    auto run_chunk = [&](size_t c) {
        size_t b = begin + c * grain;
        size_t e = std::min(end, b + grain);
        fn(b, e);
    };

    ThreadPool &pool = ThreadPool::instance();
    if (chunks == 1 || ThreadPool::inParallelRegion() ||
        pool.threads() == 1) {
        // Same chunk boundaries as the parallel path (determinism even
        // for chunk-stateful callers).
        for (size_t c = 0; c < chunks; ++c)
            run_chunk(c);
        return;
    }
    pool.run(chunks, run_chunk);
}

} // namespace cegma
