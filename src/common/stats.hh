/**
 * @file
 * Lightweight statistics containers used by the simulator and the
 * analysis passes: named counters, running means, and exact CDFs over
 * integer-valued samples (e.g., reuse distances).
 */

#ifndef CEGMA_COMMON_STATS_HH
#define CEGMA_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace cegma {

/** A running scalar statistic: count / sum / min / max / mean. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another running stat into this one. */
    void merge(const RunningStat &other);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * An exact distribution over unsigned integer samples, kept as a
 * value -> count map. Supports the CDF queries the paper's reuse-distance
 * figures need (fraction of samples below a threshold / below 2^k).
 */
class IntDistribution
{
  public:
    /** Add one sample. */
    void add(uint64_t value) { addWeighted(value, 1); }

    /** Add a sample `weight` times. */
    void addWeighted(uint64_t value, uint64_t weight);

    /** Merge another distribution into this one. */
    void merge(const IntDistribution &other);

    /** @return total samples recorded. */
    uint64_t total() const { return total_; }

    /** @return largest sample seen (0 when empty). */
    uint64_t maxValue() const;

    /** Fraction of samples with value strictly below `threshold`. */
    double fractionBelow(uint64_t threshold) const;

    /** Cumulative fraction of samples with value < 2^k. */
    double cdfAtPow2(unsigned k) const;

    /**
     * Exact quantile: the smallest recorded value v such that at least
     * `q * total()` samples are <= v (q clamped to [0, 1]; 0 when
     * empty). `valueAtQuantile(0.5)` is the median; the serving metrics
     * use this for p50/p95/p99 latency over microsecond samples.
     */
    uint64_t valueAtQuantile(double q) const;

    /** @return ordered value/count view. */
    const std::map<uint64_t, uint64_t> &counts() const { return counts_; }

  private:
    std::map<uint64_t, uint64_t> counts_;
    uint64_t total_ = 0;
};

/** A set of named 64-bit counters with ordered iteration. */
class StatSet
{
  public:
    /** Increment counter `name` by `delta`. */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set counter `name` to `value`. */
    void set(const std::string &name, uint64_t value);

    /** @return counter value (0 if never touched). */
    uint64_t get(const std::string &name) const;

    /** Merge all counters from `other` into this set (summing). */
    void merge(const StatSet &other);

    /** @return ordered name/value view. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace cegma

#endif // CEGMA_COMMON_STATS_HH
