/**
 * @file
 * Unit constants and conversions used across the simulator.
 */

#ifndef CEGMA_COMMON_UNITS_HH
#define CEGMA_COMMON_UNITS_HH

#include <cstdint>

namespace cegma {

constexpr uint64_t KiB = 1024;
constexpr uint64_t MiB = 1024 * KiB;
constexpr uint64_t GiB = 1024 * MiB;

constexpr double GHz = 1e9;
constexpr double MHz = 1e6;

/** Bytes per 32-bit float feature element. */
constexpr uint64_t bytesPerFeature = 4;

/** Convert cycles at `freq_hz` to seconds. */
constexpr double
cyclesToSeconds(double cycles, double freq_hz)
{
    return cycles / freq_hz;
}

/** Convert cycles at `freq_hz` to milliseconds. */
constexpr double
cyclesToMs(double cycles, double freq_hz)
{
    return cycles / freq_hz * 1e3;
}

} // namespace cegma

#endif // CEGMA_COMMON_UNITS_HH
