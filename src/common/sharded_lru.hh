/**
 * @file
 * A bounded, sharded, byte-budgeted LRU cache of shared immutable
 * values — the replacement for the unbounded single-mutex maps the
 * memoization layer grew up with, sized for sustained serving traffic
 * where the working set must not grow without limit.
 *
 * Sharding: the key hash picks one of `shards` independent shards, each
 * with its own mutex, map, and recency list, so concurrent lookups from
 * the pair-parallel scoring pass contend only when they collide on a
 * shard. The byte budget is split evenly across shards (per-shard
 * budget = maxBytes / shards), which keeps every eviction decision
 * shard-local — no global lock is ever taken.
 *
 * Budget invariant: the cache's resident bytes NEVER exceed the
 * configured budget. Inserting past the per-shard budget evicts
 * least-recently-used entries first; a single value larger than the
 * per-shard budget is not admitted at all (the caller still gets its
 * value back, it just isn't cached). A `maxBytes` of 0 means unbounded
 * (the pre-serving behavior).
 *
 * Values are handed out as `shared_ptr<const V>`, so an evicted value
 * stays alive for whoever is still holding it — eviction can never
 * invalidate a result a scoring pass is reading.
 */

#ifndef CEGMA_COMMON_SHARDED_LRU_HH
#define CEGMA_COMMON_SHARDED_LRU_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace cegma {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache
{
  public:
    using ValuePtr = std::shared_ptr<const Value>;

    /**
     * @param max_bytes total byte budget across all shards; 0 means
     *        unbounded
     * @param shards number of independent shards (clamped to >= 1,
     *        and — when bounded — to at most `max_bytes` shards, so
     *        the per-shard budget never rounds down to zero bytes;
     *        `0 < max_bytes < shards` would otherwise refuse every
     *        insert as oversized)
     */
    explicit ShardedLruCache(size_t max_bytes = 0, uint32_t shards = 8)
        : maxBytes_(max_bytes),
          shards_(effectiveShards(max_bytes, shards)),
          shardBudget_(max_bytes / effectiveShards(max_bytes, shards))
    {
        if (max_bytes > 0 && max_bytes < std::max<uint32_t>(shards, 1)) {
            warn("ShardedLruCache: budget of %zu bytes is below the "
                 "requested %u shards; collapsing to %zu shard(s) so "
                 "the per-shard budget stays nonzero",
                 max_bytes, std::max<uint32_t>(shards, 1),
                 shards_.size());
        }
    }

    /**
     * Look up `key`, refreshing its recency on a hit.
     *
     * @return the cached value, or null on a miss
     */
    ValuePtr find(const Key &key)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            ++shard.misses;
            return nullptr;
        }
        ++shard.hits;
        // Most-recently-used = front of the recency list.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return it->second->value;
    }

    /**
     * Insert `value` under `key`, charging `bytes` against the budget
     * and evicting LRU entries until the shard fits again. First insert
     * wins: if `key` is already resident (a racing builder got there
     * first), the resident value is returned and `value` is dropped.
     *
     * @return the value now associated with `key` — the resident one on
     *         a race, `value` otherwise (even when it was too large to
     *         admit)
     */
    ValuePtr insert(const Key &key, ValuePtr value, size_t bytes)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return it->second->value;
        }
        if (maxBytes_ > 0 && bytes > shardBudget_) {
            // Admitting this value alone would break the budget
            // invariant; serve it uncached.
            ++shard.oversized;
            return value;
        }
        shard.lru.push_front(Entry{key, value, bytes});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
        while (maxBytes_ > 0 && shard.bytes > shardBudget_) {
            Entry &victim = shard.lru.back();
            shard.bytes -= victim.bytes;
            shard.map.erase(victim.key);
            shard.lru.pop_back();
            ++shard.evictions;
        }
        return value;
    }

    /**
     * Erase the entry under `key`, releasing its bytes. Holders of a
     * previously returned `ValuePtr` keep their value alive — erase,
     * like eviction, can never invalidate a result being read.
     *
     * @return true if an entry was resident and removed
     */
    bool erase(const Key &key)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it == shard.map.end())
            return false;
        shard.bytes -= it->second->bytes;
        shard.lru.erase(it->second);
        shard.map.erase(it);
        ++shard.erased;
        return true;
    }

    /**
     * Erase every entry whose key satisfies `pred` — the keyed-erase
     * primitive behind memo invalidation, where one removed graph owns
     * a *family* of entries (e.g. WL colorings at several depths) that
     * share a key prefix rather than a single exact key. Scans all
     * shards under their locks; O(size), intended for mutation-rate
     * call sites, not the scoring hot path.
     *
     * @return number of entries removed
     */
    template <typename Pred> size_t eraseIf(Pred pred)
    {
        size_t removed = 0;
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto it = shard.map.begin(); it != shard.map.end();) {
                if (pred(it->first)) {
                    shard.bytes -= it->second->bytes;
                    shard.lru.erase(it->second);
                    it = shard.map.erase(it);
                    ++shard.erased;
                    ++removed;
                } else {
                    ++it;
                }
            }
        }
        return removed;
    }

    /** Drop every entry (counters are kept). */
    void clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.lru.clear();
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /** Lookups that found a resident entry. */
    size_t hits() const { return sum(&Shard::hits); }

    /** Lookups that missed. */
    size_t misses() const { return sum(&Shard::misses); }

    /** Entries evicted to stay within the budget. */
    size_t evictions() const { return sum(&Shard::evictions); }

    /** Values refused because they alone exceed a shard's budget. */
    size_t oversized() const { return sum(&Shard::oversized); }

    /** Entries removed via erase()/eraseIf() (not LRU evictions). */
    size_t erased() const { return sum(&Shard::erased); }

    /** Resident bytes across all shards (never exceeds `maxBytes`). */
    size_t bytes() const { return sum(&Shard::bytes); }

    /** Resident entry count across all shards. */
    size_t size() const
    {
        size_t total = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.map.size();
        }
        return total;
    }

    /** Configured total byte budget (0 = unbounded). */
    size_t maxBytes() const { return maxBytes_; }

    /** Number of shards. */
    uint32_t numShards() const
    {
        return static_cast<uint32_t>(shards_.size());
    }

  private:
    struct Entry
    {
        Key key;
        ValuePtr value;
        size_t bytes = 0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<Key, typename std::list<Entry>::iterator,
                           Hash>
            map;
        size_t bytes = 0;
        size_t hits = 0;
        size_t misses = 0;
        size_t evictions = 0;
        size_t oversized = 0;
        size_t erased = 0;
    };

    /**
     * The shard count actually built: at least 1, and when a byte
     * budget is set, at most `max_bytes` so every shard's budget is
     * >= 1 byte (a zero per-shard budget silently refuses every
     * insert — the tiny-budget bug this clamp exists to prevent).
     */
    static uint32_t effectiveShards(size_t max_bytes, uint32_t shards)
    {
        uint64_t count = std::max<uint32_t>(shards, 1);
        if (max_bytes > 0 && max_bytes < count)
            count = max_bytes;
        return static_cast<uint32_t>(count);
    }

    Shard &shardFor(const Key &key)
    {
        return shards_[Hash{}(key) % shards_.size()];
    }

    size_t sum(size_t Shard::*member) const
    {
        size_t total = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.*member;
        }
        return total;
    }

    size_t maxBytes_;
    std::vector<Shard> shards_;
    size_t shardBudget_;
};

} // namespace cegma

#endif // CEGMA_COMMON_SHARDED_LRU_HH
