#include "common/table.hh"

#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace cegma {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    cegma_assert(!header_.empty());
}

void
TextTable::addRow(std::vector<std::string> row)
{
    cegma_assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    emit_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TextTable::fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::fmtX(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", prec, v);
    return buf;
}

std::string
TextTable::fmtPct(double fraction, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
    return buf;
}

std::string
TextTable::fmtBytes(double bytes)
{
    const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int idx = 0;
    while (bytes >= 1024.0 && idx < 4) {
        bytes /= 1024.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffixes[idx]);
    return buf;
}

std::string
TextTable::fmtCount(double count)
{
    const char *suffixes[] = {"", "K", "M", "G", "T"};
    int idx = 0;
    while (count >= 1000.0 && idx < 4) {
        count /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%s", count, suffixes[idx]);
    return buf;
}

} // namespace cegma
