#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace cegma {

namespace {

/** SplitMix64 step, used for seed expansion. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    cegma_assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    while (true) {
        uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    cegma_assert(lo <= hi);
    return lo + static_cast<int64_t>(
        nextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return (next64() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveGauss_) {
        haveGauss_ = false;
        return gauss_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    while (u1 <= 1e-300)
        u1 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    haveGauss_ = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::vector<uint32_t>
Rng::sampleDistinct(uint32_t n, uint32_t k)
{
    cegma_assert(k <= n);
    // Floyd's algorithm for k distinct samples without O(n) memory when
    // k is small; falls back to shuffle for dense sampling.
    if (k * 2 >= n) {
        std::vector<uint32_t> all(n);
        for (uint32_t i = 0; i < n; ++i)
            all[i] = i;
        shuffle(all);
        all.resize(k);
        return all;
    }
    std::vector<uint32_t> out;
    out.reserve(k);
    std::vector<bool> chosen(n, false);
    for (uint32_t j = n - k; j < n; ++j) {
        uint32_t t = static_cast<uint32_t>(nextBounded(j + 1));
        if (chosen[t]) {
            out.push_back(j);
            chosen[j] = true;
        } else {
            out.push_back(t);
            chosen[t] = true;
        }
    }
    return out;
}

Rng
Rng::fork()
{
    return Rng(next64());
}

} // namespace cegma
