/**
 * @file
 * Fixed-width text tables for printing the paper's figure/table rows
 * from the benchmark harnesses, plus CSV export.
 */

#ifndef CEGMA_COMMON_TABLE_HH
#define CEGMA_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace cegma {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"dataset", "speedup"});
 *   t.addRow({"AIDS", "3.1x"});
 *   t.print(std::cout);
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render the table, column-aligned, to `os`. */
    void print(std::ostream &os) const;

    /** Render as CSV to `os`. */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows. */
    size_t numRows() const { return rows_.size(); }

    /** Format a double with `prec` fractional digits. */
    static std::string fmt(double v, int prec = 2);

    /** Format a double as a "12.3x" speedup string. */
    static std::string fmtX(double v, int prec = 1);

    /** Format a fraction as a percentage string, e.g.\ "93.4%". */
    static std::string fmtPct(double fraction, int prec = 1);

    /** Format a byte count with binary suffix (KiB/MiB/GiB). */
    static std::string fmtBytes(double bytes);

    /** Format a large count with engineering suffix (K/M/G). */
    static std::string fmtCount(double count);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cegma

#endif // CEGMA_COMMON_TABLE_HH
