#include "common/stats.hh"

#include <algorithm>

namespace cegma {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
IntDistribution::addWeighted(uint64_t value, uint64_t weight)
{
    if (weight == 0)
        return;
    counts_[value] += weight;
    total_ += weight;
}

void
IntDistribution::merge(const IntDistribution &other)
{
    for (const auto &[value, count] : other.counts_)
        addWeighted(value, count);
}

uint64_t
IntDistribution::maxValue() const
{
    return counts_.empty() ? 0 : counts_.rbegin()->first;
}

double
IntDistribution::fractionBelow(uint64_t threshold) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t below = 0;
    for (auto it = counts_.begin();
         it != counts_.end() && it->first < threshold; ++it) {
        below += it->second;
    }
    return static_cast<double>(below) / static_cast<double>(total_);
}

double
IntDistribution::cdfAtPow2(unsigned k) const
{
    return fractionBelow(k >= 64 ? UINT64_MAX : (uint64_t{1} << k));
}

uint64_t
IntDistribution::valueAtQuantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // ceil(q * total) samples must be <= the answer; exact because the
    // full value -> count map is kept.
    auto needed = static_cast<uint64_t>(q * static_cast<double>(total_));
    if (static_cast<double>(needed) < q * static_cast<double>(total_))
        ++needed;
    if (needed == 0)
        needed = 1;
    uint64_t seen = 0;
    for (const auto &[value, count] : counts_) {
        seen += count;
        if (seen >= needed)
            return value;
    }
    return counts_.rbegin()->first;
}

void
StatSet::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

} // namespace cegma
