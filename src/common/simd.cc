#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace cegma {

namespace {

// -1 = unresolved; otherwise a SimdLevel value. Resolution is
// idempotent (same inputs -> same level), so a racing double-resolve
// is harmless.
std::atomic<int> g_level{-1};

SimdLevel
clampToSupported(SimdLevel requested, const char *origin)
{
    if (requested == SimdLevel::Avx2 && !cpuSupportsAvx2()) {
        warn("%s requested avx2 but this %s lacks AVX2; using scalar "
             "kernels",
             origin,
#ifdef CEGMA_HAVE_AVX2
             "CPU"
#else
             "build"
#endif
        );
        return SimdLevel::Scalar;
    }
    return requested;
}

SimdLevel
resolve()
{
    const char *env = std::getenv("CEGMA_SIMD");
    if (env != nullptr && *env != '\0') {
        if (std::strcmp(env, "scalar") == 0)
            return SimdLevel::Scalar;
        if (std::strcmp(env, "avx2") == 0)
            return clampToSupported(SimdLevel::Avx2, "CEGMA_SIMD");
        warn("ignoring unknown CEGMA_SIMD value '%s' "
             "(expected 'avx2' or 'scalar')",
             env);
    }
    return cpuSupportsAvx2() ? SimdLevel::Avx2 : SimdLevel::Scalar;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "avx2";
    }
    return "?";
}

SimdLevel
simdLevel()
{
    int cur = g_level.load(std::memory_order_relaxed);
    if (cur >= 0)
        return static_cast<SimdLevel>(cur);
    SimdLevel resolved = resolve();
    g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
}

void
setSimdLevel(SimdLevel level)
{
    level = clampToSupported(level, "setSimdLevel");
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
cpuSupportsAvx2()
{
#ifdef CEGMA_HAVE_AVX2
    // GCC/Clang resolve this through cpuid once and cache the result.
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

} // namespace cegma
