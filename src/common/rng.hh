/**
 * @file
 * Deterministic, seedable pseudo-random number generation.
 *
 * Every stochastic component in this repository (graph generators, weight
 * initialization, pair perturbation) draws from a Rng instance so that
 * experiments are bit-reproducible across runs given the same seed.
 */

#ifndef CEGMA_COMMON_RNG_HH
#define CEGMA_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cegma {

/**
 * A small, fast xoshiro256**-based generator.
 *
 * Not cryptographic; used only for reproducible workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** @return the next raw 64-bit value. */
    uint64_t next64();

    /** @return a uniform integer in [0, bound), bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return a standard-normal sample (Box-Muller). */
    double nextGaussian();

    /** @return true with probability p. */
    bool nextBool(double p);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample k distinct indices from [0, n) (k <= n). */
    std::vector<uint32_t> sampleDistinct(uint32_t n, uint32_t k);

    /** Derive an independent child generator (for parallel subsystems). */
    Rng fork();

  private:
    uint64_t state_[4];
    bool haveGauss_ = false;
    double gauss_ = 0.0;
};

} // namespace cegma

#endif // CEGMA_COMMON_RNG_HH
