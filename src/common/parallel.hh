/**
 * @file
 * A lazily-initialized persistent thread pool and the `parallelFor`
 * primitive every hot kernel in the repo is built on.
 *
 * Determinism contract: `parallelFor(begin, end, grain, fn)` splits
 * the range into chunks of exactly `grain` indices (the last chunk may
 * be short). The chunk boundaries depend only on (begin, end, grain) —
 * never on the thread count — and every chunk is executed by exactly
 * one thread with the same serial code, so any kernel whose chunks
 * write disjoint outputs produces bit-identical results whether the
 * pool runs 1, 2, or 64 threads. The serial fallback iterates the same
 * chunks in order.
 *
 * Thread count resolution (first use wins, cheapest first):
 *   1. `ThreadPool::instance().setThreads(n)` (e.g. a `--threads` CLI
 *      flag) at any point — the pool restarts with the new count;
 *   2. the `CEGMA_THREADS` environment variable;
 *   3. `std::thread::hardware_concurrency()`.
 *
 * Nested `parallelFor` calls issued from inside a pool task run
 * serially on the calling worker (no deadlock, no oversubscription).
 */

#ifndef CEGMA_COMMON_PARALLEL_HH
#define CEGMA_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cegma {

/** Persistent worker pool behind `parallelFor`. */
class ThreadPool
{
  public:
    /** The process-wide pool (created on first use). */
    static ThreadPool &instance();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;
    ~ThreadPool();

    /**
     * Resolved thread count the next job will use (>= 1). Resolves
     * `CEGMA_THREADS` / hardware concurrency on first call.
     */
    uint32_t threads();

    /**
     * Set the thread count; 0 re-resolves from `CEGMA_THREADS` /
     * hardware concurrency. Safe to call between jobs at any time;
     * workers are restarted lazily.
     */
    void setThreads(uint32_t n);

    /**
     * Execute `task(i)` for every i in [0, num_tasks), distributed
     * over the pool; the calling thread participates. Blocks until
     * all tasks ran. The first exception thrown by any task is
     * rethrown here after the job completes.
     */
    void run(size_t num_tasks, const std::function<void(size_t)> &task);

    /** True when called from inside a pool task (nested region). */
    static bool inParallelRegion();

  private:
    ThreadPool() = default;

    void ensureStarted();  ///< resolve thread count, spawn workers
    void stopWorkers();    ///< join and discard all workers
    void workerMain(uint64_t seen);
    void drainTasks(const std::function<void(size_t)> &task);

    std::mutex jobMutex_;  ///< serializes top-level jobs & restarts

    std::mutex mutex_;     ///< guards all job state below
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    uint32_t target_ = 0;  ///< resolved thread count; 0 = unresolved
    bool shutdown_ = false;

    const std::function<void(size_t)> *job_ = nullptr;
    size_t jobTasks_ = 0;
    std::atomic<size_t> nextTask_{0};
    size_t workersLeft_ = 0;  ///< workers yet to check in for this job
    uint64_t jobSeq_ = 0;
    std::exception_ptr error_;
};

/**
 * Run `fn(chunk_begin, chunk_end)` over [begin, end) in chunks of
 * `grain` indices (see determinism contract above). Runs serially when
 * the range is a single chunk, the pool has one thread, or the caller
 * is already inside a pool task.
 */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &fn);

/**
 * Chunk size for a row range where one row costs ~`work_per_row`
 * scalar ops: large enough that a chunk amortizes dispatch (~min_work
 * ops), never larger than the row count, and independent of the
 * thread count (determinism).
 */
inline size_t
grainForRows(size_t rows, size_t work_per_row,
             size_t min_work = size_t(1) << 15)
{
    if (rows == 0)
        return 1;
    size_t grain = min_work / (work_per_row > 0 ? work_per_row : 1);
    if (grain < 1)
        grain = 1;
    if (grain > rows)
        grain = rows;
    return grain;
}

} // namespace cegma

#endif // CEGMA_COMMON_PARALLEL_HH
