/**
 * @file
 * Logging and error-reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated (a CEGMA bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits cleanly.
 * warn()   — something is off but the run can continue.
 * inform() — plain status output.
 */

#ifndef CEGMA_COMMON_LOGGING_HH
#define CEGMA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cegma {

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message and exit(1); use for bad user input. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted warning to stderr. */
void warnImpl(const char *fmt, ...);

/** Print a formatted status message to stderr. */
void informImpl(const char *fmt, ...);

/** Enable/disable inform() output (benchmarks silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace cegma

#define panic(...) ::cegma::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::cegma::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::cegma::warnImpl(__VA_ARGS__)
#define inform(...) ::cegma::informImpl(__VA_ARGS__)

/** Assert that holds in release builds too; panics with location info. */
#define cegma_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cegma::panicImpl(__FILE__, __LINE__,                          \
                               "assertion failed: %s", #cond);              \
        }                                                                   \
    } while (0)

#endif // CEGMA_COMMON_LOGGING_HH
