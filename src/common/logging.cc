#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace cegma {

namespace {
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

namespace {

/**
 * Build the whole log line in one buffer and hand it to stderr as a
 * single write. Concurrent loggers (the thread pool's workers warn
 * too) then interleave *lines*, never fragments — the three-fprintf
 * version this replaces could shear a line mid-message under load.
 */
void
vreport(const char *tag, const char *fmt, va_list ap)
{
    char prefix[256];
    int prefix_len = std::snprintf(prefix, sizeof(prefix), "%s: ", tag);
    if (prefix_len < 0)
        return;

    va_list probe;
    va_copy(probe, ap);
    int body_len = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (body_len < 0)
        body_len = 0;

    std::vector<char> line(static_cast<size_t>(prefix_len) +
                           static_cast<size_t>(body_len) + 2);
    std::memcpy(line.data(), prefix, static_cast<size_t>(prefix_len));
    std::vsnprintf(line.data() + prefix_len,
                   static_cast<size_t>(body_len) + 1, fmt, ap);
    line[line.size() - 2] = '\n';
    std::fwrite(line.data(), 1, line.size() - 1, stderr);
    std::fflush(stderr);
}

void
vreportAt(const char *tag, const char *file, int line, const char *fmt,
          va_list ap)
{
    char prefix[512];
    std::snprintf(prefix, sizeof(prefix), "%s: %s:%d", tag, file, line);
    vreport(prefix, fmt, ap);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreportAt("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreportAt("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace cegma
