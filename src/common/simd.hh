/**
 * @file
 * Runtime SIMD dispatch for the software hot kernels.
 *
 * Two instruction levels exist: `Scalar` (the reference kernels, also
 * the bit-exactness oracle in tests) and `Avx2` (8-lane float / 8-row
 * hash kernels). The active level is resolved once, lazily:
 *
 *   1. an explicit `setSimdLevel()` call (e.g. a `--simd` CLI flag);
 *   2. the `CEGMA_SIMD` environment variable (`avx2` or `scalar`);
 *   3. CPUID: `Avx2` when the CPU supports it, else `Scalar`.
 *
 * Requesting `avx2` on a machine (or build) without AVX2 support logs
 * a warning and falls back to `Scalar` rather than faulting.
 *
 * Determinism contract: both levels of every dispatched kernel use the
 * *same* lane-split accumulation order (8 partial accumulators per
 * vector lane group, identical reduction tree, identical tail
 * handling) and never use FMA contraction, so outputs are bit-identical
 * across levels — switching `CEGMA_SIMD` must never change any
 * produced bit. tests/simd_test.cc enforces this over a shape sweep.
 */

#ifndef CEGMA_COMMON_SIMD_HH
#define CEGMA_COMMON_SIMD_HH

namespace cegma {

/** Instruction level of the dispatched kernels. */
enum class SimdLevel
{
    Scalar,
    Avx2,
};

/** @return display name ("scalar", "avx2"). */
const char *simdLevelName(SimdLevel level);

/**
 * The active kernel level (one relaxed atomic load after the first
 * call resolves it; see the file comment for the resolution order).
 */
SimdLevel simdLevel();

/**
 * Force the kernel level. Unsupported requests (AVX2 on a non-AVX2
 * machine or a non-x86 build) warn and clamp to `Scalar`. Safe to call
 * between kernels at any time; not synchronized with kernels already
 * in flight (levels are bit-identical, so a mid-job flip is still
 * correct — just unusual).
 */
void setSimdLevel(SimdLevel level);

/** True when both the build and the CPU can run the AVX2 kernels. */
bool cpuSupportsAvx2();

} // namespace cegma

#endif // CEGMA_COMMON_SIMD_HH
