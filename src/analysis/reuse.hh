/**
 * @file
 * Exact reuse-distance (LRU stack distance) profiling over node
 * access traces — the paper's Figures 4 and 20 metric: "the number of
 * unique nodes between two references to the same node".
 */

#ifndef CEGMA_ANALYSIS_REUSE_HH
#define CEGMA_ANALYSIS_REUSE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace cegma {

/**
 * Profile a node-access trace.
 *
 * Uses the classic Fenwick-tree stack-distance algorithm: O(N log N)
 * over the trace, exact distances.
 *
 * @param trace node ids in access order
 * @param cold_misses if non-null, receives the first-touch count
 * @return distribution of reuse distances (distinct intervening nodes)
 */
IntDistribution profileReuseDistances(const std::vector<uint32_t> &trace,
                                      uint64_t *cold_misses = nullptr);

/**
 * Fraction of reuses a buffer holding `capacity_nodes` nodes captures
 * (reuse distance strictly below capacity).
 */
double bufferHitFraction(const IntDistribution &distances,
                         uint64_t capacity_nodes);

} // namespace cegma

#endif // CEGMA_ANALYSIS_REUSE_HH
