#include "analysis/redundancy.hh"

namespace cegma {

double
RedundancyStats::redundantFraction() const
{
    if (totalMatches == 0)
        return 0.0;
    return static_cast<double>(redundantMatches()) /
           static_cast<double>(totalMatches);
}

double
RedundancyStats::redundantToUniqueRatio() const
{
    if (uniqueMatches == 0)
        return 0.0;
    return static_cast<double>(redundantMatches()) /
           static_cast<double>(uniqueMatches);
}

double
RedundancyStats::remainingUniqueFraction() const
{
    if (totalMatches == 0)
        return 1.0;
    return static_cast<double>(uniqueMatches) /
           static_cast<double>(totalMatches);
}

RedundancyStats
redundancyOf(const std::vector<PairTrace> &traces)
{
    RedundancyStats stats;
    for (const PairTrace &trace : traces) {
        stats.totalMatches += trace.totalMatchPairs();
        stats.uniqueMatches += trace.uniqueMatchPairs();
    }
    return stats;
}

} // namespace cegma
