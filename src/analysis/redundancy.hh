/**
 * @file
 * Matching-redundancy statistics (paper Figures 7 and 18).
 */

#ifndef CEGMA_ANALYSIS_REDUNDANCY_HH
#define CEGMA_ANALYSIS_REDUNDANCY_HH

#include <cstdint>
#include <vector>

#include "gmn/workload.hh"

namespace cegma {

/** Unique-vs-redundant matching counts over a set of traces. */
struct RedundancyStats
{
    uint64_t totalMatches = 0;
    uint64_t uniqueMatches = 0;

    uint64_t redundantMatches() const
    {
        return totalMatches - uniqueMatches;
    }

    /** Fraction of matchings that are redundant (Fig. 7 numerator). */
    double redundantFraction() const;

    /** Redundant : unique ratio (the Fig. 7 metric). */
    double redundantToUniqueRatio() const;

    /** Fraction of matching remaining after the EMF (Fig. 18). */
    double remainingUniqueFraction() const;
};

/** Accumulate redundancy statistics over traces. */
RedundancyStats redundancyOf(const std::vector<PairTrace> &traces);

} // namespace cegma

#endif // CEGMA_ANALYSIS_REDUNDANCY_HH
