#include "analysis/reuse.hh"

#include <unordered_map>

#include "common/logging.hh"

namespace cegma {

namespace {

/** 1-indexed Fenwick tree over trace positions. */
class Fenwick
{
  public:
    explicit Fenwick(size_t n) : tree_(n + 1, 0) {}

    void
    add(size_t i, int delta)
    {
        for (; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    int64_t
    prefix(size_t i) const
    {
        int64_t sum = 0;
        for (; i > 0; i -= i & (~i + 1))
            sum += tree_[i];
        return sum;
    }

  private:
    std::vector<int64_t> tree_;
};

} // namespace

IntDistribution
profileReuseDistances(const std::vector<uint32_t> &trace,
                      uint64_t *cold_misses)
{
    IntDistribution distances;
    uint64_t cold = 0;
    Fenwick marks(trace.size());
    // node -> 1-indexed position of its most recent access.
    std::unordered_map<uint32_t, size_t> last;
    last.reserve(trace.size() / 4 + 16);

    for (size_t i = 0; i < trace.size(); ++i) {
        size_t pos = i + 1;
        auto it = last.find(trace[i]);
        if (it == last.end()) {
            ++cold;
        } else {
            size_t prev = it->second;
            // Distinct nodes touched strictly between prev and pos:
            // marked latest-access flags in (prev, pos).
            int64_t distinct = marks.prefix(pos - 1) - marks.prefix(prev);
            distances.add(static_cast<uint64_t>(distinct));
            marks.add(prev, -1);
        }
        marks.add(pos, +1);
        last[trace[i]] = pos;
    }
    if (cold_misses)
        *cold_misses = cold;
    return distances;
}

double
bufferHitFraction(const IntDistribution &distances,
                  uint64_t capacity_nodes)
{
    return distances.fractionBelow(capacity_nodes);
}

} // namespace cegma
