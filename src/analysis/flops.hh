/**
 * @file
 * FLOP breakdowns across the three GMN stages (paper Figure 3).
 */

#ifndef CEGMA_ANALYSIS_FLOPS_HH
#define CEGMA_ANALYSIS_FLOPS_HH

#include <cstdint>

#include "gmn/workload.hh"
#include "graph/dataset.hh"

namespace cegma {

/** Per-stage FLOPs of a workload. */
struct FlopBreakdown
{
    double aggregate = 0.0;
    double combine = 0.0;
    double matching = 0.0;

    double total() const { return aggregate + combine + matching; }

    double aggregateShare() const;
    double combineShare() const;
    double matchingShare() const;

    /** Accumulate another breakdown. */
    void merge(const FlopBreakdown &other);
};

/** Breakdown of a full model trace (head excluded, as in Fig. 3). */
FlopBreakdown traceBreakdown(const PairTrace &trace);

/**
 * The paper's Figure 3 setup: one GMN layer as defined in GraphSim —
 * standard GCN embedding with input/output feature size `f` and a
 * dot-product node matching — averaged over a dataset's pairs.
 */
FlopBreakdown figure3Breakdown(const Dataset &dataset, uint64_t f = 64);

} // namespace cegma

#endif // CEGMA_ANALYSIS_FLOPS_HH
