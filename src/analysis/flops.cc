#include "analysis/flops.hh"

#include "gmn/similarity.hh"

namespace cegma {

double
FlopBreakdown::aggregateShare() const
{
    double t = total();
    return t > 0.0 ? aggregate / t : 0.0;
}

double
FlopBreakdown::combineShare() const
{
    double t = total();
    return t > 0.0 ? combine / t : 0.0;
}

double
FlopBreakdown::matchingShare() const
{
    double t = total();
    return t > 0.0 ? matching / t : 0.0;
}

void
FlopBreakdown::merge(const FlopBreakdown &other)
{
    aggregate += other.aggregate;
    combine += other.combine;
    matching += other.matching;
}

FlopBreakdown
traceBreakdown(const PairTrace &trace)
{
    FlopBreakdown bd;
    bd.aggregate = static_cast<double>(trace.aggFlopsTotal());
    bd.combine = static_cast<double>(trace.combFlopsTotal());
    bd.matching = static_cast<double>(trace.matchFlopsTotal());
    return bd;
}

FlopBreakdown
figure3Breakdown(const Dataset &dataset, uint64_t f)
{
    FlopBreakdown bd;
    for (const GraphPair &pair : dataset.pairs) {
        const uint64_t n = pair.target.numNodes();
        const uint64_t m = pair.query.numNodes();
        // Aggregation: one MAC per arc per feature plus the self term.
        bd.aggregate += static_cast<double>(
            (pair.target.numArcs() + pair.query.numArcs() +
             2ull * (n + m)) * f);
        // Combination: dense f -> f per node.
        bd.combine += static_cast<double>((n + m) * (2 * f * f + f));
        // Matching: dot-product similarity.
        bd.matching += static_cast<double>(
            similarityFlops(n, m, f, SimilarityKind::DotProduct));
    }
    return bd;
}

} // namespace cegma
