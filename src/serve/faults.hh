/**
 * @file
 * Seeded fault injection for the serving runtime — the test harness
 * behind the overload-robustness features (deadlines, shedding,
 * retries, bounded drain). Three injectable faults:
 *
 *   - scoring delays: before a batch is scored, sleep `delayMicros`
 *     with probability `delayProb` (models a slow batch);
 *   - spurious request errors: fail a request with probability
 *     `errorProb` *before* it is scored (models transient backend
 *     failures the client retry path must absorb);
 *   - stuck-dispatcher stalls: the first `stallBatches` batches each
 *     sleep `stallMicros` before scoring (models a wedged dispatcher,
 *     the scenario the bounded shutdown drain protects against).
 *
 * Determinism: all coin flips come from one seeded `Rng` consumed
 * only by the single dispatcher thread, in batch order — a run with
 * the same seed and the same request sequence injects the same
 * faults. Counters are relaxed atomics so tests and metrics can read
 * them from other threads.
 *
 * Cost when off: the service holds a `FaultInjector *` that is null
 * by default, so the entire feature is one null-pointer branch per
 * batch and per request — nothing else touches the hot path.
 */

#ifndef CEGMA_SERVE_FAULTS_HH
#define CEGMA_SERVE_FAULTS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.hh"

namespace cegma {

/** What to inject, and how often. All-zero (the default) is a no-op. */
struct FaultConfig
{
    uint64_t seed = 1;

    /** Per-batch probability of an injected pre-scoring delay. */
    double delayProb = 0.0;

    /** Length of an injected scoring delay. */
    uint32_t delayMicros = 0;

    /** Per-request probability of an injected (unscored) failure. */
    double errorProb = 0.0;

    /** The first `stallBatches` batches stall before scoring... */
    uint32_t stallBatches = 0;

    /** ...for this long each (a deterministically wedged dispatcher). */
    uint32_t stallMicros = 0;
};

/**
 * The injector the dispatcher consults. Only the dispatcher thread
 * calls `onBatchStart()` / `shouldFailRequest()`, which keeps the
 * seeded RNG stream (and therefore the injected fault sequence)
 * deterministic; any thread may read the counters.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config)
        : config_(config), rng_(config.seed)
    {
    }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Dispatcher hook: run the per-batch stall/delay faults. */
    void onBatchStart()
    {
        uint64_t batch = batches_.fetch_add(1, std::memory_order_relaxed);
        if (batch < config_.stallBatches && config_.stallMicros > 0) {
            stalls_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.stallMicros));
            return;
        }
        if (config_.delayProb > 0.0 && rng_.nextBool(config_.delayProb) &&
            config_.delayMicros > 0) {
            delays_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.delayMicros));
        }
    }

    /** Dispatcher hook: should this request fail instead of score? */
    bool shouldFailRequest()
    {
        if (config_.errorProb <= 0.0)
            return false;
        if (!rng_.nextBool(config_.errorProb))
            return false;
        errors_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    uint64_t injectedStalls() const
    {
        return stalls_.load(std::memory_order_relaxed);
    }

    uint64_t injectedDelays() const
    {
        return delays_.load(std::memory_order_relaxed);
    }

    uint64_t injectedErrors() const
    {
        return errors_.load(std::memory_order_relaxed);
    }

    const FaultConfig &config() const { return config_; }

  private:
    FaultConfig config_;
    Rng rng_; ///< dispatcher-thread only
    std::atomic<uint64_t> batches_{0};
    std::atomic<uint64_t> stalls_{0};
    std::atomic<uint64_t> delays_{0};
    std::atomic<uint64_t> errors_{0};
};

} // namespace cegma

#endif // CEGMA_SERVE_FAULTS_HH
