/**
 * @file
 * `SearchService` — the request-level serving layer over the
 * functional GMN models: graph-similarity search of a query graph
 * against an indexed candidate corpus, with micro-batched admission,
 * a bounded cross-request memo cache, and full latency telemetry.
 *
 * Execution model: `submit()` hands a query to the admission queue and
 * returns a future. A single dispatcher thread pulls micro-batches
 * (flush on batch size or deadline — see serve/batcher.hh) and scores
 * each batch in ONE pair-parallel pass over the shared thread pool:
 * all batch_size x corpus pairs are independent tasks, so the
 * dedup/memo machinery amortizes across every request in the batch
 * (a corpus graph's WL coloring and embedding chain are built once,
 * then hit from every concurrent query). With `pipelineDepth >= 1`
 * (the default) each flushed batch then flows through the pipelined
 * execution engine (serve/pipeline.hh): an embed stage pre-warms the
 * queries' memoized embedding chains while the previous batch is
 * still matching, and a head stage assembles/delivers results while
 * the next batch scores — overlap without changing a single bit.
 *
 * Overload robustness (request lifecycle, in failure order):
 *   1. admission — a full queue (or a closed service) rejects with
 *      `RequestErrorCode::Rejected`; a request whose deadline budget
 *      is already spent fails `DeadlineExceeded` without enqueueing;
 *   2. shedding — past `shedWatermark`, the queued requests with the
 *      least remaining deadline budget are dropped (`Shed`) to keep
 *      admission open for requests that can still make it;
 *   3. flush — a request whose deadline passed while queued fails
 *      `DeadlineExceeded` *without being scored*, so one slow batch
 *      cannot cascade into a convoy of wasted scoring work;
 *   4. drain — `shutdown()` scores everything admitted, but when
 *      `drainTimeoutMs` is set and the dispatcher cannot drain in
 *      time, still-queued requests fail `DrainTimeout` instead of
 *      blocking the caller forever.
 * All of it is deterministic under test via the seeded fault injector
 * (`serve/faults.hh`), and all of it is off by default.
 *
 * Determinism: every score the service returns is bit-identical to
 * what a serial `runFunctional` over the same (candidate, query) pairs
 * produces, at any thread count and any batch size. The argument
 * composes three invariants the repo already enforces:
 *   1. each pair's forward pass is bit-deterministic regardless of the
 *      pool size (parallel.hh chunking contract);
 *   2. pairs are scored into disjoint output slots, so pair-level
 *      parallelism cannot reorder any arithmetic *within* a pair;
 *   3. the memo cache only replays deterministic per-graph results —
 *      a hit returns exactly the bits a rebuild would produce, so
 *      cache state (including evictions) never leaks into scores.
 * Batching therefore affects *when* a pair is scored, never *what* it
 * computes — the property tests/serve_test.cc proves at 1/2/8 threads
 * and batch sizes 1/4/32. Deadlines/shedding/faults only decide
 * *whether* a pair is scored, never what it computes.
 */

#ifndef CEGMA_SERVE_SERVICE_HH
#define CEGMA_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "corpus/live_corpus.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "gmn/window_sched.hh"
#include "graph/dataset.hh"
#include "obs/admin_http.hh"
#include "obs/perf_counters.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"
#include "retrieval/retrieval.hh"
#include "serve/batcher.hh"
#include "serve/errors.hh"
#include "serve/faults.hh"
#include "serve/metrics.hh"
#include "serve/pipeline.hh"

namespace cegma {

/** Static configuration of one `SearchService`. */
struct ServeConfig
{
    ModelId model = ModelId::GraphSim;
    uint64_t modelSeed = 1234;

    /** Elastic knobs (bit-neutral; see the determinism note above). */
    bool dedup = true;
    bool memo = true;

    /** Memo byte budget; bounded by default — serving must not leak. */
    size_t memoBytes = size_t{256} << 20;
    uint32_t memoShards = 8;

    /** Micro-batcher: flush on size or deadline, whichever first. */
    uint32_t maxBatch = 16;
    uint32_t flushMicros = 2000;

    /** Admission bound: submits past this depth are rejected. */
    size_t maxQueueDepth = 4096;

    /**
     * Pipelined batch execution (serve/pipeline.hh): capacity of each
     * bounded inter-stage queue. 0 runs the legacy monolithic batch
     * path (match + head back-to-back on the dispatcher thread);
     * >= 1 gives the embed / dedup-match / head stages their own
     * workers, so batch N+1's embedding (memo pre-warm) overlaps
     * batch N's matching. Bit-neutral either way — see the
     * determinism note above and DESIGN.md §7e.
     */
    uint32_t pipelineDepth = 2;

    /**
     * Shared workspace-pool budget in MiB (tensor/workspace.hh): the
     * cap on recycled tensor blocks parked in the process-wide shared
     * pool beyond the per-thread free lists. Applied at construction;
     * the pool itself is process-wide, so the latest-constructed
     * service wins.
     */
    size_t workspaceMb = 256;

    /**
     * Default per-request deadline budget in milliseconds; 0 disables
     * deadlines. A per-`submit` override takes precedence. Expired
     * requests fail with `RequestErrorCode::DeadlineExceeded` without
     * being scored.
     */
    double requestDeadlineMs = 0.0;

    /**
     * Queue depth past which deadline-aware load shedding kicks in;
     * 0 disables. When the depth crosses the watermark, the waiting
     * requests with the least remaining deadline budget are dropped
     * (`RequestErrorCode::Shed`) — they were the likeliest to expire
     * unserved — instead of blindly rejecting new arrivals.
     * Deadline-less requests are never shed.
     */
    size_t shedWatermark = 0;

    /**
     * Bound on how long `shutdown()` waits for the dispatcher to
     * drain, in milliseconds; 0 waits indefinitely (the pre-existing
     * behavior). On timeout, still-queued requests fail with
     * `RequestErrorCode::DrainTimeout` instead of blocking the
     * shutdown caller behind a stuck dispatcher.
     */
    double drainTimeoutMs = 0.0;

    /**
     * Fault injection hook (not owned; null = off, at the cost of one
     * null-pointer branch per batch/request). See serve/faults.hh.
     */
    FaultInjector *faults = nullptr;

    /** Results keep the best `topK` candidates (and all raw scores). */
    uint32_t topK = 10;

    /**
     * Candidate selection (retrieval/retrieval.hh). Exhaustive scores
     * the whole corpus per query — the oracle. Cascade prunes through
     * the tag filter and coarse shortlist first and runs the exact GMN
     * only on the survivors; those exact scores are bit-identical to
     * exhaustive mode's, but a true top-k hit pruned early is lost
     * (recall < 1 is possible). Cascade builds both retrieval indexes
     * at construction.
     */
    RetrievalConfig retrieval;

    /**
     * Live-corpus knobs (corpus/live_corpus.hh): slot capacity for
     * online inserts and the tombstone ratio that triggers posting
     * compaction. Only consulted once mutations happen — a service
     * that never calls `insert`/`remove` behaves exactly like the
     * fixed-corpus service did.
     */
    MutationConfig mutation;

    /**
     * Slow-request log threshold in milliseconds of end-to-end
     * latency; 0 disables. A breaching request logs one warn() line
     * with its queue/total split and batch size.
     */
    double slowMs = 0.0;

    /**
     * Serving SLO (latency target + objective; see obs/slo.hh).
     * Disabled by default; when enabled, every request outcome feeds
     * the multi-window burn-rate gauges (`serve.slo.burn.*`).
     */
    obs::SloConfig slo;

    /**
     * Embedded admin/scrape server port: negative = off (the
     * default), 0 = bind an ephemeral port (read it back via
     * `adminPort()`), >0 = bind that port on 127.0.0.1. Starting the
     * admin server also turns on per-request critical-path
     * attribution (`/tracez` needs it).
     */
    int adminPort = -1;

    /**
     * Per-request critical-path attribution without the admin server
     * (benches): fills `QueryResult::breakdown` and the tail-exemplar
     * store. Off by default — the disabled cost on the scoring path
     * is one relaxed atomic load per stage scope.
     */
    bool attribution = false;

    /**
     * Poll hardware cache counters (perf_event_open) on the
     * dispatcher thread and expose them as `hw.*` gauges. Gracefully
     * unavailable in containers/locked-down kernels: the gauges stay
     * 0 and `/statusz` reports why.
     */
    bool hwCounters = false;
};

/** One ranked search result. */
struct SearchHit
{
    /**
     * Index into `QueryResult::scores` / `QueryResult::ids`: the
     * position of the candidate in the pinned snapshot's live-entry
     * order. For a never-mutated corpus this is exactly the corpus
     * vector index (the pre-live-corpus meaning).
     */
    uint32_t candidate = 0;
    double score = 0.0;
};

/** What a completed query resolves to. */
struct QueryResult
{
    /**
     * Per-candidate similarity scores, in the pinned snapshot's
     * live-entry order (== corpus order when no mutation ever
     * happened). In cascade mode only the verified (shortlisted)
     * candidates carry scores; every pruned candidate's slot is NaN —
     * "not scored", distinct from any real similarity.
     */
    std::vector<double> scores;

    /** Best `topK` hits, score-descending (ties: lower index first). */
    std::vector<SearchHit> topK;

    /**
     * The corpus epoch this query was scored against: every score in
     * this result reflects exactly that epoch's corpus — one
     * consistent view, never a torn one. An offline oracle replaying
     * the mutation schedule up to this epoch reproduces `scores` bit
     * for bit.
     */
    uint64_t epoch = 0;

    /**
     * Stable 64-bit id of each scored candidate, parallel to
     * `scores`. Shared across the batch (one vector per pinned
     * snapshot), so carrying it is O(1) per request.
     */
    std::shared_ptr<const std::vector<uint64_t>> ids;

    double queueMs = 0.0; ///< submit -> batch flush
    double totalMs = 0.0; ///< submit -> result ready
    uint32_t batchSize = 0; ///< size of the batch this query rode in

    /**
     * Per-request critical path (request id, queue/total wall time,
     * per-stage thread-times). Stage fields are non-zero only when
     * attribution is on (`ServeConfig::adminPort >= 0` or
     * `ServeConfig::attribution`); the id and wall segments are
     * always filled.
     */
    obs::CriticalPath breakdown;
};

/**
 * Best-k hits over `scores`, score-descending, ties broken by lower
 * candidate index. NaN scores order strictly last (by index among
 * themselves) — a NaN-oblivious comparator would violate strict weak
 * ordering and hand `std::partial_sort` undefined behavior.
 * Exposed for direct unit testing.
 */
std::vector<SearchHit> topKHits(const std::vector<double> &scores,
                                uint32_t k);

/**
 * A graph-similarity search service over a fixed corpus. Construction
 * builds the model and starts the dispatcher; destruction (or
 * `shutdown()`) stops admission, drains every admitted request, and
 * joins. Thread-safe: any number of threads may `submit()`
 * concurrently with each other, with `metrics()`, and with
 * `shutdown()`.
 */
class SearchService
{
  public:
    /**
     * Bootstrap over `corpus` with stable ids `ids` (one per graph,
     * distinct) — what dataset loaders provide via
     * `CloneSearchCorpus::candidateIds`.
     */
    SearchService(ServeConfig config, std::vector<Graph> corpus,
                  std::vector<uint64_t> ids);

    /** Convenience: stable ids default to the vector indices. */
    SearchService(ServeConfig config, std::vector<Graph> corpus);

    ~SearchService();

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /**
     * Submit one query for scoring against the whole corpus, under
     * the service's default deadline (`ServeConfig.requestDeadlineMs`).
     *
     * @return a future that resolves to the result, or throws a
     *         `RequestError` from `get()` (see `RequestErrorCode` for
     *         the failure taxonomy)
     */
    std::future<QueryResult> submit(Graph query);

    /**
     * Submit with a per-request deadline budget override:
     * `deadline_ms` > 0 bounds this request, 0 disables its deadline,
     * and a negative budget means the client already spent it — the
     * request fails `DeadlineExceeded` at admission, unscored.
     */
    std::future<QueryResult> submit(Graph query, double deadline_ms);

    /**
     * Stop admitting, score every already-admitted request (bounded
     * by `ServeConfig.drainTimeoutMs` when set), and join the
     * dispatcher. Idempotent and thread-safe; called by the
     * destructor. After shutdown the provider gauges are frozen to
     * their final values, so late metric scrapes during teardown
     * never poll a dead member.
     */
    void shutdown();

    /** Live metrics, including memo-cache and dedup counters. */
    MetricsSnapshot metrics() const;

    /**
     * The service's metrics registry (counters, latency and per-stage
     * histograms, provider gauges over the memo cache and queue) for
     * JSON / Prometheus exposition.
     */
    const obs::MetricsRegistry &registry() const
    {
        return metrics_.registry();
    }

    /**
     * Client-side retry accounting: load generators report each retry
     * here so `serve.requests.retries` flows through the same registry
     * as the server-side counters.
     */
    void noteClientRetry() { metrics_.recordRetry(); }

    /// @name Online corpus mutation
    /// Thread-safe against concurrent submits and each other. Staged
    /// mutations become visible at `flushMutations()`; batches already
    /// in flight keep scoring their pinned epoch (see
    /// corpus/live_corpus.hh for the snapshot contract).
    /// @{

    /** Stage inserting `g` under stable id `id` (false on dup/full). */
    bool insert(uint64_t id, Graph g);

    /** Stage removing the entry with id `id` (false when unknown). */
    bool remove(uint64_t id);

    /**
     * Publish all staged mutations as one new epoch, incrementally
     * updating the retrieval structures and invalidating removed
     * graphs' memo entries. @return the epoch now current.
     */
    uint64_t flushMutations();
    /// @}

    const ServeConfig &config() const { return config_; }

    /** Live entries at the current epoch. */
    size_t corpusSize() const { return corpus_.liveCount(); }

    const MemoCache &memo() const { return memo_; }

    /** The live corpus behind the service (stats, pinning in tests). */
    const LiveCorpus &corpus() const { return corpus_; }

    /**
     * The admin server's bound port, or -1 when it is off. With
     * `ServeConfig::adminPort == 0` this is the ephemeral port the
     * kernel picked.
     */
    int adminPort() const
    {
        return admin_ ? static_cast<int>(admin_->port()) : -1;
    }

    /** Tail exemplars (`/tracez` data) for direct inspection. */
    std::vector<obs::CriticalPath> tailExemplars() const
    {
        return exemplars_.collect();
    }

  private:
    struct Pending
    {
        Graph query;
        std::promise<QueryResult> promise;
        std::chrono::steady_clock::time_point submitted;
        std::chrono::steady_clock::time_point deadline = kNoDeadline;
        uint64_t id = 0; ///< service-unique request id
    };

    using SteadyTime = std::chrono::steady_clock::time_point;

    /**
     * Per-batch pipeline unit: the pinned snapshot, the live requests,
     * and every intermediate the stages hand to each other. Defined in
     * service.cc; flows through `StagePipeline` as a `PipelineItem`
     * (or through the same stage functions inline when
     * `pipelineDepth == 0`).
     */
    struct BatchWork;

    void dispatchLoop();
    void scoreBatch(std::vector<Pending> &batch);
    /** Stage 1: pre-warm each query's memoized embedding chain. */
    void stageEmbed(BatchWork &work);
    /** Stage 2: the pair-parallel dedup/match scoring pass. */
    void stageMatch(BatchWork &work);
    /** Stage 3: top-k, result assembly, promise delivery. */
    void stageHead(BatchWork &work);
    void matchExhaustive(BatchWork &work);
    void matchCascade(BatchWork &work);
    void headExhaustive(BatchWork &work);
    void headCascade(BatchWork &work);
    void finishQuery(Pending &pending, QueryResult result,
                     SteadyTime flushed, SteadyTime done,
                     uint32_t batch_size,
                     const obs::StageAccum *accum);
    void freezeGauges();
    void startAdminServer();
    std::string statusJson() const;

    /** Window-scheduler activity since this service was constructed. */
    WindowSchedStats windowDelta() const;

    ServeConfig config_;
    std::unique_ptr<GmnModel> model_;

    // Provider-gauge targets (memo_, dedupStats_, batcher_, corpus_,
    // windowBase_) are declared BEFORE metrics_: members destroy in
    // reverse order, so the registry (inside metrics_) dies first and
    // a provider callback can never poll an already-destroyed member.
    MemoCache memo_;
    DedupStats dedupStats_;
    MicroBatcher<Pending> batcher_;
    LiveCorpus corpus_;
    WindowSchedStats windowBase_; ///< process totals at construction
    obs::TailExemplars exemplars_;

    /**
     * Dispatcher-thread hardware counters (perf counters are per
     * calling thread, so the dispatcher opens and reads them; the
     * gauges sample under the mutex). `frozen` holds the final counts
     * once the dispatcher exits. Declared before metrics_: the hw
     * provider gauges poll it.
     */
    struct HwState
    {
        mutable std::mutex mutex;
        std::unique_ptr<obs::CacheCounters> counters;
        obs::CacheCounterSample frozen;
    };
    HwState hw_;

    /**
     * The pipelined execution engine (null when `pipelineDepth == 0`).
     * Declared before metrics_ — the `serve.pipeline.*` provider
     * gauges poll it — and its workers are joined by the dispatcher's
     * drain before shutdown() freezes the gauges.
     */
    std::unique_ptr<StagePipeline> pipeline_;

    ServiceMetrics metrics_;

    std::atomic<uint64_t> nextRequestId_{1};
    std::chrono::steady_clock::time_point started_;

    std::atomic<bool> stopping_{false};
    std::mutex shutdownMutex_; ///< serializes concurrent shutdown()

    // Bounded-drain handshake: the dispatcher flags completion, the
    // shutdown path waits on it with a timeout.
    std::mutex drainMutex_;
    std::condition_variable drainCv_;
    bool drained_ = false;

    std::thread dispatcher_;

    // Declared last: the admin server's accept thread may call into
    // any member above, so it must be destroyed (joined) first. It is
    // stopped explicitly at the END of shutdown(), after the drain —
    // so /healthz can report "draining" while the drain runs.
    std::unique_ptr<obs::AdminServer> admin_;
};

} // namespace cegma

#endif // CEGMA_SERVE_SERVICE_HH
