/**
 * @file
 * `SearchService` — the request-level serving layer over the
 * functional GMN models: graph-similarity search of a query graph
 * against an indexed candidate corpus, with micro-batched admission,
 * a bounded cross-request memo cache, and full latency telemetry.
 *
 * Execution model: `submit()` hands a query to the admission queue and
 * returns a future. A single dispatcher thread pulls micro-batches
 * (flush on batch size or deadline — see serve/batcher.hh) and scores
 * each batch in ONE pair-parallel pass over the shared thread pool:
 * all batch_size x corpus pairs are independent tasks, so the
 * dedup/memo machinery amortizes across every request in the batch
 * (a corpus graph's WL coloring and embedding chain are built once,
 * then hit from every concurrent query).
 *
 * Determinism: every score the service returns is bit-identical to
 * what a serial `runFunctional` over the same (candidate, query) pairs
 * produces, at any thread count and any batch size. The argument
 * composes three invariants the repo already enforces:
 *   1. each pair's forward pass is bit-deterministic regardless of the
 *      pool size (parallel.hh chunking contract);
 *   2. pairs are scored into disjoint output slots, so pair-level
 *      parallelism cannot reorder any arithmetic *within* a pair;
 *   3. the memo cache only replays deterministic per-graph results —
 *      a hit returns exactly the bits a rebuild would produce, so
 *      cache state (including evictions) never leaks into scores.
 * Batching therefore affects *when* a pair is scored, never *what* it
 * computes — the property tests/serve_test.cc proves at 1/2/8 threads
 * and batch sizes 1/4/32.
 */

#ifndef CEGMA_SERVE_SERVICE_HH
#define CEGMA_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "graph/dataset.hh"
#include "serve/batcher.hh"
#include "serve/metrics.hh"

namespace cegma {

/** Static configuration of one `SearchService`. */
struct ServeConfig
{
    ModelId model = ModelId::GraphSim;
    uint64_t modelSeed = 1234;

    /** Elastic knobs (bit-neutral; see the determinism note above). */
    bool dedup = true;
    bool memo = true;

    /** Memo byte budget; bounded by default — serving must not leak. */
    size_t memoBytes = size_t{256} << 20;
    uint32_t memoShards = 8;

    /** Micro-batcher: flush on size or deadline, whichever first. */
    uint32_t maxBatch = 16;
    uint32_t flushMicros = 2000;

    /** Admission bound: submits past this depth are rejected. */
    size_t maxQueueDepth = 4096;

    /** Results keep the best `topK` candidates (and all raw scores). */
    uint32_t topK = 10;

    /**
     * Slow-request log threshold in milliseconds of end-to-end
     * latency; 0 disables. A breaching request logs one warn() line
     * with its queue/total split and batch size.
     */
    double slowMs = 0.0;
};

/** One ranked search result. */
struct SearchHit
{
    uint32_t candidate = 0; ///< corpus index
    double score = 0.0;
};

/** What a completed query resolves to. */
struct QueryResult
{
    /** Per-candidate similarity scores, in corpus order. */
    std::vector<double> scores;

    /** Best `topK` hits, score-descending (ties: lower index first). */
    std::vector<SearchHit> topK;

    double queueMs = 0.0; ///< submit -> batch flush
    double totalMs = 0.0; ///< submit -> result ready
    uint32_t batchSize = 0; ///< size of the batch this query rode in
};

/**
 * A graph-similarity search service over a fixed corpus. Construction
 * builds the model and starts the dispatcher; destruction (or
 * `shutdown()`) stops admission, drains every admitted request, and
 * joins. Thread-safe: any number of threads may `submit()`
 * concurrently with each other, with `metrics()`, and with
 * `shutdown()`.
 */
class SearchService
{
  public:
    SearchService(ServeConfig config, std::vector<Graph> corpus);
    ~SearchService();

    SearchService(const SearchService &) = delete;
    SearchService &operator=(const SearchService &) = delete;

    /**
     * Submit one query for scoring against the whole corpus.
     *
     * @return a future that resolves to the result, or (when the
     *         service is shutting down or the admission queue is full)
     *         throws `std::runtime_error` from `get()`
     */
    std::future<QueryResult> submit(Graph query);

    /**
     * Stop admitting, score every already-admitted request, and join
     * the dispatcher. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Live metrics, including memo-cache and dedup counters. */
    MetricsSnapshot metrics() const;

    /**
     * The service's metrics registry (counters, latency and per-stage
     * histograms, provider gauges over the memo cache and queue) for
     * JSON / Prometheus exposition.
     */
    const obs::MetricsRegistry &registry() const
    {
        return metrics_.registry();
    }

    const ServeConfig &config() const { return config_; }
    size_t corpusSize() const { return corpus_.size(); }
    const MemoCache &memo() const { return memo_; }

  private:
    struct Pending
    {
        Graph query;
        std::promise<QueryResult> promise;
        std::chrono::steady_clock::time_point submitted;
    };

    void dispatchLoop();
    void scoreBatch(std::vector<Pending> &batch);

    ServeConfig config_;
    std::vector<Graph> corpus_;
    std::unique_ptr<GmnModel> model_;
    MemoCache memo_;
    DedupStats dedupStats_;
    ServiceMetrics metrics_;
    MicroBatcher<Pending> batcher_;
    std::atomic<bool> stopping_{false};
    std::thread dispatcher_;
};

} // namespace cegma

#endif // CEGMA_SERVE_SERVICE_HH
