#include "serve/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start, SteadyClock::time_point now)
{
    return std::chrono::duration<double>(now - start).count();
}

/** Whether a failed attempt is worth re-submitting. */
bool
isRetryable(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const RequestError &e) {
        return e.retryable();
    } catch (const std::exception &) {
        return false;
    }
}

/** The jittered backoff before retry `attempt` (1-based), in ms. */
double
backoffMs(const RetryPolicy &retry, uint32_t attempt, Rng &rng)
{
    double backoff = retry.baseBackoffMs *
                     std::pow(2.0, static_cast<double>(attempt - 1));
    backoff = std::min(backoff, retry.maxBackoffMs);
    double jitter = std::clamp(retry.jitter, 0.0, 1.0);
    return backoff * (1.0 - jitter + jitter * rng.nextDouble());
}

/** Accounting shared by both drivers (atomics: clients are threads). */
struct RetryCounters
{
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> giveups{0};
};

std::future<QueryResult>
submitOne(SearchService &service, const Graph &query,
          const RetryPolicy &retry)
{
    return retry.deadlineMs != 0.0
               ? service.submit(query, retry.deadlineMs)
               : service.submit(query);
}

/**
 * Finish a request whose first attempt already failed with `error`:
 * backoff-sleep and resubmit until success, a non-retryable failure,
 * or `retry.maxAttempts` total tries. Backoff draws come from the
 * caller's seeded RNG, so the retry schedule is deterministic per
 * (seed, failure sequence). Each retry is reported to the service's
 * registry via `noteClientRetry()`.
 *
 * @return true when the request eventually succeeded
 */
bool
retryAfterFailure(SearchService &service, const Graph &query,
                  const RetryPolicy &retry, Rng &rng,
                  RetryCounters &counters, std::exception_ptr error)
{
    uint32_t max_attempts = std::max<uint32_t>(retry.maxAttempts, 1);
    for (uint32_t attempt = 1;; ++attempt) {
        if (!isRetryable(error)) {
            counters.errors.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        if (attempt >= max_attempts) {
            counters.errors.fetch_add(1, std::memory_order_relaxed);
            if (max_attempts > 1)
                counters.giveups.fetch_add(1,
                                           std::memory_order_relaxed);
            return false;
        }
        counters.retries.fetch_add(1, std::memory_order_relaxed);
        service.noteClientRetry();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                backoffMs(retry, attempt, rng)));
        std::future<QueryResult> future =
            submitOne(service, query, retry);
        try {
            future.get();
            return true;
        } catch (const std::exception &) {
            error = std::current_exception();
        }
    }
}

/** One full request lifecycle: submit + wait (+ retries). */
bool
runOneRequest(SearchService &service, const Graph &query,
              const RetryPolicy &retry, Rng &rng,
              RetryCounters &counters)
{
    std::future<QueryResult> future = submitOne(service, query, retry);
    try {
        future.get();
        return true;
    } catch (const std::exception &) {
        return retryAfterFailure(service, query, retry, rng, counters,
                                 std::current_exception());
    }
}

void
fillResult(LoadGenResult &result, SearchService &service,
           SteadyClock::time_point start, const RetryCounters &counters)
{
    result.errors = counters.errors.load(std::memory_order_relaxed);
    result.retries = counters.retries.load(std::memory_order_relaxed);
    result.giveups = counters.giveups.load(std::memory_order_relaxed);
    result.makespanSec = secondsSince(start, SteadyClock::now());
    result.metrics = service.metrics();
    result.achievedQps =
        result.makespanSec > 0.0
            ? static_cast<double>(result.metrics.completed) /
                  result.makespanSec
            : 0.0;
}

} // namespace

ZipfPicker::ZipfPicker(size_t n, double skew) : n_(std::max<size_t>(n, 1))
{
    if (skew <= 0.0)
        return; // uniform: one nextBounded, no CDF
    cdf_.resize(n_);
    double total = 0.0;
    for (size_t r = 0; r < n_; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
        cdf_[r] = total;
    }
    for (size_t r = 0; r < n_; ++r)
        cdf_[r] /= total;
    cdf_.back() = 1.0; // guard the binary search against rounding
}

uint32_t
ZipfPicker::pick(Rng &rng) const
{
    if (cdf_.empty())
        return static_cast<uint32_t>(rng.nextBounded(n_));
    double u = rng.nextDouble();
    size_t r = static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return static_cast<uint32_t>(std::min(r, n_ - 1));
}

MutationPlan
planMutations(const std::vector<uint64_t> &bootstrap_ids,
              const MutationPool &pool, uint32_t num_requests,
              const MutationMix &mix, uint64_t seed)
{
    MutationPlan plan;
    plan.before.resize(num_requests);
    plan.flushBefore.assign(num_requests, false);
    if (mix.perQuery <= 0.0 || num_requests == 0)
        return plan;

    Rng rng(seed);
    // `order` tracks the post-staged live ids in slot order. Staged
    // inserts are always the trailing `staged_inserts` entries (slots
    // append), so "flushed-live" removal candidates are exactly the
    // prefix — removing a same-epoch staged insert is never planned.
    std::vector<uint64_t> order = bootstrap_ids;
    size_t staged_inserts = 0;
    uint32_t staged = 0; // ops since the last planned flush
    uint32_t next_pool = 0;
    uint32_t publish = std::max<uint32_t>(mix.publishBatch, 1);
    double acc = 0.0;

    for (uint32_t i = 0; i < num_requests; ++i) {
        acc += mix.perQuery;
        while (acc >= 1.0) {
            acc -= 1.0;
            double u = rng.nextDouble();
            bool can_insert =
                next_pool < static_cast<uint32_t>(pool.graphs.size());
            size_t removable = order.size() - staged_inserts;
            bool can_remove = removable > 0;
            if (!can_insert && !can_remove)
                break;
            MutationOp op;
            if (can_insert &&
                (!can_remove || u < mix.insertFraction)) {
                op.isInsert = true;
                op.poolIndex = next_pool;
                op.id = pool.ids[next_pool];
                ++next_pool;
                order.push_back(op.id);
                ++staged_inserts;
                ++plan.totalInserts;
            } else {
                size_t victim = static_cast<size_t>(
                    rng.nextBounded(static_cast<uint64_t>(removable)));
                op.isInsert = false;
                op.id = order[victim];
                order.erase(order.begin() +
                            static_cast<ptrdiff_t>(victim));
                ++plan.totalRemoves;
            }
            plan.before[i].push_back(op);
            ++plan.totalMutations;
            ++staged;
        }
        if (staged >= publish) {
            plan.flushBefore[i] = true;
            staged = 0;
            staged_inserts = 0;
        }
    }
    plan.totalFlushes = 0;
    for (uint32_t i = 0; i < num_requests; ++i)
        if (plan.flushBefore[i])
            ++plan.totalFlushes;
    if (staged > 0)
        ++plan.totalFlushes; // the driver's trailing flush
    return plan;
}

std::vector<std::vector<uint64_t>>
liveIdsByEpoch(const std::vector<uint64_t> &bootstrap_ids,
               const MutationPool &pool, const MutationPlan &plan)
{
    (void)pool; // ids are carried in the ops themselves
    std::vector<std::vector<uint64_t>> epochs;
    std::vector<uint64_t> order = bootstrap_ids;
    epochs.push_back(order); // epoch 0: the bootstrap corpus
    uint32_t staged = 0;
    for (size_t i = 0; i < plan.before.size(); ++i) {
        for (const MutationOp &op : plan.before[i]) {
            if (op.isInsert) {
                order.push_back(op.id);
            } else {
                auto it =
                    std::find(order.begin(), order.end(), op.id);
                if (it != order.end())
                    order.erase(it);
            }
            ++staged;
        }
        if (i < plan.flushBefore.size() && plan.flushBefore[i]) {
            epochs.push_back(order);
            staged = 0;
        }
    }
    if (staged > 0)
        epochs.push_back(order); // the trailing flush
    return epochs;
}

LoadGenResult
runOpenLoopMutating(SearchService &service,
                    const std::vector<Graph> &queries,
                    const MutationPool &pool, const MutationPlan &plan,
                    const MutationMix &mix, uint32_t num_requests,
                    double qps, uint64_t seed, const RetryPolicy &retry)
{
    if (queries.empty())
        fatal("runOpenLoopMutating: no query graphs");
    if (qps <= 0.0)
        fatal("runOpenLoopMutating: qps must be positive");
    if (plan.before.size() < num_requests)
        fatal("runOpenLoopMutating: plan covers %zu < %u requests",
              plan.before.size(), num_requests);

    // Pre-draw arrivals AND query indices: the offered workload is a
    // pure function of (seed, qps, num_requests, mix) regardless of
    // service timing. Stream order (arrivals, retry fork, query fork)
    // is fixed so adding skew never perturbs the arrival schedule.
    Rng rng(seed);
    std::vector<double> arrival_sec(num_requests);
    double t = 0.0;
    for (uint32_t i = 0; i < num_requests; ++i) {
        t += -std::log1p(-rng.nextDouble()) / qps;
        arrival_sec[i] = t;
    }
    Rng retry_rng = rng.fork();
    Rng query_rng = rng.fork();
    std::vector<uint32_t> query_index(num_requests);
    if (mix.zipfSkew > 0.0) {
        ZipfPicker picker(queries.size(), mix.zipfSkew);
        for (uint32_t i = 0; i < num_requests; ++i)
            query_index[i] = picker.pick(query_rng);
    } else {
        for (uint32_t i = 0; i < num_requests; ++i)
            query_index[i] =
                static_cast<uint32_t>(i % queries.size());
    }

    LoadGenResult result;
    result.offeredQps = qps;
    RetryCounters counters;
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(num_requests);

    SteadyClock::time_point start = SteadyClock::now();
    for (uint32_t i = 0; i < num_requests; ++i) {
        auto when = start + std::chrono::duration_cast<
                                SteadyClock::duration>(
                                std::chrono::duration<double>(
                                    arrival_sec[i]));
        std::this_thread::sleep_until(when);
        // Mutations ride the arrival thread: stage this request's
        // ops, publish at the planned epoch boundary, then submit.
        // In-flight batches keep scoring their pinned epochs.
        for (const MutationOp &op : plan.before[i]) {
            bool ok = op.isInsert
                          ? service.insert(op.id,
                                           pool.graphs[op.poolIndex])
                          : service.remove(op.id);
            if (!ok)
                fatal("runOpenLoopMutating: planned %s of id %llu "
                      "refused",
                      op.isInsert ? "insert" : "remove",
                      static_cast<unsigned long long>(op.id));
        }
        if (plan.flushBefore[i])
            service.flushMutations();
        futures.push_back(
            submitOne(service, queries[query_index[i]], retry));
    }
    // Publish whatever the schedule left staged so the run ends at
    // the plan's final epoch (liveIdsByEpoch's last entry).
    service.flushMutations();

    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            futures[i].get();
        } catch (const std::exception &) {
            retryAfterFailure(service, queries[query_index[i]], retry,
                              retry_rng, counters,
                              std::current_exception());
        }
    }
    fillResult(result, service, start, counters);
    return result;
}

LoadGenResult
runOpenLoop(SearchService &service, const std::vector<Graph> &queries,
            uint32_t num_requests, double qps, uint64_t seed,
            const RetryPolicy &retry)
{
    if (queries.empty())
        fatal("runOpenLoop: no query graphs");
    if (qps <= 0.0)
        fatal("runOpenLoop: qps must be positive");

    // Pre-draw the whole arrival schedule so the offered load is a
    // pure function of (seed, qps, num_requests) — identical for every
    // service configuration being compared.
    Rng rng(seed);
    std::vector<double> arrival_sec(num_requests);
    double t = 0.0;
    for (uint32_t i = 0; i < num_requests; ++i) {
        // Exponential inter-arrival: -ln(1 - u) / qps, u in [0, 1).
        t += -std::log1p(-rng.nextDouble()) / qps;
        arrival_sec[i] = t;
    }
    // A forked stream for backoff jitter: enabling retries never
    // perturbs the arrival schedule above.
    Rng retry_rng = rng.fork();

    LoadGenResult result;
    result.offeredQps = qps;
    RetryCounters counters;
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(num_requests);

    SteadyClock::time_point start = SteadyClock::now();
    for (uint32_t i = 0; i < num_requests; ++i) {
        auto when = start + std::chrono::duration_cast<
                                SteadyClock::duration>(
                                std::chrono::duration<double>(
                                    arrival_sec[i]));
        std::this_thread::sleep_until(when);
        futures.push_back(submitOne(
            service, queries[i % queries.size()], retry));
    }
    // Reap in submit order; failed first attempts take the retry path
    // (backoff + resubmit) after the whole schedule has been offered,
    // so retries never distort the open-loop arrival comparison.
    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            futures[i].get();
        } catch (const std::exception &) {
            retryAfterFailure(service, queries[i % queries.size()],
                              retry, retry_rng, counters,
                              std::current_exception());
        }
    }
    fillResult(result, service, start, counters);
    return result;
}

LoadGenResult
runClosedLoop(SearchService &service, const std::vector<Graph> &queries,
              uint32_t num_requests, uint32_t clients,
              const RetryPolicy &retry, uint64_t seed)
{
    if (queries.empty())
        fatal("runClosedLoop: no query graphs");
    clients = std::max<uint32_t>(clients, 1);

    LoadGenResult result;
    RetryCounters counters;
    std::atomic<uint32_t> next{0};

    SteadyClock::time_point start = SteadyClock::now();
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (uint32_t w = 0; w < clients; ++w) {
        workers.emplace_back([&, w] {
            // Per-client seeded stream: deterministic backoff jitter
            // without cross-thread RNG sharing.
            Rng client_rng(seed + w);
            for (;;) {
                uint32_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= num_requests)
                    return;
                runOneRequest(service, queries[i % queries.size()],
                              retry, client_rng, counters);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    fillResult(result, service, start, counters);
    return result;
}

} // namespace cegma
