#include "serve/loadgen.hh"

#include <atomic>
#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start, SteadyClock::time_point now)
{
    return std::chrono::duration<double>(now - start).count();
}

} // namespace

LoadGenResult
runOpenLoop(SearchService &service, const std::vector<Graph> &queries,
            uint32_t num_requests, double qps, uint64_t seed)
{
    if (queries.empty())
        fatal("runOpenLoop: no query graphs");
    if (qps <= 0.0)
        fatal("runOpenLoop: qps must be positive");

    // Pre-draw the whole arrival schedule so the offered load is a
    // pure function of (seed, qps, num_requests) — identical for every
    // service configuration being compared.
    Rng rng(seed);
    std::vector<double> arrival_sec(num_requests);
    double t = 0.0;
    for (uint32_t i = 0; i < num_requests; ++i) {
        // Exponential inter-arrival: -ln(1 - u) / qps, u in [0, 1).
        t += -std::log1p(-rng.nextDouble()) / qps;
        arrival_sec[i] = t;
    }

    LoadGenResult result;
    result.offeredQps = qps;
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(num_requests);

    SteadyClock::time_point start = SteadyClock::now();
    for (uint32_t i = 0; i < num_requests; ++i) {
        auto when = start + std::chrono::duration_cast<
                                SteadyClock::duration>(
                                std::chrono::duration<double>(
                                    arrival_sec[i]));
        std::this_thread::sleep_until(when);
        futures.push_back(service.submit(queries[i % queries.size()]));
    }
    for (auto &future : futures) {
        try {
            future.get();
        } catch (const std::exception &) {
            ++result.errors;
        }
    }
    result.makespanSec = secondsSince(start, SteadyClock::now());
    result.metrics = service.metrics();
    result.achievedQps =
        result.makespanSec > 0.0
            ? static_cast<double>(result.metrics.completed) /
                  result.makespanSec
            : 0.0;
    return result;
}

LoadGenResult
runClosedLoop(SearchService &service, const std::vector<Graph> &queries,
              uint32_t num_requests, uint32_t clients)
{
    if (queries.empty())
        fatal("runClosedLoop: no query graphs");
    clients = std::max<uint32_t>(clients, 1);

    LoadGenResult result;
    std::atomic<uint32_t> next{0};
    std::atomic<uint64_t> errors{0};

    SteadyClock::time_point start = SteadyClock::now();
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (uint32_t w = 0; w < clients; ++w) {
        workers.emplace_back([&] {
            for (;;) {
                uint32_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= num_requests)
                    return;
                try {
                    service.submit(queries[i % queries.size()]).get();
                } catch (const std::exception &) {
                    errors.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    result.errors = errors.load(std::memory_order_relaxed);
    result.makespanSec = secondsSince(start, SteadyClock::now());
    result.metrics = service.metrics();
    result.achievedQps =
        result.makespanSec > 0.0
            ? static_cast<double>(result.metrics.completed) /
                  result.makespanSec
            : 0.0;
    return result;
}

} // namespace cegma
