#include "serve/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start, SteadyClock::time_point now)
{
    return std::chrono::duration<double>(now - start).count();
}

/** Whether a failed attempt is worth re-submitting. */
bool
isRetryable(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const RequestError &e) {
        return e.retryable();
    } catch (const std::exception &) {
        return false;
    }
}

/** The jittered backoff before retry `attempt` (1-based), in ms. */
double
backoffMs(const RetryPolicy &retry, uint32_t attempt, Rng &rng)
{
    double backoff = retry.baseBackoffMs *
                     std::pow(2.0, static_cast<double>(attempt - 1));
    backoff = std::min(backoff, retry.maxBackoffMs);
    double jitter = std::clamp(retry.jitter, 0.0, 1.0);
    return backoff * (1.0 - jitter + jitter * rng.nextDouble());
}

/** Accounting shared by both drivers (atomics: clients are threads). */
struct RetryCounters
{
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> giveups{0};
};

std::future<QueryResult>
submitOne(SearchService &service, const Graph &query,
          const RetryPolicy &retry)
{
    return retry.deadlineMs != 0.0
               ? service.submit(query, retry.deadlineMs)
               : service.submit(query);
}

/**
 * Finish a request whose first attempt already failed with `error`:
 * backoff-sleep and resubmit until success, a non-retryable failure,
 * or `retry.maxAttempts` total tries. Backoff draws come from the
 * caller's seeded RNG, so the retry schedule is deterministic per
 * (seed, failure sequence). Each retry is reported to the service's
 * registry via `noteClientRetry()`.
 *
 * @return true when the request eventually succeeded
 */
bool
retryAfterFailure(SearchService &service, const Graph &query,
                  const RetryPolicy &retry, Rng &rng,
                  RetryCounters &counters, std::exception_ptr error)
{
    uint32_t max_attempts = std::max<uint32_t>(retry.maxAttempts, 1);
    for (uint32_t attempt = 1;; ++attempt) {
        if (!isRetryable(error)) {
            counters.errors.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        if (attempt >= max_attempts) {
            counters.errors.fetch_add(1, std::memory_order_relaxed);
            if (max_attempts > 1)
                counters.giveups.fetch_add(1,
                                           std::memory_order_relaxed);
            return false;
        }
        counters.retries.fetch_add(1, std::memory_order_relaxed);
        service.noteClientRetry();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                backoffMs(retry, attempt, rng)));
        std::future<QueryResult> future =
            submitOne(service, query, retry);
        try {
            future.get();
            return true;
        } catch (const std::exception &) {
            error = std::current_exception();
        }
    }
}

/** One full request lifecycle: submit + wait (+ retries). */
bool
runOneRequest(SearchService &service, const Graph &query,
              const RetryPolicy &retry, Rng &rng,
              RetryCounters &counters)
{
    std::future<QueryResult> future = submitOne(service, query, retry);
    try {
        future.get();
        return true;
    } catch (const std::exception &) {
        return retryAfterFailure(service, query, retry, rng, counters,
                                 std::current_exception());
    }
}

void
fillResult(LoadGenResult &result, SearchService &service,
           SteadyClock::time_point start, const RetryCounters &counters)
{
    result.errors = counters.errors.load(std::memory_order_relaxed);
    result.retries = counters.retries.load(std::memory_order_relaxed);
    result.giveups = counters.giveups.load(std::memory_order_relaxed);
    result.makespanSec = secondsSince(start, SteadyClock::now());
    result.metrics = service.metrics();
    result.achievedQps =
        result.makespanSec > 0.0
            ? static_cast<double>(result.metrics.completed) /
                  result.makespanSec
            : 0.0;
}

} // namespace

LoadGenResult
runOpenLoop(SearchService &service, const std::vector<Graph> &queries,
            uint32_t num_requests, double qps, uint64_t seed,
            const RetryPolicy &retry)
{
    if (queries.empty())
        fatal("runOpenLoop: no query graphs");
    if (qps <= 0.0)
        fatal("runOpenLoop: qps must be positive");

    // Pre-draw the whole arrival schedule so the offered load is a
    // pure function of (seed, qps, num_requests) — identical for every
    // service configuration being compared.
    Rng rng(seed);
    std::vector<double> arrival_sec(num_requests);
    double t = 0.0;
    for (uint32_t i = 0; i < num_requests; ++i) {
        // Exponential inter-arrival: -ln(1 - u) / qps, u in [0, 1).
        t += -std::log1p(-rng.nextDouble()) / qps;
        arrival_sec[i] = t;
    }
    // A forked stream for backoff jitter: enabling retries never
    // perturbs the arrival schedule above.
    Rng retry_rng = rng.fork();

    LoadGenResult result;
    result.offeredQps = qps;
    RetryCounters counters;
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(num_requests);

    SteadyClock::time_point start = SteadyClock::now();
    for (uint32_t i = 0; i < num_requests; ++i) {
        auto when = start + std::chrono::duration_cast<
                                SteadyClock::duration>(
                                std::chrono::duration<double>(
                                    arrival_sec[i]));
        std::this_thread::sleep_until(when);
        futures.push_back(submitOne(
            service, queries[i % queries.size()], retry));
    }
    // Reap in submit order; failed first attempts take the retry path
    // (backoff + resubmit) after the whole schedule has been offered,
    // so retries never distort the open-loop arrival comparison.
    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            futures[i].get();
        } catch (const std::exception &) {
            retryAfterFailure(service, queries[i % queries.size()],
                              retry, retry_rng, counters,
                              std::current_exception());
        }
    }
    fillResult(result, service, start, counters);
    return result;
}

LoadGenResult
runClosedLoop(SearchService &service, const std::vector<Graph> &queries,
              uint32_t num_requests, uint32_t clients,
              const RetryPolicy &retry, uint64_t seed)
{
    if (queries.empty())
        fatal("runClosedLoop: no query graphs");
    clients = std::max<uint32_t>(clients, 1);

    LoadGenResult result;
    RetryCounters counters;
    std::atomic<uint32_t> next{0};

    SteadyClock::time_point start = SteadyClock::now();
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (uint32_t w = 0; w < clients; ++w) {
        workers.emplace_back([&, w] {
            // Per-client seeded stream: deterministic backoff jitter
            // without cross-thread RNG sharing.
            Rng client_rng(seed + w);
            for (;;) {
                uint32_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= num_requests)
                    return;
                runOneRequest(service, queries[i % queries.size()],
                              retry, client_rng, counters);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    fillResult(result, service, start, counters);
    return result;
}

} // namespace cegma
