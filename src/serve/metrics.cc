#include "serve/metrics.hh"

#include <cinttypes>
#include <cstdio>

#include "obs/build_info.hh"

namespace cegma {

namespace {

/** Append `"key": value` (number) to `out`. */
void
appendField(std::string &out, const char *key, double value,
            bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.4f%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

void
appendField(std::string &out, const char *key, uint64_t value,
            bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{";
    appendField(out, "submitted", submitted);
    appendField(out, "completed", completed);
    appendField(out, "rejected", rejected);
    appendField(out, "expired", expired);
    appendField(out, "shed", shed);
    appendField(out, "retries", retries);
    appendField(out, "drain_dropped", drainDropped);
    appendField(out, "batches", batches);
    appendField(out, "queue_depth", queueDepth);
    appendField(out, "elapsed_sec", elapsedSec);
    appendField(out, "qps", qps);
    appendField(out, "batch_mean", batchMean);
    appendField(out, "batch_max", batchMax);
    appendField(out, "latency_p50_ms", latencyP50Ms);
    appendField(out, "latency_p95_ms", latencyP95Ms);
    appendField(out, "latency_p99_ms", latencyP99Ms);
    appendField(out, "latency_mean_ms", latencyMeanMs);
    appendField(out, "latency_max_ms", latencyMaxMs);
    appendField(out, "queue_mean_ms", queueMeanMs);
    appendField(out, "cache_hits", cacheHits);
    appendField(out, "cache_misses", cacheMisses);
    appendField(out, "cache_evictions", cacheEvictions);
    appendField(out, "cache_bytes", cacheBytes);
    appendField(out, "cache_hit_rate", cacheHitRate);
    appendField(out, "dedup_rows_total", dedupRowsTotal);
    appendField(out, "dedup_rows_unique", dedupRowsUnique);
    appendField(out, "dedup_skip_ratio", dedupSkipRatio);
    appendField(out, "retrieval_candidates", retrievalCandidates);
    appendField(out, "retrieval_survivors", retrievalSurvivors);
    appendField(out, "retrieval_verified", retrievalVerified);
    appendField(out, "retrieval_filter_prune_ratio",
                retrievalFilterPruneRatio);
    appendField(out, "retrieval_prune_ratio", retrievalPruneRatio);
    appendField(out, "corpus_epoch", corpusEpoch);
    appendField(out, "corpus_live", corpusLive);
    appendField(out, "corpus_slots", corpusSlots);
    appendField(out, "corpus_tombstones", corpusTombstones);
    appendField(out, "corpus_inserts", corpusInserts);
    appendField(out, "corpus_removes", corpusRemoves);
    appendField(out, "corpus_epochs_reclaimed", corpusEpochsReclaimed);
    appendField(out, "corpus_compactions", corpusCompactions);
    appendField(out, "window_windows", windowWindows);
    appendField(out, "window_slides", windowSlides);
    appendField(out, "window_jumps", windowJumps);
    appendField(out, "window_x_tile_loads", windowXTileLoads);
    appendField(out, "window_y_tile_loads", windowYTileLoads);
    appendField(out, "stage_embed_ms", stageEmbedMs);
    appendField(out, "stage_match_ms", stageMatchMs);
    appendField(out, "stage_dedup_ms", stageDedupMs);
    appendField(out, "stage_head_ms", stageHeadMs);
    appendField(out, "stage_memo_ms", stageMemoMs);
    appendField(out, "stage_queue_ms", stageQueueMs);
    out += "\"build\": " + obs::buildInfoJson();
    out += "}";
    return out;
}

ServiceMetrics::ServiceMetrics(obs::ClockFn clock)
    : submitted_(registry_.counter("serve.requests.submitted")),
      completed_(registry_.counter("serve.requests.completed")),
      rejected_(registry_.counter("serve.requests.rejected")),
      expired_(registry_.counter("serve.requests.expired")),
      shed_(registry_.counter("serve.requests.shed")),
      retries_(registry_.counter("serve.requests.retries")),
      drainDropped_(registry_.counter("serve.requests.drain_dropped")),
      batches_(registry_.counter("serve.batches")),
      retrievalCandidates_(
          registry_.counter("serve.retrieval.candidates")),
      retrievalSurvivors_(
          registry_.counter("serve.retrieval.survivors")),
      retrievalVerified_(registry_.counter("serve.retrieval.verified")),
      batchSize_(registry_.histogram("serve.batch.size", "requests")),
      latencyUs_(registry_.histogram("serve.latency.total", "us")),
      queueUs_(registry_.histogram("serve.latency.queue", "us")),
      clock_(std::move(clock))
{
    stages_.embedUs = &registry_.histogram("serve.stage.embed", "us");
    stages_.matchUs = &registry_.histogram("serve.stage.match", "us");
    stages_.dedupUs = &registry_.histogram("serve.stage.dedup", "us");
    stages_.headUs = &registry_.histogram("serve.stage.head", "us");

    // Rolling horizons: what is happening *now*, next to the lifetime
    // histograms above. 12 buckets per window keeps expiry smooth
    // without growing the per-record cost (one mutex either way).
    static constexpr uint64_t kSecNs = 1000000000ull;
    const struct
    {
        const char *name;
        uint64_t windowNs;
    } spans[3] = {{"win10s", 10 * kSecNs},
                  {"win1m", 60 * kSecNs},
                  {"win5m", 300 * kSecNs}};
    for (size_t h = 0; h < 3; ++h) {
        Horizon &hz = horizons_[h];
        hz.name = spans[h].name;
        hz.latencyUs = std::make_unique<obs::WindowedDistribution>(
            spans[h].windowNs, 12, clock_);
        hz.errors = std::make_unique<obs::WindowedCounter>(
            spans[h].windowNs, 12, clock_);
        std::string prefix = std::string("serve.") + hz.name;
        obs::WindowedDistribution *lat = hz.latencyUs.get();
        obs::WindowedCounter *errs = hz.errors.get();
        registry_.providerFloatGauge(
            prefix + ".rate", [lat] { return lat->ratePerSec(); });
        registry_.providerFloatGauge(
            prefix + ".error_rate",
            [errs] { return errs->ratePerSec(); });
        registry_.providerGauge(prefix + ".p50_us", [lat] {
            return static_cast<int64_t>(lat->summary().p50);
        });
        registry_.providerGauge(prefix + ".p95_us", [lat] {
            return static_cast<int64_t>(lat->summary().p95);
        });
        registry_.providerGauge(prefix + ".p99_us", [lat] {
            return static_cast<int64_t>(lat->summary().p99);
        });
    }
}

void
ServiceMetrics::configureSlo(const obs::SloConfig &config)
{
    if (!config.enabled())
        return;
    slo_ = std::make_unique<obs::SloTracker>(
        config, obs::SloTracker::defaultWindowsNs(), 12, clock_);
    registry_.floatGauge("serve.slo.target_ms").set(config.targetMs);
    registry_.floatGauge("serve.slo.objective").set(config.objective);
    obs::SloTracker *slo = slo_.get();
    const char *names[3] = {"serve.slo.burn.win10s",
                            "serve.slo.burn.win1m",
                            "serve.slo.burn.win5m"};
    for (size_t w = 0; w < 3 && w < slo->windows(); ++w) {
        registry_.providerFloatGauge(
            names[w], [slo, w] { return slo->burnRate(w); });
    }
}

void
ServiceMetrics::freezeWindowGauges()
{
    auto freezeFloat = [this](const std::string &name, double value) {
        registry_.providerFloatGauge(name, [value] { return value; });
    };
    auto freezeInt = [this](const std::string &name, int64_t value) {
        registry_.providerGauge(name, [value] { return value; });
    };
    for (Horizon &hz : horizons_) {
        std::string prefix = std::string("serve.") + hz.name;
        obs::WindowedSummary sum = hz.latencyUs->summary();
        freezeFloat(prefix + ".rate", hz.latencyUs->ratePerSec());
        freezeFloat(prefix + ".error_rate", hz.errors->ratePerSec());
        freezeInt(prefix + ".p50_us", static_cast<int64_t>(sum.p50));
        freezeInt(prefix + ".p95_us", static_cast<int64_t>(sum.p95));
        freezeInt(prefix + ".p99_us", static_cast<int64_t>(sum.p99));
    }
    if (slo_) {
        const char *names[3] = {"serve.slo.burn.win10s",
                                "serve.slo.burn.win1m",
                                "serve.slo.burn.win5m"};
        for (size_t w = 0; w < 3 && w < slo_->windows(); ++w)
            freezeFloat(names[w], slo_->burnRate(w));
    }
}

void
ServiceMetrics::recordFailure()
{
    for (Horizon &hz : horizons_)
        hz.errors->add();
    if (slo_)
        slo_->record(false);
}

void
ServiceMetrics::recordSubmitted()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_) {
            started_ = true;
            firstSubmit_ = std::chrono::steady_clock::now();
        }
    }
    submitted_.add();
}

void
ServiceMetrics::recordRejected()
{
    rejected_.add();
    recordFailure();
}

void
ServiceMetrics::recordExpired()
{
    expired_.add();
    recordFailure();
}

void
ServiceMetrics::recordShed()
{
    shed_.add();
    recordFailure();
}

void
ServiceMetrics::recordRetry()
{
    retries_.add();
}

void
ServiceMetrics::recordDrainDropped()
{
    drainDropped_.add();
    recordFailure();
}

void
ServiceMetrics::recordBatch(uint64_t batch_size)
{
    batches_.add();
    batchSize_.record(batch_size);
}

void
ServiceMetrics::recordRetrieval(uint64_t candidates, uint64_t survivors,
                                uint64_t verified)
{
    retrievalCandidates_.add(candidates);
    retrievalSurvivors_.add(survivors);
    retrievalVerified_.add(verified);
}

void
ServiceMetrics::recordCompleted(double queue_us, double total_us)
{
    completed_.add();
    uint64_t total =
        total_us > 0.0 ? static_cast<uint64_t>(total_us) : 0;
    queueUs_.record(queue_us > 0.0 ? static_cast<uint64_t>(queue_us)
                                   : 0);
    latencyUs_.record(total);
    for (Horizon &hz : horizons_)
        hz.latencyUs->record(total);
    // Against the SLO, slow is as bad as failed: the objective is
    // "fraction of requests answered within the target".
    if (slo_) {
        slo_->record(static_cast<double>(total) / 1e3 <=
                     slo_->config().targetMs);
    }
}

MetricsSnapshot
ServiceMetrics::snapshot(uint64_t queue_depth) const
{
    MetricsSnapshot snap;
    snap.submitted = submitted_.value();
    snap.completed = completed_.value();
    snap.rejected = rejected_.value();
    snap.expired = expired_.value();
    snap.shed = shed_.value();
    snap.retries = retries_.value();
    snap.drainDropped = drainDropped_.value();
    snap.batches = batches_.value();
    snap.queueDepth = queue_depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (started_) {
            snap.elapsedSec =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - firstSubmit_)
                    .count();
        }
    }
    snap.qps = snap.elapsedSec > 0.0
                   ? static_cast<double>(snap.completed) /
                         snap.elapsedSec
                   : 0.0;

    snap.retrievalCandidates = retrievalCandidates_.value();
    snap.retrievalSurvivors = retrievalSurvivors_.value();
    snap.retrievalVerified = retrievalVerified_.value();
    if (snap.retrievalCandidates > 0) {
        auto cand = static_cast<double>(snap.retrievalCandidates);
        snap.retrievalFilterPruneRatio =
            1.0 - static_cast<double>(snap.retrievalSurvivors) / cand;
        snap.retrievalPruneRatio =
            1.0 - static_cast<double>(snap.retrievalVerified) / cand;
    }

    obs::HistogramSummary batch = batchSize_.summary();
    snap.batchMean = batch.mean;
    snap.batchMax = static_cast<uint64_t>(batch.max);

    obs::HistogramSummary lat = latencyUs_.summary();
    snap.latencyP50Ms = static_cast<double>(lat.p50) / 1e3;
    snap.latencyP95Ms = static_cast<double>(lat.p95) / 1e3;
    snap.latencyP99Ms = static_cast<double>(lat.p99) / 1e3;
    snap.latencyMeanMs = lat.mean / 1e3;
    snap.latencyMaxMs = lat.max / 1e3;

    obs::HistogramSummary queue = queueUs_.summary();
    snap.queueMeanMs = queue.mean / 1e3;
    snap.stageQueueMs = queue.sum / 1e3;

    snap.stageEmbedMs = stages_.embedUs->sum() / 1e3;
    snap.stageMatchMs = stages_.matchUs->sum() / 1e3;
    snap.stageDedupMs = stages_.dedupUs->sum() / 1e3;
    snap.stageHeadMs = stages_.headUs->sum() / 1e3;
    return snap;
}

} // namespace cegma
