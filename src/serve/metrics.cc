#include "serve/metrics.hh"

#include <cinttypes>
#include <cstdio>

namespace cegma {

namespace {

/** Append `"key": value` (number) to `out`. */
void
appendField(std::string &out, const char *key, double value,
            bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.4f%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

void
appendField(std::string &out, const char *key, uint64_t value,
            bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, value,
                  comma ? ", " : "");
    out += buf;
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{";
    appendField(out, "submitted", submitted);
    appendField(out, "completed", completed);
    appendField(out, "rejected", rejected);
    appendField(out, "batches", batches);
    appendField(out, "queue_depth", queueDepth);
    appendField(out, "elapsed_sec", elapsedSec);
    appendField(out, "qps", qps);
    appendField(out, "batch_mean", batchMean);
    appendField(out, "batch_max", batchMax);
    appendField(out, "latency_p50_ms", latencyP50Ms);
    appendField(out, "latency_p95_ms", latencyP95Ms);
    appendField(out, "latency_p99_ms", latencyP99Ms);
    appendField(out, "latency_mean_ms", latencyMeanMs);
    appendField(out, "latency_max_ms", latencyMaxMs);
    appendField(out, "queue_mean_ms", queueMeanMs);
    appendField(out, "cache_hits", cacheHits);
    appendField(out, "cache_misses", cacheMisses);
    appendField(out, "cache_evictions", cacheEvictions);
    appendField(out, "cache_bytes", cacheBytes);
    appendField(out, "cache_hit_rate", cacheHitRate);
    appendField(out, "dedup_rows_total", dedupRowsTotal);
    appendField(out, "dedup_rows_unique", dedupRowsUnique);
    appendField(out, "dedup_skip_ratio", dedupSkipRatio, false);
    out += "}";
    return out;
}

void
ServiceMetrics::recordSubmitted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
        started_ = true;
        firstSubmit_ = std::chrono::steady_clock::now();
    }
    ++submitted_;
}

void
ServiceMetrics::recordRejected()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
}

void
ServiceMetrics::recordBatch(uint64_t batch_size)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    batchSizes_.add(static_cast<double>(batch_size));
}

void
ServiceMetrics::recordCompleted(double queue_us, double total_us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    queueUs_.add(queue_us);
    latencyStat_.add(total_us);
    latencyUs_.add(total_us > 0.0 ? static_cast<uint64_t>(total_us) : 0);
}

MetricsSnapshot
ServiceMetrics::snapshot(uint64_t queue_depth) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.submitted = submitted_;
    snap.completed = completed_;
    snap.rejected = rejected_;
    snap.batches = batches_;
    snap.queueDepth = queue_depth;
    if (started_) {
        snap.elapsedSec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - firstSubmit_)
                .count();
    }
    snap.qps = snap.elapsedSec > 0.0
                   ? static_cast<double>(completed_) / snap.elapsedSec
                   : 0.0;
    snap.batchMean = batchSizes_.mean();
    snap.batchMax = static_cast<uint64_t>(batchSizes_.max());
    snap.latencyP50Ms =
        static_cast<double>(latencyUs_.valueAtQuantile(0.50)) / 1e3;
    snap.latencyP95Ms =
        static_cast<double>(latencyUs_.valueAtQuantile(0.95)) / 1e3;
    snap.latencyP99Ms =
        static_cast<double>(latencyUs_.valueAtQuantile(0.99)) / 1e3;
    snap.latencyMeanMs = latencyStat_.mean() / 1e3;
    snap.latencyMaxMs = latencyStat_.max() / 1e3;
    snap.queueMeanMs = queueUs_.mean() / 1e3;
    return snap;
}

} // namespace cegma
