#include "serve/pipeline.hh"

#include <string>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace cegma {

StagePipeline::StagePipeline(std::vector<Stage> stages, size_t depth)
    : depth_(depth == 0 ? 1 : depth), stages_(std::move(stages))
{
    cegma_assert(!stages_.empty());
    queues_.reserve(stages_.size());
    counters_.reserve(stages_.size());
    for (size_t i = 0; i < stages_.size(); ++i) {
        queues_.push_back(std::make_unique<Queue>());
        counters_.push_back(std::make_unique<StageCounters>());
    }
    lastTransitionNs_ = obs::nowNs();
    workers_.reserve(stages_.size());
    for (size_t i = 0; i < stages_.size(); ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

StagePipeline::~StagePipeline()
{
    drain();
}

void
StagePipeline::submit(std::unique_ptr<PipelineItem> item)
{
    item->seq = submitted_.fetch_add(1, std::memory_order_relaxed);
    push(0, Entry{std::move(item), obs::nowNs()});
}

void
StagePipeline::push(size_t stage_idx, Entry entry)
{
    Queue &q = *queues_[stage_idx];
    std::unique_lock<std::mutex> lock(q.mutex);
    q.writable.wait(lock, [&] {
        return q.entries.size() < depth_ || q.closed;
    });
    // A closed queue can only happen on a submit after drain() — a
    // caller bug; inter-stage pushes always precede the close cascade.
    cegma_assert(!q.closed);
    q.entries.push_back(std::move(entry));
    lock.unlock();
    q.readable.notify_one();
}

bool
StagePipeline::pop(size_t stage_idx, Entry &out)
{
    Queue &q = *queues_[stage_idx];
    std::unique_lock<std::mutex> lock(q.mutex);
    q.readable.wait(lock, [&] { return !q.entries.empty() || q.closed; });
    if (q.entries.empty())
        return false; // closed and drained
    out = std::move(q.entries.front());
    q.entries.pop_front();
    lock.unlock();
    q.writable.notify_one();
    return true;
}

void
StagePipeline::workerLoop(size_t stage_idx)
{
    StageCounters &counters = *counters_[stage_idx];
    const bool last = stage_idx + 1 == stages_.size();
    Entry entry;
    while (pop(stage_idx, entry)) {
        uint64_t start = obs::nowNs();
        counters.queueWaitNs.fetch_add(start - entry.enqueuedNs,
                                       std::memory_order_relaxed);
        noteBusy(+1);
        {
            obs::TraceScope span(stages_[stage_idx].name, "pipeline",
                                 "batch_seq", entry.item->seq);
            stages_[stage_idx].fn(*entry.item);
        }
        noteBusy(-1);
        counters.busyNs.fetch_add(obs::nowNs() - start,
                                  std::memory_order_relaxed);
        counters.items.fetch_add(1, std::memory_order_relaxed);
        if (last) {
            entry.item.reset();
            completed_.fetch_add(1, std::memory_order_relaxed);
        } else {
            entry.enqueuedNs = obs::nowNs();
            push(stage_idx + 1, std::move(entry));
        }
    }
    // Close cascade: once this stage's queue is drained, nothing can
    // ever reach the next stage again.
    if (!last) {
        Queue &next = *queues_[stage_idx + 1];
        {
            std::lock_guard<std::mutex> lock(next.mutex);
            next.closed = true;
        }
        next.readable.notify_all();
        next.writable.notify_all();
    }
}

void
StagePipeline::drain()
{
    std::lock_guard<std::mutex> guard(drainMutex_);
    if (drained_)
        return;
    drained_ = true;
    {
        Queue &q = *queues_[0];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.closed = true;
    }
    queues_[0]->readable.notify_all();
    queues_[0]->writable.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
StagePipeline::noteBusy(int delta)
{
    uint64_t now = obs::nowNs();
    std::lock_guard<std::mutex> lock(busyMutex_);
    uint64_t elapsed = now > lastTransitionNs_ ? now - lastTransitionNs_ : 0;
    if (busyStages_ >= 1)
        busyNs_ += elapsed;
    if (busyStages_ >= 2)
        overlapNs_ += elapsed * static_cast<uint64_t>(busyStages_ - 1);
    lastTransitionNs_ = now;
    busyStages_ += delta;
}

PipelineStats
StagePipeline::stats() const
{
    PipelineStats s;
    s.stages.reserve(stages_.size());
    for (const auto &c : counters_) {
        PipelineStageStats st;
        st.items = c->items.load(std::memory_order_relaxed);
        st.busyNs = c->busyNs.load(std::memory_order_relaxed);
        st.queueWaitNs = c->queueWaitNs.load(std::memory_order_relaxed);
        s.stages.push_back(st);
    }
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(busyMutex_);
        s.busyNs = busyNs_;
        s.overlapNs = overlapNs_;
    }
    return s;
}

uint64_t
StagePipeline::inflight() const
{
    uint64_t sub = submitted_.load(std::memory_order_acquire);
    uint64_t done = completed_.load(std::memory_order_acquire);
    return sub >= done ? sub - done : 0;
}

} // namespace cegma
