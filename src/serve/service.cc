#include "serve/service.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/trace.hh"

namespace cegma {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
msSince(SteadyClock::time_point start, SteadyClock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - start)
        .count();
}

/** A steady time point on the tracing timeline (see obs::nowNs). */
uint64_t
traceNs(SteadyClock::time_point tp)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
}

/** Best-k hits, score-descending, ties broken by candidate index. */
std::vector<SearchHit>
topKHits(const std::vector<double> &scores, uint32_t k)
{
    std::vector<SearchHit> hits;
    hits.reserve(scores.size());
    for (size_t c = 0; c < scores.size(); ++c)
        hits.push_back(SearchHit{static_cast<uint32_t>(c), scores[c]});
    auto better = [](const SearchHit &a, const SearchHit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.candidate < b.candidate;
    };
    size_t keep = std::min<size_t>(k, hits.size());
    std::partial_sort(hits.begin(), hits.begin() + keep, hits.end(),
                      better);
    hits.resize(keep);
    return hits;
}

} // namespace

SearchService::SearchService(ServeConfig config, std::vector<Graph> corpus)
    : config_(config), corpus_(std::move(corpus)),
      model_(makeModel(config.model, config.modelSeed)),
      memo_(MemoConfig{config.memoBytes, config.memoShards}),
      batcher_(config.maxBatch,
               std::chrono::microseconds(config.flushMicros),
               config.maxQueueDepth)
{
    InferenceOptions infer;
    infer.dedupMatching = config_.dedup;
    infer.memo = config_.memo ? &memo_ : nullptr;
    infer.dedupStats = config_.dedup ? &dedupStats_ : nullptr;
    infer.stages = &metrics_.stages();
    model_->setInferenceOptions(infer);

    // Publish the values other members already own as provider gauges
    // (polled at exposition time). The registry dies with metrics_,
    // before any provider target, so the captures stay valid.
    obs::MetricsRegistry &reg = metrics_.registry();
    reg.providerGauge("serve.queue.depth", [this] {
        return static_cast<int64_t>(batcher_.depth());
    });
    reg.providerGauge("serve.cache.hits", [this] {
        return static_cast<int64_t>(memo_.hits());
    });
    reg.providerGauge("serve.cache.misses", [this] {
        return static_cast<int64_t>(memo_.misses());
    });
    reg.providerGauge("serve.cache.evictions", [this] {
        return static_cast<int64_t>(memo_.evictions());
    });
    reg.providerGauge("serve.cache.bytes", [this] {
        return static_cast<int64_t>(memo_.bytes());
    });
    reg.providerGauge("serve.memo.lookup_us", [this] {
        return static_cast<int64_t>(memo_.lookupNs() / 1000);
    });
    reg.providerGauge("serve.dedup.rows_total", [this] {
        return static_cast<int64_t>(dedupStats_.rowsTotal.value());
    });
    reg.providerGauge("serve.dedup.rows_unique", [this] {
        return static_cast<int64_t>(dedupStats_.rowsUnique.value());
    });

    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

SearchService::~SearchService()
{
    shutdown();
}

std::future<QueryResult>
SearchService::submit(Graph query)
{
    metrics_.recordSubmitted();
    Pending pending;
    pending.query = std::move(query);
    pending.submitted = SteadyClock::now();
    std::future<QueryResult> future = pending.promise.get_future();
    if (stopping_.load(std::memory_order_acquire) ||
        !batcher_.enqueue(std::move(pending))) {
        metrics_.recordRejected();
        // The move only happens on successful enqueue, so the promise
        // is still ours to fail on either rejection path.
        std::promise<QueryResult> rejected;
        future = rejected.get_future();
        rejected.set_exception(std::make_exception_ptr(
            std::runtime_error("SearchService: request rejected "
                               "(shutting down or queue full)")));
    }
    return future;
}

void
SearchService::shutdown()
{
    stopping_.store(true, std::memory_order_release);
    batcher_.close();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

MetricsSnapshot
SearchService::metrics() const
{
    MetricsSnapshot snap = metrics_.snapshot(batcher_.depth());
    snap.cacheHits = memo_.hits();
    snap.cacheMisses = memo_.misses();
    snap.cacheEvictions = memo_.evictions();
    snap.cacheBytes = memo_.bytes();
    uint64_t lookups = snap.cacheHits + snap.cacheMisses;
    snap.cacheHitRate =
        lookups > 0 ? static_cast<double>(snap.cacheHits) /
                          static_cast<double>(lookups)
                    : 0.0;
    snap.dedupRowsTotal = dedupStats_.rowsTotal.value();
    snap.dedupRowsUnique = dedupStats_.rowsUnique.value();
    snap.dedupSkipRatio = dedupStats_.skipRatio();
    snap.stageMemoMs = static_cast<double>(memo_.lookupNs()) / 1e6;
    return snap;
}

void
SearchService::dispatchLoop()
{
    for (;;) {
        std::vector<Pending> batch = batcher_.nextBatch();
        if (batch.empty())
            return; // closed and drained
        scoreBatch(batch);
    }
}

void
SearchService::scoreBatch(std::vector<Pending> &batch)
{
    const size_t num_queries = batch.size();
    const size_t num_candidates = corpus_.size();
    const size_t num_pairs = num_queries * num_candidates;
    SteadyClock::time_point flushed = SteadyClock::now();
    metrics_.recordBatch(num_queries);

    // One pair-parallel scoring pass for the whole batch: every
    // (query, candidate) pair is an independent task writing its own
    // slot, so any thread count produces the same bits, and the memo
    // cache amortizes per-graph work across all queries in the batch.
    std::vector<double> scores(num_pairs, 0.0);
    if (num_pairs > 0) {
        obs::TraceScope span("batch.score", "serve", "batch_size",
                             num_queries);
        parallelFor(0, num_pairs, 1, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                GraphPair pair;
                pair.target = corpus_[i % num_candidates];
                pair.query = batch[i / num_candidates].query;
                scores[i] = model_->score(pair);
            }
        });
    }

    SteadyClock::time_point done = SteadyClock::now();
    for (size_t q = 0; q < num_queries; ++q) {
        QueryResult result;
        result.scores.assign(
            scores.begin() + static_cast<ptrdiff_t>(q * num_candidates),
            scores.begin() +
                static_cast<ptrdiff_t>((q + 1) * num_candidates));
        result.topK = topKHits(result.scores, config_.topK);
        result.queueMs = msSince(batch[q].submitted, flushed);
        result.totalMs = msSince(batch[q].submitted, done);
        result.batchSize = static_cast<uint32_t>(num_queries);
        metrics_.recordCompleted(result.queueMs * 1e3,
                                 result.totalMs * 1e3);
        if (obs::tracingEnabled()) {
            uint64_t sub_ns = traceNs(batch[q].submitted);
            obs::recordSpan("request", "serve", sub_ns,
                            traceNs(done) - sub_ns, "batch_size",
                            num_queries);
            obs::recordSpan("queue.wait", "serve", sub_ns,
                            traceNs(flushed) - sub_ns);
        }
        if (config_.slowMs > 0.0 && result.totalMs >= config_.slowMs) {
            warn("slow request: %.2f ms total (%.2f ms queued, batch "
                 "%u, %zu candidates)",
                 result.totalMs, result.queueMs, result.batchSize,
                 num_candidates);
        }
        batch[q].promise.set_value(std::move(result));
    }
}

} // namespace cegma
