#include "serve/service.hh"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hh"

namespace cegma {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
msSince(SteadyClock::time_point start, SteadyClock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - start)
        .count();
}

/** Best-k hits, score-descending, ties broken by candidate index. */
std::vector<SearchHit>
topKHits(const std::vector<double> &scores, uint32_t k)
{
    std::vector<SearchHit> hits;
    hits.reserve(scores.size());
    for (size_t c = 0; c < scores.size(); ++c)
        hits.push_back(SearchHit{static_cast<uint32_t>(c), scores[c]});
    auto better = [](const SearchHit &a, const SearchHit &b) {
        if (a.score != b.score)
            return a.score > b.score;
        return a.candidate < b.candidate;
    };
    size_t keep = std::min<size_t>(k, hits.size());
    std::partial_sort(hits.begin(), hits.begin() + keep, hits.end(),
                      better);
    hits.resize(keep);
    return hits;
}

} // namespace

SearchService::SearchService(ServeConfig config, std::vector<Graph> corpus)
    : config_(config), corpus_(std::move(corpus)),
      model_(makeModel(config.model, config.modelSeed)),
      memo_(MemoConfig{config.memoBytes, config.memoShards}),
      batcher_(config.maxBatch,
               std::chrono::microseconds(config.flushMicros),
               config.maxQueueDepth)
{
    InferenceOptions infer;
    infer.dedupMatching = config_.dedup;
    infer.memo = config_.memo ? &memo_ : nullptr;
    infer.dedupStats = config_.dedup ? &dedupStats_ : nullptr;
    model_->setInferenceOptions(infer);
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

SearchService::~SearchService()
{
    shutdown();
}

std::future<QueryResult>
SearchService::submit(Graph query)
{
    metrics_.recordSubmitted();
    Pending pending;
    pending.query = std::move(query);
    pending.submitted = SteadyClock::now();
    std::future<QueryResult> future = pending.promise.get_future();
    if (stopping_.load(std::memory_order_acquire) ||
        !batcher_.enqueue(std::move(pending))) {
        metrics_.recordRejected();
        // The move only happens on successful enqueue, so the promise
        // is still ours to fail on either rejection path.
        std::promise<QueryResult> rejected;
        future = rejected.get_future();
        rejected.set_exception(std::make_exception_ptr(
            std::runtime_error("SearchService: request rejected "
                               "(shutting down or queue full)")));
    }
    return future;
}

void
SearchService::shutdown()
{
    stopping_.store(true, std::memory_order_release);
    batcher_.close();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

MetricsSnapshot
SearchService::metrics() const
{
    MetricsSnapshot snap = metrics_.snapshot(batcher_.depth());
    snap.cacheHits = memo_.hits();
    snap.cacheMisses = memo_.misses();
    snap.cacheEvictions = memo_.evictions();
    snap.cacheBytes = memo_.bytes();
    uint64_t lookups = snap.cacheHits + snap.cacheMisses;
    snap.cacheHitRate =
        lookups > 0 ? static_cast<double>(snap.cacheHits) /
                          static_cast<double>(lookups)
                    : 0.0;
    snap.dedupRowsTotal =
        dedupStats_.rowsTotal.load(std::memory_order_relaxed);
    snap.dedupRowsUnique =
        dedupStats_.rowsUnique.load(std::memory_order_relaxed);
    snap.dedupSkipRatio = dedupStats_.skipRatio();
    return snap;
}

void
SearchService::dispatchLoop()
{
    for (;;) {
        std::vector<Pending> batch = batcher_.nextBatch();
        if (batch.empty())
            return; // closed and drained
        scoreBatch(batch);
    }
}

void
SearchService::scoreBatch(std::vector<Pending> &batch)
{
    const size_t num_queries = batch.size();
    const size_t num_candidates = corpus_.size();
    const size_t num_pairs = num_queries * num_candidates;
    SteadyClock::time_point flushed = SteadyClock::now();
    metrics_.recordBatch(num_queries);

    // One pair-parallel scoring pass for the whole batch: every
    // (query, candidate) pair is an independent task writing its own
    // slot, so any thread count produces the same bits, and the memo
    // cache amortizes per-graph work across all queries in the batch.
    std::vector<double> scores(num_pairs, 0.0);
    if (num_pairs > 0) {
        parallelFor(0, num_pairs, 1, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                GraphPair pair;
                pair.target = corpus_[i % num_candidates];
                pair.query = batch[i / num_candidates].query;
                scores[i] = model_->score(pair);
            }
        });
    }

    SteadyClock::time_point done = SteadyClock::now();
    for (size_t q = 0; q < num_queries; ++q) {
        QueryResult result;
        result.scores.assign(
            scores.begin() + static_cast<ptrdiff_t>(q * num_candidates),
            scores.begin() +
                static_cast<ptrdiff_t>((q + 1) * num_candidates));
        result.topK = topKHits(result.scores, config_.topK);
        result.queueMs = msSince(batch[q].submitted, flushed);
        result.totalMs = msSince(batch[q].submitted, done);
        result.batchSize = static_cast<uint32_t>(num_queries);
        metrics_.recordCompleted(result.queueMs * 1e3,
                                 result.totalMs * 1e3);
        batch[q].promise.set_value(std::move(result));
    }
}

} // namespace cegma
