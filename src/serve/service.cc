#include "serve/service.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "obs/build_info.hh"
#include "obs/trace.hh"
#include "tensor/workspace.hh"

namespace cegma {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
msSince(SteadyClock::time_point start, SteadyClock::time_point now)
{
    return std::chrono::duration<double, std::milli>(now - start)
        .count();
}

/** A steady time point on the tracing timeline (see obs::nowNs). */
uint64_t
traceNs(SteadyClock::time_point tp)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count());
}

/** Fail `pending`'s promise with a typed `RequestError`. */
void
failPending(std::promise<QueryResult> &promise, RequestErrorCode code,
            const char *what)
{
    promise.set_exception(
        std::make_exception_ptr(RequestError(code, what)));
}

} // namespace

/**
 * Everything one flushed batch carries through the embed → match →
 * head stages: the pinned snapshot (one consistent corpus view for
 * the batch's whole pipeline transit), the live requests, and the
 * intermediates the stages hand to each other. Destroyed at the end
 * of the head stage, which is what releases the epoch pin.
 */
struct SearchService::BatchWork : PipelineItem
{
    std::vector<Pending> live;
    SteadyTime flushed{};
    LiveCorpus::SnapshotPtr snap;
    std::vector<uint32_t> slots;
    std::unique_ptr<obs::StageAccum[]> accums;

    // Filled by the match stage. Exhaustive mode flattens all
    // queries x candidates into `scores`; cascade mode additionally
    // carries each query's shortlist and the flattening offsets.
    std::vector<std::vector<uint32_t>> lists;
    std::vector<RetrievalStages> stages;
    std::vector<size_t> offsets;
    std::vector<double> scores;
    SteadyTime done{};
};

std::vector<SearchHit>
topKHits(const std::vector<double> &scores, uint32_t k)
{
    std::vector<SearchHit> hits;
    hits.reserve(scores.size());
    for (size_t c = 0; c < scores.size(); ++c)
        hits.push_back(SearchHit{static_cast<uint32_t>(c), scores[c]});
    // NaN-aware comparator: NaN orders strictly after every real
    // score (and by index among NaNs). The naive `a.score > b.score`
    // form is not a strict weak ordering once a NaN appears — NaN
    // compares "equivalent" to *everything*, breaking transitivity of
    // equivalence — and std::partial_sort on it is undefined behavior.
    auto better = [](const SearchHit &a, const SearchHit &b) {
        bool a_nan = std::isnan(a.score);
        bool b_nan = std::isnan(b.score);
        if (a_nan != b_nan)
            return b_nan; // the non-NaN side wins
        if (!a_nan && a.score != b.score)
            return a.score > b.score;
        return a.candidate < b.candidate;
    };
    // Select-then-sort beats a heap-based partial_sort over the whole
    // corpus: nth_element is linear in the candidate count, and the
    // O(k log k) sort touches only the k winners — the difference is
    // measurable once the corpus is 10^5+ and k stays small.
    size_t keep = std::min<size_t>(k, hits.size());
    std::nth_element(hits.begin(),
                     hits.begin() + static_cast<ptrdiff_t>(keep),
                     hits.end(), better);
    std::sort(hits.begin(), hits.begin() + static_cast<ptrdiff_t>(keep),
              better);
    hits.resize(keep);
    return hits;
}

SearchService::SearchService(ServeConfig config, std::vector<Graph> corpus)
    : SearchService(std::move(config), std::move(corpus),
                    std::vector<uint64_t>())
{
}

SearchService::SearchService(ServeConfig config, std::vector<Graph> corpus,
                             std::vector<uint64_t> ids)
    : config_(config), model_(makeModel(config.model, config.modelSeed)),
      memo_(MemoConfig{config.memoBytes, config.memoShards}),
      batcher_(config.maxBatch,
               std::chrono::microseconds(config.flushMicros),
               config.maxQueueDepth, config.shedWatermark),
      corpus_(config.mutation),
      // /tracez keeps the 8 slowest requests per minute, 5 minutes
      // retained — O(40) records regardless of traffic.
      exemplars_(8, uint64_t{60} * 1000000000ull, 5),
      started_(SteadyClock::now())
{
    InferenceOptions infer;
    infer.dedupMatching = config_.dedup;
    infer.memo = config_.memo ? &memo_ : nullptr;
    infer.dedupStats = config_.dedup ? &dedupStats_ : nullptr;
    infer.stages = &metrics_.stages();
    model_->setInferenceOptions(infer);

    // Memo lookup timing feeds `serve.memo.lookup_us` and the
    // stage_memo_ms snapshot field here, so this service pays the two
    // clock reads per lookup; a bare MemoCache (index builds, unit
    // tests) keeps the default clock-free lookup path.
    memo_.setLookupTimingEnabled(true);

    WorkspacePool::instance().setSharedBudgetBytes(
        static_cast<size_t>(config_.workspaceMb) << 20);

    windowBase_ = windowSchedTotals();

    if (config_.retrieval.mode == RetrievalMode::Cascade) {
        // Incremental index maintenance: the corpus stores each
        // entry's WL tags and coarse descriptor at bootstrap/insert
        // time. Model-aware descriptors go through the model's memo
        // (coarseDescriptor), so the chains the exact stage will need
        // are warmed right here — same warmup the one-shot index
        // build used to provide.
        bool model_aware = model_->coarseDim() > 0;
        LiveCorpus::DescriptorFn descriptor;
        if (model_aware) {
            // Writes straight into the slot's stored vector: no
            // per-graph temporary, and a slot re-filled on insert
            // reuses its existing capacity.
            descriptor = [this](const Graph &g, std::vector<float> &out) {
                out.resize(model_->coarseDim());
                model_->coarseDescriptor(g, out.data());
            };
        } else {
            descriptor = [this](const Graph &g, std::vector<float> &out) {
                out = coarseVector(g, *model_,
                                   config_.retrieval.tagLevel,
                                   config_.retrieval.sketchDim);
            };
        }
        corpus_.enableIndex(config_.retrieval, model_aware,
                            std::move(descriptor));
    }
    // Removed graphs drop their content-keyed memo entries. Purely an
    // eviction optimization — memo hits replay identical bits, so
    // skipping this could never change a score.
    corpus_.setRemovalHook([this](const Graph &g) { memo_.invalidate(g); });

    // Empty `ids` (the two-argument constructor) means "vector index
    // is the stable id" — exactly the legacy fixed-corpus identity.
    if (ids.empty() && !corpus.empty()) {
        ids.resize(corpus.size());
        for (size_t i = 0; i < ids.size(); ++i)
            ids[i] = static_cast<uint64_t>(i);
    }
    corpus_.bootstrap(std::move(corpus), std::move(ids));

    if (config_.pipelineDepth > 0) {
        // The stage functions are exactly what the monolithic path
        // runs back-to-back; the engine only adds the queues and the
        // per-stage workers (see serve/pipeline.hh for why this is
        // bit-neutral).
        std::vector<StagePipeline::Stage> stages;
        stages.push_back({"pipeline.embed", [this](PipelineItem &item) {
                              stageEmbed(static_cast<BatchWork &>(item));
                          }});
        stages.push_back({"pipeline.match", [this](PipelineItem &item) {
                              stageMatch(static_cast<BatchWork &>(item));
                          }});
        stages.push_back({"pipeline.head", [this](PipelineItem &item) {
                              stageHead(static_cast<BatchWork &>(item));
                          }});
        pipeline_ = std::make_unique<StagePipeline>(
            std::move(stages), config_.pipelineDepth);
    }

    // Publish the values other members already own as provider gauges
    // (polled at exposition time). Member order guarantees the
    // lifetime: metrics_ (and so the registry) is declared after
    // every provider target, so it is destroyed first; shutdown()
    // additionally freezes these gauges to constants.
    obs::MetricsRegistry &reg = metrics_.registry();
    reg.providerGauge("serve.queue.depth", [this] {
        return static_cast<int64_t>(batcher_.depth());
    });
    reg.providerGauge("serve.cache.hits", [this] {
        return static_cast<int64_t>(memo_.hits());
    });
    reg.providerGauge("serve.cache.misses", [this] {
        return static_cast<int64_t>(memo_.misses());
    });
    reg.providerGauge("serve.cache.evictions", [this] {
        return static_cast<int64_t>(memo_.evictions());
    });
    reg.providerGauge("serve.cache.bytes", [this] {
        return static_cast<int64_t>(memo_.bytes());
    });
    reg.providerGauge("serve.memo.lookup_us", [this] {
        return static_cast<int64_t>(memo_.lookupNs() / 1000);
    });
    reg.providerGauge("serve.dedup.rows_total", [this] {
        return static_cast<int64_t>(dedupStats_.rowsTotal.value());
    });
    reg.providerGauge("serve.dedup.rows_unique", [this] {
        return static_cast<int64_t>(dedupStats_.rowsUnique.value());
    });
    reg.providerGauge("serve.retrieval.index_bytes", [this] {
        return static_cast<int64_t>(corpus_.indexBytes());
    });
    // Live-corpus lifecycle: epoch progress, visible vs dead entries,
    // and the reclamation counters that prove retired epochs are
    // actually freed (corpus.epochs_reclaimed > 0 under mutation).
    reg.providerGauge("serve.corpus.epoch", [this] {
        return static_cast<int64_t>(corpus_.epoch());
    });
    reg.providerGauge("serve.corpus.live", [this] {
        return static_cast<int64_t>(corpus_.liveCount());
    });
    reg.providerGauge("serve.corpus.slots", [this] {
        return static_cast<int64_t>(corpus_.slotCount());
    });
    reg.providerGauge("serve.corpus.tombstones", [this] {
        return static_cast<int64_t>(corpus_.tombstones());
    });
    reg.providerGauge("serve.corpus.inserts", [this] {
        return static_cast<int64_t>(corpus_.inserts());
    });
    reg.providerGauge("serve.corpus.removes", [this] {
        return static_cast<int64_t>(corpus_.removes());
    });
    reg.providerGauge("serve.corpus.epochs_reclaimed", [this] {
        return static_cast<int64_t>(corpus_.epochsReclaimed());
    });
    reg.providerGauge("serve.corpus.compactions", [this] {
        return static_cast<int64_t>(corpus_.compactions());
    });
    // Joint-window scheduler visibility (satellite of the CGC port):
    // the process-wide totals, rebased to this service's lifetime so
    // concurrent services (and tests) do not see each other's windows.
    reg.providerGauge("serve.window.windows", [this] {
        return static_cast<int64_t>(windowDelta().windows);
    });
    reg.providerGauge("serve.window.slides", [this] {
        return static_cast<int64_t>(windowDelta().slides);
    });
    reg.providerGauge("serve.window.jumps", [this] {
        return static_cast<int64_t>(windowDelta().jumps);
    });
    reg.providerGauge("serve.window.x_tile_loads", [this] {
        return static_cast<int64_t>(windowDelta().xTileLoads);
    });
    reg.providerGauge("serve.window.y_tile_loads", [this] {
        return static_cast<int64_t>(windowDelta().yTileLoads);
    });
    // Workspace-pool telemetry (tensor/workspace.hh): a warm steady
    // state shows `misses` flat while `hits` climbs — every tensor of
    // a recurring shape is a recycled block, not an OS allocation.
    reg.providerGauge("workspace.hits", [] {
        return static_cast<int64_t>(WorkspacePool::instance().stats().hits);
    });
    reg.providerGauge("workspace.misses", [] {
        return static_cast<int64_t>(
            WorkspacePool::instance().stats().misses);
    });
    reg.providerGauge("workspace.bytes", [] {
        return static_cast<int64_t>(
            WorkspacePool::instance().stats().cachedBytes);
    });
    if (pipeline_) {
        // Pipelined-execution visibility: per-stage busy time plus the
        // wall-clock overlap counter — identically 0 for a serial
        // executor, so any positive value is proof batches really do
        // overlap across stages.
        reg.providerGauge("serve.pipeline.depth", [this] {
            return static_cast<int64_t>(pipeline_->depth());
        });
        reg.providerGauge("serve.pipeline.batches", [this] {
            return static_cast<int64_t>(pipeline_->stats().completed);
        });
        reg.providerGauge("serve.pipeline.inflight", [this] {
            return static_cast<int64_t>(pipeline_->inflight());
        });
        reg.providerGauge("serve.pipeline.embed_busy_us", [this] {
            return static_cast<int64_t>(
                pipeline_->stats().stages[0].busyNs / 1000);
        });
        reg.providerGauge("serve.pipeline.match_busy_us", [this] {
            return static_cast<int64_t>(
                pipeline_->stats().stages[1].busyNs / 1000);
        });
        reg.providerGauge("serve.pipeline.head_busy_us", [this] {
            return static_cast<int64_t>(
                pipeline_->stats().stages[2].busyNs / 1000);
        });
        reg.providerGauge("serve.pipeline.queue_wait_us", [this] {
            PipelineStats s = pipeline_->stats();
            uint64_t wait = 0;
            for (const PipelineStageStats &st : s.stages)
                wait += st.queueWaitNs;
            return static_cast<int64_t>(wait / 1000);
        });
        reg.providerGauge("serve.pipeline.overlap_us", [this] {
            return static_cast<int64_t>(
                pipeline_->stats().overlapNs / 1000);
        });
    }
    // Trace-ring health: a non-zero dropped count means the span rings
    // wrapped and the exported trace is missing its oldest spans.
    reg.providerGauge("obs.trace.dropped", [] {
        return static_cast<int64_t>(obs::droppedSpans());
    });
    reg.providerGauge("obs.trace.enabled", [] {
        return static_cast<int64_t>(obs::tracingEnabled() ? 1 : 0);
    });
    if (config_.hwCounters) {
        // The dispatcher opens the counters (perf groups are per
        // calling thread); until then — and whenever the kernel
        // refuses perf_event_open — the gauges read the zero `frozen`
        // sample, so scrapes degrade to 0 instead of failing.
        auto hwGauge = [this](uint64_t obs::CacheCounterSample::*field) {
            return [this, field]() -> int64_t {
                std::lock_guard<std::mutex> lock(hw_.mutex);
                obs::CacheCounterSample s =
                    hw_.counters ? hw_.counters->sample() : hw_.frozen;
                return static_cast<int64_t>(s.*field);
            };
        };
        reg.providerGauge(
            "hw.llc.refs",
            hwGauge(&obs::CacheCounterSample::llcReferences));
        reg.providerGauge(
            "hw.llc.miss",
            hwGauge(&obs::CacheCounterSample::llcMisses));
        reg.providerGauge(
            "hw.l1d.miss",
            hwGauge(&obs::CacheCounterSample::l1dMisses));
    }

    metrics_.configureSlo(config_.slo);
    if (config_.adminPort >= 0 || config_.attribution)
        obs::setAttributionEnabled(true);

    dispatcher_ = std::thread([this] { dispatchLoop(); });

    if (config_.adminPort >= 0)
        startAdminServer();
}

SearchService::~SearchService()
{
    shutdown();
}

std::future<QueryResult>
SearchService::submit(Graph query)
{
    return submit(std::move(query), config_.requestDeadlineMs);
}

std::future<QueryResult>
SearchService::submit(Graph query, double deadline_ms)
{
    metrics_.recordSubmitted();
    Pending pending;
    pending.query = std::move(query);
    pending.submitted = SteadyClock::now();
    pending.id = nextRequestId_.fetch_add(1, std::memory_order_relaxed);
    if (deadline_ms != 0.0) {
        // A positive budget bounds the request; a negative one is
        // already spent — enforce the deadline at admission too.
        pending.deadline =
            pending.submitted +
            std::chrono::duration_cast<SteadyClock::duration>(
                std::chrono::duration<double, std::milli>(
                    std::max(deadline_ms, 0.0)));
    }
    std::future<QueryResult> future = pending.promise.get_future();

    if (deadline_ms < 0.0) {
        metrics_.recordExpired();
        failPending(pending.promise, RequestErrorCode::DeadlineExceeded,
                    "SearchService: deadline budget exhausted before "
                    "admission");
        return future;
    }

    SteadyClock::time_point deadline = pending.deadline;
    std::vector<Pending> shed;
    if (stopping_.load(std::memory_order_acquire) ||
        !batcher_.enqueue(std::move(pending), deadline, &shed)) {
        metrics_.recordRejected();
        // enqueue only moves the item out on admission, so the
        // promise is still ours to fail on either rejection path.
        failPending(pending.promise, RequestErrorCode::Rejected,
                    "SearchService: request rejected (shutting down "
                    "or queue full)");
        return future;
    }
    // Admitting this request may have shed lower-budget ones (or, if
    // it carried the least budget itself, the new arrival).
    for (Pending &victim : shed) {
        metrics_.recordShed();
        failPending(victim.promise, RequestErrorCode::Shed,
                    "SearchService: shed under overload (least "
                    "remaining deadline budget)");
    }
    return future;
}

void
SearchService::shutdown()
{
    std::lock_guard<std::mutex> guard(shutdownMutex_);
    stopping_.store(true, std::memory_order_release);
    batcher_.close();
    if (config_.drainTimeoutMs > 0.0 && dispatcher_.joinable()) {
        std::unique_lock<std::mutex> lock(drainMutex_);
        bool drained = drainCv_.wait_for(
            lock,
            std::chrono::duration<double, std::milli>(
                config_.drainTimeoutMs),
            [&] { return drained_; });
        lock.unlock();
        if (!drained) {
            // Bounded drain: fail whatever is still queued instead of
            // blocking forever behind a stuck dispatcher. The batch
            // already in flight still finishes (join below).
            std::vector<Pending> leftover = batcher_.abort();
            for (Pending &victim : leftover) {
                metrics_.recordDrainDropped();
                failPending(victim.promise,
                            RequestErrorCode::DrainTimeout,
                            "SearchService: shutdown drain timed out "
                            "with the request still queued");
            }
            if (!leftover.empty()) {
                warn("shutdown drain timed out after %.1f ms; failed "
                     "%zu still-queued request(s)",
                     config_.drainTimeoutMs, leftover.size());
            }
        }
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
    freezeGauges();
    metrics_.freezeWindowGauges();
    // Stop the admin plane LAST: while the drain ran, /healthz was
    // reporting "draining"; after this, the port is released.
    if (admin_)
        admin_->stop();
}

void
SearchService::freezeGauges()
{
    // Re-bind every provider gauge to its final value: a scrape that
    // races teardown then reads constants instead of polling members
    // whose destruction is imminent. Re-binding and snapshotting
    // share the registry mutex, so this is race-free.
    obs::MetricsRegistry &reg = metrics_.registry();
    auto freeze = [&reg](const char *name, size_t value) {
        int64_t frozen = static_cast<int64_t>(value);
        reg.providerGauge(name, [frozen] { return frozen; });
    };
    freeze("serve.queue.depth", batcher_.depth());
    freeze("serve.cache.hits", memo_.hits());
    freeze("serve.cache.misses", memo_.misses());
    freeze("serve.cache.evictions", memo_.evictions());
    freeze("serve.cache.bytes", memo_.bytes());
    freeze("serve.memo.lookup_us", memo_.lookupNs() / 1000);
    freeze("serve.dedup.rows_total", dedupStats_.rowsTotal.value());
    freeze("serve.dedup.rows_unique", dedupStats_.rowsUnique.value());
    freeze("serve.retrieval.index_bytes", corpus_.indexBytes());
    freeze("serve.corpus.epoch", corpus_.epoch());
    freeze("serve.corpus.live", corpus_.liveCount());
    freeze("serve.corpus.slots", corpus_.slotCount());
    freeze("serve.corpus.tombstones", corpus_.tombstones());
    freeze("serve.corpus.inserts", corpus_.inserts());
    freeze("serve.corpus.removes", corpus_.removes());
    freeze("serve.corpus.epochs_reclaimed", corpus_.epochsReclaimed());
    freeze("serve.corpus.compactions", corpus_.compactions());
    WindowSchedStats win = windowDelta();
    freeze("serve.window.windows", win.windows);
    freeze("serve.window.slides", win.slides);
    freeze("serve.window.jumps", win.jumps);
    freeze("serve.window.x_tile_loads", win.xTileLoads);
    freeze("serve.window.y_tile_loads", win.yTileLoads);
    WorkspaceStats ws = WorkspacePool::instance().stats();
    freeze("workspace.hits", ws.hits);
    freeze("workspace.misses", ws.misses);
    freeze("workspace.bytes", ws.cachedBytes);
    if (pipeline_) {
        PipelineStats ps = pipeline_->stats();
        freeze("serve.pipeline.depth", pipeline_->depth());
        freeze("serve.pipeline.batches", ps.completed);
        freeze("serve.pipeline.inflight", pipeline_->inflight());
        freeze("serve.pipeline.embed_busy_us", ps.stages[0].busyNs / 1000);
        freeze("serve.pipeline.match_busy_us", ps.stages[1].busyNs / 1000);
        freeze("serve.pipeline.head_busy_us", ps.stages[2].busyNs / 1000);
        uint64_t wait = 0;
        for (const PipelineStageStats &st : ps.stages)
            wait += st.queueWaitNs;
        freeze("serve.pipeline.queue_wait_us", wait / 1000);
        freeze("serve.pipeline.overlap_us", ps.overlapNs / 1000);
    }
}

void
SearchService::startAdminServer()
{
    admin_ = std::make_unique<obs::AdminServer>();

    admin_->handle("/", [](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.body = "cegma admin endpoints:\n"
                    "  /metrics  Prometheus exposition\n"
                    "  /varz     full registry as JSON\n"
                    "  /healthz  liveness (503 while draining)\n"
                    "  /readyz   readiness (queue-depth aware)\n"
                    "  /tracez   slowest requests, stage breakdowns\n"
                    "  /statusz  build / uptime / corpus / SIMD\n";
        return resp;
    });
    admin_->handle("/metrics", [this](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = metrics_.registry().snapshot().toPrometheus();
        return resp;
    });
    admin_->handle("/varz", [this](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = metrics_.registry().snapshot().toJson();
        resp.body += "\n";
        return resp;
    });
    admin_->handle("/healthz", [this](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        if (stopping_.load(std::memory_order_acquire)) {
            resp.status = 503;
            resp.body = "draining\n";
        } else {
            resp.body = "ok\n";
        }
        return resp;
    });
    admin_->handle("/readyz", [this](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        if (stopping_.load(std::memory_order_acquire)) {
            resp.status = 503;
            resp.body = "draining\n";
        } else if (batcher_.depth() >= config_.maxQueueDepth) {
            resp.status = 503;
            resp.body = "overloaded: admission queue full\n";
        } else {
            resp.body = "ready\n";
        }
        return resp;
    });
    admin_->handle("/tracez", [this](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.contentType = "application/json";
        std::vector<obs::CriticalPath> slow = exemplars_.collect();
        std::string body = "{\"top_k_per_window\": ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%zu", exemplars_.topK());
        body += buf;
        body += ", \"slowest\": [";
        for (size_t i = 0; i < slow.size(); ++i) {
            if (i > 0)
                body += ", ";
            body += slow[i].toJson();
        }
        body += "]}\n";
        resp.body = std::move(body);
        return resp;
    });
    admin_->handle("/statusz", [this](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = statusJson();
        return resp;
    });

    obs::AdminServer::Config cfg;
    cfg.port = static_cast<uint16_t>(config_.adminPort);
    if (!admin_->start(cfg)) {
        warn("admin server failed to start on port %d: %s",
             config_.adminPort, admin_->status().c_str());
        admin_.reset();
    }
}

std::string
SearchService::statusJson() const
{
    double uptime =
        msSince(started_, SteadyClock::now()) / 1e3;
    std::string out = "{\"build\": " + obs::buildInfoJson();
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        ", \"uptime_sec\": %.3f, \"model\": \"%s\", \"simd\": \"%s\", "
        "\"corpus_epoch\": %" PRIu64 ", \"corpus_live\": %zu, "
        "\"queue_depth\": %zu, \"draining\": %s",
        uptime, modelConfig(config_.model).name.c_str(),
        simdLevelName(simdLevel()), corpus_.epoch(),
        corpus_.liveCount(), batcher_.depth(),
        stopping_.load(std::memory_order_acquire) ? "true" : "false");
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        ", \"slo\": {\"target_ms\": %.3f, \"objective\": %.4f, "
        "\"enabled\": %s}, \"attribution\": %s, \"admin_requests\": "
        "%" PRIu64 "}\n",
        config_.slo.targetMs, config_.slo.objective,
        config_.slo.enabled() ? "true" : "false",
        obs::attributionEnabled() ? "true" : "false",
        admin_ ? admin_->requestsServed() : 0);
    out += buf;
    return out;
}

WindowSchedStats
SearchService::windowDelta() const
{
    WindowSchedStats now = windowSchedTotals();
    WindowSchedStats d;
    d.windows = now.windows - windowBase_.windows;
    d.slides = now.slides - windowBase_.slides;
    d.jumps = now.jumps - windowBase_.jumps;
    d.xTileLoads = now.xTileLoads - windowBase_.xTileLoads;
    d.yTileLoads = now.yTileLoads - windowBase_.yTileLoads;
    d.aoeKeepX = now.aoeKeepX - windowBase_.aoeKeepX;
    d.aoeKeepY = now.aoeKeepY - windowBase_.aoeKeepY;
    return d;
}

MetricsSnapshot
SearchService::metrics() const
{
    MetricsSnapshot snap = metrics_.snapshot(batcher_.depth());
    snap.cacheHits = memo_.hits();
    snap.cacheMisses = memo_.misses();
    snap.cacheEvictions = memo_.evictions();
    snap.cacheBytes = memo_.bytes();
    uint64_t lookups = snap.cacheHits + snap.cacheMisses;
    snap.cacheHitRate =
        lookups > 0 ? static_cast<double>(snap.cacheHits) /
                          static_cast<double>(lookups)
                    : 0.0;
    snap.dedupRowsTotal = dedupStats_.rowsTotal.value();
    snap.dedupRowsUnique = dedupStats_.rowsUnique.value();
    snap.dedupSkipRatio = dedupStats_.skipRatio();
    snap.stageMemoMs = static_cast<double>(memo_.lookupNs()) / 1e6;
    WindowSchedStats win = windowDelta();
    snap.windowWindows = win.windows;
    snap.windowSlides = win.slides;
    snap.windowJumps = win.jumps;
    snap.windowXTileLoads = win.xTileLoads;
    snap.windowYTileLoads = win.yTileLoads;
    snap.corpusEpoch = corpus_.epoch();
    snap.corpusLive = corpus_.liveCount();
    snap.corpusSlots = corpus_.slotCount();
    snap.corpusTombstones = corpus_.tombstones();
    snap.corpusInserts = corpus_.inserts();
    snap.corpusRemoves = corpus_.removes();
    snap.corpusEpochsReclaimed = corpus_.epochsReclaimed();
    snap.corpusCompactions = corpus_.compactions();
    return snap;
}

bool
SearchService::insert(uint64_t id, Graph g)
{
    return corpus_.insert(id, std::move(g));
}

bool
SearchService::remove(uint64_t id)
{
    return corpus_.remove(id);
}

uint64_t
SearchService::flushMutations()
{
    return corpus_.flush();
}

void
SearchService::dispatchLoop()
{
    if (config_.hwCounters) {
        // Perf counter groups measure the *calling* thread, so they
        // must be opened (and later read) here, not in the ctor.
        auto counters = std::make_unique<obs::CacheCounters>();
        if (!counters->available()) {
            warn("hw counters unavailable: %s", counters->status());
            counters.reset();
        } else {
            counters->start();
        }
        std::lock_guard<std::mutex> lock(hw_.mutex);
        hw_.counters = std::move(counters);
    }
    for (;;) {
        std::vector<Pending> batch = batcher_.nextBatch();
        if (batch.empty())
            break; // closed and drained (or aborted)
        scoreBatch(batch);
    }
    // Everything admitted has been *submitted*; the pipeline drain is
    // what makes it all *scored* — so it happens before the drained_
    // handshake below, keeping "drained" meaning what it always did.
    if (pipeline_)
        pipeline_->drain();
    if (config_.hwCounters) {
        // Freeze the final counts before this thread exits; the
        // gauges then read the frozen sample.
        std::lock_guard<std::mutex> lock(hw_.mutex);
        if (hw_.counters) {
            hw_.frozen = hw_.counters->stop();
            hw_.counters.reset();
        }
    }
    {
        std::lock_guard<std::mutex> lock(drainMutex_);
        drained_ = true;
    }
    drainCv_.notify_all();
}

void
SearchService::scoreBatch(std::vector<Pending> &batch)
{
    FaultInjector *faults = config_.faults;
    if (faults != nullptr)
        faults->onBatchStart(); // injected delay / stall (tests only)

    // Deadline enforcement at flush: a request whose budget ran out
    // while it queued fails fast, *without* being scored — the whole
    // point of a deadline is not to spend corpus-sized scoring work
    // on an answer nobody is waiting for anymore. Injected spurious
    // failures take the same unscored early exit.
    SteadyClock::time_point flushed = SteadyClock::now();
    std::vector<Pending> live;
    live.reserve(batch.size());
    for (Pending &pending : batch) {
        if (pending.deadline <= flushed) {
            metrics_.recordExpired();
            failPending(pending.promise,
                        RequestErrorCode::DeadlineExceeded,
                        "SearchService: request deadline exceeded "
                        "before scoring");
        } else if (faults != nullptr && faults->shouldFailRequest()) {
            failPending(pending.promise, RequestErrorCode::Injected,
                        "SearchService: injected fault");
        } else {
            live.push_back(std::move(pending));
        }
    }
    if (live.empty())
        return;

    metrics_.recordBatch(live.size());

    auto work = std::make_unique<BatchWork>();
    work->live = std::move(live);
    work->flushed = flushed;
    // Pin ONE snapshot for the whole batch: every query in it scores
    // against the same epoch's corpus — a consistent view, even while
    // mutations flush concurrently. The pin is released when the
    // BatchWork dies at the end of the head stage, which is what lets
    // the epoch retire.
    work->snap = corpus_.pin();
    work->slots = work->snap->liveSlots();
    // Critical-path attribution: one accumulator per request in the
    // batch; each worker binds its thread-local pointer to the pair's
    // owning request, so stage scopes inside the forward pass charge
    // the right request. Purely observational — scores are untouched.
    if (obs::attributionEnabled()) {
        work->accums =
            std::make_unique<obs::StageAccum[]>(work->live.size());
    }

    if (pipeline_) {
        // Blocks when the embed queue is full — bounded backpressure
        // onto the dispatcher, which in turn bounds admission.
        pipeline_->submit(std::move(work));
    } else {
        // Monolithic fallback (pipelineDepth == 0): the exact PR-3..9
        // batch path — match + head back-to-back on this thread, no
        // embed pre-warm.
        stageMatch(*work);
        stageHead(*work);
    }
}

void
SearchService::stageEmbed(BatchWork &work)
{
    // Pre-warm each query's partner-independent embedding chain
    // through the memo, so the match stage's pair workers hit instead
    // of racing to build. First-insert-wins replay makes this
    // bit-neutral; for cross-feedback models (no per-graph chain)
    // graphEmbedding is a constant-time no-op. Running the handful of
    // per-query chains serially on this stage's own worker is the
    // point: it never touches the shared pool, so it truly overlaps
    // the previous batch's pool-wide match pass.
    if (!config_.memo)
        return;
    obs::TraceScope span("batch.embed", "serve", "batch_size",
                         work.live.size());
    for (size_t q = 0; q < work.live.size(); ++q) {
        if (work.accums)
            obs::setCurrentStageAccum(&work.accums[q]);
        (void)model_->graphEmbedding(work.live[q].query);
    }
    if (work.accums)
        obs::setCurrentStageAccum(nullptr);
}

void
SearchService::stageMatch(BatchWork &work)
{
    if (config_.retrieval.mode == RetrievalMode::Cascade)
        matchCascade(work);
    else
        matchExhaustive(work);
    work.done = SteadyClock::now();
}

void
SearchService::stageHead(BatchWork &work)
{
    if (config_.retrieval.mode == RetrievalMode::Cascade)
        headCascade(work);
    else
        headExhaustive(work);
}

void
SearchService::matchExhaustive(BatchWork &work)
{
    const size_t num_queries = work.live.size();
    const size_t num_candidates = work.slots.size();

    // One pair-parallel scoring pass for the whole batch: every
    // (query, candidate) pair is an independent task writing its own
    // slot, so any thread count produces the same bits, and the memo
    // cache amortizes per-graph work across all queries in the batch.
    // Pairs are scored through non-owning views — the corpus and
    // query graphs are never copied on the hot path.
    const size_t num_pairs = num_queries * num_candidates;
    work.scores.assign(num_pairs, 0.0);
    if (num_pairs > 0) {
        obs::TraceScope span("batch.score", "serve", "batch_size",
                             num_queries);
        parallelFor(0, num_pairs, 1, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                if (work.accums) {
                    obs::setCurrentStageAccum(
                        &work.accums[i / num_candidates]);
                }
                work.scores[i] = model_->score(GraphPairView(
                    work.snap->graph(work.slots[i % num_candidates]),
                    work.live[i / num_candidates].query));
            }
            if (work.accums)
                obs::setCurrentStageAccum(nullptr);
        });
    }
}

void
SearchService::headExhaustive(BatchWork &work)
{
    const size_t num_queries = work.live.size();
    const size_t num_candidates = work.slots.size();

    auto ids = std::make_shared<const std::vector<uint64_t>>(
        work.snap->liveIds());
    for (size_t q = 0; q < num_queries; ++q) {
        QueryResult result;
        result.scores.assign(
            work.scores.begin() +
                static_cast<ptrdiff_t>(q * num_candidates),
            work.scores.begin() +
                static_cast<ptrdiff_t>((q + 1) * num_candidates));
        result.topK = topKHits(result.scores, config_.topK);
        result.epoch = work.snap->epoch();
        result.ids = ids;
        metrics_.recordRetrieval(num_candidates, num_candidates,
                                 num_candidates);
        finishQuery(work.live[q], std::move(result), work.flushed,
                    work.done, static_cast<uint32_t>(num_queries),
                    work.accums ? &work.accums[q] : nullptr);
    }
}

void
SearchService::matchCascade(BatchWork &work)
{
    const size_t num_queries = work.live.size();

    // Stages 1–2, query-parallel: each query's filter + shortlist is
    // an independent task against the pinned snapshot's (immutable)
    // view. The shortlist a query gets is a deterministic function of
    // (snapshot, model, query) — never of the thread count or of
    // concurrent mutations.
    work.lists.resize(num_queries);
    work.stages.resize(num_queries);
    {
        obs::TraceScope span("batch.retrieve", "serve", "batch_size",
                             num_queries);
        parallelFor(0, num_queries, 1, [&](size_t q0, size_t q1) {
            for (size_t q = q0; q < q1; ++q) {
                if (work.accums)
                    obs::setCurrentStageAccum(&work.accums[q]);
                work.lists[q] =
                    corpus_.shortlist(*work.snap, work.live[q].query,
                                      *model_, &work.stages[q]);
            }
            if (work.accums)
                obs::setCurrentStageAccum(nullptr);
        });
    }

    // Stage 3: one pair-parallel exact pass over the flattened
    // shortlists. Same bit-determinism argument as the exhaustive
    // path — disjoint output slots, per-pair forward passes — so each
    // verified score is bit-identical to what exhaustive mode would
    // produce for that pair.
    work.offsets.assign(num_queries + 1, 0);
    for (size_t q = 0; q < num_queries; ++q)
        work.offsets[q + 1] = work.offsets[q] + work.lists[q].size();
    const size_t num_pairs = work.offsets.back();
    work.scores.assign(num_pairs, 0.0);
    if (num_pairs > 0) {
        obs::TraceScope span("batch.score", "serve", "batch_size",
                             num_queries);
        parallelFor(0, num_pairs, 1, [&](size_t i0, size_t i1) {
            for (size_t i = i0; i < i1; ++i) {
                size_t q = static_cast<size_t>(
                               std::upper_bound(work.offsets.begin(),
                                                work.offsets.end(), i) -
                               work.offsets.begin()) -
                           1;
                if (work.accums)
                    obs::setCurrentStageAccum(&work.accums[q]);
                uint32_t c = work.lists[q][i - work.offsets[q]];
                work.scores[i] = model_->score(GraphPairView(
                    work.snap->graph(c), work.live[q].query));
            }
            if (work.accums)
                obs::setCurrentStageAccum(nullptr);
        });
    }
}

void
SearchService::headCascade(BatchWork &work)
{
    const size_t num_queries = work.live.size();
    const size_t num_candidates = work.slots.size();

    auto ids = std::make_shared<const std::vector<uint64_t>>(
        work.snap->liveIds());
    for (size_t q = 0; q < num_queries; ++q) {
        QueryResult result;
        // Unverified candidates stay NaN: "not scored". The NaN-aware
        // topKHits comparator orders them strictly last, so the hit
        // list ranks exactly the verified scores. Results are indexed
        // by *position in the snapshot's live order* (== slot order),
        // so the shortlist's slot numbers map through lower_bound on
        // the ascending live-slot list.
        result.scores.assign(num_candidates,
                             std::numeric_limits<double>::quiet_NaN());
        for (size_t j = 0; j < work.lists[q].size(); ++j) {
            uint32_t c = work.lists[q][j];
            size_t pos = static_cast<size_t>(
                std::lower_bound(work.slots.begin(), work.slots.end(),
                                 c) -
                work.slots.begin());
            result.scores[pos] = work.scores[work.offsets[q] + j];
        }
        result.topK = topKHits(result.scores, config_.topK);
        while (!result.topK.empty() &&
               std::isnan(result.topK.back().score))
            result.topK.pop_back();
        result.epoch = work.snap->epoch();
        result.ids = ids;
        metrics_.recordRetrieval(work.stages[q].corpus,
                                 work.stages[q].survivors,
                                 work.stages[q].shortlisted);
        finishQuery(work.live[q], std::move(result), work.flushed,
                    work.done, static_cast<uint32_t>(num_queries),
                    work.accums ? &work.accums[q] : nullptr);
    }
}

void
SearchService::finishQuery(Pending &pending, QueryResult result,
                           SteadyTime flushed, SteadyTime done,
                           uint32_t batch_size,
                           const obs::StageAccum *accum)
{
    result.queueMs = msSince(pending.submitted, flushed);
    result.totalMs = msSince(pending.submitted, done);
    result.batchSize = batch_size;

    obs::CriticalPath &cp = result.breakdown;
    cp.requestId = pending.id;
    cp.queueUs = static_cast<uint64_t>(
        std::max(result.queueMs, 0.0) * 1e3);
    cp.totalUs = static_cast<uint64_t>(
        std::max(result.totalMs, 0.0) * 1e3);
    cp.batchSize = batch_size;
    cp.epoch = result.epoch;
    cp.startNs = traceNs(pending.submitted);
    if (accum != nullptr) {
        auto us = [](const std::atomic<uint64_t> &ns) {
            return ns.load(std::memory_order_relaxed) / 1000;
        };
        cp.embedUs = us(accum->embedNs);
        cp.dedupUs = us(accum->dedupNs);
        cp.matchUs = us(accum->matchNs);
        cp.headUs = us(accum->headNs);
        cp.memoUs = us(accum->memoNs);
        exemplars_.record(cp);
    }

    metrics_.recordCompleted(result.queueMs * 1e3, result.totalMs * 1e3);
    if (obs::tracingEnabled()) {
        uint64_t sub_ns = traceNs(pending.submitted);
        obs::recordSpan("request", "serve", sub_ns,
                        traceNs(done) - sub_ns, "request_id",
                        pending.id);
        obs::recordSpan("queue.wait", "serve", sub_ns,
                        traceNs(flushed) - sub_ns);
    }
    if (config_.slowMs > 0.0 && result.totalMs >= config_.slowMs) {
        if (accum != nullptr) {
            warn("slow request #%llu: %.2f ms total (%.2f ms queued, "
                 "batch %u, %zu candidates; stage us: embed %llu "
                 "dedup %llu match %llu head %llu memo %llu)",
                 static_cast<unsigned long long>(cp.requestId),
                 result.totalMs, result.queueMs, result.batchSize,
                 corpus_.liveCount(),
                 static_cast<unsigned long long>(cp.embedUs),
                 static_cast<unsigned long long>(cp.dedupUs),
                 static_cast<unsigned long long>(cp.matchUs),
                 static_cast<unsigned long long>(cp.headUs),
                 static_cast<unsigned long long>(cp.memoUs));
        } else {
            warn("slow request: %.2f ms total (%.2f ms queued, batch "
                 "%u, %zu candidates)",
                 result.totalMs, result.queueMs, result.batchSize,
                 corpus_.liveCount());
        }
    }
    pending.promise.set_value(std::move(result));
}

} // namespace cegma
