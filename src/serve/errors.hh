/**
 * @file
 * Typed request-failure errors for the serving runtime. Every way a
 * submitted request can fail without a score resolves its future with
 * a `RequestError` carrying a machine-readable code, so clients (and
 * the loadgen retry policy) can tell a shed request from an expired
 * one without parsing message strings. `RequestError` derives from
 * `std::runtime_error`, so callers that only care about "it failed"
 * keep working unchanged.
 */

#ifndef CEGMA_SERVE_ERRORS_HH
#define CEGMA_SERVE_ERRORS_HH

#include <stdexcept>
#include <string>

namespace cegma {

/** Why a request failed without being scored. */
enum class RequestErrorCode
{
    /** Refused at admission: queue full or service shutting down. */
    Rejected,

    /** The request's deadline passed before it could be scored. */
    DeadlineExceeded,

    /**
     * Dropped by deadline-aware load shedding: past the shed
     * watermark, the requests with the least remaining deadline
     * budget are sacrificed first.
     */
    Shed,

    /**
     * Still queued when the bounded shutdown drain timed out; the
     * service failed the promise instead of blocking forever.
     */
    DrainTimeout,

    /** A fault injector failed the request on purpose (tests only). */
    Injected,
};

/** @return a stable lowercase name for `code` (metrics/log keys). */
const char *requestErrorCodeName(RequestErrorCode code);

/** The exception a failed request's future throws from `get()`. */
class RequestError : public std::runtime_error
{
  public:
    RequestError(RequestErrorCode code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {
    }

    RequestErrorCode code() const { return code_; }

    /**
     * Whether a client retry can plausibly succeed: true for load
     * failures (rejected / shed / injected) that a backoff can wait
     * out, false once the service is draining away.
     */
    bool retryable() const
    {
        return code_ != RequestErrorCode::DrainTimeout;
    }

  private:
    RequestErrorCode code_;
};

inline const char *
requestErrorCodeName(RequestErrorCode code)
{
    switch (code) {
      case RequestErrorCode::Rejected:
        return "rejected";
      case RequestErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
      case RequestErrorCode::Shed:
        return "shed";
      case RequestErrorCode::DrainTimeout:
        return "drain_timeout";
      case RequestErrorCode::Injected:
        return "injected";
    }
    return "unknown";
}

} // namespace cegma

#endif // CEGMA_SERVE_ERRORS_HH
