/**
 * @file
 * `StagePipeline` — the pipelined batch execution engine behind
 * `SearchService` (DESIGN.md §7e).
 *
 * The monolithic batch path runs embed → dedup/match → head as one
 * pass per batch on the dispatcher thread, so batch N+1 queues behind
 * *all* of batch N's work. This engine gives each stage its own
 * worker thread and a bounded FIFO queue in front of it: batch N+1's
 * embedding (memo pre-warm) overlaps batch N's matching, and batch
 * N-1's head (top-k + result delivery) overlaps both. The stages the
 * service installs map onto the GMN structure itself — per-graph
 * embedding, cross-graph matching, similarity head (Li et al.,
 * PAPERS.md) — which is what makes the decomposition natural and the
 * seam reusable for future multi-backend stages.
 *
 * Determinism: the pipeline moves each batch, in FIFO order, through
 * the SAME stage functions the monolithic path runs back-to-back.
 * Stages never share mutable state across concurrent batches except
 * through the memo cache, whose first-insert-wins replay contract
 * already guarantees a hit returns exactly the bits a rebuild would
 * produce. Pipelining therefore affects *when* a batch's stages run,
 * never *what* they compute — the serve_test grid proves bit-identity
 * to serial `runFunctional` at every thread × batch × depth point.
 *
 * Telemetry: per-stage busy time, queue-wait time, and a wall-clock
 * overlap counter (time during which ≥ 2 stages were simultaneously
 * busy — identically 0 for a serial executor) surface as
 * `serve.pipeline.*` gauges; each stage emits a `pipeline.<name>`
 * trace span, so the overlap is directly visible in the Chrome trace
 * export as staggered rows.
 */

#ifndef CEGMA_SERVE_PIPELINE_HH
#define CEGMA_SERVE_PIPELINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cegma {

/** Base for units of work flowing through a `StagePipeline`. */
struct PipelineItem
{
    /** Submission sequence number (FIFO position), set by submit(). */
    uint64_t seq = 0;

    virtual ~PipelineItem() = default;
};

/** Point-in-time counters for one stage (relaxed reads). */
struct PipelineStageStats
{
    uint64_t items = 0;       ///< batches this stage completed
    uint64_t busyNs = 0;      ///< time spent inside the stage fn
    uint64_t queueWaitNs = 0; ///< time batches waited in its queue
};

/** Point-in-time counters for the whole pipeline. */
struct PipelineStats
{
    std::vector<PipelineStageStats> stages;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    /** Wall ns during which >= 1 stage was busy. */
    uint64_t busyNs = 0;
    /** Wall ns during which >= 2 stages were busy — the overlap a
     *  serial executor can never produce. */
    uint64_t overlapNs = 0;
};

/**
 * A fixed linear pipeline of named stages, each with one worker
 * thread and a bounded FIFO input queue. `submit()` blocks while the
 * first queue is full (backpressure to the dispatcher); `drain()`
 * closes admission, lets every in-flight item finish all remaining
 * stages, and joins the workers. Thread-safe: one producer thread is
 * assumed (the dispatcher), stats may be read from any thread.
 */
class StagePipeline
{
  public:
    struct Stage
    {
        const char *name; ///< trace span suffix; must outlive the pipeline
        std::function<void(PipelineItem &)> fn;
    };

    /**
     * @param stages  the stage functions, in execution order (>= 1)
     * @param depth   per-stage queue capacity (>= 1); the maximum
     *                number of batches in flight is
     *                stages * depth + stages (queued + executing)
     */
    StagePipeline(std::vector<Stage> stages, size_t depth);

    /** Drains (idempotent with an explicit drain()) and joins. */
    ~StagePipeline();

    StagePipeline(const StagePipeline &) = delete;
    StagePipeline &operator=(const StagePipeline &) = delete;

    /** Hand a batch to stage 0; blocks while its queue is full. */
    void submit(std::unique_ptr<PipelineItem> item);

    /**
     * Close admission, run every already-submitted batch through all
     * remaining stages, and join the workers. Idempotent.
     */
    void drain();

    PipelineStats stats() const;

    size_t depth() const { return depth_; }

    /** Batches submitted but not yet through the last stage. */
    uint64_t inflight() const;

  private:
    struct Entry
    {
        std::unique_ptr<PipelineItem> item;
        uint64_t enqueuedNs = 0;
    };

    /** One bounded MPSC queue in front of each stage. */
    struct Queue
    {
        std::mutex mutex;
        std::condition_variable readable;
        std::condition_variable writable;
        std::deque<Entry> entries;
        bool closed = false;
    };

    void workerLoop(size_t stage_idx);
    void push(size_t stage_idx, Entry entry);
    /** False when the queue is closed and empty (worker exits). */
    bool pop(size_t stage_idx, Entry &out);

    /** Busy/overlap wall-clock accounting (see PipelineStats). */
    void noteBusy(int delta);

    const size_t depth_;
    std::vector<Stage> stages_;
    std::vector<std::unique_ptr<Queue>> queues_; // one per stage

    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    struct StageCounters
    {
        std::atomic<uint64_t> items{0};
        std::atomic<uint64_t> busyNs{0};
        std::atomic<uint64_t> queueWaitNs{0};
    };
    std::vector<std::unique_ptr<StageCounters>> counters_;

    // Overlap accounting: stage transitions are per-batch (rare), so
    // one small mutex-guarded state machine is cheap and exact.
    mutable std::mutex busyMutex_;
    int busyStages_ = 0;
    uint64_t lastTransitionNs_ = 0;
    uint64_t busyNs_ = 0;
    uint64_t overlapNs_ = 0;

    bool drained_ = false;
    std::mutex drainMutex_; ///< serializes drain() callers
    std::vector<std::thread> workers_;
};

} // namespace cegma

#endif // CEGMA_SERVE_PIPELINE_HH
