/**
 * @file
 * Request-level telemetry for the serving subsystem: QPS, queue depth,
 * batch-size distribution, exact latency percentiles, per-stage time
 * breakdown, and the memo cache's hit/eviction counters, exportable as
 * a JSON snapshot.
 *
 * Storage lives in a per-service `obs::MetricsRegistry`: every counter
 * and histogram here is a named registry metric, so the same numbers
 * that fill a `MetricsSnapshot` are also exposable as registry JSON or
 * Prometheus text (see obs/metrics.hh) without a second bookkeeping
 * path. Latencies are recorded as integer microseconds into the
 * registry's exact-quantile histograms, so p50/p95/p99 are *exact*
 * over the recorded samples (no bucketing error) — the same machinery
 * the paper's reuse-distance CDFs use.
 */

#ifndef CEGMA_SERVE_METRICS_HH
#define CEGMA_SERVE_METRICS_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "obs/slo.hh"

namespace cegma {

/** A point-in-time copy of every serving metric. */
struct MetricsSnapshot
{
    // Request accounting.
    uint64_t submitted = 0; ///< submit() calls, admitted or not
    uint64_t completed = 0; ///< requests whose result was delivered
    uint64_t rejected = 0;  ///< refused at admission (full / shutdown)
    uint64_t expired = 0;   ///< failed on a passed request deadline
    uint64_t shed = 0;      ///< dropped by deadline-aware shedding
    uint64_t retries = 0;   ///< client-side retries (loadgen-reported)
    uint64_t drainDropped = 0; ///< failed by the bounded shutdown drain
    uint64_t batches = 0;   ///< scoring passes flushed
    uint64_t queueDepth = 0; ///< pending requests at snapshot time

    // Throughput over the window from the first submit to the
    // snapshot.
    double elapsedSec = 0.0;
    double qps = 0.0; ///< completed / elapsedSec

    // Batch-size distribution across flushes.
    double batchMean = 0.0;
    uint64_t batchMax = 0;

    // End-to-end latency (submit -> result), milliseconds.
    double latencyP50Ms = 0.0;
    double latencyP95Ms = 0.0;
    double latencyP99Ms = 0.0;
    double latencyMeanMs = 0.0;
    double latencyMaxMs = 0.0;

    // Queue wait (submit -> batch flush), milliseconds.
    double queueMeanMs = 0.0;

    // Memo cache counters (filled by the service).
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t cacheBytes = 0;
    double cacheHitRate = 0.0;

    // Dedup telemetry (filled by the service).
    uint64_t dedupRowsTotal = 0;
    uint64_t dedupRowsUnique = 0;
    double dedupSkipRatio = 0.0;

    // Retrieval-cascade stage sizes, summed over scored queries.
    // Exhaustive mode verifies everything, so candidates == verified
    // and both ratios are 0.
    uint64_t retrievalCandidates = 0; ///< candidates entering stage 1
    uint64_t retrievalSurvivors = 0;  ///< past the tag filter
    uint64_t retrievalVerified = 0;   ///< exact GMN scores actually run
    double retrievalFilterPruneRatio = 0.0; ///< 1 - survivors/candidates
    double retrievalPruneRatio = 0.0;       ///< 1 - verified/candidates

    // Live-corpus state (filled by the service; see
    // corpus/live_corpus.hh). `corpusEpochsReclaimed` > 0 under a
    // mutating workload is the no-unbounded-growth proof: pinned
    // snapshots are actually being retired.
    uint64_t corpusEpoch = 0;           ///< current corpus epoch
    uint64_t corpusLive = 0;            ///< visible entries
    uint64_t corpusSlots = 0;           ///< published slots (incl. dead)
    uint64_t corpusTombstones = 0;      ///< dead slots awaiting reclaim
    uint64_t corpusInserts = 0;         ///< accepted inserts
    uint64_t corpusRemoves = 0;         ///< accepted removes
    uint64_t corpusEpochsReclaimed = 0; ///< retired epochs
    uint64_t corpusCompactions = 0;     ///< compaction passes

    // Joint-window scheduler activity during this service's lifetime
    // (deltas of the process totals; filled by the service).
    uint64_t windowWindows = 0;
    uint64_t windowSlides = 0;
    uint64_t windowJumps = 0;
    uint64_t windowXTileLoads = 0;
    uint64_t windowYTileLoads = 0;

    // Per-stage thread-time totals across every scored pair,
    // milliseconds. These are sums over the pair-parallel workers, so
    // they can exceed the wall clock; their *shares* are the latency
    // breakdown. stageQueueMs sums the submit->flush waits;
    // stageMemoMs is the memo cache's lookup/insert time (filled by
    // the service).
    double stageEmbedMs = 0.0;
    double stageMatchMs = 0.0;
    double stageDedupMs = 0.0;
    double stageHeadMs = 0.0;
    double stageMemoMs = 0.0;
    double stageQueueMs = 0.0;

    /** One JSON object, keys in the order above. */
    std::string toJson() const;
};

/**
 * The serving metric sink: a facade over a per-service
 * `obs::MetricsRegistry`. One instance per service; the dispatcher and
 * the submitting threads record concurrently, and `snapshot()` can be
 * taken at any time (including mid-load). Per-service ownership keeps
 * concurrent services (and tests) from bleeding into each other.
 */
class ServiceMetrics
{
  public:
    /** `clock` drives the rolling windows; empty = real steady clock
     *  (tests inject a fake one for deterministic rotation). */
    explicit ServiceMetrics(obs::ClockFn clock = nullptr);

    ServiceMetrics(const ServiceMetrics &) = delete;
    ServiceMetrics &operator=(const ServiceMetrics &) = delete;

    /** Count one submit() call (the admission verdict comes apart). */
    void recordSubmitted();

    /** Count one refused admission. */
    void recordRejected();

    /** Count one request failed on a passed deadline (unscored). */
    void recordExpired();

    /** Count one request dropped by deadline-aware load shedding. */
    void recordShed();

    /** Count one client-side retry (reported by the load generator). */
    void recordRetry();

    /** Count one request failed by the bounded shutdown drain. */
    void recordDrainDropped();

    /** Count one flushed scoring pass of `batch_size` requests. */
    void recordBatch(uint64_t batch_size);

    /** Record one query's cascade stage sizes (exhaustive: c == v). */
    void recordRetrieval(uint64_t candidates, uint64_t survivors,
                         uint64_t verified);

    /** Record one delivered request's queue wait and total latency. */
    void recordCompleted(double queue_us, double total_us);

    /**
     * Attach an SLO to the request stream: registers the
     * `serve.slo.*` gauges (target, objective, per-window burn rate)
     * and makes every subsequent outcome count against the error
     * budget — a completion over `config.targetMs` is as bad as a
     * failure. No-op when `config.enabled()` is false.
     */
    void configureSlo(const obs::SloConfig &config);

    /** The SLO tracker, or null when no SLO was configured. */
    const obs::SloTracker *slo() const { return slo_.get(); }

    /**
     * Freeze the rolling-window and SLO provider gauges to their
     * current values (shutdown path: late scrapes read constants
     * instead of polling windows mid-teardown).
     */
    void freezeWindowGauges();

    /**
     * Snapshot everything recorded so far. Cache, dedup, and memo
     * fields are left zero — the service overlays them from its own
     * counters.
     *
     * @param queue_depth current admission-queue depth
     */
    MetricsSnapshot snapshot(uint64_t queue_depth) const;

    /**
     * The registry every metric lives in. The service adds its
     * provider gauges (cache bytes, queue depth, ...) here, and the
     * CLI exposes it as JSON / Prometheus text.
     */
    obs::MetricsRegistry &registry() { return registry_; }
    const obs::MetricsRegistry &registry() const { return registry_; }

    /** The per-stage sinks wired into `InferenceOptions::stages`. */
    const obs::StageSink &stages() const { return stages_; }

  private:
    /**
     * One rolling-window horizon of the request stream: completion
     * latencies (whose count doubles as the completion rate) and
     * failed-request counts, exposed as `serve.<name>.*` gauges.
     * Held by pointer — the windows own mutexes (immovable).
     */
    struct Horizon
    {
        const char *name;
        std::unique_ptr<obs::WindowedDistribution> latencyUs;
        std::unique_ptr<obs::WindowedCounter> errors;
    };

    /** Count one failed request into every horizon (and the SLO). */
    void recordFailure();

    obs::MetricsRegistry registry_;
    obs::Counter &submitted_;
    obs::Counter &completed_;
    obs::Counter &rejected_;
    obs::Counter &expired_;
    obs::Counter &shed_;
    obs::Counter &retries_;
    obs::Counter &drainDropped_;
    obs::Counter &batches_;
    obs::Counter &retrievalCandidates_;
    obs::Counter &retrievalSurvivors_;
    obs::Counter &retrievalVerified_;
    obs::Histogram &batchSize_;
    obs::Histogram &latencyUs_;
    obs::Histogram &queueUs_;
    obs::StageSink stages_;

    obs::ClockFn clock_; ///< drives windows + SLO (empty = real)
    Horizon horizons_[3]; ///< 10 s / 1 min / 5 min
    std::unique_ptr<obs::SloTracker> slo_;

    // Only the throughput-window start needs a lock of its own.
    mutable std::mutex mutex_;
    bool started_ = false;
    std::chrono::steady_clock::time_point firstSubmit_;
};

} // namespace cegma

#endif // CEGMA_SERVE_METRICS_HH
