/**
 * @file
 * Request-level telemetry for the serving subsystem: QPS, queue depth,
 * batch-size distribution, exact latency percentiles, and the memo
 * cache's hit/eviction counters, exportable as a JSON snapshot.
 *
 * Latencies are recorded as integer microseconds into an
 * `IntDistribution`, so p50/p95/p99 are *exact* over the recorded
 * samples (no histogram bucketing error) — the same machinery the
 * paper's reuse-distance CDFs use.
 */

#ifndef CEGMA_SERVE_METRICS_HH
#define CEGMA_SERVE_METRICS_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/stats.hh"

namespace cegma {

/** A point-in-time copy of every serving metric. */
struct MetricsSnapshot
{
    // Request accounting.
    uint64_t submitted = 0; ///< submit() calls, admitted or not
    uint64_t completed = 0; ///< requests whose result was delivered
    uint64_t rejected = 0;  ///< refused at admission (full / shutdown)
    uint64_t batches = 0;   ///< scoring passes flushed
    uint64_t queueDepth = 0; ///< pending requests at snapshot time

    // Throughput over the window from the first submit to the
    // snapshot.
    double elapsedSec = 0.0;
    double qps = 0.0; ///< completed / elapsedSec

    // Batch-size distribution across flushes.
    double batchMean = 0.0;
    uint64_t batchMax = 0;

    // End-to-end latency (submit -> result), milliseconds.
    double latencyP50Ms = 0.0;
    double latencyP95Ms = 0.0;
    double latencyP99Ms = 0.0;
    double latencyMeanMs = 0.0;
    double latencyMaxMs = 0.0;

    // Queue wait (submit -> batch flush), milliseconds.
    double queueMeanMs = 0.0;

    // Memo cache counters (filled by the service).
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t cacheBytes = 0;
    double cacheHitRate = 0.0;

    // Dedup telemetry (filled by the service).
    uint64_t dedupRowsTotal = 0;
    uint64_t dedupRowsUnique = 0;
    double dedupSkipRatio = 0.0;

    /** One JSON object, keys in the order above. */
    std::string toJson() const;
};

/**
 * Mutex-guarded metric sink. One instance per service; the dispatcher
 * and the submitting threads record concurrently, and `snapshot()` can
 * be taken at any time (including mid-load).
 */
class ServiceMetrics
{
  public:
    /** Count one submit() call (the admission verdict comes apart). */
    void recordSubmitted();

    /** Count one refused admission. */
    void recordRejected();

    /** Count one flushed scoring pass of `batch_size` requests. */
    void recordBatch(uint64_t batch_size);

    /** Record one delivered request's queue wait and total latency. */
    void recordCompleted(double queue_us, double total_us);

    /**
     * Snapshot everything recorded so far. Cache and dedup fields are
     * left zero — the service overlays them from its own counters.
     *
     * @param queue_depth current admission-queue depth
     */
    MetricsSnapshot snapshot(uint64_t queue_depth) const;

  private:
    mutable std::mutex mutex_;
    bool started_ = false;
    std::chrono::steady_clock::time_point firstSubmit_;
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    uint64_t rejected_ = 0;
    uint64_t batches_ = 0;
    RunningStat batchSizes_;
    IntDistribution latencyUs_;
    RunningStat latencyStat_;
    RunningStat queueUs_;
};

} // namespace cegma

#endif // CEGMA_SERVE_METRICS_HH
