/**
 * @file
 * Load generators for `SearchService`: an open-loop driver with
 * seeded Poisson (exponential inter-arrival) request times, and a
 * closed-loop driver with a fixed number of back-to-back clients.
 *
 * Open loop measures *latency under a fixed offered load* — arrivals
 * do not wait for completions, so queueing delay shows up honestly
 * (the serving regime the paper's clone-search evaluation targets).
 * Closed loop measures *capacity* — clients issue as fast as results
 * return, so throughput saturates at the service's limit.
 *
 * Both drivers speak the service's failure taxonomy: a request that
 * fails with a retryable `RequestError` (rejected / shed / injected)
 * is retried under a jittered-exponential-backoff `RetryPolicy`
 * drawn from a seeded RNG — so runs with retries stay byte-for-byte
 * reproducible — and each retry is reported both in `LoadGenResult`
 * and through `SearchService::noteClientRetry()` into the service's
 * metrics registry (`serve.requests.retries`).
 *
 * Arrival schedules are seeded and deterministic; two runs at the same
 * (seed, qps, requests) offer byte-identical load, which is what makes
 * "dedup+memo is no slower at equal load" a well-posed comparison.
 */

#ifndef CEGMA_SERVE_LOADGEN_HH
#define CEGMA_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/dataset.hh"
#include "graph/graph.hh"
#include "serve/service.hh"

namespace cegma {

/**
 * Client-side retry behavior. The default (1 attempt) never retries —
 * the pre-existing loadgen behavior.
 */
struct RetryPolicy
{
    /** Total tries per request, first attempt included; >= 1. */
    uint32_t maxAttempts = 1;

    /** Backoff before retry k (1-based): base * 2^(k-1), capped. */
    double baseBackoffMs = 1.0;
    double maxBackoffMs = 64.0;

    /**
     * Fraction of each backoff that is randomized (0 = fixed, 1 =
     * fully jittered): sleep = backoff * (1 - jitter + jitter * u),
     * u uniform in [0, 1) from the seeded RNG.
     */
    double jitter = 0.5;

    /**
     * Per-request deadline override passed to `submit`; 0 uses the
     * service default. Each retry gets a fresh budget.
     */
    double deadlineMs = 0.0;
};

/** Outcome of one load-generation run. */
struct LoadGenResult
{
    MetricsSnapshot metrics; ///< service snapshot after the last result
    double offeredQps = 0.0; ///< open loop only (0 for closed loop)
    double achievedQps = 0.0; ///< completed / makespan
    double makespanSec = 0.0; ///< first submit -> last completion
    uint64_t errors = 0;   ///< requests that ultimately failed
    uint64_t retries = 0;  ///< re-submissions after retryable failures
    uint64_t giveups = 0;  ///< requests that exhausted maxAttempts
};

/**
 * Zipf(`skew`) sampler over `{0, .., n-1}`: rank r is drawn with
 * probability proportional to `1 / (r+1)^skew`. `skew <= 0` is the
 * uniform distribution. Sampling is one CDF binary search per draw
 * from the caller's seeded RNG, so a picker is trivially shareable
 * and the drawn index stream is a pure function of (n, skew, seed).
 * Models the skewed query popularity of a production clone-search
 * tier (hot queries re-hitting the memo).
 */
class ZipfPicker
{
  public:
    ZipfPicker(size_t n, double skew);

    /** Draw one index in [0, n). */
    uint32_t pick(Rng &rng) const;

  private:
    std::vector<double> cdf_; ///< empty when uniform
    size_t n_;
};

/** Knobs of the interleaved mutation stream (`planMutations`). */
struct MutationMix
{
    /**
     * Mutations offered per query (accumulator-scheduled, so 0.1
     * means one mutation every 10th request and 3.0 means three
     * before every request). 0 disables mutation entirely.
     */
    double perQuery = 0.0;

    /** Fraction of mutations that are inserts; the rest remove. */
    double insertFraction = 0.5;

    /**
     * Publish (flush) staged mutations once this many have
     * accumulated. 1 flushes every mutation into its own epoch;
     * larger values batch multiple mutations per epoch.
     */
    uint32_t publishBatch = 1;

    /** Zipf skew of the query index stream; 0 keeps round-robin. */
    double zipfSkew = 0.0;
};

/** One staged mutation in a `MutationPlan`. */
struct MutationOp
{
    bool isInsert = false;
    uint64_t id = 0;        ///< stable id inserted or removed
    uint32_t poolIndex = 0; ///< insert only: index into the pool
};

/**
 * A fully pre-drawn mutation schedule: which mutations are staged
 * before each request, and where the epoch boundaries fall. Because
 * the plan is a pure function of (bootstrap ids, pool, mix, seed),
 * the same plan can drive the live service *and* an offline oracle —
 * that is what makes served scores checkable bit-for-bit against a
 * per-epoch exhaustive replay.
 */
struct MutationPlan
{
    /** Ops staged immediately before submitting request i. */
    std::vector<std::vector<MutationOp>> before;

    /**
     * Flush staged mutations after staging `before[i]`, before
     * submitting request i. The driver also flushes whatever is
     * still staged after the last request.
     */
    std::vector<bool> flushBefore;

    uint32_t totalMutations = 0;
    uint32_t totalInserts = 0;
    uint32_t totalRemoves = 0;
    uint32_t totalFlushes = 0; ///< incl. the trailing flush
};

/**
 * Draw the mutation schedule for `num_requests` requests. Inserts
 * consume `pool` graphs in order (each at most once); removes pick a
 * uniformly random *flushed-live* entry (never a same-epoch staged
 * insert), starting from `bootstrap_ids`. Pure function of its
 * arguments — see `MutationPlan`.
 */
MutationPlan planMutations(const std::vector<uint64_t> &bootstrap_ids,
                           const MutationPool &pool,
                           uint32_t num_requests,
                           const MutationMix &mix, uint64_t seed);

/**
 * The oracle's view: the stable ids live at each epoch of `plan`, in
 * slot order (bootstrap order, inserts appended in insert order —
 * exactly `CorpusSnapshot::liveIds()` of the corresponding pinned
 * epoch). Entry 0 is the bootstrap corpus (epoch 0); one entry per
 * flush follows, `plan.totalFlushes + 1` in total.
 */
std::vector<std::vector<uint64_t>>
liveIdsByEpoch(const std::vector<uint64_t> &bootstrap_ids,
               const MutationPool &pool, const MutationPlan &plan);

/**
 * Drive `service` open-loop: `num_requests` submits at Poisson arrival
 * times of rate `qps` (query graphs cycled in order), then wait for
 * every result, retrying failures per `retry`. First attempts follow
 * the pre-drawn schedule exactly; retries backoff-sleep afterwards,
 * so the offered load of the comparison window is untouched.
 */
LoadGenResult runOpenLoop(SearchService &service,
                          const std::vector<Graph> &queries,
                          uint32_t num_requests, double qps,
                          uint64_t seed = 1,
                          const RetryPolicy &retry = RetryPolicy{});

/**
 * Open-loop driver with an interleaved mutation stream: before each
 * request, the arrival thread applies `plan.before[i]` (inserting
 * `pool` graphs / removing live ids) and publishes per the plan's
 * epoch boundaries; whatever is still staged after the last request
 * is flushed at the end. Query indices are drawn Zipf(`mix.zipfSkew`)
 * over `queries` (round-robin at skew 0). Both the mutation and the
 * query-index streams are pre-drawn and seeded, so the offered
 * workload — and, via `QueryResult::epoch`, every result's expected
 * corpus — is exactly reproducible.
 */
LoadGenResult runOpenLoopMutating(SearchService &service,
                                  const std::vector<Graph> &queries,
                                  const MutationPool &pool,
                                  const MutationPlan &plan,
                                  const MutationMix &mix,
                                  uint32_t num_requests, double qps,
                                  uint64_t seed = 1,
                                  const RetryPolicy &retry = RetryPolicy{});

/**
 * Drive `service` closed-loop: `clients` threads issue back-to-back
 * requests (each waits for its result — retrying failed ones per
 * `retry` — before the next submit) until `num_requests` have been
 * issued in total.
 */
LoadGenResult runClosedLoop(SearchService &service,
                            const std::vector<Graph> &queries,
                            uint32_t num_requests, uint32_t clients,
                            const RetryPolicy &retry = RetryPolicy{},
                            uint64_t seed = 1);

} // namespace cegma

#endif // CEGMA_SERVE_LOADGEN_HH
