/**
 * @file
 * Load generators for `SearchService`: an open-loop driver with
 * seeded Poisson (exponential inter-arrival) request times, and a
 * closed-loop driver with a fixed number of back-to-back clients.
 *
 * Open loop measures *latency under a fixed offered load* — arrivals
 * do not wait for completions, so queueing delay shows up honestly
 * (the serving regime the paper's clone-search evaluation targets).
 * Closed loop measures *capacity* — clients issue as fast as results
 * return, so throughput saturates at the service's limit.
 *
 * Arrival schedules are seeded and deterministic; two runs at the same
 * (seed, qps, requests) offer byte-identical load, which is what makes
 * "dedup+memo is no slower at equal load" a well-posed comparison.
 */

#ifndef CEGMA_SERVE_LOADGEN_HH
#define CEGMA_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "serve/service.hh"

namespace cegma {

/** Outcome of one load-generation run. */
struct LoadGenResult
{
    MetricsSnapshot metrics; ///< service snapshot after the last result
    double offeredQps = 0.0; ///< open loop only (0 for closed loop)
    double achievedQps = 0.0; ///< completed / makespan
    double makespanSec = 0.0; ///< first submit -> last completion
    uint64_t errors = 0;      ///< rejected/failed requests observed
};

/**
 * Drive `service` open-loop: `num_requests` submits at Poisson arrival
 * times of rate `qps` (query graphs cycled in order), then wait for
 * every result.
 */
LoadGenResult runOpenLoop(SearchService &service,
                          const std::vector<Graph> &queries,
                          uint32_t num_requests, double qps,
                          uint64_t seed = 1);

/**
 * Drive `service` closed-loop: `clients` threads issue back-to-back
 * requests (each waits for its result before the next submit) until
 * `num_requests` have been issued in total.
 */
LoadGenResult runClosedLoop(SearchService &service,
                            const std::vector<Graph> &queries,
                            uint32_t num_requests, uint32_t clients);

} // namespace cegma

#endif // CEGMA_SERVE_LOADGEN_HH
