/**
 * @file
 * Load generators for `SearchService`: an open-loop driver with
 * seeded Poisson (exponential inter-arrival) request times, and a
 * closed-loop driver with a fixed number of back-to-back clients.
 *
 * Open loop measures *latency under a fixed offered load* — arrivals
 * do not wait for completions, so queueing delay shows up honestly
 * (the serving regime the paper's clone-search evaluation targets).
 * Closed loop measures *capacity* — clients issue as fast as results
 * return, so throughput saturates at the service's limit.
 *
 * Both drivers speak the service's failure taxonomy: a request that
 * fails with a retryable `RequestError` (rejected / shed / injected)
 * is retried under a jittered-exponential-backoff `RetryPolicy`
 * drawn from a seeded RNG — so runs with retries stay byte-for-byte
 * reproducible — and each retry is reported both in `LoadGenResult`
 * and through `SearchService::noteClientRetry()` into the service's
 * metrics registry (`serve.requests.retries`).
 *
 * Arrival schedules are seeded and deterministic; two runs at the same
 * (seed, qps, requests) offer byte-identical load, which is what makes
 * "dedup+memo is no slower at equal load" a well-posed comparison.
 */

#ifndef CEGMA_SERVE_LOADGEN_HH
#define CEGMA_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "serve/service.hh"

namespace cegma {

/**
 * Client-side retry behavior. The default (1 attempt) never retries —
 * the pre-existing loadgen behavior.
 */
struct RetryPolicy
{
    /** Total tries per request, first attempt included; >= 1. */
    uint32_t maxAttempts = 1;

    /** Backoff before retry k (1-based): base * 2^(k-1), capped. */
    double baseBackoffMs = 1.0;
    double maxBackoffMs = 64.0;

    /**
     * Fraction of each backoff that is randomized (0 = fixed, 1 =
     * fully jittered): sleep = backoff * (1 - jitter + jitter * u),
     * u uniform in [0, 1) from the seeded RNG.
     */
    double jitter = 0.5;

    /**
     * Per-request deadline override passed to `submit`; 0 uses the
     * service default. Each retry gets a fresh budget.
     */
    double deadlineMs = 0.0;
};

/** Outcome of one load-generation run. */
struct LoadGenResult
{
    MetricsSnapshot metrics; ///< service snapshot after the last result
    double offeredQps = 0.0; ///< open loop only (0 for closed loop)
    double achievedQps = 0.0; ///< completed / makespan
    double makespanSec = 0.0; ///< first submit -> last completion
    uint64_t errors = 0;   ///< requests that ultimately failed
    uint64_t retries = 0;  ///< re-submissions after retryable failures
    uint64_t giveups = 0;  ///< requests that exhausted maxAttempts
};

/**
 * Drive `service` open-loop: `num_requests` submits at Poisson arrival
 * times of rate `qps` (query graphs cycled in order), then wait for
 * every result, retrying failures per `retry`. First attempts follow
 * the pre-drawn schedule exactly; retries backoff-sleep afterwards,
 * so the offered load of the comparison window is untouched.
 */
LoadGenResult runOpenLoop(SearchService &service,
                          const std::vector<Graph> &queries,
                          uint32_t num_requests, double qps,
                          uint64_t seed = 1,
                          const RetryPolicy &retry = RetryPolicy{});

/**
 * Drive `service` closed-loop: `clients` threads issue back-to-back
 * requests (each waits for its result — retrying failed ones per
 * `retry` — before the next submit) until `num_requests` have been
 * issued in total.
 */
LoadGenResult runClosedLoop(SearchService &service,
                            const std::vector<Graph> &queries,
                            uint32_t num_requests, uint32_t clients,
                            const RetryPolicy &retry = RetryPolicy{},
                            uint64_t seed = 1);

} // namespace cegma

#endif // CEGMA_SERVE_LOADGEN_HH
