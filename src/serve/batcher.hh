/**
 * @file
 * The admission queue + dynamic micro-batcher behind `SearchService`.
 *
 * Concurrent producers enqueue work items; a single consumer pulls
 * *batches*. A batch flushes when either trigger fires, whichever
 * comes first:
 *   - size: `max_batch` items are waiting, or
 *   - deadline: the oldest waiting item has aged `flush_deadline`.
 *
 * The deadline is anchored to the *first* queued item (not the last),
 * so a trickle of arrivals cannot postpone a flush indefinitely — the
 * classic micro-batching latency bound. Under load the size trigger
 * dominates and batches arrive full; near idle the deadline trigger
 * bounds added latency to `flush_deadline`.
 *
 * Admission is bounded: past `max_depth` waiting items, `enqueue`
 * refuses (the service surfaces this as a rejected request) instead of
 * queueing unboundedly — queue depth, not latency, is the resource to
 * protect under overload.
 *
 * Load shedding is deadline-aware: when a `shed_watermark` is set and
 * the depth crosses it, the batcher drops the waiting items with the
 * *least remaining deadline budget* (earliest request deadline) first,
 * instead of blindly refusing new arrivals — those items are the ones
 * most likely to expire unserved anyway, so sacrificing them converts
 * would-be deadline misses into explicit early failures and keeps
 * admission open for requests that can still make their deadlines.
 * Items without a deadline are never shed (their budget is infinite);
 * the hard `max_depth` bound still backstops them.
 *
 * The single consumer is woken with `notify_one` — `notify_all` on
 * every enqueue was a thundering-herd bug waiting for a second
 * consumer that never existed.
 */

#ifndef CEGMA_SERVE_BATCHER_HH
#define CEGMA_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace cegma {

/** The "no request deadline" sentinel: infinite remaining budget. */
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

template <typename Item>
class MicroBatcher
{
  public:
    using Clock = std::chrono::steady_clock;

    MicroBatcher(uint32_t max_batch, std::chrono::microseconds flush_deadline,
                 size_t max_depth, size_t shed_watermark = 0)
        : maxBatch_(max_batch > 0 ? max_batch : 1),
          flushDeadline_(flush_deadline), maxDepth_(max_depth),
          shedWatermark_(shed_watermark)
    {
    }

    /**
     * Enqueue one item with no deadline (never shed, never expires).
     *
     * @return false when the batcher is closed or the queue is at
     *         `max_depth` (the item is left untouched so the caller
     *         can reject it)
     */
    bool enqueue(Item &&item)
    {
        return enqueue(std::move(item), kNoDeadline, nullptr);
    }

    /**
     * Enqueue one item carrying a request deadline. When the depth
     * crosses the shed watermark (or the queue is full but holds
     * sheddable items), the least-deadline-budget items are moved
     * into `*shed_out` — possibly including the one being enqueued —
     * and the caller must fail them. `shed_out` may be null only when
     * shedding is disabled.
     *
     * @return false when the batcher is closed, or the queue is full
     *         and nothing was sheddable (the item is left untouched)
     */
    bool enqueue(Item &&item, Clock::time_point deadline,
                 std::vector<Item> *shed_out)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return false;
            if (queue_.size() >= maxDepth_ && !shedOne(shed_out))
                return false;
            queue_.push_back(
                Timed{Clock::now(), deadline, std::move(item)});
            if (shedWatermark_ > 0) {
                while (queue_.size() > shedWatermark_ &&
                       shedOne(shed_out)) {
                }
            }
        }
        // Single consumer: exactly one waiter can make progress.
        wake_.notify_one();
        return true;
    }

    /**
     * Block until a batch is ready (size or deadline trigger) and pop
     * it. After `close()`, drains the remaining items batch by batch,
     * then returns an empty vector — the consumer's exit signal.
     */
    std::vector<Item> nextBatch()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (queue_.empty()) {
                if (closed_)
                    return {};
                wake_.wait(lock);
                continue;
            }
            if (queue_.size() >= maxBatch_ || closed_)
                break;
            auto deadline = queue_.front().enqueued + flushDeadline_;
            bool ready = wake_.wait_until(lock, deadline, [&] {
                return closed_ || queue_.size() >= maxBatch_;
            });
            if (!ready)
                break; // deadline: flush whatever is waiting
        }
        std::vector<Item> batch;
        size_t take = std::min<size_t>(queue_.size(), maxBatch_);
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front().item));
            queue_.pop_front();
        }
        return batch;
    }

    /** Stop admitting; wakes the consumer to drain and exit. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        wake_.notify_all();
    }

    /**
     * Close AND empty the queue, handing every still-queued item back
     * to the caller (who owns failing their promises). This is the
     * bounded-drain escape hatch: when a shutdown drain times out,
     * the service aborts instead of blocking on a stuck dispatcher.
     * Idempotent — a second call returns an empty vector.
     */
    std::vector<Item> abort()
    {
        std::vector<Item> leftover;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
            leftover.reserve(queue_.size());
            for (Timed &timed : queue_)
                leftover.push_back(std::move(timed.item));
            queue_.clear();
        }
        wake_.notify_all();
        return leftover;
    }

    /** Current number of waiting items. */
    size_t depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items dropped by deadline-aware shedding so far. */
    uint64_t shedCount() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return shed_;
    }

  private:
    struct Timed
    {
        Clock::time_point enqueued;
        Clock::time_point deadline;
        Item item;
    };

    /**
     * Drop the waiting item with the earliest (finite) deadline into
     * `*shed_out`. Requires `mutex_` held.
     *
     * @return false when no item carries a finite deadline — nothing
     *         is sheddable
     */
    bool shedOne(std::vector<Item> *shed_out)
    {
        if (shedWatermark_ == 0)
            return false;
        auto victim = queue_.end();
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->deadline == kNoDeadline)
                continue;
            if (victim == queue_.end() ||
                it->deadline < victim->deadline)
                victim = it;
        }
        if (victim == queue_.end())
            return false;
        ++shed_;
        if (shed_out != nullptr)
            shed_out->push_back(std::move(victim->item));
        queue_.erase(victim);
        return true;
    }

    const uint32_t maxBatch_;
    const std::chrono::microseconds flushDeadline_;
    const size_t maxDepth_;
    const size_t shedWatermark_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<Timed> queue_;
    bool closed_ = false;
    uint64_t shed_ = 0;
};

} // namespace cegma

#endif // CEGMA_SERVE_BATCHER_HH
