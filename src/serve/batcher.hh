/**
 * @file
 * The admission queue + dynamic micro-batcher behind `SearchService`.
 *
 * Concurrent producers enqueue work items; a single consumer pulls
 * *batches*. A batch flushes when either trigger fires, whichever
 * comes first:
 *   - size: `max_batch` items are waiting, or
 *   - deadline: the oldest waiting item has aged `flush_deadline`.
 *
 * The deadline is anchored to the *first* queued item (not the last),
 * so a trickle of arrivals cannot postpone a flush indefinitely — the
 * classic micro-batching latency bound. Under load the size trigger
 * dominates and batches arrive full; near idle the deadline trigger
 * bounds added latency to `flush_deadline`.
 *
 * Admission is bounded: past `max_depth` waiting items, `enqueue`
 * refuses (the service surfaces this as a rejected request) instead of
 * queueing unboundedly — queue depth, not latency, is the resource to
 * protect under overload.
 */

#ifndef CEGMA_SERVE_BATCHER_HH
#define CEGMA_SERVE_BATCHER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace cegma {

template <typename Item>
class MicroBatcher
{
  public:
    using Clock = std::chrono::steady_clock;

    MicroBatcher(uint32_t max_batch, std::chrono::microseconds flush_deadline,
                 size_t max_depth)
        : maxBatch_(max_batch > 0 ? max_batch : 1),
          flushDeadline_(flush_deadline), maxDepth_(max_depth)
    {
    }

    /**
     * Enqueue one item.
     *
     * @return false when the batcher is closed or the queue is at
     *         `max_depth` (the item is left untouched so the caller
     *         can reject it)
     */
    bool enqueue(Item &&item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || queue_.size() >= maxDepth_)
                return false;
            queue_.push_back(Timed{Clock::now(), std::move(item)});
        }
        wake_.notify_all();
        return true;
    }

    /**
     * Block until a batch is ready (size or deadline trigger) and pop
     * it. After `close()`, drains the remaining items batch by batch,
     * then returns an empty vector — the consumer's exit signal.
     */
    std::vector<Item> nextBatch()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (queue_.empty()) {
                if (closed_)
                    return {};
                wake_.wait(lock);
                continue;
            }
            if (queue_.size() >= maxBatch_ || closed_)
                break;
            auto deadline = queue_.front().enqueued + flushDeadline_;
            bool ready = wake_.wait_until(lock, deadline, [&] {
                return closed_ || queue_.size() >= maxBatch_;
            });
            if (!ready)
                break; // deadline: flush whatever is waiting
        }
        std::vector<Item> batch;
        size_t take = std::min<size_t>(queue_.size(), maxBatch_);
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front().item));
            queue_.pop_front();
        }
        return batch;
    }

    /** Stop admitting; wakes the consumer to drain and exit. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        wake_.notify_all();
    }

    /** Current number of waiting items. */
    size_t depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

  private:
    struct Timed
    {
        Clock::time_point enqueued;
        Item item;
    };

    const uint32_t maxBatch_;
    const std::chrono::microseconds flushDeadline_;
    const size_t maxDepth_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<Timed> queue_;
    bool closed_ = false;
};

} // namespace cegma

#endif // CEGMA_SERVE_BATCHER_HH
