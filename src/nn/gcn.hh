/**
 * @file
 * The standard GCN layer used by GraphSim and SimGNN (Table I),
 * with *deterministic class-ordered aggregation*.
 *
 * Aggregation sums neighbor features in ascending order of a per-node
 * ordering key (the WL signature of the current level). Floating-point
 * addition is commutative but not associative; fixing the summation
 * order to a function of the WL class guarantees that WL-equivalent
 * nodes — whose neighbor multisets contain bitwise-identical feature
 * rows in matching class order — produce bitwise-identical outputs.
 * That is the property the paper's EMF relies on ("duplicate node
 * features", Section III-C).
 */

#ifndef CEGMA_NN_GCN_HH
#define CEGMA_NN_GCN_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "nn/linear.hh"

namespace cegma {

/**
 * Aggregate node features over the graph: for each node, the mean of
 * its own feature row and its neighbors' rows, with neighbor rows
 * summed in ascending `order_keys` order.
 *
 * @param g the graph
 * @param x (numNodes x f) input features
 * @param order_keys per-node ordering keys (e.g.\ WL signatures);
 *        empty means aggregate in index order
 * @return (numNodes x f) aggregated features
 */
Matrix aggregateMean(const Graph &g, const Matrix &x,
                     const std::vector<uint64_t> &order_keys);

/** One GCN layer: combine(aggregate(A, X)) with ReLU. */
class GcnLayer
{
  public:
    /** Construct a (in_dim -> out_dim) layer with seeded weights. */
    GcnLayer(size_t in_dim, size_t out_dim, Rng &rng,
             Activation act = Activation::Relu);

    /**
     * Forward one graph's features.
     *
     * @param g graph
     * @param x (numNodes x in_dim) features
     * @param order_keys deterministic aggregation keys (see above)
     */
    Matrix forward(const Graph &g, const Matrix &x,
                   const std::vector<uint64_t> &order_keys) const;

    size_t inDim() const { return combine_.inDim(); }
    size_t outDim() const { return combine_.outDim(); }

    /** FLOPs of the aggregation phase for `g`. */
    uint64_t aggregateFlops(const Graph &g) const;

    /** FLOPs of the combination phase for `n` nodes. */
    uint64_t combineFlops(uint64_t n) const;

  private:
    Linear combine_;
};

} // namespace cegma

#endif // CEGMA_NN_GCN_HH
