#include "nn/linear.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

void
applyActivation(Matrix &m, Activation act)
{
    switch (act) {
      case Activation::None:
        break;
      case Activation::Relu:
        reluInPlace(m);
        break;
      case Activation::Sigmoid:
        sigmoidInPlace(m);
        break;
      case Activation::Tanh:
        tanhInPlace(m);
        break;
    }
}

Linear::Linear(size_t in_dim, size_t out_dim, Rng &rng, Activation act)
    : weight_(in_dim, out_dim), bias_(1, out_dim), act_(act)
{
    weight_.fillXavier(rng);
    bias_.fillXavier(rng);
}

Matrix
Linear::forward(const Matrix &x) const
{
    cegma_assert(x.cols() == weight_.rows());
    Matrix y = matmul(x, weight_);
    addBiasInPlace(y, bias_);
    applyActivation(y, act_);
    return y;
}

uint64_t
Linear::flops(uint64_t rows) const
{
    return rows * (2 * weight_.rows() * weight_.cols() + weight_.cols());
}

Mlp::Mlp(const std::vector<size_t> &dims, Rng &rng, Activation final_act)
{
    cegma_assert(dims.size() >= 2);
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        bool last = (i + 2 == dims.size());
        layers_.emplace_back(dims[i], dims[i + 1], rng,
                             last ? final_act : Activation::Relu);
    }
}

Matrix
Mlp::forward(const Matrix &x) const
{
    Matrix cur = layers_.front().forward(x);
    for (size_t i = 1; i < layers_.size(); ++i)
        cur = layers_[i].forward(cur);
    return cur;
}

uint64_t
Mlp::flops(uint64_t rows) const
{
    uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.flops(rows);
    return total;
}

} // namespace cegma
