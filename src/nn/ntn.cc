#include "nn/ntn.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

Ntn::Ntn(size_t in_dim, size_t slices, Rng &rng)
    : inDim_(in_dim), slices_(slices), v_(slices, 2 * in_dim),
      bias_(1, slices)
{
    tensors_.reserve(slices);
    for (size_t k = 0; k < slices; ++k) {
        tensors_.emplace_back(in_dim, in_dim);
        tensors_.back().fillXavier(rng);
    }
    v_.fillXavier(rng);
    bias_.fillXavier(rng);
}

Matrix
Ntn::forward(const Matrix &h1, const Matrix &h2) const
{
    cegma_assert(h1.rows() == 1 && h1.cols() == inDim_);
    cegma_assert(h2.rows() == 1 && h2.cols() == inDim_);

    Matrix out(1, slices_);
    for (size_t k = 0; k < slices_; ++k) {
        // h1 W_k h2^T
        const Matrix &w = tensors_[k];
        float bilinear = 0.0f;
        for (size_t i = 0; i < inDim_; ++i) {
            float hi = h1.at(0, i);
            if (hi == 0.0f)
                continue;
            bilinear += hi * dot(w.row(i), h2.row(0), inDim_);
        }
        // v_k [h1; h2]
        float lin = dot(v_.row(k), h1.row(0), inDim_) +
                    dot(v_.row(k) + inDim_, h2.row(0), inDim_);
        float s = bilinear + lin + bias_.at(0, k);
        out.at(0, k) = s > 0.0f ? s : 0.0f;
    }
    return out;
}

Matrix
Ntn::queryFactor(const Matrix &h2) const
{
    cegma_assert(h2.rows() == 1 && h2.cols() == inDim_);
    Matrix factor(slices_, inDim_ + 1);
    for (size_t k = 0; k < slices_; ++k) {
        const Matrix &w = tensors_[k];
        float *f = factor.row(k);
        for (size_t i = 0; i < inDim_; ++i)
            f[i] = dot(w.row(i), h2.row(0), inDim_) + v_.at(k, i);
        f[inDim_] = dot(v_.row(k) + inDim_, h2.row(0), inDim_) +
                    bias_.at(0, k);
    }
    return factor;
}

Matrix
Ntn::forwardFactored(const Matrix &h1, const Matrix &factor)
{
    size_t in = factor.cols() - 1;
    cegma_assert(h1.rows() == 1 && h1.cols() == in);
    Matrix out(1, factor.rows());
    for (size_t k = 0; k < factor.rows(); ++k) {
        const float *f = factor.row(k);
        float s = dot(h1.row(0), f, in) + f[in];
        out.at(0, k) = s > 0.0f ? s : 0.0f;
    }
    return out;
}

uint64_t
Ntn::flops() const
{
    return slices_ * (2ull * inDim_ * inDim_ + 4ull * inDim_);
}

} // namespace cegma
