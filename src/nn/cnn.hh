/**
 * @file
 * The small convolutional stack GraphSim applies to its similarity
 * matrices (Table I: CNN[1,16,32,64,128]).
 *
 * GraphSim resizes each layer's node-similarity matrix to a fixed grid
 * and runs it through a CNN whose global-pooled output feeds the final
 * MLP. We implement 3x3 same-padded convolutions with ReLU and 2x2 max
 * pooling between stages, then global average pooling.
 */

#ifndef CEGMA_NN_CNN_HH
#define CEGMA_NN_CNN_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace cegma {

class Rng;

/** A (channels, height, width) activation volume. */
struct Volume
{
    std::vector<Matrix> channels;

    size_t numChannels() const { return channels.size(); }
    size_t height() const
    {
        return channels.empty() ? 0 : channels[0].rows();
    }
    size_t width() const
    {
        return channels.empty() ? 0 : channels[0].cols();
    }
};

/** Bilinearly resize a matrix to (out_h x out_w). */
Matrix bilinearResize(const Matrix &src, size_t out_h, size_t out_w);

/** A 3x3 same-padded conv layer with ReLU. */
class Conv3x3
{
  public:
    Conv3x3(size_t in_channels, size_t out_channels, Rng &rng);

    /** Forward; output spatial size equals input spatial size. */
    Volume forward(const Volume &in) const;

    size_t inChannels() const { return inChannels_; }
    size_t outChannels() const { return outChannels_; }

    /** FLOPs for an (h x w) input. */
    uint64_t flops(size_t h, size_t w) const;

  private:
    size_t inChannels_;
    size_t outChannels_;
    // kernels_[oc][ic] is a 3x3 matrix.
    std::vector<std::vector<Matrix>> kernels_;
    std::vector<float> bias_;
};

/** 2x2 max pooling with stride 2. */
Volume maxPool2x2(const Volume &in);

/**
 * GraphSim's CNN branch: fixed-size resize, conv/pool stages per the
 * channel progression, and global average pooling to a feature vector.
 */
class CnnStack
{
  public:
    /**
     * @param channels channel progression, e.g.\ {1, 16, 32, 64, 128}
     * @param grid square input resize target (e.g.\ 16)
     */
    CnnStack(const std::vector<size_t> &channels, size_t grid, Rng &rng);

    /** Forward a raw similarity matrix; @return (1 x lastChannels). */
    Matrix forward(const Matrix &similarity) const;

    size_t outDim() const;

    /** FLOPs per similarity-matrix evaluation. */
    uint64_t flops() const;

  private:
    size_t grid_;
    std::vector<Conv3x3> convs_;
};

} // namespace cegma

#endif // CEGMA_NN_CNN_HH
