/**
 * @file
 * The Neural Tensor Network used by SimGNN's graph-level interaction
 * (Table I: NTN[128,16]).
 */

#ifndef CEGMA_NN_NTN_HH
#define CEGMA_NN_NTN_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace cegma {

class Rng;

/**
 * NTN over two graph embeddings h1, h2 (each 1 x in_dim):
 *   score_k = relu(h1 W_k h2^T + v_k [h1; h2]^T + b_k),  k in [0, slices)
 */
class Ntn
{
  public:
    Ntn(size_t in_dim, size_t slices, Rng &rng);

    /** @return (1 x slices) interaction scores. */
    Matrix forward(const Matrix &h1, const Matrix &h2) const;

    /**
     * Precompute the query-conditioned affine form: with h2 fixed,
     * slice k collapses to relu(h1 . f_k + c_k). Row k of the returned
     * (slices x in_dim + 1) matrix holds f_k = W_k h2^T + v_k[:in] in
     * the first in_dim entries and c_k = v_k[in:] . h2 + b_k last, so
     * scoring a candidate h1 against a fixed h2 costs one dot per
     * slice instead of the full bilinear form. Matches `forward` up to
     * float reassociation — a ranking surrogate, not a bit-exact
     * replay.
     */
    Matrix queryFactor(const Matrix &h2) const;

    /** Evaluate the factored form: (1 x slices), relu applied. */
    static Matrix forwardFactored(const Matrix &h1, const Matrix &factor);

    size_t inDim() const { return inDim_; }
    size_t slices() const { return slices_; }

    /** FLOPs per (h1, h2) evaluation. */
    uint64_t flops() const;

  private:
    size_t inDim_;
    size_t slices_;
    std::vector<Matrix> tensors_; ///< slices x (in x in)
    Matrix v_;                    ///< (slices x 2*in)
    Matrix bias_;                 ///< (1 x slices)
};

} // namespace cegma

#endif // CEGMA_NN_NTN_HH
