/**
 * @file
 * The Neural Tensor Network used by SimGNN's graph-level interaction
 * (Table I: NTN[128,16]).
 */

#ifndef CEGMA_NN_NTN_HH
#define CEGMA_NN_NTN_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace cegma {

class Rng;

/**
 * NTN over two graph embeddings h1, h2 (each 1 x in_dim):
 *   score_k = relu(h1 W_k h2^T + v_k [h1; h2]^T + b_k),  k in [0, slices)
 */
class Ntn
{
  public:
    Ntn(size_t in_dim, size_t slices, Rng &rng);

    /** @return (1 x slices) interaction scores. */
    Matrix forward(const Matrix &h1, const Matrix &h2) const;

    size_t inDim() const { return inDim_; }
    size_t slices() const { return slices_; }

    /** FLOPs per (h1, h2) evaluation. */
    uint64_t flops() const;

  private:
    size_t inDim_;
    size_t slices_;
    std::vector<Matrix> tensors_; ///< slices x (in x in)
    Matrix v_;                    ///< (slices x 2*in)
    Matrix bias_;                 ///< (1 x slices)
};

} // namespace cegma

#endif // CEGMA_NN_NTN_HH
