/**
 * @file
 * The MGNN layer of GMN-Li (Table I: MGNN[64,64,64] + MLP(64*3,64,64)).
 *
 * Per the paper's description of [24]: an edge MLP turns each directed
 * edge's endpoint features into an intra-graph message; messages are
 * aggregated per node (class-ordered, see gcn.hh); an update MLP then
 * combines [own feature, intra message, cross-graph matching message]
 * into the next layer's node feature.
 */

#ifndef CEGMA_NN_MGNN_HH
#define CEGMA_NN_MGNN_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"
#include "nn/linear.hh"

namespace cegma {

/** GMN-Li's message-passing layer with cross-graph input. */
class MgnnLayer
{
  public:
    /**
     * @param node_dim node feature width (64 in Table I)
     * @param hidden edge-message width (64 in Table I)
     * @param rng weight initializer
     */
    MgnnLayer(size_t node_dim, size_t hidden, Rng &rng);

    /**
     * Forward one graph side.
     *
     * @param g graph
     * @param x (numNodes x node_dim) features
     * @param cross (numNodes x node_dim) cross-graph matching messages
     * @param order_keys deterministic aggregation keys
     * @return (numNodes x node_dim) updated features
     */
    Matrix forward(const Graph &g, const Matrix &x, const Matrix &cross,
                   const std::vector<uint64_t> &order_keys) const;

    size_t nodeDim() const { return nodeDim_; }

    /** FLOPs of the edge-message phase (counts directed arcs). */
    uint64_t edgeFlops(const Graph &g) const;

    /** FLOPs of message aggregation. */
    uint64_t aggregateFlops(const Graph &g) const;

    /** FLOPs of the update MLP for n nodes. */
    uint64_t updateFlops(uint64_t n) const;

  private:
    size_t nodeDim_;
    size_t hidden_;
    Mlp edgeMlp_;   ///< [x_src, x_dst] -> message
    Mlp updateMlp_; ///< [x, intra, cross] -> next feature
};

} // namespace cegma

#endif // CEGMA_NN_MGNN_HH
