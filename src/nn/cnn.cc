#include "nn/cnn.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cegma {

Matrix
bilinearResize(const Matrix &src, size_t out_h, size_t out_w)
{
    cegma_assert(src.rows() > 0 && src.cols() > 0);
    Matrix out(out_h, out_w);
    const double sy = static_cast<double>(src.rows()) / out_h;
    const double sx = static_cast<double>(src.cols()) / out_w;
    for (size_t r = 0; r < out_h; ++r) {
        double fy = (r + 0.5) * sy - 0.5;
        fy = std::max(0.0, std::min(fy, src.rows() - 1.0));
        size_t y0 = static_cast<size_t>(fy);
        size_t y1 = std::min(y0 + 1, src.rows() - 1);
        double wy = fy - y0;
        for (size_t c = 0; c < out_w; ++c) {
            double fx = (c + 0.5) * sx - 0.5;
            fx = std::max(0.0, std::min(fx, src.cols() - 1.0));
            size_t x0 = static_cast<size_t>(fx);
            size_t x1 = std::min(x0 + 1, src.cols() - 1);
            double wx = fx - x0;
            double top = src.at(y0, x0) * (1 - wx) + src.at(y0, x1) * wx;
            double bot = src.at(y1, x0) * (1 - wx) + src.at(y1, x1) * wx;
            out.at(r, c) = static_cast<float>(top * (1 - wy) + bot * wy);
        }
    }
    return out;
}

Conv3x3::Conv3x3(size_t in_channels, size_t out_channels, Rng &rng)
    : inChannels_(in_channels), outChannels_(out_channels)
{
    kernels_.resize(out_channels);
    float limit = std::sqrt(6.0f / (9.0f * (in_channels + out_channels)));
    for (auto &per_in : kernels_) {
        per_in.reserve(in_channels);
        for (size_t ic = 0; ic < in_channels; ++ic) {
            Matrix k(3, 3);
            for (size_t i = 0; i < k.size(); ++i) {
                k.data()[i] = static_cast<float>(
                    (rng.nextDouble() * 2.0 - 1.0) * limit);
            }
            per_in.push_back(std::move(k));
        }
    }
    bias_.resize(out_channels);
    for (auto &b : bias_)
        b = static_cast<float>((rng.nextDouble() * 2.0 - 1.0) * limit);
}

Volume
Conv3x3::forward(const Volume &in) const
{
    cegma_assert(in.numChannels() == inChannels_);
    const size_t h = in.height();
    const size_t w = in.width();
    Volume out;
    out.channels.reserve(outChannels_);
    for (size_t oc = 0; oc < outChannels_; ++oc) {
        Matrix acc(h, w);
        acc.fill(bias_[oc]);
        for (size_t ic = 0; ic < inChannels_; ++ic) {
            const Matrix &src = in.channels[ic];
            const Matrix &k = kernels_[oc][ic];
            for (size_t r = 0; r < h; ++r) {
                for (size_t c = 0; c < w; ++c) {
                    float sum = 0.0f;
                    for (int dy = -1; dy <= 1; ++dy) {
                        long rr = static_cast<long>(r) + dy;
                        if (rr < 0 || rr >= static_cast<long>(h))
                            continue;
                        for (int dx = -1; dx <= 1; ++dx) {
                            long cc = static_cast<long>(c) + dx;
                            if (cc < 0 || cc >= static_cast<long>(w))
                                continue;
                            sum += k.at(dy + 1, dx + 1) * src.at(rr, cc);
                        }
                    }
                    acc.at(r, c) += sum;
                }
            }
        }
        reluInPlace(acc);
        out.channels.push_back(std::move(acc));
    }
    return out;
}

uint64_t
Conv3x3::flops(size_t h, size_t w) const
{
    return 2ull * h * w * 9ull * inChannels_ * outChannels_;
}

Volume
maxPool2x2(const Volume &in)
{
    Volume out;
    const size_t h = std::max<size_t>(1, in.height() / 2);
    const size_t w = std::max<size_t>(1, in.width() / 2);
    out.channels.reserve(in.numChannels());
    for (const Matrix &src : in.channels) {
        Matrix dst(h, w);
        for (size_t r = 0; r < h; ++r) {
            for (size_t c = 0; c < w; ++c) {
                float m = src.at(2 * r, 2 * c);
                if (2 * c + 1 < src.cols())
                    m = std::max(m, src.at(2 * r, 2 * c + 1));
                if (2 * r + 1 < src.rows()) {
                    m = std::max(m, src.at(2 * r + 1, 2 * c));
                    if (2 * c + 1 < src.cols())
                        m = std::max(m, src.at(2 * r + 1, 2 * c + 1));
                }
                dst.at(r, c) = m;
            }
        }
        out.channels.push_back(std::move(dst));
    }
    return out;
}

CnnStack::CnnStack(const std::vector<size_t> &channels, size_t grid,
                   Rng &rng)
    : grid_(grid)
{
    cegma_assert(channels.size() >= 2);
    for (size_t i = 0; i + 1 < channels.size(); ++i)
        convs_.emplace_back(channels[i], channels[i + 1], rng);
}

Matrix
CnnStack::forward(const Matrix &similarity) const
{
    Volume vol;
    vol.channels.push_back(bilinearResize(similarity, grid_, grid_));
    for (const Conv3x3 &conv : convs_) {
        vol = conv.forward(vol);
        vol = maxPool2x2(vol);
    }
    // Global average pooling.
    Matrix out(1, vol.numChannels());
    for (size_t c = 0; c < vol.numChannels(); ++c) {
        const Matrix &m = vol.channels[c];
        double sum = 0.0;
        for (size_t i = 0; i < m.size(); ++i)
            sum += m.data()[i];
        out.at(0, c) = static_cast<float>(sum / m.size());
    }
    return out;
}

size_t
CnnStack::outDim() const
{
    return convs_.back().outChannels();
}

uint64_t
CnnStack::flops() const
{
    uint64_t total = 0;
    size_t h = grid_, w = grid_;
    for (const Conv3x3 &conv : convs_) {
        total += conv.flops(h, w);
        h = std::max<size_t>(1, h / 2);
        w = std::max<size_t>(1, w / 2);
    }
    return total;
}

} // namespace cegma
