#include "nn/mgnn.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace cegma {

MgnnLayer::MgnnLayer(size_t node_dim, size_t hidden, Rng &rng)
    : nodeDim_(node_dim), hidden_(hidden),
      edgeMlp_({2 * node_dim, hidden, hidden}, rng, Activation::Relu),
      updateMlp_({node_dim + hidden + node_dim, node_dim, node_dim}, rng,
                 Activation::Tanh)
{
}

Matrix
MgnnLayer::forward(const Graph &g, const Matrix &x, const Matrix &cross,
                   const std::vector<uint64_t> &order_keys) const
{
    cegma_assert(x.rows() == g.numNodes() && x.cols() == nodeDim_);
    cegma_assert(cross.rows() == g.numNodes() &&
                 cross.cols() == nodeDim_);

    const NodeId n = g.numNodes();
    Matrix intra(n, hidden_);
    // Destination nodes own disjoint rows of `intra`, so the edge-MLP
    // messages parallelize over destinations; the per-destination
    // class-sorted accumulation order is unchanged (bit-determinism).
    // The inner MLP matmuls run serially inside the region (nested
    // parallelFor falls back to serial).
    size_t avg_deg = n > 0 ? g.numArcs() / n : 0;
    size_t edge_mlp_work = 2 * edgeMlp_.flops(1);
    size_t grain = grainForRows(n, (avg_deg + 1) * edge_mlp_work);
    parallelFor(0, n, grain, [&](size_t v0, size_t v1) {
        Matrix edge_in(1, 2 * nodeDim_);
        std::vector<NodeId> order;
        for (NodeId v = static_cast<NodeId>(v0); v < v1; ++v) {
            auto ns = g.neighbors(v);
            order.assign(ns.begin(), ns.end());
            if (!order_keys.empty()) {
                std::sort(order.begin(), order.end(),
                          [&](NodeId a, NodeId b) {
                              return order_keys[a] < order_keys[b];
                          });
            }
            float *dst = intra.row(v);
            for (NodeId u : order) {
                // Message on arc u -> v from [x_u, x_v].
                std::memcpy(edge_in.row(0), x.row(u),
                            nodeDim_ * sizeof(float));
                std::memcpy(edge_in.row(0) + nodeDim_, x.row(v),
                            nodeDim_ * sizeof(float));
                Matrix msg = edgeMlp_.forward(edge_in);
                for (size_t j = 0; j < hidden_; ++j)
                    dst[j] += msg.at(0, j);
            }
        }
    });

    Matrix concat = hconcat({&x, &intra, &cross});
    return updateMlp_.forward(concat);
}

uint64_t
MgnnLayer::edgeFlops(const Graph &g) const
{
    return edgeMlp_.flops(g.numArcs());
}

uint64_t
MgnnLayer::aggregateFlops(const Graph &g) const
{
    return g.numArcs() * hidden_;
}

uint64_t
MgnnLayer::updateFlops(uint64_t n) const
{
    return updateMlp_.flops(n);
}

} // namespace cegma
