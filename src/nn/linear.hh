/**
 * @file
 * Dense layers: Linear and MLP, with seeded Xavier initialization.
 */

#ifndef CEGMA_NN_LINEAR_HH
#define CEGMA_NN_LINEAR_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace cegma {

class Rng;

/** Activation applied after a dense layer. */
enum class Activation
{
    None,
    Relu,
    Sigmoid,
    Tanh,
};

/** Apply `act` to `m` in place. */
void applyActivation(Matrix &m, Activation act);

/** A dense layer: Y = act(X W + b). */
class Linear
{
  public:
    /** Construct with Xavier-initialized weights from `rng`. */
    Linear(size_t in_dim, size_t out_dim, Rng &rng,
           Activation act = Activation::None);

    /** Forward a (batch x in_dim) matrix. */
    Matrix forward(const Matrix &x) const;

    size_t inDim() const { return weight_.rows(); }
    size_t outDim() const { return weight_.cols(); }

    /** FLOPs to forward `rows` input rows (2 per MAC, plus bias). */
    uint64_t flops(uint64_t rows) const;

  private:
    Matrix weight_; ///< (in x out)
    Matrix bias_;   ///< (1 x out)
    Activation act_;
};

/**
 * A multi-layer perceptron over the given layer widths, ReLU between
 * hidden layers and a configurable final activation.
 *
 * E.g. Mlp({192, 64, 64}, rng) is the paper's MLP(64*3, 64, 64).
 */
class Mlp
{
  public:
    Mlp(const std::vector<size_t> &dims, Rng &rng,
        Activation final_act = Activation::None);

    /** Forward a (batch x dims.front()) matrix. */
    Matrix forward(const Matrix &x) const;

    size_t inDim() const { return layers_.front().inDim(); }
    size_t outDim() const { return layers_.back().outDim(); }

    /** FLOPs to forward `rows` input rows. */
    uint64_t flops(uint64_t rows) const;

  private:
    std::vector<Linear> layers_;
};

} // namespace cegma

#endif // CEGMA_NN_LINEAR_HH
