#include "nn/gcn.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace cegma {

Matrix
aggregateMean(const Graph &g, const Matrix &x,
              const std::vector<uint64_t> &order_keys)
{
    cegma_assert(x.rows() == g.numNodes());
    cegma_assert(order_keys.empty() || order_keys.size() == g.numNodes());
    const size_t f = x.cols();
    const NodeId n = g.numNodes();
    Matrix out(n, f);
    // Each node writes only its own output row, so the row-parallel
    // split is race-free and bit-deterministic; the class-sorted
    // neighbor order (the WL-oracle guarantee) is preserved per node.
    size_t avg_deg = n > 0 ? g.numArcs() / n : 0;
    size_t grain = grainForRows(n, (avg_deg + 2) * f);
    parallelFor(0, n, grain, [&](size_t v0, size_t v1) {
        std::vector<NodeId> order;
        for (NodeId v = static_cast<NodeId>(v0); v < v1; ++v) {
            auto ns = g.neighbors(v);
            order.assign(ns.begin(), ns.end());
            if (!order_keys.empty()) {
                std::sort(order.begin(), order.end(),
                          [&](NodeId a, NodeId b) {
                              return order_keys[a] < order_keys[b];
                          });
            }
            float *dst = out.row(v);
            const float *self = x.row(v);
            for (size_t j = 0; j < f; ++j)
                dst[j] = self[j];
            for (NodeId u : order) {
                const float *src = x.row(u);
                for (size_t j = 0; j < f; ++j)
                    dst[j] += src[j];
            }
            float inv = 1.0f / static_cast<float>(order.size() + 1);
            for (size_t j = 0; j < f; ++j)
                dst[j] *= inv;
        }
    });
    return out;
}

GcnLayer::GcnLayer(size_t in_dim, size_t out_dim, Rng &rng, Activation act)
    : combine_(in_dim, out_dim, rng, act)
{
}

Matrix
GcnLayer::forward(const Graph &g, const Matrix &x,
                  const std::vector<uint64_t> &order_keys) const
{
    Matrix agg = aggregateMean(g, x, order_keys);
    return combine_.forward(agg);
}

uint64_t
GcnLayer::aggregateFlops(const Graph &g) const
{
    // One add per arc per feature, plus the self row and the scaling.
    return (g.numArcs() + 2ull * g.numNodes()) * inDim();
}

uint64_t
GcnLayer::combineFlops(uint64_t n) const
{
    return combine_.flops(n);
}

} // namespace cegma
