/**
 * @file
 * Plain-text serialization for graphs, pairs, and datasets.
 *
 * The format is line-oriented and versioned so profiling runs (the
 * paper's trace-collection step, §V-A) can be captured once and
 * replayed into the simulator later, on any machine:
 *
 *   graph <num_nodes> <num_edges> <labeled:0|1>
 *   [labels: num_nodes integers on one line, if labeled]
 *   <u> <v>              (one line per undirected edge)
 *
 *   pair <similar:0|1>
 *   <target graph>
 *   <query graph>
 *
 *   dataset <name> <num_pairs>
 *   <pairs...>
 */

#ifndef CEGMA_IO_GRAPH_IO_HH
#define CEGMA_IO_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/dataset.hh"

namespace cegma {

/** Write one graph to `os`. */
void writeGraph(std::ostream &os, const Graph &g);

/**
 * Read one graph from `is`.
 * @throws calls fatal() on malformed input.
 */
Graph readGraph(std::istream &is);

/** Write a (target, query, label) pair. */
void writePair(std::ostream &os, const GraphPair &pair);

/** Read one pair. */
GraphPair readPair(std::istream &is);

/** Write a whole dataset (spec name + pairs). */
void writeDataset(std::ostream &os, const Dataset &dataset);

/**
 * Read a dataset written by writeDataset. The spec is looked up by
 * name against the built-in Table II entries; unknown names keep the
 * serialized name with zeroed statistics.
 */
Dataset readDataset(std::istream &is);

/** Convenience: save/load a dataset to/from a file path. */
void saveDataset(const std::string &path, const Dataset &dataset);
Dataset loadDataset(const std::string &path);

} // namespace cegma

#endif // CEGMA_IO_GRAPH_IO_HH
