/**
 * @file
 * Workload-trace serialization: capture the exact input the
 * cycle-level simulators consume (per-layer FLOPs, duplicate classes,
 * and the graph structure driving the window schedulers) and replay
 * it later — the paper's trace-driven methodology, where profiling
 * and simulation are separate steps (§V-A).
 */

#ifndef CEGMA_IO_TRACE_IO_HH
#define CEGMA_IO_TRACE_IO_HH

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "gmn/workload.hh"

namespace cegma {

/**
 * Owning container for deserialized traces. PairTrace holds a pointer
 * to its GraphPair; the bundle keeps the pairs in a std::deque so the
 * pointers stay valid as traces are appended.
 */
class TraceBundle
{
  public:
    TraceBundle() = default;
    TraceBundle(const TraceBundle &) = delete;
    TraceBundle &operator=(const TraceBundle &) = delete;
    // Moving a deque preserves element addresses, so the traces'
    // pair pointers stay valid.
    TraceBundle(TraceBundle &&) = default;
    TraceBundle &operator=(TraceBundle &&) = default;

    /** Append a trace, copying and re-owning its pair. */
    void add(const PairTrace &trace);

    const std::vector<PairTrace> &traces() const { return traces_; }
    size_t size() const { return traces_.size(); }

  private:
    std::deque<GraphPair> pairs_;
    std::vector<PairTrace> traces_;
};

/** Write one trace (with its embedded pair) to `os`. */
void writeTrace(std::ostream &os, const PairTrace &trace);

/** Append one trace read from `is` into `bundle`. */
void readTraceInto(std::istream &is, TraceBundle &bundle);

/** Write a sequence of traces preceded by a count header. */
void writeTraces(std::ostream &os, const std::vector<PairTrace> &traces);

/** Read a trace file written by writeTraces. */
TraceBundle readTraces(std::istream &is);

/** Convenience: save/load trace files by path. */
void saveTraces(const std::string &path,
                const std::vector<PairTrace> &traces);
TraceBundle loadTraces(const std::string &path);

} // namespace cegma

#endif // CEGMA_IO_TRACE_IO_HH
