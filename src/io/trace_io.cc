#include "io/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "io/graph_io.hh"

namespace cegma {

namespace {

void
expectKeyword(std::istream &is, const char *keyword)
{
    std::string word;
    if (!(is >> word) || word != keyword)
        fatal("trace_io: expected '%s', got '%s'", keyword, word.c_str());
}

const char *
modelName(ModelId id)
{
    return modelConfig(id).name.c_str();
}

ModelId
modelByName(const std::string &name)
{
    for (ModelId id : allModels()) {
        if (modelConfig(id).name == name)
            return id;
    }
    fatal("trace_io: unknown model '%s'", name.c_str());
}

void
writeClasses(std::ostream &os, const std::vector<uint32_t> &classes)
{
    os << classes.size();
    for (uint32_t cls : classes)
        os << " " << cls;
    os << "\n";
}

std::vector<uint32_t>
readClasses(std::istream &is)
{
    size_t count = 0;
    if (!(is >> count))
        fatal("trace_io: malformed class row");
    std::vector<uint32_t> classes(count);
    for (auto &cls : classes) {
        if (!(is >> cls))
            fatal("trace_io: truncated class row");
    }
    return classes;
}

} // namespace

void
TraceBundle::add(const PairTrace &trace)
{
    cegma_assert(trace.pair != nullptr);
    pairs_.push_back(*trace.pair);
    PairTrace copy = trace;
    copy.pair = &pairs_.back();
    traces_.push_back(std::move(copy));
}

void
writeTrace(std::ostream &os, const PairTrace &trace)
{
    cegma_assert(trace.pair != nullptr);
    os << "trace " << modelName(trace.model) << " " << trace.encodeFlops
       << " " << trace.postFlops << " " << trace.layers.size() << "\n";
    writePair(os, *trace.pair);
    for (const LayerWork &layer : trace.layers) {
        os << "layer " << layer.embedTarget.aggFlops << " "
           << layer.embedTarget.combFlops << " " << layer.embedTarget.fIn
           << " " << layer.embedTarget.fOut << " "
           << layer.embedQuery.aggFlops << " "
           << layer.embedQuery.combFlops << " " << layer.embedQuery.fIn
           << " " << layer.embedQuery.fOut << "\n";
        const MatchingWork &match = layer.matching;
        os << "matching " << (match.present ? 1 : 0);
        if (match.present) {
            os << " " << match.dim << " " << match.simFlops << " "
               << match.crossFlops << " " << match.numUniqueTarget << " "
               << match.numUniqueQuery << "\n";
            writeClasses(os, match.dupClassTarget);
            writeClasses(os, match.dupClassQuery);
        } else {
            os << "\n";
        }
    }
}

void
readTraceInto(std::istream &is, TraceBundle &bundle)
{
    expectKeyword(is, "trace");
    std::string model_name;
    size_t num_layers = 0;
    PairTrace trace;
    if (!(is >> model_name >> trace.encodeFlops >> trace.postFlops >>
          num_layers)) {
        fatal("trace_io: malformed trace header");
    }
    trace.model = modelByName(model_name);

    GraphPair pair = readPair(is);
    for (size_t l = 0; l < num_layers; ++l) {
        expectKeyword(is, "layer");
        LayerWork layer;
        if (!(is >> layer.embedTarget.aggFlops >>
              layer.embedTarget.combFlops >> layer.embedTarget.fIn >>
              layer.embedTarget.fOut >> layer.embedQuery.aggFlops >>
              layer.embedQuery.combFlops >> layer.embedQuery.fIn >>
              layer.embedQuery.fOut)) {
            fatal("trace_io: malformed layer row");
        }
        expectKeyword(is, "matching");
        int present = 0;
        if (!(is >> present))
            fatal("trace_io: malformed matching row");
        layer.matching.present = present != 0;
        if (layer.matching.present) {
            if (!(is >> layer.matching.dim >> layer.matching.simFlops >>
                  layer.matching.crossFlops >>
                  layer.matching.numUniqueTarget >>
                  layer.matching.numUniqueQuery)) {
                fatal("trace_io: malformed matching parameters");
            }
            layer.matching.dupClassTarget = readClasses(is);
            layer.matching.dupClassQuery = readClasses(is);
        }
        trace.layers.push_back(std::move(layer));
    }

    trace.pair = &pair; // re-pointed by bundle.add
    bundle.add(trace);
}

void
writeTraces(std::ostream &os, const std::vector<PairTrace> &traces)
{
    os << "traces " << traces.size() << "\n";
    for (const PairTrace &trace : traces)
        writeTrace(os, trace);
}

TraceBundle
readTraces(std::istream &is)
{
    expectKeyword(is, "traces");
    size_t count = 0;
    if (!(is >> count))
        fatal("trace_io: malformed traces header");
    TraceBundle bundle;
    for (size_t i = 0; i < count; ++i)
        readTraceInto(is, bundle);
    return bundle;
}

void
saveTraces(const std::string &path, const std::vector<PairTrace> &traces)
{
    std::ofstream os(path);
    if (!os)
        fatal("trace_io: cannot open '%s' for writing", path.c_str());
    writeTraces(os, traces);
}

TraceBundle
loadTraces(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("trace_io: cannot open '%s' for reading", path.c_str());
    return readTraces(is);
}

} // namespace cegma
