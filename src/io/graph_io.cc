#include "io/graph_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace cegma {

namespace {

/** Read a required leading keyword; fatal() on mismatch. */
void
expectKeyword(std::istream &is, const char *keyword)
{
    std::string word;
    if (!(is >> word) || word != keyword)
        fatal("graph_io: expected '%s', got '%s'", keyword, word.c_str());
}

} // namespace

void
writeGraph(std::ostream &os, const Graph &g)
{
    bool labeled = g.numDistinctLabels() > 1;
    os << "graph " << g.numNodes() << " " << g.numEdges() << " "
       << (labeled ? 1 : 0) << "\n";
    if (labeled) {
        for (NodeId v = 0; v < g.numNodes(); ++v)
            os << g.label(v) << (v + 1 < g.numNodes() ? ' ' : '\n');
    }
    for (const auto &[u, v] : g.edgeList())
        os << u << " " << v << "\n";
}

Graph
readGraph(std::istream &is)
{
    expectKeyword(is, "graph");
    uint64_t num_nodes = 0, num_edges = 0;
    int labeled = 0;
    if (!(is >> num_nodes >> num_edges >> labeled))
        fatal("graph_io: malformed graph header");
    if (num_nodes > UINT32_MAX)
        fatal("graph_io: node count overflows NodeId");

    std::vector<uint32_t> labels;
    if (labeled) {
        labels.resize(num_nodes);
        for (auto &label : labels) {
            if (!(is >> label))
                fatal("graph_io: truncated label row");
        }
    }
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    for (uint64_t e = 0; e < num_edges; ++e) {
        NodeId u, v;
        if (!(is >> u >> v))
            fatal("graph_io: truncated edge list");
        edges.push_back({u, v});
    }
    return Graph::fromEdges(static_cast<NodeId>(num_nodes), edges,
                            std::move(labels));
}

void
writePair(std::ostream &os, const GraphPair &pair)
{
    os << "pair " << (pair.similar ? 1 : 0) << "\n";
    writeGraph(os, pair.target);
    writeGraph(os, pair.query);
}

GraphPair
readPair(std::istream &is)
{
    expectKeyword(is, "pair");
    int similar = 0;
    if (!(is >> similar))
        fatal("graph_io: malformed pair header");
    GraphPair pair;
    pair.similar = similar != 0;
    pair.target = readGraph(is);
    pair.query = readGraph(is);
    return pair;
}

void
writeDataset(std::ostream &os, const Dataset &dataset)
{
    os << "dataset " << dataset.spec.name << " " << dataset.pairs.size()
       << "\n";
    for (const GraphPair &pair : dataset.pairs)
        writePair(os, pair);
}

Dataset
readDataset(std::istream &is)
{
    expectKeyword(is, "dataset");
    std::string name;
    uint64_t num_pairs = 0;
    if (!(is >> name >> num_pairs))
        fatal("graph_io: malformed dataset header");

    Dataset dataset;
    dataset.spec.name = name;
    for (DatasetId id : allDatasets()) {
        if (datasetSpec(id).name == name) {
            dataset.spec = datasetSpec(id);
            break;
        }
    }
    dataset.pairs.reserve(num_pairs);
    for (uint64_t i = 0; i < num_pairs; ++i)
        dataset.pairs.push_back(readPair(is));
    return dataset;
}

void
saveDataset(const std::string &path, const Dataset &dataset)
{
    std::ofstream os(path);
    if (!os)
        fatal("graph_io: cannot open '%s' for writing", path.c_str());
    writeDataset(os, dataset);
}

Dataset
loadDataset(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("graph_io: cannot open '%s' for reading", path.c_str());
    return readDataset(is);
}

} // namespace cegma
