/**
 * @file
 * Simulation result accounting shared by all platform models.
 */

#ifndef CEGMA_SIM_RESULT_HH
#define CEGMA_SIM_RESULT_HH

#include <cstdint>

#include "common/stats.hh"
#include "sim/energy.hh"

namespace cegma {

/** Aggregated outcome of simulating one or more graph pairs. */
struct SimResult
{
    /** Total cycles (or for analytical platforms, seconds * freq). */
    double cycles = 0.0;

    uint64_t dramReadBytes = 0;
    uint64_t dramWriteBytes = 0;
    uint64_t sramBytes = 0;
    uint64_t macOps = 0;

    /** Graph pairs covered by this result. */
    uint64_t pairsSimulated = 0;

    /** Free-form extra counters (EMF cycles, misses, steps, ...). */
    StatSet extra;

    uint64_t dramBytes() const { return dramReadBytes + dramWriteBytes; }

    /** Wall-clock seconds at `freq_hz`. */
    double seconds(double freq_hz) const { return cycles / freq_hz; }

    /** Average latency per pair in milliseconds at `freq_hz`. */
    double msPerPair(double freq_hz) const;

    /** Pairs per second at `freq_hz`. */
    double throughput(double freq_hz) const;

    /** Energy under `model` in nanojoules. */
    double energyNj(const EnergyModel &model) const;

    /** Accumulate another result into this one. */
    void merge(const SimResult &other);
};

} // namespace cegma

#endif // CEGMA_SIM_RESULT_HH
