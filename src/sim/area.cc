#include "sim/area.hh"

#include "common/units.hh"

namespace cegma {

namespace {

// Fractions of the "other" on-chip storage owned by each component,
// back-derived from the paper's Table III area distribution.
constexpr double emfBufferShareOfOther = 0.147; // Tag/Task/Map buffers
constexpr double cgcBufferShareOfOther = 0.260; // index + edge caches

// The CGC's fixed AOE logic complement (Table III).
constexpr uint32_t aoeCounters = 34;
constexpr uint32_t aoeComparators = 33;

} // namespace

AreaBreakdown
estimateArea(const AccelConfig &config, const AreaConstants &constants)
{
    AreaBreakdown area;

    // Processing engine: MAC array plus queues/FSMs.
    area.peLogic = config.denseMacs * constants.macMm2 +
                   constants.controlMm2;

    double other_kib =
        static_cast<double>(config.otherBufferBytes) / KiB;
    double input_kib =
        static_cast<double>(config.inputBufferBytes) / KiB;

    double emf_share = config.hasEmf ? emfBufferShareOfOther : 0.0;
    double cgc_share = config.hasCgc ? cgcBufferShareOfOther : 0.0;

    area.peBuffer = (input_kib + other_kib *
                     (1.0 - emf_share - cgc_share)) *
                    constants.sramMm2PerKiB;

    if (config.hasEmf) {
        area.emfLogic = config.emfComparators * constants.comparatorMm2;
        area.emfBuffer = other_kib * emf_share * constants.sramMm2PerKiB;
    }
    if (config.hasCgc) {
        // 8-bit magnitude comparators are ~1/4 of a 32-bit identity
        // comparator.
        area.cgcLogic = aoeCounters * constants.counterMm2 +
                        aoeComparators * constants.comparatorMm2 / 4.0;
        area.cgcBuffer = other_kib * cgc_share * constants.sramMm2PerKiB;
    }
    return area;
}

} // namespace cegma
