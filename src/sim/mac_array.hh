/**
 * @file
 * Cycle-cost helpers for the MAC array and aggregation lanes.
 */

#ifndef CEGMA_SIM_MAC_ARRAY_HH
#define CEGMA_SIM_MAC_ARRAY_HH

#include <cstdint>

#include "sim/config.hh"

namespace cegma {

/**
 * Cycles for `macs` multiply-accumulates of dense work (combination,
 * matching GEMM tiles) on `config`'s MAC array.
 */
double denseCycles(const AccelConfig &config, uint64_t macs);

/**
 * Cycles for `macs` multiply-accumulates of irregular aggregation on
 * `config`'s aggregation lanes.
 */
double aggCycles(const AccelConfig &config, uint64_t macs);

/**
 * Cycles for `macs` multiply-accumulates of all-to-all matching work
 * at `config`'s matching utilization.
 */
double matchCycles(const AccelConfig &config, uint64_t macs);

/** Cycles to move `bytes` over the off-chip interface in one step. */
double dramCycles(const AccelConfig &config, uint64_t bytes);

} // namespace cegma

#endif // CEGMA_SIM_MAC_ARRAY_HH
