/**
 * @file
 * Accelerator hardware configurations (paper Table III) for CEGMA and
 * the baseline GNN accelerators it is compared against.
 */

#ifndef CEGMA_SIM_CONFIG_HH
#define CEGMA_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace cegma {

/** Cycle-level accelerator configuration. */
struct AccelConfig
{
    std::string name;

    // -- Clocking --------------------------------------------------
    double freqHz = 1.0 * GHz;

    // -- Compute ---------------------------------------------------
    /** MACs available for dense work (combination / matching). */
    uint32_t denseMacs = 128 * 32;
    /** Lanes available for sparse aggregation. */
    uint32_t aggLanes = 128 * 32;
    /** Achieved utilization on dense GEMM-like work. */
    double denseUtil = 0.85;
    /** Achieved utilization on irregular aggregation. */
    double aggUtil = 0.25;
    /**
     * Achieved utilization on the all-to-all matching GEMM. CEGMA's
     * MAC array streams matching tiles natively; the baselines push
     * the dense comparison through sparse-oriented pipelines (HyGCN's
     * shared combiner congests, AWB-GCN's SpMM dataflow processes S
     * like an adjacency matrix — Sections V-A and VI).
     */
    double matchUtil = 0.85;
    /**
     * Whether compute and memory streams overlap (double buffering).
     * The CGC's stationary/active buffer alternation provides this;
     * without it "the PEs frequently wait for data to be loaded to
     * the buffer" (Section V-C) and the streams serialize.
     */
    bool overlapComputeMemory = false;

    // -- Memory ----------------------------------------------------
    /** Input (node feature) buffer capacity in bytes. */
    uint64_t inputBufferBytes = 128 * KiB;
    /** Other on-chip storage (weights, outputs, metadata). */
    uint64_t otherBufferBytes = 24 * MiB;
    /** Off-chip bandwidth in bytes per cycle (256 GB/s @ 1 GHz). */
    double dramBytesPerCycle = 256.0;
    /** Fixed cycles charged per window-step's memory transaction. */
    double dramStepOverheadCycles = 4.0;

    // -- CEGMA features ---------------------------------------------
    bool hasEmf = false;
    bool hasCgc = false;
    /** Parallel 32-bit identity comparators in the duplicate filter. */
    uint32_t emfComparators = 1024;
    /** Lanes hashing node features concurrently. */
    uint32_t emfHashLanes = 32;

    /** Nodes of width `feature_dim` floats fitting the input buffer. */
    uint32_t inputBufferNodes(uint32_t feature_dim) const;
};

/** HyGCN [42]: hybrid SIMD aggregation + 32x128 systolic combiner. */
AccelConfig hygcnConfig();

/** AWB-GCN [13]: 4096 homogeneous PEs with workload rebalancing. */
AccelConfig awbGcnConfig();

/** CEGMA (full: EMF + CGC), Table III bottom half. */
AccelConfig cegmaConfig();

/** CEGMA with only the Elastic Matching Filter enabled. */
AccelConfig cegmaEmfOnlyConfig();

/** CEGMA with only the Cross Graph Coordinator enabled. */
AccelConfig cegmaCgcOnlyConfig();

} // namespace cegma

#endif // CEGMA_SIM_CONFIG_HH
