/**
 * @file
 * Area model for the CEGMA chip (Table III bottom rows: 6.3 mm^2 at
 * TSMC 14 nm, with EMF at 0.18% logic + 6.66% buffer, CGC at 0.01% +
 * 11.79%, and the PE at 53.58% logic + 27.78% buffer).
 *
 * Component areas derive from per-unit constants (14 nm-class):
 * fp32 MAC, SRAM mm^2/KB (CACTI-style), comparators and counters.
 * The constants are calibrated so the full CEGMA configuration lands
 * on the paper's total and distribution; the model then extrapolates
 * to modified configurations (wider arrays, bigger buffers).
 */

#ifndef CEGMA_SIM_AREA_HH
#define CEGMA_SIM_AREA_HH

#include "sim/config.hh"

namespace cegma {

/** Per-unit area constants in mm^2 (14 nm-class). */
struct AreaConstants
{
    double macMm2 = 8.0e-4;          ///< one fp32 MAC incl. local regs
    double sramMm2PerKiB = 4.1e-4;   ///< dense SRAM macro
    double comparatorMm2 = 1.1e-5;   ///< 32-bit identity comparator
    double counterMm2 = 1.5e-5;      ///< 8-input parallel counter
    double controlMm2 = 0.098;       ///< FSMs, queues, misc control
};

/** Component-level area breakdown. */
struct AreaBreakdown
{
    double peLogic = 0.0;   ///< MAC array
    double peBuffer = 0.0;  ///< input/weight/output SRAM
    double emfLogic = 0.0;  ///< duplicate comparators + FSM
    double emfBuffer = 0.0; ///< Task/Tag/Map buffers
    double cgcLogic = 0.0;  ///< AOE counters/comparators
    double cgcBuffer = 0.0; ///< index caches / edge buffer share

    double total() const
    {
        return peLogic + peBuffer + emfLogic + emfBuffer + cgcLogic +
               cgcBuffer;
    }

    double peLogicShare() const { return peLogic / total(); }
    double peBufferShare() const { return peBuffer / total(); }
    double emfLogicShare() const { return emfLogic / total(); }
    double emfBufferShare() const { return emfBuffer / total(); }
    double cgcLogicShare() const { return cgcLogic / total(); }
    double cgcBufferShare() const { return cgcBuffer / total(); }
};

/**
 * Estimate the die area of `config`.
 *
 * The "other" on-chip storage is apportioned between the PE (weights,
 * outputs, partials), the EMF metadata buffers, and the CGC's index
 * and edge caches following the paper's Table III distribution.
 */
AreaBreakdown estimateArea(const AccelConfig &config,
                           const AreaConstants &constants = {});

} // namespace cegma

#endif // CEGMA_SIM_AREA_HH
