#include "sim/mac_array.hh"

namespace cegma {

double
denseCycles(const AccelConfig &config, uint64_t macs)
{
    double effective = config.denseMacs * config.denseUtil;
    return static_cast<double>(macs) / effective;
}

double
aggCycles(const AccelConfig &config, uint64_t macs)
{
    double effective = config.aggLanes * config.aggUtil;
    return static_cast<double>(macs) / effective;
}

double
matchCycles(const AccelConfig &config, uint64_t macs)
{
    double effective = config.denseMacs * config.matchUtil;
    return static_cast<double>(macs) / effective;
}

double
dramCycles(const AccelConfig &config, uint64_t bytes)
{
    if (bytes == 0)
        return 0.0;
    return static_cast<double>(bytes) / config.dramBytesPerCycle +
           config.dramStepOverheadCycles;
}

} // namespace cegma
