/**
 * @file
 * The energy model used for the paper's normalized energy comparison
 * (Figure 19). Constants are 14 nm-class estimates in the spirit of
 * the paper's CACTI + RTL-synthesis methodology; only *relative*
 * energy between platforms is claimed.
 */

#ifndef CEGMA_SIM_ENERGY_HH
#define CEGMA_SIM_ENERGY_HH

#include <cstdint>

namespace cegma {

/** Per-event energy coefficients (picojoules). */
struct EnergyModel
{
    /** HBM access energy per byte (~7 pJ/bit incl.\ PHY). */
    double dramPjPerByte = 56.0;
    /** On-chip SRAM access energy per byte (128 KB-class array). */
    double sramPjPerByte = 1.2;
    /** One fp32 MAC (two FLOPs) at 14 nm. */
    double macPj = 1.0;
    /** Static/leakage + clock energy per cycle for the whole chip. */
    double leakagePjPerCycle = 60.0;

    /**
     * Total energy in nanojoules.
     *
     * @param dram_bytes off-chip traffic (read + write)
     * @param sram_bytes on-chip buffer traffic
     * @param mac_ops multiply-accumulates executed
     * @param cycles elapsed cycles
     */
    double totalNj(uint64_t dram_bytes, uint64_t sram_bytes,
                   uint64_t mac_ops, double cycles) const;
};

} // namespace cegma

#endif // CEGMA_SIM_ENERGY_HH
