#include "sim/result.hh"

namespace cegma {

double
SimResult::msPerPair(double freq_hz) const
{
    if (pairsSimulated == 0)
        return 0.0;
    return seconds(freq_hz) * 1e3 / static_cast<double>(pairsSimulated);
}

double
SimResult::throughput(double freq_hz) const
{
    double secs = seconds(freq_hz);
    if (secs <= 0.0)
        return 0.0;
    return static_cast<double>(pairsSimulated) / secs;
}

double
SimResult::energyNj(const EnergyModel &model) const
{
    return model.totalNj(dramBytes(), sramBytes, macOps, cycles);
}

void
SimResult::merge(const SimResult &other)
{
    cycles += other.cycles;
    dramReadBytes += other.dramReadBytes;
    dramWriteBytes += other.dramWriteBytes;
    sramBytes += other.sramBytes;
    macOps += other.macOps;
    pairsSimulated += other.pairsSimulated;
    extra.merge(other.extra);
}

} // namespace cegma
