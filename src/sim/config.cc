#include "sim/config.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cegma {

uint32_t
AccelConfig::inputBufferNodes(uint32_t feature_dim) const
{
    cegma_assert(feature_dim > 0);
    uint64_t per_node = static_cast<uint64_t>(feature_dim) *
                        bytesPerFeature;
    return static_cast<uint32_t>(
        std::max<uint64_t>(2, inputBufferBytes / per_node));
}

AccelConfig
hygcnConfig()
{
    AccelConfig config;
    config.name = "HyGCN";
    // 32 SIMD16 cores feed aggregation; a 32x128 systolic array serves
    // combination *and* (when retargeted to GMNs) the matching GEMMs.
    // The shared combiner congests under dense matching (Section VI),
    // modeled as a lower dense utilization.
    config.denseMacs = 32 * 128;
    config.aggLanes = 32 * 16;
    config.denseUtil = 0.70;
    config.aggUtil = 0.45;
    config.matchUtil = 0.05;
    config.overlapComputeMemory = false;
    config.hasEmf = false;
    config.hasCgc = false;
    return config;
}

AccelConfig
awbGcnConfig()
{
    AccelConfig config;
    config.name = "AWB-GCN";
    // 4096 homogeneous PEs; runtime rebalancing keeps utilization high
    // on both sparse and dense work.
    config.denseMacs = 4096;
    config.aggLanes = 4096;
    config.denseUtil = 0.80;
    config.aggUtil = 0.60;
    config.matchUtil = 0.065;
    config.overlapComputeMemory = false;
    config.hasEmf = false;
    config.hasCgc = false;
    return config;
}

AccelConfig
cegmaConfig()
{
    AccelConfig config;
    config.name = "CEGMA";
    // Table III: 128x32 MAC array, 128 KB T+Q input buffer, 6.8 MB
    // other SRAM, HBM 1.0 @ 256 GB/s, 1 GHz.
    config.denseMacs = 128 * 32;
    config.aggLanes = 128 * 32;
    config.denseUtil = 0.85;
    config.aggUtil = 0.60;
    config.matchUtil = 0.85;
    config.overlapComputeMemory = true;
    config.otherBufferBytes = static_cast<uint64_t>(6.8 * MiB);
    config.hasEmf = true;
    config.hasCgc = true;
    return config;
}

AccelConfig
cegmaEmfOnlyConfig()
{
    AccelConfig config = cegmaConfig();
    config.name = "CEGMA-EMF";
    config.hasCgc = false;
    return config;
}

AccelConfig
cegmaCgcOnlyConfig()
{
    AccelConfig config = cegmaConfig();
    config.name = "CEGMA-CGC";
    config.hasEmf = false;
    return config;
}

} // namespace cegma
