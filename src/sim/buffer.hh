/**
 * @file
 * A replacement-policy buffer simulator over node access traces.
 *
 * This is the independent cross-check for the window schedulers: a
 * scheduler's access trace replayed through an LRU buffer of the same
 * capacity must produce a comparable miss count to the loads the
 * scheduler charged itself — the schedulers manage residency
 * explicitly, so they should never do much worse than LRU on their own
 * traces. Also used for buffer-capacity studies.
 */

#ifndef CEGMA_SIM_BUFFER_HH
#define CEGMA_SIM_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cegma {

/** Replacement policy for NodeBuffer. */
enum class ReplacementPolicy
{
    Lru,
    Fifo,
};

/** Outcome of replaying a trace through a buffer. */
struct BufferReplay
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t coldMisses = 0; ///< first touch of a node

    uint64_t hits() const { return accesses - misses; }

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * A node-granular buffer with a fixed capacity and a replacement
 * policy, driven one access at a time.
 */
class NodeBuffer
{
  public:
    /**
     * @param capacity_nodes resident node slots (>= 1)
     * @param policy eviction policy
     */
    explicit NodeBuffer(uint32_t capacity_nodes,
                        ReplacementPolicy policy = ReplacementPolicy::Lru);

    /**
     * Access node `id`.
     * @return true on hit, false on miss (the node is then fetched).
     */
    bool access(uint32_t id);

    /** @return whether `id` is currently resident. */
    bool resident(uint32_t id) const;

    /** @return nodes currently resident. */
    size_t occupancy() const { return entries_.size(); }

    uint32_t capacity() const { return capacity_; }

  private:
    uint32_t capacity_;
    ReplacementPolicy policy_;
    /** Resident node ids ordered by recency (front = next victim). */
    std::vector<uint32_t> entries_;
};

/** Replay a whole trace; convenience over NodeBuffer::access. */
BufferReplay replayTrace(const std::vector<uint32_t> &trace,
                         uint32_t capacity_nodes,
                         ReplacementPolicy policy =
                             ReplacementPolicy::Lru);

} // namespace cegma

#endif // CEGMA_SIM_BUFFER_HH
