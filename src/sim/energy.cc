#include "sim/energy.hh"

namespace cegma {

double
EnergyModel::totalNj(uint64_t dram_bytes, uint64_t sram_bytes,
                     uint64_t mac_ops, double cycles) const
{
    double pj = static_cast<double>(dram_bytes) * dramPjPerByte +
                static_cast<double>(sram_bytes) * sramPjPerByte +
                static_cast<double>(mac_ops) * macPj +
                cycles * leakagePjPerCycle;
    return pj * 1e-3;
}

} // namespace cegma
