#include "sim/buffer.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"

namespace cegma {

NodeBuffer::NodeBuffer(uint32_t capacity_nodes, ReplacementPolicy policy)
    : capacity_(capacity_nodes), policy_(policy)
{
    cegma_assert(capacity_nodes >= 1);
    entries_.reserve(capacity_nodes);
}

bool
NodeBuffer::access(uint32_t id)
{
    auto it = std::find(entries_.begin(), entries_.end(), id);
    if (it != entries_.end()) {
        if (policy_ == ReplacementPolicy::Lru) {
            // Move to the most-recently-used end.
            entries_.erase(it);
            entries_.push_back(id);
        }
        return true;
    }
    if (entries_.size() == capacity_)
        entries_.erase(entries_.begin());
    entries_.push_back(id);
    return false;
}

bool
NodeBuffer::resident(uint32_t id) const
{
    return std::find(entries_.begin(), entries_.end(), id) !=
           entries_.end();
}

BufferReplay
replayTrace(const std::vector<uint32_t> &trace, uint32_t capacity_nodes,
            ReplacementPolicy policy)
{
    NodeBuffer buffer(capacity_nodes, policy);
    BufferReplay replay;
    std::unordered_set<uint32_t> seen;
    seen.reserve(trace.size() / 4 + 16);
    for (uint32_t id : trace) {
        ++replay.accesses;
        if (!buffer.access(id)) {
            ++replay.misses;
            if (seen.insert(id).second)
                ++replay.coldMisses;
        } else {
            seen.insert(id);
        }
    }
    return replay;
}

} // namespace cegma
