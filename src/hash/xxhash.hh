/**
 * @file
 * From-scratch implementation of the XXH32 non-cryptographic hash.
 *
 * CEGMA's Elastic Matching Filter tags each node's feature vector with a
 * 32-bit XXHash value (Section IV-B of the paper). The hardware pipelines
 * the same per-stripe recurrence
 *   s_k = rotl(s_k + lane * PRIME2, 13) * PRIME1
 * on the MAC array; this software model is bit-compatible with the
 * reference xxHash library so its collision behaviour matches the
 * paper's quoted rates.
 */

#ifndef CEGMA_HASH_XXHASH_HH
#define CEGMA_HASH_XXHASH_HH

#include <cstddef>
#include <cstdint>

namespace cegma {

/** One-shot XXH32 of `len` bytes with the given seed. */
uint32_t xxhash32(const void *data, size_t len, uint32_t seed = 0);

/**
 * XXH32 of `num_rows` equal-length rows: `out[r]` is the digest of the
 * `row_bytes` bytes at `data + r * stride_bytes`. Bit-identical to
 * calling `xxhash32` per row; under AVX2 dispatch (common/simd.hh)
 * eight rows are hashed lane-parallel per pass — per-row digests are
 * independent integer recurrences, so the batch needs no scalar
 * restructuring to stay exact.
 */
void xxhash32Rows(const void *data, size_t row_bytes,
                  size_t stride_bytes, size_t num_rows, uint32_t seed,
                  uint32_t *out);

#ifdef CEGMA_HAVE_AVX2
/**
 * AVX2 8-row batch kernel (xxhash_avx2.cc): hashes the largest
 * multiple-of-8 prefix of the rows, @return rows covered. Internal —
 * go through `xxhash32Rows`, which handles dispatch and remainders.
 * Requires `row_bytes >= 16`.
 */
size_t xxhash32RowsAvx2(const uint8_t *base, size_t row_bytes,
                        size_t stride_bytes, size_t num_rows,
                        uint32_t seed, uint32_t *out);
#endif

/**
 * Streaming XXH32 state, byte-order independent of call granularity:
 * feeding the same bytes in any chunking yields the same digest.
 */
class XxHash32Stream
{
  public:
    /** Start a stream with the given seed. */
    explicit XxHash32Stream(uint32_t seed = 0);

    /** Reset to the initial state (same seed). */
    void reset();

    /** Absorb `len` bytes. */
    void update(const void *data, size_t len);

    /** @return the digest of everything absorbed so far. */
    uint32_t digest() const;

  private:
    uint32_t seed_;
    uint32_t acc_[4];
    uint8_t buffer_[16];
    size_t bufferLen_;
    uint64_t totalLen_;
};

/**
 * Hash a float feature vector to a 32-bit tag, as the EMF does.
 *
 * Hashing the raw IEEE-754 bit patterns means two nodes map to the same
 * tag exactly when their feature vectors are bitwise identical — the
 * paper's duplicate-node criterion.
 */
uint32_t hashFeatureVector(const float *values, size_t count,
                           uint32_t seed = 0);

} // namespace cegma

#endif // CEGMA_HASH_XXHASH_HH
