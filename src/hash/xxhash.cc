#include "hash/xxhash.hh"

#include <cstring>

#include "common/simd.hh"
#include "hash/xxhash_impl.hh"

namespace cegma {

using namespace xxdetail;

uint32_t
xxhash32(const void *data, size_t len, uint32_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    const size_t total = len;
    uint32_t h;

    if (len >= 16) {
        uint32_t acc1 = seed + PRIME1 + PRIME2;
        uint32_t acc2 = seed + PRIME2;
        uint32_t acc3 = seed;
        uint32_t acc4 = seed - PRIME1;
        while (len >= 16) {
            acc1 = round(acc1, read32(p));
            acc2 = round(acc2, read32(p + 4));
            acc3 = round(acc3, read32(p + 8));
            acc4 = round(acc4, read32(p + 12));
            p += 16;
            len -= 16;
        }
        h = rotl32(acc1, 1) + rotl32(acc2, 7) +
            rotl32(acc3, 12) + rotl32(acc4, 18);
    } else {
        h = seed + PRIME5;
    }

    h += static_cast<uint32_t>(total);
    return finalize(h, p, len);
}

void
xxhash32Rows(const void *data, size_t row_bytes, size_t stride_bytes,
             size_t num_rows, uint32_t seed, uint32_t *out)
{
    const uint8_t *base = static_cast<const uint8_t *>(data);
    size_t done = 0;
#ifdef CEGMA_HAVE_AVX2
    // Eight rows per pass; the function hashes the largest multiple of
    // eight and reports how many rows it covered. Rows shorter than a
    // stripe have no vectorizable main loop.
    if (simdLevel() == SimdLevel::Avx2 && row_bytes >= 16) {
        done = xxhash32RowsAvx2(base, row_bytes, stride_bytes, num_rows,
                                seed, out);
    }
#endif
    for (size_t r = done; r < num_rows; ++r)
        out[r] = xxhash32(base + r * stride_bytes, row_bytes, seed);
}

XxHash32Stream::XxHash32Stream(uint32_t seed)
    : seed_(seed)
{
    reset();
}

void
XxHash32Stream::reset()
{
    acc_[0] = seed_ + PRIME1 + PRIME2;
    acc_[1] = seed_ + PRIME2;
    acc_[2] = seed_;
    acc_[3] = seed_ - PRIME1;
    bufferLen_ = 0;
    totalLen_ = 0;
}

void
XxHash32Stream::update(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    totalLen_ += len;

    // Top up a partially filled stripe buffer first.
    if (bufferLen_ > 0) {
        size_t need = 16 - bufferLen_;
        size_t take = len < need ? len : need;
        std::memcpy(buffer_ + bufferLen_, p, take);
        bufferLen_ += take;
        p += take;
        len -= take;
        if (bufferLen_ < 16)
            return;
        acc_[0] = round(acc_[0], read32(buffer_));
        acc_[1] = round(acc_[1], read32(buffer_ + 4));
        acc_[2] = round(acc_[2], read32(buffer_ + 8));
        acc_[3] = round(acc_[3], read32(buffer_ + 12));
        bufferLen_ = 0;
    }

    while (len >= 16) {
        acc_[0] = round(acc_[0], read32(p));
        acc_[1] = round(acc_[1], read32(p + 4));
        acc_[2] = round(acc_[2], read32(p + 8));
        acc_[3] = round(acc_[3], read32(p + 12));
        p += 16;
        len -= 16;
    }

    if (len > 0) {
        std::memcpy(buffer_, p, len);
        bufferLen_ = len;
    }
}

uint32_t
XxHash32Stream::digest() const
{
    uint32_t h;
    if (totalLen_ >= 16) {
        h = rotl32(acc_[0], 1) + rotl32(acc_[1], 7) +
            rotl32(acc_[2], 12) + rotl32(acc_[3], 18);
    } else {
        h = seed_ + PRIME5;
    }
    h += static_cast<uint32_t>(totalLen_);
    return finalize(h, buffer_, bufferLen_);
}

uint32_t
hashFeatureVector(const float *values, size_t count, uint32_t seed)
{
    return xxhash32(values, count * sizeof(float), seed);
}

} // namespace cegma
