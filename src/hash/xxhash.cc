#include "hash/xxhash.hh"

#include <cstring>

namespace cegma {

namespace {

constexpr uint32_t PRIME1 = 0x9E3779B1u;
constexpr uint32_t PRIME2 = 0x85EBCA77u;
constexpr uint32_t PRIME3 = 0xC2B2AE3Du;
constexpr uint32_t PRIME4 = 0x27D4EB2Fu;
constexpr uint32_t PRIME5 = 0x165667B1u;

uint32_t
rotl32(uint32_t x, int r)
{
    return (x << r) | (x >> (32 - r));
}

uint32_t
read32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v; // little-endian hosts assumed (x86/ARM little-endian)
}

/** Consume one 4-byte lane into a stripe accumulator. */
uint32_t
round(uint32_t acc, uint32_t lane)
{
    acc += lane * PRIME2;
    acc = rotl32(acc, 13);
    acc *= PRIME1;
    return acc;
}

/** Final mixing (avalanche) of the pre-digest. */
uint32_t
avalanche(uint32_t h)
{
    h ^= h >> 15;
    h *= PRIME2;
    h ^= h >> 13;
    h *= PRIME3;
    h ^= h >> 16;
    return h;
}

/** Fold trailing (<16) bytes and avalanche. */
uint32_t
finalize(uint32_t h, const uint8_t *p, size_t len)
{
    while (len >= 4) {
        h += read32(p) * PRIME3;
        h = rotl32(h, 17) * PRIME4;
        p += 4;
        len -= 4;
    }
    while (len > 0) {
        h += (*p) * PRIME5;
        h = rotl32(h, 11) * PRIME1;
        ++p;
        --len;
    }
    return avalanche(h);
}

} // namespace

uint32_t
xxhash32(const void *data, size_t len, uint32_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    const size_t total = len;
    uint32_t h;

    if (len >= 16) {
        uint32_t acc1 = seed + PRIME1 + PRIME2;
        uint32_t acc2 = seed + PRIME2;
        uint32_t acc3 = seed;
        uint32_t acc4 = seed - PRIME1;
        while (len >= 16) {
            acc1 = round(acc1, read32(p));
            acc2 = round(acc2, read32(p + 4));
            acc3 = round(acc3, read32(p + 8));
            acc4 = round(acc4, read32(p + 12));
            p += 16;
            len -= 16;
        }
        h = rotl32(acc1, 1) + rotl32(acc2, 7) +
            rotl32(acc3, 12) + rotl32(acc4, 18);
    } else {
        h = seed + PRIME5;
    }

    h += static_cast<uint32_t>(total);
    return finalize(h, p, len);
}

XxHash32Stream::XxHash32Stream(uint32_t seed)
    : seed_(seed)
{
    reset();
}

void
XxHash32Stream::reset()
{
    acc_[0] = seed_ + PRIME1 + PRIME2;
    acc_[1] = seed_ + PRIME2;
    acc_[2] = seed_;
    acc_[3] = seed_ - PRIME1;
    bufferLen_ = 0;
    totalLen_ = 0;
}

void
XxHash32Stream::update(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    totalLen_ += len;

    // Top up a partially filled stripe buffer first.
    if (bufferLen_ > 0) {
        size_t need = 16 - bufferLen_;
        size_t take = len < need ? len : need;
        std::memcpy(buffer_ + bufferLen_, p, take);
        bufferLen_ += take;
        p += take;
        len -= take;
        if (bufferLen_ < 16)
            return;
        acc_[0] = round(acc_[0], read32(buffer_));
        acc_[1] = round(acc_[1], read32(buffer_ + 4));
        acc_[2] = round(acc_[2], read32(buffer_ + 8));
        acc_[3] = round(acc_[3], read32(buffer_ + 12));
        bufferLen_ = 0;
    }

    while (len >= 16) {
        acc_[0] = round(acc_[0], read32(p));
        acc_[1] = round(acc_[1], read32(p + 4));
        acc_[2] = round(acc_[2], read32(p + 8));
        acc_[3] = round(acc_[3], read32(p + 12));
        p += 16;
        len -= 16;
    }

    if (len > 0) {
        std::memcpy(buffer_, p, len);
        bufferLen_ = len;
    }
}

uint32_t
XxHash32Stream::digest() const
{
    uint32_t h;
    if (totalLen_ >= 16) {
        h = rotl32(acc_[0], 1) + rotl32(acc_[1], 7) +
            rotl32(acc_[2], 12) + rotl32(acc_[3], 18);
    } else {
        h = seed_ + PRIME5;
    }
    h += static_cast<uint32_t>(totalLen_);
    return finalize(h, buffer_, bufferLen_);
}

uint32_t
hashFeatureVector(const float *values, size_t count, uint32_t seed)
{
    return xxhash32(values, count * sizeof(float), seed);
}

} // namespace cegma
