/**
 * @file
 * AVX2 batch XXH32: eight rows hashed lane-parallel.
 *
 * Each of the eight lanes runs the *same* serial XXH32 recurrence the
 * scalar code runs for one row — integer adds, 32-bit multiplies and
 * rotates are exact, so the batch is bit-identical to eight scalar
 * calls by construction (hash_test and simd_test assert it anyway).
 *
 * Per 16-byte stripe the kernel loads one 128-bit word per row and
 * runs an 8x4 32-bit transpose (unpack network) so that stripe word k
 * of all eight rows lands in one vector — cheaper and more portable
 * across microarchitectures than four gather instructions.
 *
 * Row tails (`row_bytes % 16`) and the final avalanche run scalar per
 * lane through the shared helpers in xxhash_impl.hh, exactly like the
 * one-shot path.
 */

#include "hash/xxhash.hh"

#ifdef CEGMA_HAVE_AVX2

#include <immintrin.h>

#include "hash/xxhash_impl.hh"

namespace cegma {

namespace {

using namespace xxdetail;

inline __m256i
rotl32v(__m256i x, int r)
{
    return _mm256_or_si256(_mm256_slli_epi32(x, r),
                           _mm256_srli_epi32(x, 32 - r));
}

/** The XXH32 stripe round, eight lanes wide. */
inline __m256i
roundv(__m256i acc, __m256i lane, __m256i p1, __m256i p2)
{
    acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(lane, p2));
    acc = rotl32v(acc, 13);
    return _mm256_mullo_epi32(acc, p1);
}

} // namespace

size_t
xxhash32RowsAvx2(const uint8_t *base, size_t row_bytes,
                 size_t stride_bytes, size_t num_rows, uint32_t seed,
                 uint32_t *out)
{
    const size_t stripes = row_bytes / 16;
    const size_t tail = row_bytes % 16;
    const __m256i p1 = _mm256_set1_epi32(static_cast<int>(PRIME1));
    const __m256i p2 = _mm256_set1_epi32(static_cast<int>(PRIME2));

    size_t r = 0;
    for (; r + 8 <= num_rows; r += 8) {
        const uint8_t *rows[8];
        for (size_t g = 0; g < 8; ++g)
            rows[g] = base + (r + g) * stride_bytes;

        __m256i acc1 = _mm256_set1_epi32(
            static_cast<int>(seed + PRIME1 + PRIME2));
        __m256i acc2 = _mm256_set1_epi32(static_cast<int>(seed + PRIME2));
        __m256i acc3 = _mm256_set1_epi32(static_cast<int>(seed));
        __m256i acc4 = _mm256_set1_epi32(static_cast<int>(seed - PRIME1));

        for (size_t s = 0; s < stripes; ++s) {
            const size_t off = 16 * s;
            // One 16-byte stripe per row; rows g and g+4 share a ymm.
            __m128i w0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[0] + off));
            __m128i w1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[1] + off));
            __m128i w2 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[2] + off));
            __m128i w3 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[3] + off));
            __m128i w4 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[4] + off));
            __m128i w5 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[5] + off));
            __m128i w6 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[6] + off));
            __m128i w7 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rows[7] + off));
            __m256i r04 = _mm256_set_m128i(w4, w0);
            __m256i r15 = _mm256_set_m128i(w5, w1);
            __m256i r26 = _mm256_set_m128i(w6, w2);
            __m256i r37 = _mm256_set_m128i(w7, w3);

            // 8x4 32-bit transpose: q_k = stripe word k of rows 0..7,
            // lane order 0..7.
            __m256i t0 = _mm256_unpacklo_epi32(r04, r15);
            __m256i t1 = _mm256_unpackhi_epi32(r04, r15);
            __m256i t2 = _mm256_unpacklo_epi32(r26, r37);
            __m256i t3 = _mm256_unpackhi_epi32(r26, r37);
            __m256i q0 = _mm256_unpacklo_epi64(t0, t2);
            __m256i q1 = _mm256_unpackhi_epi64(t0, t2);
            __m256i q2 = _mm256_unpacklo_epi64(t1, t3);
            __m256i q3 = _mm256_unpackhi_epi64(t1, t3);

            acc1 = roundv(acc1, q0, p1, p2);
            acc2 = roundv(acc2, q1, p1, p2);
            acc3 = roundv(acc3, q2, p1, p2);
            acc4 = roundv(acc4, q3, p1, p2);
        }

        // Merge (integer adds; order-exact by definition) ...
        __m256i hv = _mm256_add_epi32(
            _mm256_add_epi32(rotl32v(acc1, 1), rotl32v(acc2, 7)),
            _mm256_add_epi32(rotl32v(acc3, 12), rotl32v(acc4, 18)));
        hv = _mm256_add_epi32(
            hv, _mm256_set1_epi32(static_cast<int>(
                    static_cast<uint32_t>(row_bytes))));

        // ... then fold each lane's tail bytes and avalanche, scalar.
        alignas(32) uint32_t h[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(h), hv);
        for (size_t g = 0; g < 8; ++g)
            out[r + g] = finalize(h[g], rows[g] + 16 * stripes, tail);
    }
    return r;
}

} // namespace cegma

#endif // CEGMA_HAVE_AVX2
