/**
 * @file
 * Shared scalar building blocks of the XXH32 implementation, used by
 * both the portable TU (xxhash.cc) and the AVX2 8-row batch TU
 * (xxhash_avx2.cc). Internal to src/hash.
 */

#ifndef CEGMA_HASH_XXHASH_IMPL_HH
#define CEGMA_HASH_XXHASH_IMPL_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cegma::xxdetail {

constexpr uint32_t PRIME1 = 0x9E3779B1u;
constexpr uint32_t PRIME2 = 0x85EBCA77u;
constexpr uint32_t PRIME3 = 0xC2B2AE3Du;
constexpr uint32_t PRIME4 = 0x27D4EB2Fu;
constexpr uint32_t PRIME5 = 0x165667B1u;

inline uint32_t
rotl32(uint32_t x, int r)
{
    return (x << r) | (x >> (32 - r));
}

inline uint32_t
read32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v; // little-endian hosts assumed (x86/ARM little-endian)
}

/** Consume one 4-byte lane into a stripe accumulator. */
inline uint32_t
round(uint32_t acc, uint32_t lane)
{
    acc += lane * PRIME2;
    acc = rotl32(acc, 13);
    acc *= PRIME1;
    return acc;
}

/** Final mixing (avalanche) of the pre-digest. */
inline uint32_t
avalanche(uint32_t h)
{
    h ^= h >> 15;
    h *= PRIME2;
    h ^= h >> 13;
    h *= PRIME3;
    h ^= h >> 16;
    return h;
}

/** Fold trailing (<16) bytes and avalanche. */
inline uint32_t
finalize(uint32_t h, const uint8_t *p, size_t len)
{
    while (len >= 4) {
        h += read32(p) * PRIME3;
        h = rotl32(h, 17) * PRIME4;
        p += 4;
        len -= 4;
    }
    while (len > 0) {
        h += (*p) * PRIME5;
        h = rotl32(h, 11) * PRIME1;
        ++p;
        --len;
    }
    return avalanche(h);
}

} // namespace cegma::xxdetail

#endif // CEGMA_HASH_XXHASH_IMPL_HH
