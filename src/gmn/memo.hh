/**
 * @file
 * Cross-pair memoization for the functional inference path.
 *
 * Serving workloads (clone search, library screening) pair the same
 * graph against many partners, yet a naive runner re-runs WL
 * refinement and the per-graph embedding chain for every pair. Both
 * are pure functions of one graph (for the non-cross-feedback models,
 * whose embeddings never see the partner graph), so this cache keys
 * them by *graph identity* — a content fingerprint over the CSR arrays
 * and labels, because pairs hold graphs by value and pointer identity
 * does not survive pair construction.
 *
 * Storage is a pair of bounded, sharded LRU caches
 * (common/sharded_lru.hh): under sustained serving traffic the working
 * set must not grow without limit, so a byte budget with LRU eviction
 * replaces the seed's unbounded single-mutex maps. Eviction never
 * changes any produced bit — a rebuilt entry is bit-identical to the
 * evicted one (everything memoized here is deterministic) — it only
 * costs the rebuild.
 *
 * Thread safety: lookups and insertions lock only the owning shard;
 * builds run outside any lock, and when two threads race to build the
 * same key the first insert wins and the loser's (bit-identical)
 * result is discarded.
 */

#ifndef CEGMA_GMN_MEMO_HH
#define CEGMA_GMN_MEMO_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sharded_lru.hh"
#include "graph/graph.hh"
#include "graph/wl_refine.hh"
#include "tensor/matrix.hh"

namespace cegma {

/**
 * Content identity of a graph: two 32-bit XXHash digests over the
 * adjacency lists and labels plus the exact node/arc counts. Equal
 * keys for distinct graphs would need a simultaneous 64-bit hash
 * collision at equal shape — negligible against the caches' scale.
 */
struct GraphKey
{
    uint64_t digest = 0; ///< two seeded XXH32 runs, concatenated
    uint64_t nodes = 0;
    uint64_t arcs = 0;

    bool operator==(const GraphKey &other) const = default;
};

/** @return the content key of `g`. */
GraphKey graphKey(const Graph &g);

struct GraphKeyHash
{
    size_t operator()(const GraphKey &k) const
    {
        return static_cast<size_t>(k.digest ^ (k.nodes * 0x9e3779b97f4a7c15ull) ^ k.arcs);
    }
};

/** One graph side's embedding chain, as a model produced it. */
struct GraphEmbedding
{
    /**
     * Node features per level: index 0 is the encoded input, index l
     * the output of embedding layer l (size numLayers + 1).
     */
    std::vector<Matrix> layers;
};

/** Approximate resident bytes of a WL coloring. */
size_t wlColoringBytes(const WlColoring &wl);

/** Approximate resident bytes of an embedding chain. */
size_t graphEmbeddingBytes(const GraphEmbedding &embed);

/** Capacity/sharding knobs for a `MemoCache`. */
struct MemoConfig
{
    /**
     * Total byte budget across both entry families; 0 = unbounded
     * (the single-shot benchmark behavior). Embeddings get 7/8 of the
     * budget and WL colorings 1/8 — an embedding chain is roughly 20x
     * the bytes of its coloring (numLayers+1 dense 64-wide float
     * matrices vs 12 bytes per node per level).
     */
    size_t maxBytes = 0;

    /** Shards per family (per-shard mutex; budget split evenly). */
    uint32_t shards = 8;
};

/**
 * The memoization layer: WL colorings (any model) and per-graph layer
 * embeddings (non-cross-feedback models only — GMN-Li's embeddings
 * depend on the partner graph and are never cached; see
 * `GmnModel::embeddingMemo`).
 *
 * One cache serves one model instance: embeddings bake in the model's
 * weights, so sharing a cache across differently-seeded models would
 * return wrong features. WL colorings are model-independent.
 */
class MemoCache
{
  public:
    explicit MemoCache(const MemoConfig &config = {});

    /** Memoized `wlRefine(g, num_layers)`. */
    std::shared_ptr<const WlColoring> wl(const Graph &g,
                                         unsigned num_layers);

    /**
     * Memoized per-graph embedding chain; `build` runs on a miss (and
     * must be a pure function of `g`).
     */
    std::shared_ptr<const GraphEmbedding>
    embedding(const Graph &g,
              const std::function<GraphEmbedding()> &build);

    /**
     * Drop every memo entry derived from the graph with content key
     * `key` — its embedding chain and its WL colorings at every depth.
     * Called when a corpus entry is removed so its bytes are reclaimed
     * promptly instead of aging out by LRU. Never required for
     * correctness: entries are content-keyed and deterministic, so a
     * stale entry for a re-inserted identical graph replays identical
     * bits.
     *
     * @return number of entries removed
     */
    size_t invalidate(const GraphKey &key);

    /** Convenience overload: `invalidate(graphKey(g))`. */
    size_t invalidate(const Graph &g);

    /** Lookups that returned a cached value (both families). */
    size_t hits() const;

    /** Lookups that had to build (both families). */
    size_t misses() const;

    /** Entries evicted to stay inside the byte budget. */
    size_t evictions() const;

    /** Resident bytes (never exceeds `config().maxBytes` when set). */
    size_t bytes() const;

    /** WL-coloring lookups (hits + misses). */
    size_t wlLookups() const;

    /**
     * Embedding-chain lookups (hits + misses). Exactly 0 when the
     * cache only ever served a cross-feedback model — the guard the
     * "memo is never a regression for GMN-Li" test asserts.
     */
    size_t embeddingLookups() const;

    /**
     * Total wall time spent in cache lookups and insertions (both
     * families), excluding miss-path builds. This is the price of
     * having the memo layer at all; the serving stats reporter turns
     * it into the memo share of a request's latency breakdown.
     * Identically 0 until a consumer enables lookup timing.
     */
    uint64_t lookupNs() const
    {
        return lookupNs_.load(std::memory_order_relaxed);
    }

    /**
     * Turn the `lookupNs()` wall-time accounting on or off (default
     * off). The lookup paths run on every scored pair, so with no
     * consumer the two `obs::nowNs()` clock reads per lookup are pure
     * overhead; the gate is one relaxed atomic load, the same pattern
     * `StageScope` uses for attribution. `SearchService` enables it —
     * it surfaces `serve.memo.lookup_us` and the memo latency share —
     * while bare caches (index builds, unit tests) stay clock-free.
     */
    void setLookupTimingEnabled(bool enabled)
    {
        lookupTiming_.store(enabled, std::memory_order_relaxed);
    }

    bool lookupTimingEnabled() const
    {
        return lookupTiming_.load(std::memory_order_relaxed);
    }

    const MemoConfig &config() const { return config_; }

  private:
    struct WlKey
    {
        GraphKey graph;
        unsigned layers = 0;
        bool operator==(const WlKey &other) const = default;
    };
    struct WlKeyHash
    {
        size_t operator()(const WlKey &k) const
        {
            return GraphKeyHash{}(k.graph) * 31 + k.layers;
        }
    };

    /** Count `ns` into `lookupNs_` and the current request's memo
     *  stage (per-request critical-path attribution). */
    void noteLookupNs(uint64_t ns) const;

    MemoConfig config_;
    ShardedLruCache<WlKey, WlColoring, WlKeyHash> wl_;
    ShardedLruCache<GraphKey, GraphEmbedding, GraphKeyHash> embeddings_;

    /** Accumulated lookup/insert time; telemetry only, never control
     *  flow, so relaxed ordering suffices. */
    mutable std::atomic<uint64_t> lookupNs_{0};

    /** Gates the clock reads around lookups (see the setter). */
    std::atomic<bool> lookupTiming_{false};
};

} // namespace cegma

#endif // CEGMA_GMN_MEMO_HH
