/**
 * @file
 * SimGNN [4]: three GCN layers, a single last-layer dot-product
 * similarity (model-wise matching), an attention readout + NTN over
 * graph embeddings, a pairwise-similarity histogram, and a small MLP
 * head (Table I row 3).
 */

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "graph/wl_refine.hh"
#include "nn/gcn.hh"
#include "nn/linear.hh"
#include "nn/ntn.hh"
#include "obs/trace.hh"

namespace cegma {

namespace {

constexpr size_t embedDim = 128;
constexpr size_t histBins = 16;
constexpr size_t ntnSlices = 16;

class SimGnnModel : public GmnModel
{
  public:
    explicit SimGnnModel(uint64_t seed)
        : GmnModel(modelConfig(ModelId::SimGnn)), rng_(seed),
          encoder_(1, config_.nodeDim, rng_, Activation::Tanh),
          attention_(config_.nodeDim, config_.nodeDim, rng_,
                     Activation::None),
          project_(config_.nodeDim, embedDim, rng_, Activation::Tanh),
          ntn_(embedDim, ntnSlices, rng_),
          head_({ntnSlices + histBins, 16, 8, 4, 1}, rng_,
                Activation::Sigmoid)
    {
        for (unsigned l = 0; l < config_.numLayers; ++l)
            layers_.emplace_back(config_.nodeDim, config_.nodeDim, rng_);
    }

    Detail forwardDetailed(GraphPairView pair) const override;

    std::shared_ptr<const GraphEmbedding>
    graphEmbedding(const Graph &g) const override
    {
        return embedCached(g);
    }

    /**
     * The coarse descriptor is hx = project(readout(last layer)) —
     * exactly the NTN input of the exact head — concatenated with the
     * graph's self-similarity histogram, so the coarse scorer can
     * replay the graph-level part of the score and estimate the
     * cross-graph histogram term from embedDim + histBins stored
     * floats per candidate.
     */
    size_t coarseDim() const override { return embedDim + histBins; }

    void
    coarseDescriptor(const Graph &g, float *out) const override
    {
        std::shared_ptr<const GraphEmbedding> e = embedCached(g);
        const Matrix &x = e->layers.back();
        Matrix h = project_.forward(readout(x));
        std::copy(h.data(), h.data() + h.size(), out);
        Matrix hist = similarityHistogram(
            similarityMatrix(x, x, config_.similarity));
        std::copy(hist.data(), hist.data() + hist.size(),
                  out + embedDim);
    }

    std::unique_ptr<CoarseScorer>
    coarseScorer(const Graph &query) const override;

  private:
    /** hx = project(readout(last chain layer)): the NTN input. */
    Matrix
    graphProjection(const Graph &g) const
    {
        std::shared_ptr<const GraphEmbedding> e = embedCached(g);
        return project_.forward(readout(e->layers.back()));
    }

    /** SimGNN's global-context attention readout: 1 x nodeDim. */
    Matrix
    readout(const Matrix &x) const
    {
        Matrix context = columnMeans(x);
        Matrix key = attention_.forward(context); // 1 x nodeDim
        Matrix out(1, x.cols());
        for (size_t v = 0; v < x.rows(); ++v) {
            float score = dot(x.row(v), key.row(0), x.cols());
            float a = 1.0f / (1.0f + std::exp(-score));
            for (size_t j = 0; j < x.cols(); ++j)
                out.at(0, j) += a * x.at(v, j);
        }
        return out;
    }

    /** Histogram of sigmoid-squashed similarity entries. */
    static Matrix
    similarityHistogram(const Matrix &s)
    {
        Matrix hist(1, histBins);
        for (size_t i = 0; i < s.size(); ++i) {
            float v = 1.0f / (1.0f + std::exp(-s.data()[i]));
            auto bin = static_cast<size_t>(v * histBins);
            bin = std::min(bin, histBins - 1);
            hist.at(0, bin) += 1.0f;
        }
        if (s.size() > 0) {
            for (size_t b = 0; b < histBins; ++b)
                hist.at(0, b) /= static_cast<float>(s.size());
        }
        return hist;
    }

    /** The per-graph embedding chain (encoder + all GCN layers). */
    GraphEmbedding
    embedSide(const Graph &g) const
    {
        GraphEmbedding embed;
        WlColoring wl = wlRefine(g, config_.numLayers);
        Matrix x = encoder_.forward(initialFeatures(g));
        embed.layers.push_back(x);
        for (unsigned l = 0; l < config_.numLayers; ++l) {
            x = layers_[l].forward(g, x, wl.signatures[l]);
            embed.layers.push_back(x);
        }
        return embed;
    }

    /** Run `embedSide` through the memo cache when one is usable. */
    std::shared_ptr<const GraphEmbedding>
    embedCached(const Graph &g) const
    {
        if (MemoCache *memo = embeddingMemo()) {
            return memo->embedding(g, [&] { return embedSide(g); });
        }
        return std::make_shared<const GraphEmbedding>(embedSide(g));
    }

    mutable Rng rng_;
    Linear encoder_;
    std::vector<GcnLayer> layers_;
    Linear attention_;
    Linear project_;
    Ntn ntn_;
    Mlp head_;
};

GmnModel::Detail
SimGnnModel::forwardDetailed(GraphPairView pair) const
{
    Detail detail;
    std::shared_ptr<const GraphEmbedding> et, eq;
    {
        obs::StageScope stage("embed",
                              stageHist(&obs::StageSink::embedUs),
                              &obs::StageAccum::embedNs);
        et = embedCached(pair.target);
        eq = embedCached(pair.query);
    }
    detail.xLayers = et->layers;
    detail.yLayers = eq->layers;
    const Matrix &x = et->layers.back();
    const Matrix &y = eq->layers.back();

    // Model-wise matching: one similarity matrix from the last layer.
    Matrix s;
    if (infer_.dedupMatching) {
        DedupMap dx, dy;
        {
            obs::StageScope stage("dedup",
                                  stageHist(&obs::StageSink::dedupUs),
                                  &obs::StageAccum::dedupNs);
            dx = confirmDedup(x, emfFilter(x));
            dy = confirmDedup(y, emfFilter(y));
        }
        noteDedup(x.rows(), dx.numUnique());
        noteDedup(y.rows(), dy.numUnique());
        obs::StageScope stage("match",
                              stageHist(&obs::StageSink::matchUs),
                              &obs::StageAccum::matchNs);
        s = similarityMatrixDedup(x, y, config_.similarity, dx, dy);
    } else {
        obs::StageScope stage("match",
                              stageHist(&obs::StageSink::matchUs),
                              &obs::StageAccum::matchNs);
        s = similarityMatrix(x, y, config_.similarity);
    }

    obs::StageScope stage("head", stageHist(&obs::StageSink::headUs),
                          &obs::StageAccum::headNs);
    Matrix hist = similarityHistogram(s);
    detail.simLayers.push_back(std::move(s));

    Matrix hx = project_.forward(readout(x));
    Matrix hy = project_.forward(readout(y));
    Matrix interaction = ntn_.forward(hx, hy);

    Matrix head_in = hconcat({&interaction, &hist});
    Matrix out = head_.forward(head_in);
    detail.score = out.at(0, 0);
    return detail;
}

/**
 * The shortlist ranking surrogate: replay the exact head on the
 * query-factored NTN (one dot per slice against the stored hx), with
 * the pairwise-similarity histogram — the cross-graph term the cascade
 * exists to avoid computing — estimated as the mean of the query's and
 * the candidate's self-similarity histograms. Both halves matter: a
 * per-candidate estimate tracks the actual histogram features far
 * closer than any fixed constant, and an operating point near where
 * the exact scores live keeps the nonlinear head's ranking faithful.
 */
class SimGnnCoarseScorer : public CoarseScorer
{
  public:
    SimGnnCoarseScorer(Matrix factor, Matrix hist, const Mlp &head)
        : factor_(std::move(factor)), hist_(std::move(hist)), head_(head)
    {
    }

    float
    operator()(const float *descriptor, size_t dim) const override
    {
        (void)dim;
        Matrix in(1, ntnSlices + histBins);
        for (size_t k = 0; k < ntnSlices; ++k) {
            const float *f = factor_.row(k);
            float s = dot(descriptor, f, embedDim) + f[embedDim];
            in.at(0, k) = s > 0.0f ? s : 0.0f;
        }
        for (size_t b = 0; b < histBins; ++b)
            in.at(0, ntnSlices + b) =
                0.5f * (hist_.at(0, b) + descriptor[embedDim + b]);
        return head_.forward(in).at(0, 0);
    }

  private:
    Matrix factor_;   ///< ntn_.queryFactor(hy): (slices x dim + 1)
    Matrix hist_;     ///< fixed histogram features (1 x histBins)
    const Mlp &head_; ///< the model's head; the model outlives us
};

std::unique_ptr<CoarseScorer>
SimGnnModel::coarseScorer(const Graph &query) const
{
    std::shared_ptr<const GraphEmbedding> e = embedCached(query);
    const Matrix &y = e->layers.back();
    Matrix hy = project_.forward(readout(y));
    Matrix hist = similarityHistogram(
        similarityMatrix(y, y, config_.similarity));
    return std::make_unique<SimGnnCoarseScorer>(ntn_.queryFactor(hy),
                                                std::move(hist), head_);
}

} // namespace

std::unique_ptr<GmnModel>
makeSimGnn(uint64_t seed)
{
    return std::make_unique<SimGnnModel>(seed);
}

} // namespace cegma
