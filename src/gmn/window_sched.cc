#include "gmn/window_sched.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "accel/aoe_unit.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/trace.hh"
#include "tensor/kernels.hh"

namespace cegma {

namespace {

// -1 = unresolved; otherwise a WindowPolicy value. Same idempotent
// resolve-once idiom as common/simd.cc.
std::atomic<int> g_policy{-1};

WindowPolicy
resolvePolicy()
{
    const char *env = std::getenv("CEGMA_WINDOW");
    if (env != nullptr && *env != '\0') {
        if (std::strcmp(env, "auto") == 0)
            return WindowPolicy::Auto;
        if (std::strcmp(env, "joint") == 0)
            return WindowPolicy::Joint;
        if (std::strcmp(env, "stream") == 0)
            return WindowPolicy::Stream;
        warn("ignoring unknown CEGMA_WINDOW value '%s' "
             "(expected 'auto', 'joint' or 'stream')",
             env);
    }
    return WindowPolicy::Auto;
}

/**
 * Per-row normalization inputs, precomputed once per side exactly as
 * the dense `similarityMatrix` does: cosine stores 1/norm (0 for a
 * zero-norm row), euclidean the squared norms, dot product nothing.
 */
struct NormData
{
    std::vector<float> xPerRow;
    std::vector<float> yPerRow;
};

NormData
computeNorms(const Matrix &x, const Matrix &y, SimilarityKind kind)
{
    NormData norms;
    switch (kind) {
      case SimilarityKind::DotProduct:
        break;
      case SimilarityKind::Cosine: {
        Matrix nx = rowL2Norms(x);
        Matrix ny = rowL2Norms(y);
        norms.xPerRow.resize(x.rows());
        norms.yPerRow.resize(y.rows());
        for (size_t i = 0; i < x.rows(); ++i)
            norms.xPerRow[i] =
                nx.at(i, 0) > 0.0f ? 1.0f / nx.at(i, 0) : 0.0f;
        for (size_t j = 0; j < y.rows(); ++j)
            norms.yPerRow[j] =
                ny.at(j, 0) > 0.0f ? 1.0f / ny.at(j, 0) : 0.0f;
        break;
      }
      case SimilarityKind::Euclidean: {
        Matrix sx = rowSquaredNorms(x);
        Matrix sy = rowSquaredNorms(y);
        norms.xPerRow.assign(sx.data(), sx.data() + x.rows());
        norms.yPerRow.assign(sy.data(), sy.data() + y.rows());
        break;
      }
    }
    return norms;
}

/** Normalize one row segment [j0, j0+len) in place. */
inline void
finishSegment(const TensorKernels &kern, SimilarityKind kind,
              float *seg, float x_norm, const float *y_norms,
              size_t len)
{
    switch (kind) {
      case SimilarityKind::DotProduct:
        break;
      case SimilarityKind::Cosine:
        kern.cosineScaleRow(seg, x_norm, y_norms, len);
        break;
      case SimilarityKind::Euclidean:
        kern.euclidFinishRow(seg, x_norm, y_norms, len);
        break;
    }
}

/** Process-wide window-stat accumulators (see windowSchedTotals). */
struct TotalsAtomics
{
    std::atomic<uint64_t> windows{0};
    std::atomic<uint64_t> slides{0};
    std::atomic<uint64_t> jumps{0};
    std::atomic<uint64_t> xTileLoads{0};
    std::atomic<uint64_t> yTileLoads{0};
    std::atomic<uint64_t> aoeKeepX{0};
    std::atomic<uint64_t> aoeKeepY{0};
};

TotalsAtomics g_totals;

void
accumulateTotals(const WindowSchedStats &st)
{
    g_totals.windows.fetch_add(st.windows, std::memory_order_relaxed);
    g_totals.slides.fetch_add(st.slides, std::memory_order_relaxed);
    g_totals.jumps.fetch_add(st.jumps, std::memory_order_relaxed);
    g_totals.xTileLoads.fetch_add(st.xTileLoads,
                                  std::memory_order_relaxed);
    g_totals.yTileLoads.fetch_add(st.yTileLoads,
                                  std::memory_order_relaxed);
    g_totals.aoeKeepX.fetch_add(st.aoeKeepX, std::memory_order_relaxed);
    g_totals.aoeKeepY.fetch_add(st.aoeKeepY, std::memory_order_relaxed);
}

} // namespace

WindowSchedStats
windowSchedTotals()
{
    WindowSchedStats st;
    st.windows = g_totals.windows.load(std::memory_order_relaxed);
    st.slides = g_totals.slides.load(std::memory_order_relaxed);
    st.jumps = g_totals.jumps.load(std::memory_order_relaxed);
    st.xTileLoads = g_totals.xTileLoads.load(std::memory_order_relaxed);
    st.yTileLoads = g_totals.yTileLoads.load(std::memory_order_relaxed);
    st.aoeKeepX = g_totals.aoeKeepX.load(std::memory_order_relaxed);
    st.aoeKeepY = g_totals.aoeKeepY.load(std::memory_order_relaxed);
    return st;
}

WindowPolicy
windowPolicy()
{
    int cur = g_policy.load(std::memory_order_relaxed);
    if (cur >= 0)
        return static_cast<WindowPolicy>(cur);
    WindowPolicy resolved = resolvePolicy();
    g_policy.store(static_cast<int>(resolved),
                   std::memory_order_relaxed);
    return resolved;
}

void
setWindowPolicy(WindowPolicy policy)
{
    g_policy.store(static_cast<int>(policy), std::memory_order_relaxed);
}

size_t
defaultWindowBytes()
{
    static const size_t bytes = [] {
        long l2 = -1;
#ifdef _SC_LEVEL2_CACHE_SIZE
        l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
        size_t base = l2 > 0 ? static_cast<size_t>(l2)
                             : (size_t(512) << 10);
        // Leave a quarter of the cache for the output strip, norms and
        // whatever else the core touches between loads.
        return base - base / 4;
    }();
    return bytes;
}

bool
shouldWindow(const Matrix &x, const Matrix &y)
{
    if (x.rows() == 0 || y.rows() == 0)
        return false;
    switch (windowPolicy()) {
      case WindowPolicy::Stream:
        return false;
      case WindowPolicy::Joint:
        return true;
      case WindowPolicy::Auto:
        break;
    }
    size_t footprint = (x.rows() + y.rows()) * x.cols() * sizeof(float);
    return footprint > defaultWindowBytes();
}

Matrix
similarityMatrixWindowed(const Matrix &x, const Matrix &y,
                         SimilarityKind kind,
                         const WindowSchedConfig &config,
                         WindowSchedStats *stats)
{
    CEGMA_TRACE_SCOPE_CAT("similarityMatrixWindowed", "kernel");
    cegma_assert(x.cols() == y.cols());
    const size_t n = x.rows(), m = y.rows(), f = x.cols();

    WindowSchedStats local;
    WindowSchedStats &st = stats != nullptr ? *stats : local;
    st = WindowSchedStats{};

    Matrix s(n, m);
    if (n == 0 || m == 0)
        return s;

    const size_t budget =
        config.cacheBytes > 0 ? config.cacheBytes : defaultWindowBytes();
    const size_t row_bytes = std::max<size_t>(f, 1) * sizeof(float);
    // Each side gets half the window, in whole rows; a floor of 8 rows
    // keeps degenerate budgets from producing per-row tiles.
    auto tile_rows = [&](size_t total) {
        size_t t = (budget / 2) / row_bytes;
        t = std::clamp<size_t>(t, 8, std::max<size_t>(total, 1));
        return t;
    };
    const size_t xt = tile_rows(n);
    const size_t yt = tile_rows(m);
    st.tileRowsX = xt;
    st.tileRowsY = yt;
    const size_t ntx = (n + xt - 1) / xt;
    const size_t nty = (m + yt - 1) / yt;
    const size_t total = ntx * nty;

    NormData norms = computeNorms(x, y, kind);
    const TensorKernels &kern = tensorKernels();
    const float *yd = y.data();

    // One joint window: the resident x rows sweep the resident y rows
    // (GEMM part), and the normalization runs on the freshly produced
    // segment while it is still cache-hot. Chunks write disjoint rows
    // and every cell is a fixed-order dot, so the pass is
    // bit-deterministic at any thread count.
    auto process = [&](size_t ti, size_t tj) {
        CEGMA_TRACE_SCOPE_CAT("jointWindow", "kernel.window");
        const size_t xi0 = ti * xt, xi1 = std::min(n, xi0 + xt);
        const size_t yj0 = tj * yt, yj1 = std::min(m, yj0 + yt);
        const size_t width = yj1 - yj0;
        size_t grain = grainForRows(xi1 - xi0, 2 * f * width);
        parallelFor(xi0, xi1, grain, [&](size_t r0, size_t r1) {
            for (size_t i = r0; i < r1; ++i) {
                float *srow = s.row(i);
                kern.ntRow(x.row(i), yd, f, yj0, yj1, srow);
                finishSegment(kern, kind, srow + yj0,
                              norms.xPerRow.empty() ? 0.0f
                                                    : norms.xPerRow[i],
                              norms.yPerRow.empty()
                                  ? nullptr
                                  : norms.yPerRow.data() + yj0,
                              width);
            }
        });
        ++st.windows;
    };

    // Coordinated traversal state: which windows each tile strip still
    // owes. `remRow[ti]` is the remaining work of every resident x row
    // of tile ti, at window granularity — the software analogue of the
    // AOE unit's Remains Counters.
    std::vector<uint8_t> visited(total, 0);
    std::vector<uint32_t> remRow(ntx, static_cast<uint32_t>(nty));
    std::vector<uint32_t> remCol(nty, static_cast<uint32_t>(ntx));

    size_t ti = 0, tj = 0;
    auto visit = [&](size_t i, size_t j) {
        visited[i * nty + j] = 1;
        --remRow[i];
        --remCol[j];
        process(i, j);
    };

    // Nearest unvisited window in the current x strip (keep X
    // resident, slide Y); prefers the forward direction on ties.
    auto slide_in_row = [&](size_t row, size_t &col) {
        if (remRow[row] == 0)
            return false;
        for (size_t d = 1; d < nty; ++d) {
            if (col + d < nty && !visited[row * nty + col + d]) {
                col += d;
                return true;
            }
            if (col >= d && !visited[row * nty + col - d]) {
                col -= d;
                return true;
            }
        }
        return false;
    };
    auto slide_in_col = [&](size_t col, size_t &row) {
        if (remCol[col] == 0)
            return false;
        for (size_t d = 1; d < ntx; ++d) {
            if (row + d < ntx && !visited[(row + d) * nty + col]) {
                row += d;
                return true;
            }
            if (row >= d && !visited[(row - d) * nty + col]) {
                row -= d;
                return true;
            }
        }
        return false;
    };

    ++st.xTileLoads;
    ++st.yTileLoads;
    visit(ti, tj);

    for (size_t done = 1; done < total; ++done) {
        bool keep_x = true;
        if (config.useAoe) {
            // Algorithm 2 over the resident rows' remaining window
            // counts. Every row of a tile shares its strip's count;
            // ragged edge tiles contribute fewer counters, like a
            // partially filled hardware window. The side whose rows
            // are closer to finishing (more outliers at the minimum)
            // stays stationary so they retire without a reload.
            const size_t xi1 = std::min(n, ti * xt + xt);
            const size_t yj1 = std::min(m, tj * yt + yt);
            std::vector<uint32_t> remains_x(xi1 - ti * xt, remRow[ti]);
            std::vector<uint32_t> remains_y(yj1 - tj * yt, remCol[tj]);
            AoeDecision d = evaluateAoe(remains_x, remains_y);
            keep_x = d.keepTarget;
            ++(keep_x ? st.aoeKeepX : st.aoeKeepY);
        }
        // Without AOE, keep_x stays true: exhaust the x strip, then
        // drop one tile down the current column — a fixed row-major
        // serpentine (the "double window" baseline).

        bool moved;
        if (keep_x) {
            if ((moved = slide_in_row(ti, tj)))
                ++st.yTileLoads;
            else if ((moved = slide_in_col(tj, ti)))
                ++st.xTileLoads;
        } else {
            if ((moved = slide_in_col(tj, ti)))
                ++st.xTileLoads;
            else if ((moved = slide_in_row(ti, tj)))
                ++st.yTileLoads;
        }
        if (moved) {
            ++st.slides;
        } else {
            // Both strips of the current window are fully matched:
            // reload both sides at the first unvisited window.
            for (size_t t = 0; t < total; ++t) {
                if (!visited[t]) {
                    ti = t / nty;
                    tj = t % nty;
                    break;
                }
            }
            ++st.xTileLoads;
            ++st.yTileLoads;
            ++st.jumps;
        }
        visit(ti, tj);
    }
    accumulateTotals(st);
    return s;
}

Matrix
similarityMatrixStreamed(const Matrix &x, const Matrix &y,
                         SimilarityKind kind)
{
    CEGMA_TRACE_SCOPE_CAT("similarityMatrixStreamed", "kernel");
    cegma_assert(x.cols() == y.cols());
    const size_t n = x.rows(), m = y.rows(), f = x.cols();
    Matrix s(n, m);
    if (n == 0 || m == 0)
        return s;

    NormData norms = computeNorms(x, y, kind);
    const TensorKernels &kern = tensorKernels();
    const float *yd = y.data();
    size_t grain = grainForRows(n, 2 * f * m);
    parallelFor(0, n, grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            float *srow = s.row(i);
            // No j-tiling: each x row streams the whole of Y.
            kern.ntRow(x.row(i), yd, f, 0, m, srow);
            finishSegment(kern, kind, srow,
                          norms.xPerRow.empty() ? 0.0f
                                                : norms.xPerRow[i],
                          norms.yPerRow.empty() ? nullptr
                                                : norms.yPerRow.data(),
                          m);
        }
    });
    return s;
}

} // namespace cegma
