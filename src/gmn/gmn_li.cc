/**
 * @file
 * GMN-Li [24]: five MGNN layers with per-layer cross-graph attention
 * matching feeding the node update, euclidean similarity, and an MLP
 * readout over summed node features (Table I row 1).
 */

#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "graph/wl_refine.hh"
#include "nn/linear.hh"
#include "nn/mgnn.hh"
#include "obs/trace.hh"

namespace cegma {

namespace {

class GmnLiModel : public GmnModel
{
  public:
    explicit GmnLiModel(uint64_t seed)
        : GmnModel(modelConfig(ModelId::GmnLi)), rng_(seed),
          encoder_(1, config_.nodeDim, rng_, Activation::Tanh),
          readout_({config_.nodeDim, 128, 128}, rng_, Activation::None)
    {
        for (unsigned l = 0; l < config_.numLayers; ++l)
            layers_.emplace_back(config_.nodeDim, config_.nodeDim, rng_);
    }

    Detail forwardDetailed(GraphPairView pair) const override;

  private:
    /** Cross-graph attention message: x - softmax(S) y (per [24]). */
    static Matrix
    crossMessage(const Matrix &x, const Matrix &s, const Matrix &other)
    {
        Matrix attn = s;
        softmaxRowsInPlace(attn);
        Matrix weighted = matmul(attn, other);
        Matrix out(x.rows(), x.cols());
        for (size_t i = 0; i < x.size(); ++i)
            out.data()[i] = x.data()[i] - weighted.data()[i];
        return out;
    }

    /**
     * EMF-skipped cross message: message row i is a deterministic
     * function of (x row i, S row i, all of `other`), and duplicate x
     * rows have duplicate S rows, so computing the unique rows only
     * and scattering back through the confirmed map is bit-identical
     * to the dense message.
     */
    static Matrix
    crossMessageDedup(const Matrix &x, const Matrix &s,
                      const Matrix &other, const DedupMap &dx)
    {
        if (!dx.anyDuplicates())
            return crossMessage(x, s, other);
        Matrix xu = gatherRows(x, dx.uniqueRows);
        Matrix su = gatherRows(s, dx.uniqueRows);
        return scatterRows(crossMessage(xu, su, other), dx);
    }

    mutable Rng rng_;
    Linear encoder_;
    std::vector<MgnnLayer> layers_;
    Mlp readout_;
};

GmnModel::Detail
GmnLiModel::forwardDetailed(GraphPairView pair) const
{
    Detail detail;
    // Cross-feedback means embeddings depend on the partner graph, so
    // only the per-graph WL colorings are memoizable here.
    std::shared_ptr<const WlColoring> wl_t_ptr, wl_q_ptr;
    Matrix x, y;
    {
        obs::StageScope stage("embed",
                              stageHist(&obs::StageSink::embedUs),
                              &obs::StageAccum::embedNs);
        wl_t_ptr =
            infer_.memo
                ? infer_.memo->wl(pair.target, config_.numLayers)
                : std::make_shared<const WlColoring>(
                      wlRefine(pair.target, config_.numLayers));
        wl_q_ptr =
            infer_.memo
                ? infer_.memo->wl(pair.query, config_.numLayers)
                : std::make_shared<const WlColoring>(
                      wlRefine(pair.query, config_.numLayers));
        x = encoder_.forward(initialFeatures(pair.target));
        y = encoder_.forward(initialFeatures(pair.query));
    }
    const WlColoring &wl_t = *wl_t_ptr;
    const WlColoring &wl_q = *wl_q_ptr;
    detail.xLayers.push_back(x);
    detail.yLayers.push_back(y);

    for (unsigned l = 0; l < config_.numLayers; ++l) {
        Matrix s, cross_x, cross_y;
        if (infer_.dedupMatching) {
            DedupMap dx, dy;
            {
                obs::StageScope stage(
                    "dedup", stageHist(&obs::StageSink::dedupUs),
                    &obs::StageAccum::dedupNs);
                dx = confirmDedup(x, emfFilter(x));
                dy = confirmDedup(y, emfFilter(y));
            }
            noteDedup(x.rows(), dx.numUnique());
            noteDedup(y.rows(), dy.numUnique());
            obs::StageScope stage("match",
                                  stageHist(&obs::StageSink::matchUs),
                                  &obs::StageAccum::matchNs);
            s = similarityMatrixDedup(x, y, config_.similarity, dx, dy);
            cross_x = crossMessageDedup(x, s, y, dx);
            cross_y = crossMessageDedup(y, transpose(s), x, dy);
        } else {
            obs::StageScope stage("match",
                                  stageHist(&obs::StageSink::matchUs),
                                  &obs::StageAccum::matchNs);
            s = similarityMatrix(x, y, config_.similarity);
            cross_x = crossMessage(x, s, y);
            cross_y = crossMessage(y, transpose(s), x);
        }
        detail.simLayers.push_back(s);

        {
            obs::StageScope stage("embed",
                                  stageHist(&obs::StageSink::embedUs),
                                  &obs::StageAccum::embedNs);
            x = layers_[l].forward(pair.target, x, cross_x,
                                   wl_t.signatures[l]);
            y = layers_[l].forward(pair.query, y, cross_y,
                                   wl_q.signatures[l]);
        }
        detail.xLayers.push_back(x);
        detail.yLayers.push_back(y);
    }

    obs::StageScope stage("head", stageHist(&obs::StageSink::headUs),
                          &obs::StageAccum::headNs);
    Matrix hx = readout_.forward(columnSums(x));
    Matrix hy = readout_.forward(columnSums(y));
    double dist = 0.0;
    for (size_t j = 0; j < hx.cols(); ++j) {
        double d = hx.at(0, j) - hy.at(0, j);
        dist += d * d;
    }
    detail.score = -dist;
    return detail;
}

} // namespace

std::unique_ptr<GmnModel>
makeGmnLi(uint64_t seed)
{
    return std::make_unique<GmnLiModel>(seed);
}

} // namespace cegma
