/**
 * @file
 * The three GMN models of Table I — GMN-Li [24], GraphSim [5], and
 * SimGNN [4] — as functional (floating-point) inference models, plus
 * their static configuration used by the workload tracer.
 *
 * These are the golden reference: the EMF's duplicate detection and the
 * accelerator's dedup short-cuts are validated against the per-layer
 * features and similarity matrices these models produce.
 */

#ifndef CEGMA_GMN_MODEL_HH
#define CEGMA_GMN_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gmn/similarity.hh"
#include "graph/dataset.hh"
#include "obs/metrics.hh"
#include "tensor/matrix.hh"

namespace cegma {

class MemoCache;
struct GraphEmbedding;

/** Model identifiers (Table I rows). */
enum class ModelId
{
    GmnLi,
    GraphSim,
    SimGnn,
};

/** All three models in the paper's presentation order. */
const std::vector<ModelId> &allModels();

/**
 * How matching results are consumed (Section IV-D): type (a) models
 * write similarities back to DRAM for a later head; type (b) models
 * feed them into the same layer's node update on-chip.
 */
enum class MatchUse
{
    WriteBack,   ///< type (a): SimGNN, GraphSim
    OnChipReuse, ///< type (b): GMN-Li
};

/** Static model description (the Table I row). */
struct ModelConfig
{
    ModelId id;
    std::string name;
    SimilarityKind similarity;
    unsigned numLayers;     ///< embedding layers
    size_t nodeDim;         ///< hidden node-feature width (64)
    bool layerwiseMatching; ///< matching every layer vs last layer only
    bool crossFeedback;     ///< matching feeds the node update (GMN-Li)
    MatchUse matchUse;
};

/** @return the Table I configuration of `id`. */
const ModelConfig &modelConfig(ModelId id);

/**
 * Live counters for the dedup runtime, safe to share across the
 * pair-parallel scoring threads (obs::Counter is a relaxed atomic;
 * the counts are telemetry, never control flow). Owners that expose a
 * metrics registry publish these through provider gauges — see
 * serve/service.cc.
 */
struct DedupStats
{
    /** Feature rows that entered a dedup'd matching stage. */
    obs::Counter rowsTotal;

    /** Rows the dense kernel actually ran on (the unique block). */
    obs::Counter rowsUnique;

    /** Fraction of rows the EMF skip elided (0 when nothing ran). */
    double skipRatio() const
    {
        uint64_t total = rowsTotal.value();
        uint64_t unique = rowsUnique.value();
        return total > 0
                   ? 1.0 - static_cast<double>(unique) /
                               static_cast<double>(total)
                   : 0.0;
    }
};

/**
 * Elastic execution knobs for the functional inference path. Neither
 * knob changes any produced bit: dedup scatters representative results
 * back through a `memcmp`-confirmed map, and the memo cache only
 * replays deterministic per-graph computations.
 */
struct InferenceOptions
{
    /**
     * Run the matching stage EMF-skipped: hash node features, compute
     * similarity on the unique-row block only, scatter back
     * (GMN-Li additionally dedups its cross-attention messages).
     */
    bool dedupMatching = false;

    /**
     * Cross-pair memoization of WL colorings and (for the
     * non-cross-feedback models) per-graph layer embeddings. One
     * cache per model instance; not owned.
     */
    MemoCache *memo = nullptr;

    /** Optional dedup telemetry sink (not owned; may be shared). */
    DedupStats *dedupStats = nullptr;

    /**
     * Optional per-stage timing sink (not owned): embed / match /
     * dedup / head durations per forward pass land in the referenced
     * histograms. Null members (or a null sink) cost two branches per
     * stage — the always-on serving default is to wire this.
     */
    const obs::StageSink *stages = nullptr;
};

/**
 * A query-conditioned scorer over stored per-graph coarse descriptors
 * — the model-aware ranking function of the retrieval cascade's
 * shortlist stage. Built once per query (implementations precompute
 * every query-side term there), then applied to many candidate
 * descriptors. A ranking surrogate only: higher means "more likely in
 * the exact top-k", with no bit-level relationship to `score`. Must
 * not outlive the model that built it.
 */
class CoarseScorer
{
  public:
    virtual ~CoarseScorer() = default;

    /** Rank a candidate from its stored descriptor (higher = better). */
    virtual float operator()(const float *descriptor, size_t dim) const = 0;
};

/** Functional GMN inference model. */
class GmnModel
{
  public:
    virtual ~GmnModel() = default;

    const ModelConfig &config() const { return config_; }

    /** Everything the forward pass produced, for validation. */
    struct Detail
    {
        /**
         * Node features of the target/query graph after each
         * embedding layer; index 0 is the encoded input (so size is
         * numLayers + 1).
         */
        std::vector<Matrix> xLayers;
        std::vector<Matrix> yLayers;

        /**
         * Similarity matrices, one per matching layer (layer-wise
         * models produce numLayers of them, model-wise models one).
         */
        std::vector<Matrix> simLayers;

        /** The scalar similarity score. */
        double score = 0.0;
    };

    /**
     * Run inference, keeping all intermediates. Takes a non-owning
     * view so hot callers (the serving batch loop) can pair corpus
     * and query graphs without copying either; `GraphPair` converts
     * implicitly.
     */
    virtual Detail forwardDetailed(GraphPairView pair) const = 0;

    /** Run inference, returning only the score. */
    double score(GraphPairView pair) const;

    /**
     * The per-graph embedding chain of `g` alone, or null when the
     * model has no partner-independent embedding (GMN-Li's cross
     * feedback makes every layer depend on the partner graph). When a
     * memo cache is wired it is consulted exactly like the forward
     * pass does, so a retrieval index built through this call warms
     * the same entries the exact scoring stage will hit. Used by the
     * coarse shortlist stage (retrieval/coarse.hh).
     */
    virtual std::shared_ptr<const GraphEmbedding>
    graphEmbedding(const Graph &g) const
    {
        (void)g;
        return nullptr;
    }

    /**
     * Width of the model-aware coarse descriptor, or 0 when the model
     * has none (the retrieval shortlist then falls back to generic
     * pooled-chain / WL-sketch distance). A model whose exact score
     * has a per-graph decomposable head (SimGNN's NTN over projected
     * readouts) exposes that head's inputs here, because ranking by
     * the model's own head is what keeps shortlist recall high when
     * scores separate at noise level — a generic embedding distance
     * cannot resolve that.
     */
    virtual size_t coarseDim() const { return 0; }

    /**
     * Fill `out[0 .. coarseDim())` with `g`'s coarse descriptor. Goes
     * through the memo cache like `graphEmbedding`, so index builds
     * warm the entries exact scoring reuses. Only called when
     * `coarseDim() > 0`.
     */
    virtual void coarseDescriptor(const Graph &g, float *out) const
    {
        (void)g;
        (void)out;
    }

    /**
     * The query-conditioned coarse scorer, or null when
     * `coarseDim() == 0`. Thread-safe to build and apply concurrently
     * for different queries.
     */
    virtual std::unique_ptr<CoarseScorer>
    coarseScorer(const Graph &query) const
    {
        (void)query;
        return nullptr;
    }

    /** Set the elastic execution knobs (see `InferenceOptions`). */
    void setInferenceOptions(const InferenceOptions &options)
    {
        infer_ = options;
    }

    const InferenceOptions &inferenceOptions() const { return infer_; }

  protected:
    explicit GmnModel(ModelConfig config) : config_(std::move(config)) {}

    /**
     * The memo cache usable for per-graph embedding chains: null for
     * cross-feedback models, whose embeddings depend on the partner
     * graph. Keying by one graph would be wrong there, and even the
     * lookups would be pure overhead — so they are skipped entirely
     * (memo mode must never be a regression; see the serve tests).
     */
    MemoCache *embeddingMemo() const
    {
        return config_.crossFeedback ? nullptr : infer_.memo;
    }

    /** Record one side's dedup outcome into the telemetry sink. */
    void noteDedup(size_t rows, size_t unique_rows) const
    {
        if (infer_.dedupStats == nullptr)
            return;
        infer_.dedupStats->rowsTotal.add(rows);
        infer_.dedupStats->rowsUnique.add(unique_rows);
    }

    /** The stage histogram for `member`, or null when unwired. */
    obs::Histogram *stageHist(obs::Histogram *obs::StageSink::*member) const
    {
        return infer_.stages != nullptr ? infer_.stages->*member
                                        : nullptr;
    }

    ModelConfig config_;
    InferenceOptions infer_;
};

/** Build model `id` with seeded random weights. */
std::unique_ptr<GmnModel> makeModel(ModelId id, uint64_t seed = 1234);

// Per-model factories (defined in the respective .cc files).
std::unique_ptr<GmnModel> makeGmnLi(uint64_t seed);
std::unique_ptr<GmnModel> makeGraphSim(uint64_t seed);
std::unique_ptr<GmnModel> makeSimGnn(uint64_t seed);

/**
 * Encode a graph's raw node labels into the scalar input feature
 * column used by every model (Table I input width 1): label + 1.
 */
Matrix initialFeatures(const Graph &g);

} // namespace cegma

#endif // CEGMA_GMN_MODEL_HH
