/**
 * @file
 * Software port of the Coordinated Graph Co-location (CGC) joint
 * window: the cross-similarity S = sim(X, Y) is computed tile by tile
 * over joint (x-rows, y-rows) windows sized to fit the L2 cache, so
 * the resident feature rows are reused across the whole window instead
 * of streaming the full opposite matrix per row.
 *
 * Window traversal follows the paper's coordinated slide: after each
 * window the AOE unit (accel/aoe_unit.hh, Algorithm 2) scores both
 * resident sides by their remaining work — here, the number of
 * still-unvisited windows each resident row participates in — and the
 * side with more outliers (rows closest to finishing) stays
 * stationary, so those rows complete their matching and never have to
 * be reloaded.
 *
 * Bit-identity contract: every similarity cell is an independent
 * fixed-order dot product plus a per-cell normalization, computed with
 * the same dispatched kernels (tensor/kernels.hh) the dense
 * `similarityMatrix` uses. Tiling only reorders *which cell is
 * computed when*, never the arithmetic inside a cell, so the windowed
 * result is bit-identical to the dense one at every SIMD level and
 * thread count (tests/simd_test.cc asserts this).
 */

#ifndef CEGMA_GMN_WINDOW_SCHED_HH
#define CEGMA_GMN_WINDOW_SCHED_HH

#include <cstddef>
#include <cstdint>

#include "gmn/similarity.hh"
#include "tensor/matrix.hh"

namespace cegma {

/** Tuning knobs for the joint-window pass. */
struct WindowSchedConfig
{
    /**
     * Cache budget in bytes for one joint window (x tile + y tile);
     * 0 means `defaultWindowBytes()`.
     */
    size_t cacheBytes = 0;

    /**
     * Use the AOE coordinated slide order (Algorithm 2). When false
     * the tiles are walked in a fixed row-major serpentine — the
     * "double window" baseline.
     */
    bool useAoe = true;
};

/** Counters filled in by `similarityMatrixWindowed`. */
struct WindowSchedStats
{
    uint64_t windows = 0;    ///< joint windows computed
    uint64_t slides = 0;     ///< moves where one side stayed resident
    uint64_t jumps = 0;      ///< moves that reloaded both sides
    uint64_t xTileLoads = 0; ///< times an x tile entered the window
    uint64_t yTileLoads = 0; ///< times a y tile entered the window
    uint64_t aoeKeepX = 0;   ///< AOE decisions that kept X resident
    uint64_t aoeKeepY = 0;   ///< AOE decisions that kept Y resident
    size_t tileRowsX = 0;    ///< resolved x-tile height (rows)
    size_t tileRowsY = 0;    ///< resolved y-tile height (rows)
};

/**
 * Process-wide accumulated `WindowSchedStats` across every windowed
 * pass since startup. Callers that need a window's own numbers pass a
 * `stats` out-param; the totals exist so long-running owners (the
 * serving metrics registry) can expose window behaviour without
 * threading a sink through every similarity call. Monotone counters,
 * accumulated with relaxed atomics — telemetry, never control flow.
 */
WindowSchedStats windowSchedTotals();

/**
 * Joint-window similarity: bit-identical to
 * `similarityMatrix(x, y, kind)`, computed over L2-resident tiles in
 * AOE-coordinated order. Safe for any shape (tiny matrices collapse
 * to a single window).
 */
Matrix similarityMatrixWindowed(const Matrix &x, const Matrix &y,
                                SimilarityKind kind,
                                const WindowSchedConfig &config = {},
                                WindowSchedStats *stats = nullptr);

/**
 * Full-matrix streaming baseline: every x row walks all of Y with no
 * j-tiling, the access pattern the paper's separate-phase scheduling
 * exhibits. Same bits, worst-case locality — benches compare its
 * cache-miss counts against the windowed pass.
 */
Matrix similarityMatrixStreamed(const Matrix &x, const Matrix &y,
                                SimilarityKind kind);

/** How `similarityMatrix` picks its execution path. */
enum class WindowPolicy
{
    Auto,   ///< windowed when the joint footprint overflows the budget
    Joint,  ///< always windowed
    Stream, ///< never windowed (dense j-tiled kernel)
};

/**
 * Active policy. Resolution order: `setWindowPolicy()` if called,
 * else the `CEGMA_WINDOW` environment variable (`auto` | `joint` |
 * `stream`; unknown values warn and mean `auto`), else `Auto`.
 */
WindowPolicy windowPolicy();

/** Force a policy (tests, benches); overrides the environment. */
void setWindowPolicy(WindowPolicy policy);

/**
 * Default per-window cache budget: 3/4 of the detected L2 size
 * (`sysconf(_SC_LEVEL2_CACHE_SIZE)`), or 3/4 of 512 KiB when the
 * platform does not report one.
 */
size_t defaultWindowBytes();

/**
 * Whether `similarityMatrix(x, y, ...)` should take the windowed path
 * under the active policy.
 */
bool shouldWindow(const Matrix &x, const Matrix &y);

} // namespace cegma

#endif // CEGMA_GMN_WINDOW_SCHED_HH
