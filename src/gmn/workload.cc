#include "gmn/workload.hh"

#include "common/logging.hh"
#include "gmn/memo.hh"
#include "graph/wl_refine.hh"

namespace cegma {

namespace {

/** FLOPs of a dense (rows x in) -> (rows x out) layer incl. bias. */
uint64_t
denseFlops(uint64_t rows, uint64_t in, uint64_t out)
{
    return rows * (2 * in * out + out);
}

/** FLOPs of an MLP over the given widths. */
uint64_t
mlpFlops(uint64_t rows, std::initializer_list<uint64_t> dims)
{
    uint64_t total = 0;
    const uint64_t *prev = nullptr;
    for (const uint64_t &d : dims) {
        if (prev)
            total += denseFlops(rows, *prev, d);
        prev = &d;
    }
    return total;
}

/** FLOPs of one GraphSim CNN branch (grid 16, channels 1..128). */
uint64_t
cnnBranchFlops()
{
    const uint64_t channels[] = {1, 16, 32, 64, 128};
    uint64_t total = 0;
    uint64_t h = 16, w = 16;
    for (size_t i = 0; i + 1 < std::size(channels); ++i) {
        total += 2 * h * w * 9 * channels[i] * channels[i + 1];
        h = std::max<uint64_t>(1, h / 2);
        w = std::max<uint64_t>(1, w / 2);
    }
    return total;
}

EmbedWork
gcnEmbedWork(const Graph &g, size_t f_in, size_t f_out)
{
    EmbedWork work;
    work.fIn = f_in;
    work.fOut = f_out;
    work.aggFlops = (g.numArcs() + 2ull * g.numNodes()) * f_in;
    work.combFlops = denseFlops(g.numNodes(), f_in, f_out);
    return work;
}

EmbedWork
mgnnEmbedWork(const Graph &g, size_t d)
{
    EmbedWork work;
    work.fIn = d;
    work.fOut = d;
    // Edge MLP [2d, d, d] per directed arc, plus the message sum.
    work.aggFlops = mlpFlops(g.numArcs(), {2ull * d, d, d}) +
                    g.numArcs() * d;
    // Update MLP [3d, d, d] per node.
    work.combFlops = mlpFlops(g.numNodes(), {3ull * d, d, d});
    return work;
}

MatchingWork
makeMatching(const GraphPair &pair, const WlColoring &wl_t,
             const WlColoring &wl_q, size_t level, size_t dim,
             SimilarityKind kind, bool cross_feedback)
{
    MatchingWork match;
    match.present = true;
    match.dim = dim;
    const uint64_t n = pair.target.numNodes();
    const uint64_t m = pair.query.numNodes();
    match.simFlops = similarityFlops(n, m, dim, kind);
    if (cross_feedback) {
        // Row/column softmax (~5 flops per cell per direction) plus the
        // attention-weighted sums and the subtraction (per [24]).
        match.crossFlops = 10 * n * m + 4 * n * m * dim +
                           (n + m) * dim;
    }
    match.dupClassTarget = wl_t.colors[level];
    match.dupClassQuery = wl_q.colors[level];
    match.numUniqueTarget = wl_t.numClasses[level];
    match.numUniqueQuery = wl_q.numClasses[level];
    return match;
}

} // namespace

uint64_t
MatchingWork::totalPairs() const
{
    return static_cast<uint64_t>(dupClassTarget.size()) *
           dupClassQuery.size();
}

uint64_t
MatchingWork::uniquePairs() const
{
    return static_cast<uint64_t>(numUniqueTarget) * numUniqueQuery;
}

uint64_t
MatchingWork::dedupSimFlops(SimilarityKind kind) const
{
    return similarityFlopsDedup(dupClassTarget.size(),
                                dupClassQuery.size(), numUniqueTarget,
                                numUniqueQuery, dim, kind);
}

uint64_t
MatchingWork::dedupCrossFlops() const
{
    if (crossFlops == 0)
        return 0;
    const uint64_t n = dupClassTarget.size();
    const uint64_t m = dupClassQuery.size();
    const uint64_t u_n = numUniqueTarget;
    const uint64_t u_m = numUniqueQuery;
    // The dense accounting (makeMatching) splits per direction as
    // 5*n*m softmax + 2*n*m*dim weighted sum + n*dim subtract; dedup
    // computes each direction over that side's unique rows only.
    return 5 * u_n * m + 5 * u_m * n + 2 * u_n * m * dim +
           2 * u_m * n * dim + (u_n + u_m) * dim;
}

uint64_t
PairTrace::aggFlopsTotal() const
{
    uint64_t total = 0;
    for (const auto &layer : layers)
        total += layer.embedTarget.aggFlops + layer.embedQuery.aggFlops;
    return total;
}

uint64_t
PairTrace::combFlopsTotal() const
{
    uint64_t total = encodeFlops;
    for (const auto &layer : layers)
        total += layer.embedTarget.combFlops + layer.embedQuery.combFlops;
    return total;
}

uint64_t
PairTrace::matchFlopsTotal() const
{
    uint64_t total = 0;
    for (const auto &layer : layers) {
        if (layer.matching.present) {
            total += layer.matching.simFlops + layer.matching.crossFlops;
        }
    }
    return total;
}

uint64_t
PairTrace::totalFlops() const
{
    return aggFlopsTotal() + combFlopsTotal() + matchFlopsTotal() +
           postFlops;
}

uint64_t
PairTrace::dedupMatchFlopsTotal() const
{
    const SimilarityKind kind = modelConfig(model).similarity;
    uint64_t total = 0;
    for (const auto &layer : layers) {
        if (layer.matching.present) {
            total += layer.matching.dedupSimFlops(kind) +
                     layer.matching.dedupCrossFlops();
        }
    }
    return total;
}

uint64_t
PairTrace::totalMatchPairs() const
{
    uint64_t total = 0;
    for (const auto &layer : layers) {
        if (layer.matching.present)
            total += layer.matching.totalPairs();
    }
    return total;
}

uint64_t
PairTrace::uniqueMatchPairs() const
{
    uint64_t total = 0;
    for (const auto &layer : layers) {
        if (layer.matching.present)
            total += layer.matching.uniquePairs();
    }
    return total;
}

double
PairTrace::uniqueMatchingFraction() const
{
    uint64_t total = totalMatchPairs();
    if (total == 0)
        return 1.0;
    return static_cast<double>(uniqueMatchPairs()) /
           static_cast<double>(total);
}

PairTrace
buildTrace(ModelId id, const GraphPair &pair, MemoCache *memo)
{
    return buildCustomTrace(modelConfig(id), pair, memo);
}

PairTrace
buildCustomTrace(const ModelConfig &config, const GraphPair &pair,
                 MemoCache *memo)
{
    const ModelId id = config.id;
    const size_t d = config.nodeDim;
    const uint64_t n = pair.target.numNodes();
    const uint64_t m = pair.query.numNodes();

    PairTrace trace;
    trace.model = id;
    trace.pair = &pair;
    trace.encodeFlops = denseFlops(n + m, 1, d);

    std::shared_ptr<const WlColoring> wl_t_ptr =
        memo ? memo->wl(pair.target, config.numLayers)
             : std::make_shared<const WlColoring>(
                   wlRefine(pair.target, config.numLayers));
    std::shared_ptr<const WlColoring> wl_q_ptr =
        memo ? memo->wl(pair.query, config.numLayers)
             : std::make_shared<const WlColoring>(
                   wlRefine(pair.query, config.numLayers));
    const WlColoring &wl_t = *wl_t_ptr;
    const WlColoring &wl_q = *wl_q_ptr;

    for (unsigned l = 0; l < config.numLayers; ++l) {
        LayerWork layer;
        if (config.crossFeedback) {
            layer.embedTarget = mgnnEmbedWork(pair.target, d);
            layer.embedQuery = mgnnEmbedWork(pair.query, d);
            // Cross-feedback models match at every layer on the
            // layer's *input* features (level l).
            layer.matching = makeMatching(pair, wl_t, wl_q, l, d,
                                          config.similarity, true);
        } else {
            layer.embedTarget = gcnEmbedWork(pair.target, d, d);
            layer.embedQuery = gcnEmbedWork(pair.query, d, d);
            bool matches = config.layerwiseMatching ||
                           (l + 1 == config.numLayers);
            if (matches) {
                // GCN models match on the layer's *output* (level l+1).
                layer.matching = makeMatching(pair, wl_t, wl_q, l + 1, d,
                                              config.similarity, false);
            }
        }
        trace.layers.push_back(std::move(layer));
    }

    switch (id) {
      case ModelId::GmnLi:
        // Readout MLP [64,128,128] on each pooled graph vector + the
        // final distance.
        trace.postFlops = mlpFlops(2, {64ull, 128ull, 128ull}) + 3 * 128;
        break;
      case ModelId::GraphSim:
        trace.postFlops = 3 * cnnBranchFlops() +
                          mlpFlops(1, {384ull, 128ull, 64ull, 32ull,
                                       16ull, 1ull});
        break;
      case ModelId::SimGnn:
        // Attention readout + projection per graph, NTN, histogram,
        // and the head MLP.
        trace.postFlops =
            denseFlops(2, d, d) + 2 * (n + m) * d + // attention
            denseFlops(2, d, 128) +                 // projection
            16 * (2ull * 128 * 128 + 4 * 128) +     // NTN slices
            4 * n * m +                             // histogram
            mlpFlops(1, {32ull, 16ull, 8ull, 4ull, 1ull});
        break;
    }
    return trace;
}

} // namespace cegma
