#include "gmn/memo.hh"

#include "hash/xxhash.hh"
#include "obs/trace.hh"

namespace cegma {

GraphKey
graphKey(const Graph &g)
{
    GraphKey key;
    key.nodes = g.numNodes();
    key.arcs = g.numArcs();

    // Two independently-seeded streaming digests over the exact
    // structure: per-node (degree, sorted neighbors, label). The CSR
    // representation is canonical (sorted adjacency, deduplicated), so
    // equal content means equal streams.
    XxHash32Stream lo(0x5eed0001u);
    XxHash32Stream hi(0x5eed0002u);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto nbrs = g.neighbors(v);
        uint32_t head[2] = {static_cast<uint32_t>(nbrs.size()),
                            g.label(v)};
        lo.update(head, sizeof(head));
        hi.update(head, sizeof(head));
        lo.update(nbrs.data(), nbrs.size() * sizeof(NodeId));
        hi.update(nbrs.data(), nbrs.size() * sizeof(NodeId));
    }
    key.digest = (static_cast<uint64_t>(hi.digest()) << 32) |
                 lo.digest();
    return key;
}

size_t
wlColoringBytes(const WlColoring &wl)
{
    size_t bytes = sizeof(WlColoring);
    for (const auto &level : wl.signatures)
        bytes += level.size() * sizeof(uint64_t);
    for (const auto &level : wl.colors)
        bytes += level.size() * sizeof(uint32_t);
    bytes += wl.numClasses.size() * sizeof(uint32_t);
    return bytes;
}

size_t
graphEmbeddingBytes(const GraphEmbedding &embed)
{
    size_t bytes = sizeof(GraphEmbedding);
    for (const Matrix &m : embed.layers)
        bytes += sizeof(Matrix) + m.size() * sizeof(float);
    return bytes;
}

namespace {

/** WL colorings take 1/8 of the budget, embeddings the rest. */
size_t
wlBudget(size_t max_bytes)
{
    return max_bytes / 8;
}

size_t
embeddingBudget(size_t max_bytes)
{
    return max_bytes == 0 ? 0 : max_bytes - wlBudget(max_bytes);
}

} // namespace

MemoCache::MemoCache(const MemoConfig &config)
    : config_(config), wl_(wlBudget(config.maxBytes), config.shards),
      embeddings_(embeddingBudget(config.maxBytes), config.shards)
{
}

void
MemoCache::noteLookupNs(uint64_t ns) const
{
    lookupNs_.fetch_add(ns, std::memory_order_relaxed);
    // The memo share of a request's critical path, when the serving
    // layer is attributing the current request.
    obs::attributeStageNs(&obs::StageAccum::memoNs, ns);
}

std::shared_ptr<const WlColoring>
MemoCache::wl(const Graph &g, unsigned num_layers)
{
    CEGMA_TRACE_SCOPE_CAT("memo.wl", "memo");
    // These paths run on every scored pair: the clock reads bracketing
    // lookup and insert are gated on one relaxed load (the StageScope
    // pattern), so a cache with no timing consumer never touches the
    // clock.
    const bool timed = lookupTimingEnabled();
    uint64_t t0 = timed ? obs::nowNs() : 0;
    WlKey key{graphKey(g), num_layers};
    if (auto cached = wl_.find(key)) {
        if (timed)
            noteLookupNs(obs::nowNs() - t0);
        return cached;
    }
    if (timed)
        noteLookupNs(obs::nowNs() - t0);
    // Build outside any lock: wlRefine is deterministic, so a racing
    // duplicate build produces identical bits and the loser is simply
    // discarded by the first-insert-wins policy.
    auto built =
        std::make_shared<const WlColoring>(wlRefine(g, num_layers));
    size_t bytes = wlColoringBytes(*built);
    uint64_t t1 = timed ? obs::nowNs() : 0;
    auto out = wl_.insert(key, std::move(built), bytes);
    if (timed)
        noteLookupNs(obs::nowNs() - t1);
    return out;
}

std::shared_ptr<const GraphEmbedding>
MemoCache::embedding(const Graph &g,
                     const std::function<GraphEmbedding()> &build)
{
    CEGMA_TRACE_SCOPE_CAT("memo.embedding", "memo");
    const bool timed = lookupTimingEnabled();
    uint64_t t0 = timed ? obs::nowNs() : 0;
    GraphKey key = graphKey(g);
    if (auto cached = embeddings_.find(key)) {
        if (timed)
            noteLookupNs(obs::nowNs() - t0);
        return cached;
    }
    if (timed)
        noteLookupNs(obs::nowNs() - t0);
    auto built = std::make_shared<const GraphEmbedding>(build());
    size_t bytes = graphEmbeddingBytes(*built);
    uint64_t t1 = timed ? obs::nowNs() : 0;
    auto out = embeddings_.insert(key, std::move(built), bytes);
    if (timed)
        noteLookupNs(obs::nowNs() - t1);
    return out;
}

size_t
MemoCache::invalidate(const GraphKey &key)
{
    CEGMA_TRACE_SCOPE_CAT("memo.invalidate", "memo");
    size_t removed = embeddings_.erase(key) ? 1u : 0u;
    // WL colorings for one graph exist at every refinement depth a
    // model ever asked for — a key *family* sharing the GraphKey
    // prefix, removed with a predicate scan rather than exact keys.
    removed += wl_.eraseIf(
        [&key](const WlKey &k) { return k.graph == key; });
    return removed;
}

size_t
MemoCache::invalidate(const Graph &g)
{
    return invalidate(graphKey(g));
}

size_t
MemoCache::hits() const
{
    return wl_.hits() + embeddings_.hits();
}

size_t
MemoCache::misses() const
{
    return wl_.misses() + embeddings_.misses();
}

size_t
MemoCache::evictions() const
{
    return wl_.evictions() + embeddings_.evictions();
}

size_t
MemoCache::bytes() const
{
    return wl_.bytes() + embeddings_.bytes();
}

size_t
MemoCache::wlLookups() const
{
    return wl_.hits() + wl_.misses();
}

size_t
MemoCache::embeddingLookups() const
{
    return embeddings_.hits() + embeddings_.misses();
}

} // namespace cegma
