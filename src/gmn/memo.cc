#include "gmn/memo.hh"

#include "hash/xxhash.hh"

namespace cegma {

GraphKey
graphKey(const Graph &g)
{
    GraphKey key;
    key.nodes = g.numNodes();
    key.arcs = g.numArcs();

    // Two independently-seeded streaming digests over the exact
    // structure: per-node (degree, sorted neighbors, label). The CSR
    // representation is canonical (sorted adjacency, deduplicated), so
    // equal content means equal streams.
    XxHash32Stream lo(0x5eed0001u);
    XxHash32Stream hi(0x5eed0002u);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto nbrs = g.neighbors(v);
        uint32_t head[2] = {static_cast<uint32_t>(nbrs.size()),
                            g.label(v)};
        lo.update(head, sizeof(head));
        hi.update(head, sizeof(head));
        lo.update(nbrs.data(), nbrs.size() * sizeof(NodeId));
        hi.update(nbrs.data(), nbrs.size() * sizeof(NodeId));
    }
    key.digest = (static_cast<uint64_t>(hi.digest()) << 32) |
                 lo.digest();
    return key;
}

std::shared_ptr<const WlColoring>
MemoCache::wl(const Graph &g, unsigned num_layers)
{
    WlKey key{graphKey(g), num_layers};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = wl_.find(key);
        if (it != wl_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }
    // Build outside the lock: wlRefine is deterministic, so a racing
    // duplicate build produces identical bits and the loser is simply
    // discarded by try_emplace.
    auto built =
        std::make_shared<const WlColoring>(wlRefine(g, num_layers));
    std::lock_guard<std::mutex> lock(mutex_);
    return wl_.try_emplace(key, std::move(built)).first->second;
}

std::shared_ptr<const GraphEmbedding>
MemoCache::embedding(const Graph &g,
                     const std::function<GraphEmbedding()> &build)
{
    GraphKey key = graphKey(g);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = embeddings_.find(key);
        if (it != embeddings_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }
    auto built = std::make_shared<const GraphEmbedding>(build());
    std::lock_guard<std::mutex> lock(mutex_);
    return embeddings_.try_emplace(key, std::move(built)).first->second;
}

size_t
MemoCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

size_t
MemoCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace cegma
