#include "gmn/similarity.hh"

#include "common/logging.hh"

namespace cegma {

const char *
similarityName(SimilarityKind kind)
{
    switch (kind) {
      case SimilarityKind::DotProduct:
        return "dot-product";
      case SimilarityKind::Cosine:
        return "cosine";
      case SimilarityKind::Euclidean:
        return "euclidean";
    }
    return "?";
}

Matrix
similarityMatrix(const Matrix &x, const Matrix &y, SimilarityKind kind)
{
    cegma_assert(x.cols() == y.cols());
    Matrix s = matmulNT(x, y);

    switch (kind) {
      case SimilarityKind::DotProduct:
        break;
      case SimilarityKind::Cosine: {
        Matrix nx = rowL2Norms(x);
        Matrix ny = rowL2Norms(y);
        for (size_t i = 0; i < s.rows(); ++i) {
            for (size_t j = 0; j < s.cols(); ++j) {
                float denom = nx.at(i, 0) * ny.at(j, 0);
                s.at(i, j) = denom > 0.0f ? s.at(i, j) / denom : 0.0f;
            }
        }
        break;
      }
      case SimilarityKind::Euclidean: {
        Matrix sx = rowSquaredNorms(x);
        Matrix sy = rowSquaredNorms(y);
        for (size_t i = 0; i < s.rows(); ++i) {
            for (size_t j = 0; j < s.cols(); ++j) {
                s.at(i, j) =
                    2.0f * s.at(i, j) - sx.at(i, 0) - sy.at(j, 0);
            }
        }
        break;
      }
    }
    return s;
}

uint64_t
similarityFlops(uint64_t n, uint64_t m, uint64_t f, SimilarityKind kind)
{
    uint64_t base = 2 * n * m * f; // the X Y^T MACs
    switch (kind) {
      case SimilarityKind::DotProduct:
        return base;
      case SimilarityKind::Cosine:
        // Row norms (2f MACs per row) + one divide and multiply per cell.
        return base + 2 * f * (n + m) + 2 * n * m;
      case SimilarityKind::Euclidean:
        return base + 2 * f * (n + m) + 3 * n * m;
    }
    return base;
}

} // namespace cegma
