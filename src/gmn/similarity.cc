#include "gmn/similarity.hh"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gmn/window_sched.hh"
#include "obs/trace.hh"
#include "tensor/kernels.hh"

namespace cegma {

const char *
similarityName(SimilarityKind kind)
{
    switch (kind) {
      case SimilarityKind::DotProduct:
        return "dot-product";
      case SimilarityKind::Cosine:
        return "cosine";
      case SimilarityKind::Euclidean:
        return "euclidean";
    }
    return "?";
}

Matrix
similarityMatrix(const Matrix &x, const Matrix &y, SimilarityKind kind)
{
    CEGMA_TRACE_SCOPE_CAT("similarityMatrix", "kernel");
    cegma_assert(x.cols() == y.cols());
    // Large pairs take the L2-resident joint-window path (CGC in
    // software); bit-identical, so the policy is purely a locality
    // decision. See window_sched.hh for the CEGMA_WINDOW override.
    if (shouldWindow(x, y))
        return similarityMatrixWindowed(x, y, kind);
    Matrix s = matmulNT(x, y);

    switch (kind) {
      case SimilarityKind::DotProduct:
        break;
      case SimilarityKind::Cosine: {
        // Precompute 1/norm per row once instead of a divide per cell;
        // a zero-norm row gets inverse 0, so its cells come out 0
        // exactly as the old `denom > 0` guard produced.
        Matrix nx = rowL2Norms(x);
        Matrix ny = rowL2Norms(y);
        std::vector<float> inv_nx(s.rows()), inv_ny(s.cols());
        for (size_t i = 0; i < s.rows(); ++i)
            inv_nx[i] = nx.at(i, 0) > 0.0f ? 1.0f / nx.at(i, 0) : 0.0f;
        for (size_t j = 0; j < s.cols(); ++j)
            inv_ny[j] = ny.at(j, 0) > 0.0f ? 1.0f / ny.at(j, 0) : 0.0f;
        const TensorKernels &kern = tensorKernels();
        size_t grain = grainForRows(s.rows(), 2 * s.cols());
        parallelFor(0, s.rows(), grain, [&](size_t r0, size_t r1) {
            for (size_t i = r0; i < r1; ++i) {
                kern.cosineScaleRow(s.row(i), inv_nx[i], inv_ny.data(),
                                    s.cols());
            }
        });
        break;
      }
      case SimilarityKind::Euclidean: {
        Matrix sx = rowSquaredNorms(x);
        Matrix sy = rowSquaredNorms(y);
        const TensorKernels &kern = tensorKernels();
        size_t grain = grainForRows(s.rows(), 3 * s.cols());
        parallelFor(0, s.rows(), grain, [&](size_t r0, size_t r1) {
            for (size_t i = r0; i < r1; ++i) {
                // sy is (m x 1), so its buffer is the contiguous
                // per-column squared-norm array.
                kern.euclidFinishRow(s.row(i), sx.at(i, 0), sy.data(),
                                     s.cols());
            }
        });
        break;
      }
    }
    return s;
}

uint64_t
similarityFlops(uint64_t n, uint64_t m, uint64_t f, SimilarityKind kind)
{
    uint64_t base = 2 * n * m * f; // the X Y^T MACs
    switch (kind) {
      case SimilarityKind::DotProduct:
        return base;
      case SimilarityKind::Cosine:
        // Row norms (2f MACs per row) + one divide and multiply per cell.
        return base + 2 * f * (n + m) + 2 * n * m;
      case SimilarityKind::Euclidean:
        return base + 2 * f * (n + m) + 3 * n * m;
    }
    return base;
}

uint64_t
similarityFlopsDedup(uint64_t n, uint64_t m, uint64_t u_n, uint64_t u_m,
                     uint64_t f, SimilarityKind kind)
{
    cegma_assert(u_n <= n && u_m <= m);
    // The arithmetic is exactly the dense kernel on the unique block;
    // the n x m scatter moves bytes but performs no FLOPs.
    return similarityFlops(u_n, u_m, f, kind);
}

DedupMap
confirmDedup(const Matrix &features, const EmfResult &emf)
{
    CEGMA_TRACE_SCOPE_CAT("confirmDedup", "kernel");
    const size_t n = features.rows();
    cegma_assert(emf.uniqueOf.size() == n);
    const size_t row_bytes = features.cols() * sizeof(float);

    // Parallel memcmp pass: per-row verdicts are independent and the
    // writes disjoint, so this is bit-deterministic at any thread
    // count. The (rare) collision bookkeeping stays in the serial
    // assembly below.
    std::vector<uint8_t> confirmed(n, 1);
    size_t grain = grainForRows(n, features.cols());
    parallelFor(0, n, grain, [&](size_t v0, size_t v1) {
        for (size_t v = v0; v < v1; ++v) {
            uint32_t u = emf.uniqueOf[v];
            if (u != v) {
                confirmed[v] = std::memcmp(features.row(v),
                                           features.row(u),
                                           row_bytes) == 0;
            }
        }
    });

    DedupMap map;
    map.repOf.resize(n);
    map.uniqueRows.reserve(emf.recordSet.size());
    // Rows promoted because their tag collided, grouped by the
    // representative they failed to match (empty in the common case).
    std::unordered_map<uint32_t, std::vector<uint32_t>> promoted;
    for (uint32_t v = 0; v < n; ++v) {
        uint32_t u = emf.uniqueOf[v];
        cegma_assert(u <= v);
        if (u == v) {
            map.repOf[v] = map.numUnique();
            map.uniqueRows.push_back(v);
            continue;
        }
        if (confirmed[v]) {
            map.repOf[v] = map.repOf[u];
            continue;
        }
        // Tag collision: the row is *not* the bits its representative
        // carries. Reuse an earlier promoted row if one matches
        // bitwise, else promote this row to a unique of its own.
        auto it = promoted.find(u);
        uint32_t block_row = UINT32_MAX;
        if (it != promoted.end()) {
            for (uint32_t w : it->second) {
                if (std::memcmp(features.row(v), features.row(w),
                                row_bytes) == 0) {
                    block_row = map.repOf[w];
                    break;
                }
            }
        }
        if (block_row == UINT32_MAX) {
            block_row = map.numUnique();
            map.uniqueRows.push_back(v);
            promoted[u].push_back(v);
        }
        map.repOf[v] = block_row;
    }
    return map;
}

Matrix
gatherRows(const Matrix &m, const std::vector<uint32_t> &rows)
{
    Matrix out(rows.size(), m.cols());
    const size_t row_bytes = m.cols() * sizeof(float);
    for (size_t i = 0; i < rows.size(); ++i)
        std::memcpy(out.row(i), m.row(rows[i]), row_bytes);
    return out;
}

Matrix
scatterRows(const Matrix &block, const DedupMap &map)
{
    Matrix out(map.repOf.size(), block.cols());
    const size_t row_bytes = block.cols() * sizeof(float);
    size_t grain = grainForRows(out.rows(), block.cols());
    parallelFor(0, out.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i)
            std::memcpy(out.row(i), block.row(map.repOf[i]), row_bytes);
    });
    return out;
}

Matrix
similarityMatrixDedup(const Matrix &x, const Matrix &y,
                      SimilarityKind kind, const DedupMap &dx,
                      const DedupMap &dy)
{
    CEGMA_TRACE_SCOPE_CAT("similarityMatrixDedup", "kernel");
    cegma_assert(dx.repOf.size() == x.rows());
    cegma_assert(dy.repOf.size() == y.rows());
    if (!dx.anyDuplicates() && !dy.anyDuplicates())
        return similarityMatrix(x, y, kind);

    Matrix ux = gatherRows(x, dx.uniqueRows);
    Matrix uy = gatherRows(y, dy.uniqueRows);
    Matrix block = similarityMatrix(ux, uy, kind);

    // Scatter the u_n x u_m block back to n x m: row expansion is a
    // copy, column expansion a per-row gather.
    Matrix s(x.rows(), y.rows());
    size_t grain = grainForRows(s.rows(), s.cols());
    parallelFor(0, s.rows(), grain, [&](size_t r0, size_t r1) {
        for (size_t i = r0; i < r1; ++i) {
            const float *brow = block.row(dx.repOf[i]);
            float *srow = s.row(i);
            for (size_t j = 0; j < s.cols(); ++j)
                srow[j] = brow[dy.repOf[j]];
        }
    });
    return s;
}

Matrix
similarityMatrixDedup(const Matrix &x, const Matrix &y,
                      SimilarityKind kind, const EmfResult &ex,
                      const EmfResult &ey)
{
    return similarityMatrixDedup(x, y, kind, confirmDedup(x, ex),
                                 confirmDedup(y, ey));
}

Matrix
similarityMatrixDedup(const Matrix &x, const Matrix &y,
                      SimilarityKind kind)
{
    return similarityMatrixDedup(x, y, kind, emfFilter(x), emfFilter(y));
}

} // namespace cegma
