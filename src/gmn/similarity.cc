#include "gmn/similarity.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace cegma {

const char *
similarityName(SimilarityKind kind)
{
    switch (kind) {
      case SimilarityKind::DotProduct:
        return "dot-product";
      case SimilarityKind::Cosine:
        return "cosine";
      case SimilarityKind::Euclidean:
        return "euclidean";
    }
    return "?";
}

Matrix
similarityMatrix(const Matrix &x, const Matrix &y, SimilarityKind kind)
{
    cegma_assert(x.cols() == y.cols());
    Matrix s = matmulNT(x, y);

    switch (kind) {
      case SimilarityKind::DotProduct:
        break;
      case SimilarityKind::Cosine: {
        // Precompute 1/norm per row once instead of a divide per cell;
        // a zero-norm row gets inverse 0, so its cells come out 0
        // exactly as the old `denom > 0` guard produced.
        Matrix nx = rowL2Norms(x);
        Matrix ny = rowL2Norms(y);
        std::vector<float> inv_nx(s.rows()), inv_ny(s.cols());
        for (size_t i = 0; i < s.rows(); ++i)
            inv_nx[i] = nx.at(i, 0) > 0.0f ? 1.0f / nx.at(i, 0) : 0.0f;
        for (size_t j = 0; j < s.cols(); ++j)
            inv_ny[j] = ny.at(j, 0) > 0.0f ? 1.0f / ny.at(j, 0) : 0.0f;
        size_t grain = grainForRows(s.rows(), 2 * s.cols());
        parallelFor(0, s.rows(), grain, [&](size_t r0, size_t r1) {
            for (size_t i = r0; i < r1; ++i) {
                float *srow = s.row(i);
                float ix = inv_nx[i];
                for (size_t j = 0; j < s.cols(); ++j)
                    srow[j] *= ix * inv_ny[j];
            }
        });
        break;
      }
      case SimilarityKind::Euclidean: {
        Matrix sx = rowSquaredNorms(x);
        Matrix sy = rowSquaredNorms(y);
        size_t grain = grainForRows(s.rows(), 3 * s.cols());
        parallelFor(0, s.rows(), grain, [&](size_t r0, size_t r1) {
            for (size_t i = r0; i < r1; ++i) {
                float *srow = s.row(i);
                float sxi = sx.at(i, 0);
                for (size_t j = 0; j < s.cols(); ++j)
                    srow[j] = 2.0f * srow[j] - sxi - sy.at(j, 0);
            }
        });
        break;
      }
    }
    return s;
}

uint64_t
similarityFlops(uint64_t n, uint64_t m, uint64_t f, SimilarityKind kind)
{
    uint64_t base = 2 * n * m * f; // the X Y^T MACs
    switch (kind) {
      case SimilarityKind::DotProduct:
        return base;
      case SimilarityKind::Cosine:
        // Row norms (2f MACs per row) + one divide and multiply per cell.
        return base + 2 * f * (n + m) + 2 * n * m;
      case SimilarityKind::Euclidean:
        return base + 2 * f * (n + m) + 3 * n * m;
    }
    return base;
}

} // namespace cegma
