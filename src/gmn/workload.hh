/**
 * @file
 * Workload traces: the platform-independent description of one GMN
 * inference that the cycle-level simulators consume (the paper's
 * "trace-driven" methodology, Section V-A).
 *
 * A trace records, per layer and per graph side, the FLOPs of the
 * aggregation and combination phases, the matching work, and — the key
 * EMF input — the per-node duplicate classes at the feature level each
 * matching consumes, computed by the exact WL oracle (graph/wl_refine).
 */

#ifndef CEGMA_GMN_WORKLOAD_HH
#define CEGMA_GMN_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "gmn/model.hh"
#include "graph/dataset.hh"

namespace cegma {

/** One graph side's embedding work within one layer. */
struct EmbedWork
{
    uint64_t aggFlops = 0;  ///< aggregation (incl.\ MGNN edge MLP)
    uint64_t combFlops = 0; ///< combination / update MLP
    size_t fIn = 0;         ///< input feature width
    size_t fOut = 0;        ///< output feature width
};

/** The cross-graph matching work within one layer. */
struct MatchingWork
{
    bool present = false;
    size_t dim = 0;            ///< feature width entering the matching
    uint64_t simFlops = 0;     ///< full (un-deduplicated) similarity
    uint64_t crossFlops = 0;   ///< GMN-Li attention-message FLOPs

    /** WL class of each target node at the matching's feature level. */
    std::vector<uint32_t> dupClassTarget;
    /** WL class of each query node at the matching's feature level. */
    std::vector<uint32_t> dupClassQuery;
    uint32_t numUniqueTarget = 0;
    uint32_t numUniqueQuery = 0;

    /** All-to-all matching pairs n*m. */
    uint64_t totalPairs() const;

    /** Pairs surviving the EMF: uniqueTarget * uniqueQuery. */
    uint64_t uniquePairs() const;

    /**
     * FLOPs of the EMF-skipped similarity: the dense kernel charged on
     * the `uniqueTarget x uniqueQuery` block only (`uniquePairs()`
     * pairs — the same pairs the cycle model credits the EMF for), via
     * `similarityFlopsDedup`.
     */
    uint64_t dedupSimFlops(SimilarityKind kind) const;

    /**
     * FLOPs of the EMF-skipped GMN-Li cross messages: each direction's
     * softmax/weighted-sum/subtract terms charged on that side's
     * unique rows only (full-width rows — the partner dimension does
     * not shrink). Zero when the matching has no cross feedback.
     */
    uint64_t dedupCrossFlops() const;
};

/** One GMN layer's work. */
struct LayerWork
{
    EmbedWork embedTarget;
    EmbedWork embedQuery;
    MatchingWork matching;
};

/** A full per-pair workload trace. */
struct PairTrace
{
    ModelId model = ModelId::GraphSim;
    const GraphPair *pair = nullptr;
    uint64_t encodeFlops = 0; ///< input feature encoder
    uint64_t postFlops = 0;   ///< readout / CNN / NTN / MLP head
    std::vector<LayerWork> layers;

    uint64_t aggFlopsTotal() const;
    uint64_t combFlopsTotal() const;
    uint64_t matchFlopsTotal() const; ///< sim + cross, all layers
    uint64_t totalFlops() const;

    /**
     * Matching FLOPs under EMF-skipped execution (deduped similarity +
     * deduped cross messages, all layers) — what the elastic software
     * path actually computes.
     */
    uint64_t dedupMatchFlopsTotal() const;

    uint64_t totalMatchPairs() const;
    uint64_t uniqueMatchPairs() const;

    /** Fraction of matching surviving the EMF (Fig. 18 metric). */
    double uniqueMatchingFraction() const;
};

/**
 * Build the workload trace of running model `id` on `pair`.
 *
 * Structure-only: no floating-point forward pass is run; duplicate
 * classes come from the WL oracle, which tests validate against the
 * functional models' bitwise feature equality.
 *
 * @param memo optional cross-pair cache: WL colorings are memoized by
 *        graph content, so a graph appearing in many pairs is refined
 *        once (the dominant trace-building cost). Thread-safe — pass
 *        the same cache from a parallel `buildTraces`.
 */
PairTrace buildTrace(ModelId id, const GraphPair &pair,
                     MemoCache *memo = nullptr);

/**
 * Build a trace for a *custom* model configuration — any layer count,
 * feature width, similarity function, matching mode (layer-wise vs
 * model-wise), and backbone (GCN, or MGNN when crossFeedback is set).
 * This is the API for exploring design points beyond the three Table I
 * models (e.g.\ the layer-wise vs model-wise matching ablation).
 */
PairTrace buildCustomTrace(const ModelConfig &config,
                           const GraphPair &pair,
                           MemoCache *memo = nullptr);

} // namespace cegma

#endif // CEGMA_GMN_WORKLOAD_HH
