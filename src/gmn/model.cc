#include "gmn/model.hh"

#include "common/logging.hh"

namespace cegma {

const std::vector<ModelId> &
allModels()
{
    static const std::vector<ModelId> ids = {
        ModelId::GmnLi, ModelId::GraphSim, ModelId::SimGnn,
    };
    return ids;
}

const ModelConfig &
modelConfig(ModelId id)
{
    static const ModelConfig configs[] = {
        // GMN-Li: 5 x (MGNN[64,64,64], MATCHING[64,64], MLP(64*3,64,64)),
        // euclidean similarity, matching feeds each layer's update.
        {ModelId::GmnLi, "GMN-Li", SimilarityKind::Euclidean, 5, 64, true,
         true, MatchUse::OnChipReuse},
        // GraphSim: 3 x (GCN[1,64], SIM[64,1]) + CNN branches, cosine.
        {ModelId::GraphSim, "GraphSim", SimilarityKind::Cosine, 3, 64,
         true, false, MatchUse::WriteBack},
        // SimGNN: 3 x GCN + last-layer SIM + READOUT/NTN head, dot.
        {ModelId::SimGnn, "SimGNN", SimilarityKind::DotProduct, 3, 64,
         false, false, MatchUse::WriteBack},
    };
    for (const auto &config : configs) {
        if (config.id == id)
            return config;
    }
    panic("unknown model id %d", static_cast<int>(id));
}

double
GmnModel::score(GraphPairView pair) const
{
    return forwardDetailed(pair).score;
}

std::unique_ptr<GmnModel>
makeModel(ModelId id, uint64_t seed)
{
    switch (id) {
      case ModelId::GmnLi:
        return makeGmnLi(seed);
      case ModelId::GraphSim:
        return makeGraphSim(seed);
      case ModelId::SimGnn:
        return makeSimGnn(seed);
    }
    panic("unknown model id %d", static_cast<int>(id));
}

Matrix
initialFeatures(const Graph &g)
{
    Matrix x(g.numNodes(), 1);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        x.at(v, 0) = static_cast<float>(g.label(v) + 1);
    return x;
}

} // namespace cegma
