/**
 * @file
 * Cross-graph node similarity functions (paper Equation 2).
 *
 * S = X Y^T / K with the paper's three variants:
 *  - dot product: K = 1
 *  - cosine:      K_ij = ||X_i|| * ||Y_j||
 *  - euclidean:   scaled dot product further normalized by the squared
 *    row magnitudes, yielding the negative squared distance
 *    S_ij = 2 X_i.Y_j - ||X_i||^2 - ||Y_j||^2  (per [24])
 */

#ifndef CEGMA_GMN_SIMILARITY_HH
#define CEGMA_GMN_SIMILARITY_HH

#include <cstdint>
#include <string>

#include "tensor/matrix.hh"

namespace cegma {

/** Similarity function selector (Table I, "Similarity" column). */
enum class SimilarityKind
{
    DotProduct,
    Cosine,
    Euclidean,
};

/** @return display name ("dot-product", "cosine", "euclidean"). */
const char *similarityName(SimilarityKind kind);

/**
 * Compute the (n x m) similarity matrix between node features
 * X (n x f) and Y (m x f).
 */
Matrix similarityMatrix(const Matrix &x, const Matrix &y,
                        SimilarityKind kind);

/**
 * FLOPs for an (n x m) similarity over f-wide features, including the
 * normalization of the chosen variant.
 */
uint64_t similarityFlops(uint64_t n, uint64_t m, uint64_t f,
                         SimilarityKind kind);

} // namespace cegma

#endif // CEGMA_GMN_SIMILARITY_HH
