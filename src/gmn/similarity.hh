/**
 * @file
 * Cross-graph node similarity functions (paper Equation 2).
 *
 * S = X Y^T / K with the paper's three variants:
 *  - dot product: K = 1
 *  - cosine:      K_ij = ||X_i|| * ||Y_j||
 *  - euclidean:   scaled dot product further normalized by the squared
 *    row magnitudes, yielding the negative squared distance
 *    S_ij = 2 X_i.Y_j - ||X_i||^2 - ||Y_j||^2  (per [24])
 */

#ifndef CEGMA_GMN_SIMILARITY_HH
#define CEGMA_GMN_SIMILARITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "emf/emf.hh"
#include "tensor/matrix.hh"

namespace cegma {

/** Similarity function selector (Table I, "Similarity" column). */
enum class SimilarityKind
{
    DotProduct,
    Cosine,
    Euclidean,
};

/** @return display name ("dot-product", "cosine", "euclidean"). */
const char *similarityName(SimilarityKind kind);

/**
 * Compute the (n x m) similarity matrix between node features
 * X (n x f) and Y (m x f).
 */
Matrix similarityMatrix(const Matrix &x, const Matrix &y,
                        SimilarityKind kind);

/**
 * FLOPs for an (n x m) similarity over f-wide features, including the
 * normalization of the chosen variant.
 */
uint64_t similarityFlops(uint64_t n, uint64_t m, uint64_t f,
                         SimilarityKind kind);

/**
 * FLOPs for the deduplicated similarity: the arithmetic runs on the
 * `u_n x u_m` unique-row block only (the same count `similarityFlops`
 * would charge that block); the scatter back to n x m is pure copies
 * and contributes zero FLOPs. This is the software analogue of
 * `MatchingWork::uniquePairs()` — both charge u_n * u_m pairs.
 */
uint64_t similarityFlopsDedup(uint64_t n, uint64_t m, uint64_t u_n,
                              uint64_t u_m, uint64_t f,
                              SimilarityKind kind);

/**
 * A *confirmed* row-deduplication map: which rows of a feature matrix
 * carry distinct bit patterns, and which unique row each original row
 * aliases. Unlike a raw `EmfResult` (hash tags only), every duplicate
 * claim has been verified with `memcmp`, so a 32-bit tag collision can
 * never alias two distinct rows — the property that keeps every dedup
 * execution path bit-identical to its dense counterpart.
 */
struct DedupMap
{
    /** Original row index of each unique row, in first-seen order. */
    std::vector<uint32_t> uniqueRows;

    /** Per original row: its row index in the gathered unique block. */
    std::vector<uint32_t> repOf;

    uint32_t numUnique() const
    {
        return static_cast<uint32_t>(uniqueRows.size());
    }

    bool anyDuplicates() const
    {
        return uniqueRows.size() < repOf.size();
    }
};

/**
 * Confirm an EMF pass against the feature rows it hashed: every
 * tag-match is re-checked with `memcmp`, and a colliding row (equal
 * tag, different bits) is promoted to a unique row of its own (or
 * mapped to an earlier promoted row it bitwise equals).
 *
 * @param features the matrix `emf` was computed over
 * @param emf the EMF outcome for `features` (`uniqueOf` must point
 *        backwards: a duplicate's representative precedes it)
 */
DedupMap confirmDedup(const Matrix &features, const EmfResult &emf);

/** Gather `rows` of `m` into a new `rows.size() x m.cols()` matrix. */
Matrix gatherRows(const Matrix &m, const std::vector<uint32_t> &rows);

/**
 * Expand a unique-row block back to one row per original index:
 * `out.row(i) = block.row(map.repOf[i])`.
 */
Matrix scatterRows(const Matrix &block, const DedupMap &map);

/**
 * EMF-skipped similarity (the paper's Algorithm 1 executed in
 * software): gather the unique rows of both sides, run the dense
 * similarity kernel on the `u_n x u_m` block only, and scatter the
 * block back through the dedup maps.
 *
 * Bit-identical to `similarityMatrix(x, y, kind)`: every similarity
 * cell is a deterministic function of exactly one x-row and one y-row
 * (fixed-order dot product and per-row norms), so copying a
 * representative's cell reproduces the dense cell exactly — and the
 * `memcmp` confirm in `confirmDedup` guarantees representatives really
 * are bitwise equal to the rows they stand for.
 */
Matrix similarityMatrixDedup(const Matrix &x, const Matrix &y,
                             SimilarityKind kind, const DedupMap &dx,
                             const DedupMap &dy);

/**
 * Convenience overload taking the two sides' raw EMF outcomes; runs
 * the `memcmp` confirm internally.
 */
Matrix similarityMatrixDedup(const Matrix &x, const Matrix &y,
                             SimilarityKind kind, const EmfResult &ex,
                             const EmfResult &ey);

/**
 * One-call form: hash both sides (EMF Algorithm 1), confirm, and run
 * the dedup similarity.
 */
Matrix similarityMatrixDedup(const Matrix &x, const Matrix &y,
                             SimilarityKind kind);

} // namespace cegma

#endif // CEGMA_GMN_SIMILARITY_HH
