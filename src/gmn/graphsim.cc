/**
 * @file
 * GraphSim [5]: three GCN layers, per-layer cosine similarity matrices
 * fed through CNN branches, and an MLP head over the concatenated CNN
 * features (Table I row 2).
 */

#include "common/rng.hh"
#include "gmn/model.hh"
#include "graph/wl_refine.hh"
#include "nn/cnn.hh"
#include "nn/gcn.hh"
#include "nn/linear.hh"

namespace cegma {

namespace {

class GraphSimModel : public GmnModel
{
  public:
    explicit GraphSimModel(uint64_t seed)
        : GmnModel(modelConfig(ModelId::GraphSim)), rng_(seed),
          encoder_(1, config_.nodeDim, rng_, Activation::Tanh),
          head_({128ul * 3, 128, 64, 32, 16, 1}, rng_, Activation::Sigmoid)
    {
        for (unsigned l = 0; l < config_.numLayers; ++l) {
            layers_.emplace_back(config_.nodeDim, config_.nodeDim, rng_);
            cnns_.emplace_back(std::vector<size_t>{1, 16, 32, 64, 128},
                               16, rng_);
        }
    }

    Detail forwardDetailed(const GraphPair &pair) const override;

  private:
    mutable Rng rng_;
    Linear encoder_;
    std::vector<GcnLayer> layers_;
    std::vector<CnnStack> cnns_;
    Mlp head_;
};

GmnModel::Detail
GraphSimModel::forwardDetailed(const GraphPair &pair) const
{
    Detail detail;
    WlColoring wl_t = wlRefine(pair.target, config_.numLayers);
    WlColoring wl_q = wlRefine(pair.query, config_.numLayers);

    Matrix x = encoder_.forward(initialFeatures(pair.target));
    Matrix y = encoder_.forward(initialFeatures(pair.query));
    detail.xLayers.push_back(x);
    detail.yLayers.push_back(y);

    std::vector<Matrix> branch_feats;
    for (unsigned l = 0; l < config_.numLayers; ++l) {
        x = layers_[l].forward(pair.target, x, wl_t.signatures[l]);
        y = layers_[l].forward(pair.query, y, wl_q.signatures[l]);
        detail.xLayers.push_back(x);
        detail.yLayers.push_back(y);

        Matrix s = similarityMatrix(x, y, config_.similarity);
        branch_feats.push_back(cnns_[l].forward(s));
        detail.simLayers.push_back(std::move(s));
    }

    std::vector<const Matrix *> parts;
    for (const Matrix &feat : branch_feats)
        parts.push_back(&feat);
    Matrix head_in = hconcat(parts);
    Matrix out = head_.forward(head_in);
    detail.score = out.at(0, 0);
    return detail;
}

} // namespace

std::unique_ptr<GmnModel>
makeGraphSim(uint64_t seed)
{
    return std::make_unique<GraphSimModel>(seed);
}

} // namespace cegma
