/**
 * @file
 * GraphSim [5]: three GCN layers, per-layer cosine similarity matrices
 * fed through CNN branches, and an MLP head over the concatenated CNN
 * features (Table I row 2).
 */

#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "graph/wl_refine.hh"
#include "nn/cnn.hh"
#include "nn/gcn.hh"
#include "nn/linear.hh"
#include "obs/trace.hh"

namespace cegma {

namespace {

class GraphSimModel : public GmnModel
{
  public:
    explicit GraphSimModel(uint64_t seed)
        : GmnModel(modelConfig(ModelId::GraphSim)), rng_(seed),
          encoder_(1, config_.nodeDim, rng_, Activation::Tanh),
          head_({128ul * 3, 128, 64, 32, 16, 1}, rng_, Activation::Sigmoid)
    {
        for (unsigned l = 0; l < config_.numLayers; ++l) {
            layers_.emplace_back(config_.nodeDim, config_.nodeDim, rng_);
            cnns_.emplace_back(std::vector<size_t>{1, 16, 32, 64, 128},
                               16, rng_);
        }
    }

    Detail forwardDetailed(GraphPairView pair) const override;

    std::shared_ptr<const GraphEmbedding>
    graphEmbedding(const Graph &g) const override
    {
        return embedCached(g);
    }

  private:
    /** The per-graph embedding chain (encoder + all GCN layers). */
    GraphEmbedding
    embedSide(const Graph &g) const
    {
        GraphEmbedding embed;
        WlColoring wl = wlRefine(g, config_.numLayers);
        Matrix x = encoder_.forward(initialFeatures(g));
        embed.layers.push_back(x);
        for (unsigned l = 0; l < config_.numLayers; ++l) {
            x = layers_[l].forward(g, x, wl.signatures[l]);
            embed.layers.push_back(x);
        }
        return embed;
    }

    /** Run `embedSide` through the memo cache when one is usable. */
    std::shared_ptr<const GraphEmbedding>
    embedCached(const Graph &g) const
    {
        if (MemoCache *memo = embeddingMemo()) {
            return memo->embedding(g, [&] { return embedSide(g); });
        }
        return std::make_shared<const GraphEmbedding>(embedSide(g));
    }

    mutable Rng rng_;
    Linear encoder_;
    std::vector<GcnLayer> layers_;
    std::vector<CnnStack> cnns_;
    Mlp head_;
};

GmnModel::Detail
GraphSimModel::forwardDetailed(GraphPairView pair) const
{
    Detail detail;
    std::shared_ptr<const GraphEmbedding> et, eq;
    {
        obs::StageScope stage("embed",
                              stageHist(&obs::StageSink::embedUs),
                              &obs::StageAccum::embedNs);
        et = embedCached(pair.target);
        eq = embedCached(pair.query);
    }
    detail.xLayers = et->layers;
    detail.yLayers = eq->layers;

    std::vector<Matrix> branch_feats;
    for (unsigned l = 0; l < config_.numLayers; ++l) {
        const Matrix &x = et->layers[l + 1];
        const Matrix &y = eq->layers[l + 1];
        Matrix s;
        if (infer_.dedupMatching) {
            DedupMap dx, dy;
            {
                obs::StageScope stage(
                    "dedup", stageHist(&obs::StageSink::dedupUs),
                    &obs::StageAccum::dedupNs);
                dx = confirmDedup(x, emfFilter(x));
                dy = confirmDedup(y, emfFilter(y));
            }
            noteDedup(x.rows(), dx.numUnique());
            noteDedup(y.rows(), dy.numUnique());
            obs::StageScope stage("match",
                                  stageHist(&obs::StageSink::matchUs),
                                  &obs::StageAccum::matchNs);
            s = similarityMatrixDedup(x, y, config_.similarity, dx, dy);
        } else {
            obs::StageScope stage("match",
                                  stageHist(&obs::StageSink::matchUs),
                                  &obs::StageAccum::matchNs);
            s = similarityMatrix(x, y, config_.similarity);
        }
        {
            obs::StageScope stage("head",
                                  stageHist(&obs::StageSink::headUs),
                                  &obs::StageAccum::headNs);
            branch_feats.push_back(cnns_[l].forward(s));
        }
        detail.simLayers.push_back(std::move(s));
    }

    obs::StageScope stage("head", stageHist(&obs::StageSink::headUs),
                          &obs::StageAccum::headNs);
    std::vector<const Matrix *> parts;
    for (const Matrix &feat : branch_feats)
        parts.push_back(&feat);
    Matrix head_in = hconcat(parts);
    Matrix out = head_.forward(head_in);
    detail.score = out.at(0, 0);
    return detail;
}

} // namespace

std::unique_ptr<GmnModel>
makeGraphSim(uint64_t seed)
{
    return std::make_unique<GraphSimModel>(seed);
}

} // namespace cegma
