/**
 * @file
 * The Approximate Outlier Estimation unit (paper Algorithm 2 and
 * Fig. 13): Remains Counters tally each resident node's unprocessed
 * edges from the edge buffer, a comparator tree tracks the minimum
 * (the outlier threshold), and the Outlier Counters tally how many
 * nodes of each window side sit at that minimum. The side with more
 * outliers is kept stationary.
 *
 * This is the single implementation of Algorithm 2: the coordinated
 * window scheduler calls it functionally, and the accelerator model
 * charges its cycle cost (Table III: 8-input parallel counter x34,
 * 8-bit magnitude comparator x33).
 */

#ifndef CEGMA_ACCEL_AOE_UNIT_HH
#define CEGMA_ACCEL_AOE_UNIT_HH

#include <cstdint>
#include <vector>

namespace cegma {

/** Hardware parameters of the AOE unit (Table III row "CGC"). */
struct AoeUnitConfig
{
    uint32_t parallelCounters = 34; ///< 8-input parallel counters
    uint32_t counterInputs = 8;
    uint32_t magnitudeComparators = 33;
};

/** One Algorithm 2 evaluation. */
struct AoeDecision
{
    bool keepTarget = true;  ///< true: target side stationary
    uint32_t threshold = 0;  ///< minimum remaining degree observed
    uint32_t outliersTarget = 0;
    uint32_t outliersQuery = 0;
    uint64_t cycles = 0;     ///< AOE-unit latency for this decision
};

/**
 * Run Algorithm 2 over the remaining-degree values of the two
 * resident window sides.
 *
 * @param remains_target remaining edges per resident target node (S0)
 * @param remains_query remaining edges per resident query node (S1)
 * @param config hardware parameters (for the cycle estimate)
 */
AoeDecision evaluateAoe(const std::vector<uint32_t> &remains_target,
                        const std::vector<uint32_t> &remains_query,
                        const AoeUnitConfig &config = {});

} // namespace cegma

#endif // CEGMA_ACCEL_AOE_UNIT_HH
