#include "accel/aoe_unit.hh"

#include "common/logging.hh"

namespace cegma {

AoeDecision
evaluateAoe(const std::vector<uint32_t> &remains_target,
            const std::vector<uint32_t> &remains_query,
            const AoeUnitConfig &config)
{
    cegma_assert(config.parallelCounters > 0 && config.counterInputs > 0);
    AoeDecision decision;

    // Algorithm 2: a single pass tracking the minimum remaining degree
    // and resetting the per-side outlier counters when it drops.
    uint32_t threshold = UINT32_MAX;
    uint32_t n_t = 0, n_q = 0;
    auto scan = [&](const std::vector<uint32_t> &remains,
                    bool query_side) {
        for (uint32_t r : remains) {
            if (r < threshold) {
                threshold = r;
                n_t = query_side ? 0 : 1;
                n_q = query_side ? 1 : 0;
            } else if (r == threshold) {
                if (query_side) {
                    ++n_q;
                } else {
                    ++n_t;
                }
            }
        }
    };
    scan(remains_target, false);
    scan(remains_query, true);

    decision.threshold = (threshold == UINT32_MAX) ? 0 : threshold;
    decision.outliersTarget = n_t;
    decision.outliersQuery = n_q;
    // Keep stationary the side with more outliers: those nodes finish
    // their matching and never need to be revisited.
    decision.keepTarget = n_t >= n_q;

    // Cycle estimate: the Remains Counters consume the edge-buffer
    // rows counterInputs bits per counter per cycle; the comparator
    // tree and Outlier Counters pipeline behind them one value per
    // comparator per cycle.
    uint64_t total = remains_target.size() + remains_query.size();
    uint64_t row_bits = total; // a window row spans both sides
    uint64_t count_passes =
        (total + config.parallelCounters - 1) / config.parallelCounters;
    uint64_t bits_cycles =
        (row_bits + config.counterInputs - 1) / config.counterInputs;
    uint64_t compare_cycles =
        (total + config.magnitudeComparators - 1) /
        config.magnitudeComparators;
    decision.cycles = count_passes * bits_cycles + compare_cycles + 1;
    return decision;
}

} // namespace cegma
