/**
 * @file
 * Analytical latency models for the software baselines (PyG-CPU and
 * PyG-GPU, Section V-A). These stand in for the paper's measured
 * PyTorch-Geometric runs: each framework operator costs a fixed launch
 * overhead plus the roofline maximum of compute time (with a
 * size-dependent utilization ramp — small kernels underutilize wide
 * machines) and memory time. Constants are calibrated so the paper's
 * cross-platform ratios hold in shape (see EXPERIMENTS.md).
 */

#ifndef CEGMA_ACCEL_PLATFORM_HH
#define CEGMA_ACCEL_PLATFORM_HH

#include <string>
#include <vector>

#include "gmn/workload.hh"
#include "sim/result.hh"

namespace cegma {

/** An analytical software platform. */
struct SoftwarePlatform
{
    std::string name;
    double peakFlops;       ///< machine peak, FLOP/s
    double memBandwidth;    ///< effective bytes/s
    double kernelOverhead;  ///< seconds per operator launch
    double utilHalfFlops;   ///< op FLOPs at which the ramp saturates
    /**
     * Ceiling on achieved utilization. PyG's interpreter-driven,
     * gather/scatter-heavy execution never approaches machine peak on
     * GMN workloads; the ceiling is calibrated to the paper's
     * Figure 2 anchors (V100: ~33 ms at 1,000 nodes, ~671 ms at
     * 5,000 nodes for GMN-Li).
     */
    double utilCap;

    /** Time for one operator of `flops` work moving `bytes`. */
    double opSeconds(double flops, double bytes) const;

    /**
     * Run a batch of pairs (one operator launch covers the whole
     * batch, as PyG's batched execution does). Returns a SimResult
     * whose `cycles` field is seconds * 1e9 (a 1 GHz-equivalent cycle
     * count, so downstream speedup math is uniform).
     */
    SimResult runBatch(const std::vector<const PairTrace *> &batch) const;

    /** Run all traces in batches of `batch_size`. */
    SimResult runAll(const std::vector<PairTrace> &traces,
                     uint32_t batch_size = 32) const;
};

/** Dual 12-core Xeon Gold 6126 with MKL/OpenMP PyG (Table III). */
SoftwarePlatform pygCpuPlatform();

/** NVIDIA V100 with cuSPARSE/cuBLAS PyG (Table III). */
SoftwarePlatform pygGpuPlatform();

} // namespace cegma

#endif // CEGMA_ACCEL_PLATFORM_HH
