#include "accel/runner.hh"

#include <chrono>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gmn/memo.hh"
#include "obs/trace.hh"

namespace cegma {

const char *
platformName(PlatformId id)
{
    switch (id) {
      case PlatformId::PygCpu:
        return "PyG-CPU";
      case PlatformId::PygGpu:
        return "PyG-GPU";
      case PlatformId::HyGcn:
        return "HyGCN";
      case PlatformId::AwbGcn:
        return "AWB-GCN";
      case PlatformId::CegmaEmf:
        return "CEGMA-EMF";
      case PlatformId::CegmaCgc:
        return "CEGMA-CGC";
      case PlatformId::Cegma:
        return "CEGMA";
    }
    return "?";
}

const std::vector<PlatformId> &
mainPlatforms()
{
    static const std::vector<PlatformId> ids = {
        PlatformId::PygCpu, PlatformId::PygGpu, PlatformId::HyGcn,
        PlatformId::AwbGcn, PlatformId::Cegma,
    };
    return ids;
}

std::vector<PairTrace>
buildTraces(ModelId model, const Dataset &dataset, uint32_t max_pairs)
{
    size_t count = dataset.pairs.size();
    if (max_pairs > 0)
        count = std::min<size_t>(count, max_pairs);
    CEGMA_TRACE_SCOPE("buildTraces");
    std::vector<PairTrace> traces(count);
    // Pair-level parallelism: each chunk writes its own trace slots,
    // and the WL memoization behind `buildTrace` is mutex-protected
    // (duplicate builds race benignly — wlRefine is deterministic).
    MemoCache memo;
    parallelFor(0, count, 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            traces[i] = buildTrace(model, dataset.pairs[i], &memo);
    });
    return traces;
}

FunctionalResult
runFunctional(ModelId model, const Dataset &dataset,
              const FunctionalOptions &options, uint32_t max_pairs)
{
    size_t count = dataset.pairs.size();
    if (max_pairs > 0)
        count = std::min<size_t>(count, max_pairs);

    auto gmn = makeModel(model, options.modelSeed);
    MemoCache memo(MemoConfig{options.memoBytes, options.memoShards});
    DedupStats dedup_stats;
    InferenceOptions infer;
    infer.dedupMatching = options.dedup;
    infer.memo = options.memo ? &memo : nullptr;
    infer.dedupStats = options.dedup ? &dedup_stats : nullptr;
    gmn->setInferenceOptions(infer);

    FunctionalResult result;
    result.scores.resize(count);
    // Pairs run serially; the kernels inside each forward pass already
    // spread over the thread pool, so the wall clock is an honest
    // whole-machine measurement for every knob combination.
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < count; ++i) {
        CEGMA_TRACE_SCOPE("pair.score");
        result.scores[i] = gmn->score(dataset.pairs[i]);
    }
    result.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    result.memoHits = memo.hits();
    result.memoMisses = memo.misses();
    result.memoEvictions = memo.evictions();
    result.memoBytes = memo.bytes();
    result.dedupRowsTotal = dedup_stats.rowsTotal.value();
    result.dedupRowsUnique = dedup_stats.rowsUnique.value();
    return result;
}

SimResult
runPlatform(PlatformId platform, const std::vector<PairTrace> &traces,
            uint32_t batch_size)
{
    switch (platform) {
      case PlatformId::PygCpu:
        return pygCpuPlatform().runAll(traces, batch_size);
      case PlatformId::PygGpu:
        return pygGpuPlatform().runAll(traces, batch_size);
      case PlatformId::HyGcn:
        return AcceleratorModel(hygcnConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::AwbGcn:
        return AcceleratorModel(awbGcnConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::CegmaEmf:
        return AcceleratorModel(cegmaEmfOnlyConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::CegmaCgc:
        return AcceleratorModel(cegmaCgcOnlyConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::Cegma:
        return AcceleratorModel(cegmaConfig())
            .simulateAll(traces, batch_size);
    }
    panic("unknown platform");
}

} // namespace cegma
