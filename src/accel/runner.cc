#include "accel/runner.hh"

#include "common/logging.hh"

namespace cegma {

const char *
platformName(PlatformId id)
{
    switch (id) {
      case PlatformId::PygCpu:
        return "PyG-CPU";
      case PlatformId::PygGpu:
        return "PyG-GPU";
      case PlatformId::HyGcn:
        return "HyGCN";
      case PlatformId::AwbGcn:
        return "AWB-GCN";
      case PlatformId::CegmaEmf:
        return "CEGMA-EMF";
      case PlatformId::CegmaCgc:
        return "CEGMA-CGC";
      case PlatformId::Cegma:
        return "CEGMA";
    }
    return "?";
}

const std::vector<PlatformId> &
mainPlatforms()
{
    static const std::vector<PlatformId> ids = {
        PlatformId::PygCpu, PlatformId::PygGpu, PlatformId::HyGcn,
        PlatformId::AwbGcn, PlatformId::Cegma,
    };
    return ids;
}

std::vector<PairTrace>
buildTraces(ModelId model, const Dataset &dataset, uint32_t max_pairs)
{
    size_t count = dataset.pairs.size();
    if (max_pairs > 0)
        count = std::min<size_t>(count, max_pairs);
    std::vector<PairTrace> traces;
    traces.reserve(count);
    for (size_t i = 0; i < count; ++i)
        traces.push_back(buildTrace(model, dataset.pairs[i]));
    return traces;
}

SimResult
runPlatform(PlatformId platform, const std::vector<PairTrace> &traces,
            uint32_t batch_size)
{
    switch (platform) {
      case PlatformId::PygCpu:
        return pygCpuPlatform().runAll(traces, batch_size);
      case PlatformId::PygGpu:
        return pygGpuPlatform().runAll(traces, batch_size);
      case PlatformId::HyGcn:
        return AcceleratorModel(hygcnConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::AwbGcn:
        return AcceleratorModel(awbGcnConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::CegmaEmf:
        return AcceleratorModel(cegmaEmfOnlyConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::CegmaCgc:
        return AcceleratorModel(cegmaCgcOnlyConfig())
            .simulateAll(traces, batch_size);
      case PlatformId::Cegma:
        return AcceleratorModel(cegmaConfig())
            .simulateAll(traces, batch_size);
    }
    panic("unknown platform");
}

} // namespace cegma
