/**
 * @file
 * Convenience layer used by the benchmark harnesses and examples:
 * build traces for a dataset and run them on any evaluated platform.
 */

#ifndef CEGMA_ACCEL_RUNNER_HH
#define CEGMA_ACCEL_RUNNER_HH

#include <vector>

#include "accel/accelerator.hh"
#include "accel/platform.hh"
#include "gmn/workload.hh"

namespace cegma {

/** Every platform in the paper's evaluation. */
enum class PlatformId
{
    PygCpu,
    PygGpu,
    HyGcn,
    AwbGcn,
    CegmaEmf, ///< ablation: EMF only
    CegmaCgc, ///< ablation: CGC only
    Cegma,
};

/** @return display name matching the paper's figures. */
const char *platformName(PlatformId id);

/** The five platforms of Figure 16, in presentation order. */
const std::vector<PlatformId> &mainPlatforms();

/**
 * Build traces of `model` over the dataset's pairs. Pair-level
 * parallel over the shared thread pool, with WL colorings memoized by
 * graph content across pairs (a graph appearing in many pairs is
 * refined once). Output is bit-identical to the serial per-pair path.
 *
 * @param max_pairs if nonzero, use only the first `max_pairs` pairs
 * @note the returned traces point into `dataset`; keep it alive.
 */
std::vector<PairTrace> buildTraces(ModelId model, const Dataset &dataset,
                                   uint32_t max_pairs = 0);

/** Elastic execution knobs for `runFunctional`. */
struct FunctionalOptions
{
    bool dedup = false; ///< EMF-skipped similarity (+ cross messages)
    bool memo = false;  ///< cross-pair WL / embedding memoization
    uint64_t modelSeed = 1234; ///< weight seed for the model build

    /** Memo byte budget (0 = unbounded) and shard count. */
    size_t memoBytes = 0;
    uint32_t memoShards = 8;
};

/** Outcome of a functional (wall-clock) inference run. */
struct FunctionalResult
{
    std::vector<double> scores; ///< per-pair similarity scores
    double wallMs = 0.0;        ///< wall-clock of the scoring loop
    size_t memoHits = 0;        ///< cache hits (memo mode only)
    size_t memoMisses = 0;      ///< cache misses (memo mode only)
    size_t memoEvictions = 0;   ///< entries evicted (bounded memo only)
    size_t memoBytes = 0;       ///< resident cache bytes at the end

    /** Matching rows entering / surviving dedup (dedup mode only). */
    uint64_t dedupRowsTotal = 0;
    uint64_t dedupRowsUnique = 0;

    double msPerPair() const
    {
        return scores.empty() ? 0.0
                              : wallMs / static_cast<double>(scores.size());
    }

    /** Memo hit rate over all lookups (0 when memo was off). */
    double memoHitRate() const
    {
        size_t lookups = memoHits + memoMisses;
        return lookups > 0 ? static_cast<double>(memoHits) /
                                 static_cast<double>(lookups)
                           : 0.0;
    }

    /** Fraction of matching rows the EMF skip elided. */
    double dedupSkipRatio() const
    {
        return dedupRowsTotal > 0
                   ? 1.0 - static_cast<double>(dedupRowsUnique) /
                               static_cast<double>(dedupRowsTotal)
                   : 0.0;
    }
};

/**
 * Run the *functional* model end to end over the dataset's pairs —
 * the software-baseline counterpart of the cycle simulators, and the
 * target of the elastic dedup runtime. Scores (and every intermediate
 * feature and similarity matrix) are bit-identical across all four
 * knob combinations; only the wall clock moves.
 *
 * @param max_pairs if nonzero, score only the first `max_pairs` pairs
 */
FunctionalResult runFunctional(ModelId model, const Dataset &dataset,
                               const FunctionalOptions &options = {},
                               uint32_t max_pairs = 0);

/**
 * Run `traces` on `platform`. All platforms report `cycles` on a
 * 1 GHz-equivalent basis, so latency and speedup comparisons are
 * uniform across hardware and software models.
 */
SimResult runPlatform(PlatformId platform,
                      const std::vector<PairTrace> &traces,
                      uint32_t batch_size = 32);

} // namespace cegma

#endif // CEGMA_ACCEL_RUNNER_HH
