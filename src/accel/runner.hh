/**
 * @file
 * Convenience layer used by the benchmark harnesses and examples:
 * build traces for a dataset and run them on any evaluated platform.
 */

#ifndef CEGMA_ACCEL_RUNNER_HH
#define CEGMA_ACCEL_RUNNER_HH

#include <vector>

#include "accel/accelerator.hh"
#include "accel/platform.hh"
#include "gmn/workload.hh"

namespace cegma {

/** Every platform in the paper's evaluation. */
enum class PlatformId
{
    PygCpu,
    PygGpu,
    HyGcn,
    AwbGcn,
    CegmaEmf, ///< ablation: EMF only
    CegmaCgc, ///< ablation: CGC only
    Cegma,
};

/** @return display name matching the paper's figures. */
const char *platformName(PlatformId id);

/** The five platforms of Figure 16, in presentation order. */
const std::vector<PlatformId> &mainPlatforms();

/**
 * Build traces of `model` over the dataset's pairs.
 *
 * @param max_pairs if nonzero, use only the first `max_pairs` pairs
 * @note the returned traces point into `dataset`; keep it alive.
 */
std::vector<PairTrace> buildTraces(ModelId model, const Dataset &dataset,
                                   uint32_t max_pairs = 0);

/**
 * Run `traces` on `platform`. All platforms report `cycles` on a
 * 1 GHz-equivalent basis, so latency and speedup comparisons are
 * uniform across hardware and software models.
 */
SimResult runPlatform(PlatformId platform,
                      const std::vector<PairTrace> &traces,
                      uint32_t batch_size = 32);

} // namespace cegma

#endif // CEGMA_ACCEL_RUNNER_HH
