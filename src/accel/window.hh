/**
 * @file
 * Window schedulers: how one GMN layer's intra-graph edges and
 * cross-graph matching cells are mapped onto the limited input buffer.
 *
 * Four schemes from the paper:
 *  - Separate phase (Fig. 8a): baseline accelerators embed each graph
 *    with an intra-graph sliding window, evict everything, then tile
 *    the similarity matrix — every feature is re-fetched for matching.
 *  - Double independent window (Fig. 8b): both graphs windowed
 *    simultaneously with a statically split buffer; incomplete
 *    comparisons cause re-misses.
 *  - Joint window (Fig. 12a): CGC's single window on the cross-graph
 *    block; one side stationary per step, so matching reuses resident
 *    embedding inputs. Fixed row-wise serpentine.
 *  - Coordinated joint window (Fig. 12b): joint window whose turn
 *    direction is chosen by Approximate Outlier Estimation
 *    (Algorithm 2): keep stationary the side with more outliers
 *    (nodes with the fewest unprocessed intra-graph arcs), since those
 *    finish their matching and never return.
 *
 * Modeling conventions (block granularity):
 *  - An intra-graph arc (src -> dst) is processed when both endpoint
 *    features are co-resident (source streaming + destination partial
 *    routing, as in the paper's worked examples).
 *  - A matching cell (i, j) is processed when target node i and query
 *    node j are co-resident.
 *  - The EMF's keep-masks shrink the matching sweep to unique nodes;
 *    filtered duplicates are only ever loaded for edge processing.
 */

#ifndef CEGMA_ACCEL_WINDOW_HH
#define CEGMA_ACCEL_WINDOW_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace cegma {

/** One layer's scheduling problem for one graph pair. */
struct WindowWork
{
    const Graph *target = nullptr;
    const Graph *query = nullptr;

    /** Input-buffer capacity in node features (whole buffer). */
    uint32_t capNodes = 4;

    /** Whether this layer has a matching stage. */
    bool hasMatching = true;

    /**
     * EMF keep-masks: only masked-true nodes participate in matching.
     * nullptr means every node matches (no EMF).
     */
    const std::vector<bool> *matchTarget = nullptr;
    const std::vector<bool> *matchQuery = nullptr;
};

/** Outcome of scheduling one layer. */
struct ScheduleResult
{
    uint64_t loads = 0;   ///< node features fetched from off-chip
    uint64_t steps = 0;   ///< window steps taken
    uint64_t arcsProcessed = 0;    ///< directed intra-graph arcs covered
    uint64_t matchesProcessed = 0; ///< matching cells computed

    /**
     * Optional per-node touch sequence for reuse-distance profiling
     * (target node v -> id v; query node u -> id numTargetNodes + u).
     */
    std::vector<uint32_t> accessTrace;
};

/** Scheduling scheme selector. */
enum class SchedulerKind
{
    SeparatePhase,
    DoubleWindow,
    Joint,
    Coordinated,
};

/**
 * Schedule one layer with the given scheme.
 *
 * @param kind scheme
 * @param work the layer's graphs / capacity / masks
 * @param record_trace whether to fill ScheduleResult::accessTrace
 */
ScheduleResult scheduleLayer(SchedulerKind kind, const WindowWork &work,
                             bool record_trace = false);

/**
 * Measure AOE decision quality on `work`: at every turn decision of
 * the coordinated schedule, compare the AOE choice against the better
 * of the two branches (each evaluated to completion); @return the
 * fraction of decisions where AOE picked the better (or equal) branch.
 * Returns 1.0 when the schedule has no decision points.
 */
double measureAoePrecision(const WindowWork &work);

} // namespace cegma

#endif // CEGMA_ACCEL_WINDOW_HH
