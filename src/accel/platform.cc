#include "accel/platform.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace cegma {

double
SoftwarePlatform::opSeconds(double flops, double bytes) const
{
    double util = std::min(utilCap, flops / (flops + utilHalfFlops));
    double compute = flops / (peakFlops * std::max(util, 1e-6));
    double memory = bytes / memBandwidth;
    return kernelOverhead + std::max(compute, memory);
}

SimResult
SoftwarePlatform::runBatch(
    const std::vector<const PairTrace *> &batch) const
{
    SimResult result;
    if (batch.empty())
        return result;

    const size_t num_layers = batch.front()->layers.size();
    double seconds = 0.0;

    // Aggregate the batch's per-layer work: PyG launches one kernel
    // per operator over the whole batch.
    for (size_t l = 0; l < num_layers; ++l) {
        double agg_flops = 0, comb_flops = 0;
        double sim_flops = 0, cross_flops = 0;
        double agg_bytes = 0, comb_bytes = 0, sim_bytes = 0;
        bool has_matching = false;
        for (const PairTrace *trace : batch) {
            const LayerWork &layer = trace->layers[l];
            const uint64_t n = trace->pair->target.numNodes();
            const uint64_t m = trace->pair->query.numNodes();
            const double fb = static_cast<double>(
                layer.embedTarget.fIn * bytesPerFeature);
            agg_flops += static_cast<double>(layer.embedTarget.aggFlops +
                                             layer.embedQuery.aggFlops);
            comb_flops += static_cast<double>(
                layer.embedTarget.combFlops + layer.embedQuery.combFlops);
            // Sparse gather/scatter traffic dominates aggregation.
            agg_bytes += static_cast<double>(
                             trace->pair->target.numArcs() +
                             trace->pair->query.numArcs()) * fb;
            comb_bytes += static_cast<double>(n + m) * fb * 2.0;
            if (layer.matching.present) {
                has_matching = true;
                sim_flops += static_cast<double>(layer.matching.simFlops);
                cross_flops +=
                    static_cast<double>(layer.matching.crossFlops);
                sim_bytes += static_cast<double>(n * m) * bytesPerFeature +
                             static_cast<double>(n + m) * fb;
            }
        }
        // Aggregation: gather + scatter-add (2 ops per graph set).
        seconds += opSeconds(agg_flops, agg_bytes) * 2.0;
        // Combination GEMM + activation.
        seconds += opSeconds(comb_flops, comb_bytes) +
                   opSeconds(comb_flops * 0.02, comb_bytes * 0.5);
        if (has_matching) {
            // Matching kernels are launched per pair: the similarity
            // matrices are ragged (n_i x m_i differs across the
            // batch), so PyG cannot batch them into one GEMM.
            double per_pair = static_cast<double>(batch.size());
            seconds += opSeconds(sim_flops / per_pair,
                                 sim_bytes / per_pair) * per_pair;
            seconds += opSeconds(sim_flops * 0.05 / per_pair,
                                 sim_bytes / per_pair) * per_pair;
            if (cross_flops > 0) {
                // Softmax, attention matmuls, subtraction, concat —
                // four ragged launches per pair sharing the cross
                //-message compute.
                seconds += opSeconds(cross_flops / per_pair / 4.0,
                                     sim_bytes * 0.5 / per_pair) *
                           4.0 * per_pair;
            }
        }
    }

    // Head: a handful of small kernels per batch.
    double post_flops = 0;
    for (const PairTrace *trace : batch)
        post_flops += static_cast<double>(trace->postFlops +
                                          trace->encodeFlops);
    seconds += opSeconds(post_flops, post_flops * 0.1) * 4.0;

    result.cycles = seconds * 1e9; // 1 GHz-equivalent cycles
    result.pairsSimulated = batch.size();
    return result;
}

SimResult
SoftwarePlatform::runAll(const std::vector<PairTrace> &traces,
                         uint32_t batch_size) const
{
    cegma_assert(batch_size > 0);
    SimResult total;
    std::vector<const PairTrace *> batch;
    for (const PairTrace &trace : traces) {
        batch.push_back(&trace);
        if (batch.size() == batch_size) {
            total.merge(runBatch(batch));
            batch.clear();
        }
    }
    if (!batch.empty())
        total.merge(runBatch(batch));
    return total;
}

SoftwarePlatform
pygCpuPlatform()
{
    SoftwarePlatform platform;
    platform.name = "PyG-CPU";
    // Dual 12-core Skylake: ~2 TFLOP/s peak fp32, 119 GB/s DDR4.
    // PyG's interpreter + gather/scatter path leaves single-digit
    // percent utilization on these graph sizes.
    platform.peakFlops = 2.0e12;
    platform.memBandwidth = 60.0e9;
    platform.kernelOverhead = 500e-6;
    platform.utilHalfFlops = 1.0e8;
    platform.utilCap = 0.002; // ~4 GFLOP/s effective ceiling
    return platform;
}

SoftwarePlatform
pygGpuPlatform()
{
    SoftwarePlatform platform;
    platform.name = "PyG-GPU";
    // V100: 14 TFLOP/s fp32 peak, 900 GB/s HBM2; ~10 us launch
    // latency per kernel, utilization ramping with kernel size.
    platform.peakFlops = 14.0e12;
    platform.memBandwidth = 550.0e9;
    platform.kernelOverhead = 70e-6;
    platform.utilHalfFlops = 2.0e8;
    platform.utilCap = 0.007; // ~100 GFLOP/s effective ceiling
    return platform;
}

} // namespace cegma
