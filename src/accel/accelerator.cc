#include "accel/accelerator.hh"

#include <algorithm>
#include <unordered_set>

#include "accel/window.hh"
#include "common/logging.hh"
#include "emf/emf.hh"
#include "sim/mac_array.hh"

namespace cegma {

uint64_t
layerWeightBytes(ModelId id, size_t node_dim)
{
    const uint64_t d = node_dim;
    switch (id) {
      case ModelId::GmnLi:
        // Edge MLP [2d,d,d] + update MLP [3d,d,d].
        return (2 * d * d + d * d + 3 * d * d + d * d) * bytesPerFeature;
      case ModelId::GraphSim:
      case ModelId::SimGnn:
        // One GCN combine matrix.
        return d * d * bytesPerFeature;
    }
    return 0;
}

std::vector<bool>
emfKeepMask(const std::vector<uint32_t> &classes)
{
    std::vector<bool> keep(classes.size(), false);
    std::unordered_set<uint32_t> seen;
    seen.reserve(classes.size());
    for (size_t v = 0; v < classes.size(); ++v) {
        if (seen.insert(classes[v]).second)
            keep[v] = true;
    }
    return keep;
}

AcceleratorModel::AcceleratorModel(AccelConfig config)
    : config_(std::move(config))
{
}

SimResult
AcceleratorModel::simulatePair(const PairTrace &trace) const
{
    return simulatePairImpl(trace, true);
}

SimResult
AcceleratorModel::simulateAll(const std::vector<PairTrace> &traces,
                              uint32_t batch_size) const
{
    cegma_assert(batch_size > 0);
    SimResult total;
    for (size_t i = 0; i < traces.size(); ++i) {
        bool leads_batch = (i % batch_size) == 0;
        total.merge(simulatePairImpl(traces[i], leads_batch));
    }
    return total;
}

SimResult
AcceleratorModel::simulatePairImpl(const PairTrace &trace,
                                   bool charge_weights) const
{
    const ModelConfig &model = modelConfig(trace.model);
    const GraphPair &pair = *trace.pair;
    const uint64_t n = pair.target.numNodes();
    const uint64_t m = pair.query.numNodes();

    SimResult result;
    result.pairsSimulated = 1;
    EmfCycleModel emf_hw{config_.emfHashLanes, config_.emfComparators};

    for (const LayerWork &layer : trace.layers) {
        const MatchingWork &match = layer.matching;
        const size_t f = layer.embedTarget.fIn;
        const uint64_t feature_bytes = f * bytesPerFeature;

        // ---- EMF metadata pass ------------------------------------
        std::vector<bool> keep_t, keep_q;
        double unique_fraction = 1.0;
        uint64_t emf_cycles = 0;
        if (config_.hasEmf && match.present) {
            keep_t = emfKeepMask(match.dupClassTarget);
            keep_q = emfKeepMask(match.dupClassQuery);
            uint64_t total_cells = match.totalPairs();
            if (total_cells > 0) {
                unique_fraction =
                    static_cast<double>(match.uniquePairs()) /
                    static_cast<double>(total_cells);
            }
            uint64_t hash =
                emf_hw.hashCycles(n, feature_bytes) +
                emf_hw.hashCycles(m, feature_bytes);
            uint64_t filter =
                emf_hw.filterCycles(match.dupClassTarget) +
                emf_hw.filterCycles(match.dupClassQuery);
            result.extra.inc("emf_hash_cycles", hash);
            result.extra.inc("emf_filter_cycles", filter);
            // The EMF works producer-consumer pipelined with the PE
            // (Fig. 11): its latency only shows when it exceeds the
            // layer's compute/memory time.
            emf_cycles = hash + filter;
        }

        // ---- Window scheduling ------------------------------------
        WindowWork work;
        work.target = &pair.target;
        work.query = &pair.query;
        work.capNodes = config_.inputBufferNodes(static_cast<uint32_t>(f));
        work.hasMatching = match.present;
        work.matchTarget = keep_t.empty() ? nullptr : &keep_t;
        work.matchQuery = keep_q.empty() ? nullptr : &keep_q;

        SchedulerKind kind = config_.hasCgc ? SchedulerKind::Coordinated
                                            : SchedulerKind::SeparatePhase;
        ScheduleResult sched = scheduleLayer(kind, work);
        result.extra.inc("input_loads", sched.loads);
        result.extra.inc("window_steps", sched.steps);

        // ---- Memory traffic ---------------------------------------
        uint64_t read_bytes = sched.loads * feature_bytes;
        if (charge_weights)
            read_bytes += layerWeightBytes(trace.model, f);
        // Layer outputs spill to DRAM as the next layer's input.
        uint64_t write_bytes = (n + m) * layer.embedTarget.fOut *
                               bytesPerFeature;

        // Similarity-matrix traffic (Section IV-D).
        if (match.present) {
            uint64_t s_bytes = n * m * bytesPerFeature;
            if (model.matchUse == MatchUse::WriteBack) {
                // Type (a): full S written back (duplicates broadcast).
                write_bytes += s_bytes;
            } else if (!config_.hasEmf && !config_.hasCgc) {
                // Type (b) on a baseline: S round-trips through DRAM
                // to feed the cross-graph messages.
                write_bytes += s_bytes;
                read_bytes += s_bytes;
            }
            // CEGMA keeps type (b) results on-chip (Map-directed
            // reuse), costing no DRAM.
        }

        // ---- Compute ----------------------------------------------
        uint64_t agg_macs = (layer.embedTarget.aggFlops +
                             layer.embedQuery.aggFlops) / 2;
        uint64_t comb_macs = (layer.embedTarget.combFlops +
                              layer.embedQuery.combFlops) / 2;
        uint64_t match_macs = 0;
        if (match.present) {
            double sim_macs = static_cast<double>(match.simFlops) / 2.0;
            double cross_macs =
                static_cast<double>(match.crossFlops) / 2.0;
            match_macs = static_cast<uint64_t>(
                (sim_macs + cross_macs) * unique_fraction);
        }

        double compute_cycles = aggCycles(config_, agg_macs) +
                                denseCycles(config_, comb_macs) +
                                matchCycles(config_, match_macs);
        double mem_cycles =
            dramCycles(config_, read_bytes + write_bytes) +
            static_cast<double>(sched.steps); // per-step control

        // With the CGC's stationary/active buffer alternation compute
        // overlaps the memory stream; otherwise the PEs stall on
        // buffer fills (Section V-C). The EMF pipeline runs
        // producer-consumer with the PE either way.
        double busy = config_.overlapComputeMemory
                          ? std::max(compute_cycles, mem_cycles)
                          : compute_cycles + mem_cycles;
        result.cycles += std::max(busy, static_cast<double>(emf_cycles));

        // Per-stage accounting for breakdown studies (informational;
        // the layer cost above is what accumulates into `cycles`).
        result.extra.inc("stage_agg_cycles",
                         static_cast<uint64_t>(aggCycles(config_,
                                                         agg_macs)));
        result.extra.inc("stage_comb_cycles",
                         static_cast<uint64_t>(denseCycles(config_,
                                                           comb_macs)));
        result.extra.inc("stage_match_cycles",
                         static_cast<uint64_t>(matchCycles(config_,
                                                           match_macs)));
        result.extra.inc("stage_mem_cycles",
                         static_cast<uint64_t>(mem_cycles));
        if (mem_cycles > compute_cycles)
            result.extra.inc("mem_bound_layers");
        result.extra.inc("layers");
        result.dramReadBytes += read_bytes;
        result.dramWriteBytes += write_bytes;
        result.macOps += agg_macs + comb_macs + match_macs;
    }

    // ---- Head / post stage ----------------------------------------
    uint64_t post_macs = trace.postFlops / 2 + trace.encodeFlops / 2;
    double post_compute = denseCycles(config_, post_macs);
    uint64_t post_read = 0;
    if (model.matchUse == MatchUse::WriteBack) {
        // The head re-reads each stored similarity matrix (CNN resize
        // for GraphSim, histogram for SimGNN).
        for (const LayerWork &layer : trace.layers) {
            if (layer.matching.present)
                post_read += n * m * bytesPerFeature;
        }
    }
    double post_mem = dramCycles(config_, post_read);
    result.cycles += config_.overlapComputeMemory
                         ? std::max(post_compute, post_mem)
                         : post_compute + post_mem;
    result.dramReadBytes += post_read;
    result.macOps += post_macs;

    // Coarse SRAM traffic: buffer fills plus operand streaming with
    // high on-array reuse (one amortized byte per MAC).
    result.sramBytes = 2 * result.dramBytes() + result.macOps;
    result.extra.inc("graphs", 2);
    return result;
}

} // namespace cegma
