/**
 * @file
 * The cycle-level accelerator model: runs a GMN workload trace on a
 * hardware configuration (HyGCN, AWB-GCN, or a CEGMA variant) and
 * accounts cycles, DRAM traffic, and energy.
 *
 * Per layer, the model:
 *  1. builds the EMF keep-masks (if the config has an EMF) from the
 *     trace's duplicate classes and charges the EMF pipeline cycles;
 *  2. schedules the layer with the coordinated joint window (CGC) or
 *     the baseline separate-phase window, yielding feature-load and
 *     step counts;
 *  3. charges compute cycles on the MAC array / aggregation lanes and
 *     overlaps them with the memory stream (double buffering:
 *     per-layer cost is max(compute, memory));
 *  4. charges similarity-matrix DRAM round-trips according to the
 *     model's MatchUse type (Section IV-D).
 */

#ifndef CEGMA_ACCEL_ACCELERATOR_HH
#define CEGMA_ACCEL_ACCELERATOR_HH

#include <vector>

#include "gmn/workload.hh"
#include "sim/config.hh"
#include "sim/result.hh"

namespace cegma {

/** A cycle-level accelerator instance. */
class AcceleratorModel
{
  public:
    explicit AcceleratorModel(AccelConfig config);

    const AccelConfig &config() const { return config_; }

    /** Simulate one pair's full inference. */
    SimResult simulatePair(const PairTrace &trace) const;

    /**
     * Simulate a set of pairs processed in batches of `batch_size`
     * (Figure 15 batching: per-pair blocks are independent, so the
     * batch cost is the sum of pair costs with layer weights fetched
     * once per batch).
     */
    SimResult simulateAll(const std::vector<PairTrace> &traces,
                          uint32_t batch_size = 32) const;

  private:
    SimResult simulatePairImpl(const PairTrace &trace,
                               bool charge_weights) const;

    AccelConfig config_;
};

/** Per-layer weight bytes fetched from DRAM for model `id`. */
uint64_t layerWeightBytes(ModelId id, size_t node_dim);

/**
 * Build the EMF keep-mask for one side of one matching: true for the
 * first node of each duplicate class (the RecordSet entries).
 */
std::vector<bool> emfKeepMask(const std::vector<uint32_t> &classes);

} // namespace cegma

#endif // CEGMA_ACCEL_ACCELERATOR_HH
