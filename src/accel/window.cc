#include "accel/window.hh"

#include "accel/aoe_unit.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cegma {

namespace {

using BlockId = uint32_t;

/**
 * One graph side's block plan: nodes partitioned into fixed-size
 * blocks with matching (kept) nodes first, so blocks participating in
 * the matching sweep form a prefix.
 *
 * Aggregation semantics follow the paper's Fig. 8(a) arithmetic: an
 * arc is processed when its *source* feature is resident (destination
 * partial sums stream through the output SRAM), so a node's out-arcs
 * complete the first time its block is fetched.
 */
struct SidePlan
{
    const Graph *graph = nullptr;
    std::vector<std::vector<NodeId>> blocks;
    std::vector<uint32_t> keptCount; ///< matching nodes per block
    BlockId numSweepBlocks = 0;      ///< prefix blocks with kept nodes
};

SidePlan
makeSidePlan(const Graph &g, const std::vector<bool> *keep,
             uint32_t block_size, bool wants_matching)
{
    cegma_assert(block_size >= 1);
    SidePlan plan;
    plan.graph = &g;

    std::vector<NodeId> order;
    order.reserve(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (!keep || (*keep)[v])
            order.push_back(v);
    }
    size_t num_kept = wants_matching ? order.size() : 0;
    if (keep) {
        for (NodeId v = 0; v < g.numNodes(); ++v) {
            if (!(*keep)[v])
                order.push_back(v);
        }
    }

    for (size_t i = 0; i < order.size(); ++i) {
        BlockId b = static_cast<BlockId>(i / block_size);
        if (b >= plan.blocks.size()) {
            plan.blocks.emplace_back();
            plan.keptCount.push_back(0);
        }
        plan.blocks[b].push_back(order[i]);
        if (i < num_kept)
            ++plan.keptCount[b];
    }
    for (BlockId b = 0; b < plan.blocks.size(); ++b) {
        if (plan.keptCount[b] > 0)
            plan.numSweepBlocks = b + 1;
    }
    return plan;
}

/** Everything needed to schedule one layer. */
class LayerScheduler
{
  public:
    LayerScheduler(const WindowWork &work, bool record_trace);

    ScheduleResult runSeparatePhase();
    ScheduleResult runDoubleWindow();
    ScheduleResult runJoint(bool aoe);
    double measurePrecision();

  private:
    struct State
    {
        ScheduleResult res;
        std::vector<bool> loadedT, loadedQ; ///< ever-resident flags
    };

    struct SweepState
    {
        std::vector<bool> visited; ///< RT x CQ grid
        BlockId rt = 0, cq = 0;
        bool rowDir = true; ///< true: target stationary, sweep queries
    };

    // -- helpers ---------------------------------------------------
    void loadBlock(State &s, bool query_side, BlockId b);
    void touchBlock(State &s, bool query_side, BlockId b);
    void processCell(State &s, BlockId rt, BlockId cq);
    /** Fetch every never-resident node once (block-sized batches). */
    void loadStragglers(State &s);
    /** Neighbors of v not yet resident (AOE "remaining edges"). */
    uint32_t remains(const State &s, bool query_side, NodeId v) const;
    /** Algorithm 2: true = keep target stationary (row-wise sweep). */
    bool aoeKeepTarget(const State &s, BlockId rt, BlockId cq) const;

    bool cellVisited(const SweepState &sw, BlockId rt, BlockId cq) const
    {
        return sw.visited[static_cast<size_t>(rt) * numCq_ + cq];
    }
    void markVisited(SweepState &sw, BlockId rt, BlockId cq)
    {
        sw.visited[static_cast<size_t>(rt) * numCq_ + cq] = true;
    }
    int nearestInRow(const SweepState &sw, BlockId rt, BlockId from) const;
    int nearestInCol(const SweepState &sw, BlockId cq, BlockId from) const;
    bool nearestAnywhere(const SweepState &sw, BlockId &rt,
                         BlockId &cq) const;

    /**
     * Run the sweep from `sw` until every cell is visited.
     *
     * @param aoe use Algorithm 2 at turn decisions (else fixed
     *        row-wise serpentine)
     * @param force_first override the first decision (0 keep-target /
     *        1 keep-query / -1 none) — precision measurement hook
     * @param decision_count out: decisions made so far
     * @param stop_after_decision stop once this many decisions made
     */
    void sweepFrom(State &s, SweepState &sw, bool aoe, int force_first,
                   int *decision_count = nullptr,
                   int stop_after_decision = -1);

    /** Initialize sweep at (0, 0). */
    void startSweep(State &s, SweepState &sw);

    const WindowWork &work_;
    bool trace_;
    SidePlan planT_, planQ_;
    BlockId numRt_ = 0, numCq_ = 0;
    uint32_t traceOffsetQ_ = 0;
};

LayerScheduler::LayerScheduler(const WindowWork &work, bool record_trace)
    : work_(work), trace_(record_trace)
{
    cegma_assert(work.target && work.query);
    uint32_t half = std::max<uint32_t>(1, work.capNodes / 2);
    planT_ = makeSidePlan(*work.target, work.matchTarget, half,
                          work.hasMatching);
    planQ_ = makeSidePlan(*work.query, work.matchQuery, half,
                          work.hasMatching);
    numRt_ = planT_.numSweepBlocks;
    numCq_ = planQ_.numSweepBlocks;
    traceOffsetQ_ = work.target->numNodes();
}

void
LayerScheduler::loadBlock(State &s, bool query_side, BlockId b)
{
    const SidePlan &plan = query_side ? planQ_ : planT_;
    auto &loaded = query_side ? s.loadedQ : s.loadedT;
    s.res.loads += plan.blocks[b].size();
    for (NodeId v : plan.blocks[b]) {
        if (!loaded[v]) {
            loaded[v] = true;
            // First residency: the node's out-arcs stream through.
            s.res.arcsProcessed += plan.graph->degree(v);
        }
    }
    touchBlock(s, query_side, b);
}

void
LayerScheduler::touchBlock(State &s, bool query_side, BlockId b)
{
    if (!trace_)
        return;
    const SidePlan &plan = query_side ? planQ_ : planT_;
    for (NodeId v : plan.blocks[b])
        s.res.accessTrace.push_back(query_side ? traceOffsetQ_ + v : v);
}

void
LayerScheduler::processCell(State &s, BlockId rt, BlockId cq)
{
    ++s.res.steps;
    s.res.matchesProcessed += static_cast<uint64_t>(planT_.keptCount[rt]) *
                              planQ_.keptCount[cq];
    // The step references both resident blocks (reuse-distance traces
    // count references per use, as in the paper's Figs. 4 and 20).
    touchBlock(s, false, rt);
    touchBlock(s, true, cq);
}

void
LayerScheduler::loadStragglers(State &s)
{
    uint64_t pending = 0;
    auto flush = [&](bool query_side, NodeId v) {
        const SidePlan &plan = query_side ? planQ_ : planT_;
        s.res.loads += 1;
        s.res.arcsProcessed += plan.graph->degree(v);
        if (trace_)
            s.res.accessTrace.push_back(query_side ? traceOffsetQ_ + v : v);
        ++pending;
    };
    for (NodeId v = 0; v < work_.target->numNodes(); ++v) {
        if (!s.loadedT[v])
            flush(false, v);
    }
    for (NodeId v = 0; v < work_.query->numNodes(); ++v) {
        if (!s.loadedQ[v])
            flush(true, v);
    }
    if (pending > 0)
        s.res.steps += (pending + work_.capNodes - 1) / work_.capNodes;
}

uint32_t
LayerScheduler::remains(const State &s, bool query_side, NodeId v) const
{
    const SidePlan &plan = query_side ? planQ_ : planT_;
    const auto &loaded = query_side ? s.loadedQ : s.loadedT;
    uint32_t count = 0;
    for (NodeId u : plan.graph->neighbors(v))
        count += !loaded[u];
    return count;
}

bool
LayerScheduler::aoeKeepTarget(const State &s, BlockId rt, BlockId cq) const
{
    // Gather the resident sides' remaining degrees and hand them to
    // the AOE unit (Algorithm 2).
    std::vector<uint32_t> remains_t, remains_q;
    remains_t.reserve(planT_.blocks[rt].size());
    for (NodeId v : planT_.blocks[rt])
        remains_t.push_back(remains(s, false, v));
    remains_q.reserve(planQ_.blocks[cq].size());
    for (NodeId v : planQ_.blocks[cq])
        remains_q.push_back(remains(s, true, v));
    return evaluateAoe(remains_t, remains_q).keepTarget;
}

int
LayerScheduler::nearestInRow(const SweepState &sw, BlockId rt,
                             BlockId from) const
{
    int best = -1;
    int best_dist = INT32_MAX;
    for (BlockId c = 0; c < numCq_; ++c) {
        if (!cellVisited(sw, rt, c)) {
            int dist = std::abs(static_cast<int>(c) -
                                static_cast<int>(from));
            if (dist < best_dist) {
                best_dist = dist;
                best = static_cast<int>(c);
            }
        }
    }
    return best;
}

int
LayerScheduler::nearestInCol(const SweepState &sw, BlockId cq,
                             BlockId from) const
{
    int best = -1;
    int best_dist = INT32_MAX;
    for (BlockId r = 0; r < numRt_; ++r) {
        if (!cellVisited(sw, r, cq)) {
            int dist = std::abs(static_cast<int>(r) -
                                static_cast<int>(from));
            if (dist < best_dist) {
                best_dist = dist;
                best = static_cast<int>(r);
            }
        }
    }
    return best;
}

bool
LayerScheduler::nearestAnywhere(const SweepState &sw, BlockId &rt,
                                BlockId &cq) const
{
    int best_dist = INT32_MAX;
    bool found = false;
    for (BlockId r = 0; r < numRt_; ++r) {
        for (BlockId c = 0; c < numCq_; ++c) {
            if (!cellVisited(sw, r, c)) {
                int dist = std::abs(static_cast<int>(r) -
                                    static_cast<int>(sw.rt)) +
                           std::abs(static_cast<int>(c) -
                                    static_cast<int>(sw.cq));
                if (dist < best_dist) {
                    best_dist = dist;
                    rt = r;
                    cq = c;
                    found = true;
                }
            }
        }
    }
    return found;
}

void
LayerScheduler::startSweep(State &s, SweepState &sw)
{
    sw.visited.assign(static_cast<size_t>(numRt_) * numCq_, false);
    sw.rt = 0;
    sw.cq = 0;
    sw.rowDir = true;
    loadBlock(s, false, 0);
    loadBlock(s, true, 0);
    markVisited(sw, 0, 0);
    processCell(s, 0, 0);
}

void
LayerScheduler::sweepFrom(State &s, SweepState &sw, bool aoe,
                          int force_first, int *decision_count,
                          int stop_after_decision)
{
    int decisions = 0;
    if (decision_count)
        *decision_count = 0;
    while (true) {
        // Continue the current run if possible.
        int next = sw.rowDir ? nearestInRow(sw, sw.rt, sw.cq)
                             : nearestInCol(sw, sw.cq, sw.rt);
        if (next >= 0) {
            if (sw.rowDir) {
                sw.cq = static_cast<BlockId>(next);
                loadBlock(s, true, sw.cq);
            } else {
                sw.rt = static_cast<BlockId>(next);
                loadBlock(s, false, sw.rt);
            }
            markVisited(sw, sw.rt, sw.cq);
            processCell(s, sw.rt, sw.cq);
            continue;
        }

        // Run exhausted: reach a new cell updating one side if we can.
        int in_col = nearestInCol(sw, sw.cq, sw.rt);
        int in_row = nearestInRow(sw, sw.rt, sw.cq);
        if (in_col < 0 && in_row < 0) {
            BlockId jr, jc;
            if (!nearestAnywhere(sw, jr, jc))
                return; // all visited
            sw.rt = jr;
            sw.cq = jc;
            loadBlock(s, false, sw.rt);
            loadBlock(s, true, sw.cq);
        } else if (in_col >= 0) {
            sw.rt = static_cast<BlockId>(in_col);
            loadBlock(s, false, sw.rt);
        } else {
            sw.cq = static_cast<BlockId>(in_row);
            loadBlock(s, true, sw.cq);
        }
        markVisited(sw, sw.rt, sw.cq);
        processCell(s, sw.rt, sw.cq);

        // Decide the new run's direction.
        bool keep_target;
        if (force_first >= 0 && decisions == 0) {
            keep_target = (force_first == 0);
        } else if (aoe) {
            keep_target = aoeKeepTarget(s, sw.rt, sw.cq);
        } else {
            keep_target = true; // fixed row-wise serpentine
        }
        sw.rowDir = keep_target;
        ++decisions;
        if (decision_count)
            *decision_count = decisions;
        if (stop_after_decision >= 0 && decisions > stop_after_decision)
            return;
    }
}

ScheduleResult
LayerScheduler::runSeparatePhase()
{
    State s;
    s.loadedT.assign(work_.target->numNodes(), false);
    s.loadedQ.assign(work_.query->numNodes(), false);

    // Phase 1: embedding. Each graph's window slides over its own
    // adjacency; every node's block is fetched once and its out-arcs
    // stream against the output partials (Fig. 8(a) steps 1-3).
    for (BlockId b = 0; b < planT_.blocks.size(); ++b) {
        loadBlock(s, false, b);
        ++s.res.steps;
    }
    for (BlockId b = 0; b < planQ_.blocks.size(); ++b) {
        loadBlock(s, true, b);
        ++s.res.steps;
    }

    // Phase 2: matching. Everything was evicted; the similarity
    // matrix is tiled and every feature re-fetched (steps 4-9).
    if (work_.hasMatching && numRt_ > 0 && numCq_ > 0) {
        // Reset residency bookkeeping conceptually: loads are charged
        // per tile regardless of phase-1 residency (separate phases
        // share no buffer state). Arcs are all processed already.
        for (BlockId r = 0; r < numRt_; ++r) {
            s.res.loads += planT_.blocks[r].size();
            touchBlock(s, false, r);
            // Row-major with restart (the paper's Fig. 8(a) pattern).
            for (BlockId c = 0; c < numCq_; ++c) {
                s.res.loads += planQ_.blocks[c].size();
                touchBlock(s, true, c);
                processCell(s, r, c);
            }
        }
    }

    loadStragglers(s);
    return s.res;
}

ScheduleResult
LayerScheduler::runDoubleWindow()
{
    // Two independent intra-graph windows over a statically split
    // buffer: embedding proceeds in lockstep and matching only happens
    // between coincidentally co-resident blocks; the incomplete
    // comparisons are re-fetched afterwards (Fig. 8(b)).
    State s;
    s.loadedT.assign(work_.target->numNodes(), false);
    s.loadedQ.assign(work_.query->numNodes(), false);

    std::vector<bool> matched;
    if (work_.hasMatching)
        matched.assign(static_cast<size_t>(numRt_) * numCq_, false);

    size_t steps = std::max(planT_.blocks.size(), planQ_.blocks.size());
    for (size_t k = 0; k < steps; ++k) {
        int res_t = -1, res_q = -1;
        if (k < planT_.blocks.size()) {
            loadBlock(s, false, static_cast<BlockId>(k));
            res_t = static_cast<int>(k);
        }
        if (k < planQ_.blocks.size()) {
            loadBlock(s, true, static_cast<BlockId>(k));
            res_q = static_cast<int>(k);
        }
        ++s.res.steps;
        if (work_.hasMatching && res_t >= 0 && res_q >= 0 &&
            static_cast<BlockId>(res_t) < numRt_ &&
            static_cast<BlockId>(res_q) < numCq_) {
            size_t cell = static_cast<size_t>(res_t) * numCq_ + res_q;
            matched[cell] = true;
            s.res.matchesProcessed +=
                static_cast<uint64_t>(planT_.keptCount[res_t]) *
                planQ_.keptCount[res_q];
        }
    }

    // Finish the incomplete comparisons with re-fetched tiles.
    if (work_.hasMatching) {
        for (BlockId r = 0; r < numRt_; ++r) {
            bool row_loaded = false;
            for (BlockId c = 0; c < numCq_; ++c) {
                size_t cell = static_cast<size_t>(r) * numCq_ + c;
                if (matched[cell])
                    continue;
                if (!row_loaded) {
                    s.res.loads += planT_.blocks[r].size();
                    touchBlock(s, false, r);
                    row_loaded = true;
                }
                s.res.loads += planQ_.blocks[c].size();
                touchBlock(s, true, c);
                matched[cell] = true;
                processCell(s, r, c);
            }
        }
    }

    loadStragglers(s);
    return s.res;
}

ScheduleResult
LayerScheduler::runJoint(bool aoe)
{
    State s;
    s.loadedT.assign(work_.target->numNodes(), false);
    s.loadedQ.assign(work_.query->numNodes(), false);

    if (work_.hasMatching && numRt_ > 0 && numCq_ > 0) {
        SweepState sw;
        startSweep(s, sw);
        sweepFrom(s, sw, aoe, -1);
    }

    // EMF-filtered duplicates (and matching-free layers) still need
    // their features once for aggregation.
    loadStragglers(s);
    return s.res;
}

double
LayerScheduler::measurePrecision()
{
    if (!work_.hasMatching || numRt_ == 0 || numCq_ == 0)
        return 1.0;

    auto fresh = [&]() {
        State s;
        s.loadedT.assign(work_.target->numNodes(), false);
        s.loadedQ.assign(work_.query->numNodes(), false);
        return s;
    };

    int agree = 0, total = 0;
    for (int decision = 0; decision < 64; ++decision) {
        // Evaluate both forced branches at decision #`decision`.
        uint64_t branch_loads[2];
        bool feasible = true;
        for (int branch = 0; branch < 2 && feasible; ++branch) {
            State s = fresh();
            SweepState sw;
            startSweep(s, sw);
            int count = 0;
            if (decision > 0) {
                sweepFrom(s, sw, true, -1, &count, decision - 1);
                if (count < decision) {
                    feasible = false;
                    break;
                }
            }
            sweepFrom(s, sw, true, branch, &count);
            loadStragglers(s);
            branch_loads[branch] = s.res.loads;
        }
        if (!feasible)
            break;

        // Which way does AOE actually go at this decision?
        State s = fresh();
        SweepState sw;
        startSweep(s, sw);
        int count = 0;
        sweepFrom(s, sw, true, -1, &count, decision);
        if (count <= decision)
            break;
        bool aoe_keep_target = sw.rowDir;
        uint64_t chosen = aoe_keep_target ? branch_loads[0]
                                          : branch_loads[1];
        uint64_t other = aoe_keep_target ? branch_loads[1]
                                         : branch_loads[0];
        ++total;
        if (chosen <= other)
            ++agree;
    }
    if (total == 0)
        return 1.0;
    return static_cast<double>(agree) / total;
}

} // namespace

ScheduleResult
scheduleLayer(SchedulerKind kind, const WindowWork &work,
              bool record_trace)
{
    LayerScheduler sched(work, record_trace);
    switch (kind) {
      case SchedulerKind::SeparatePhase:
        return sched.runSeparatePhase();
      case SchedulerKind::DoubleWindow:
        return sched.runDoubleWindow();
      case SchedulerKind::Joint:
        return sched.runJoint(false);
      case SchedulerKind::Coordinated:
        return sched.runJoint(true);
    }
    panic("unknown scheduler kind");
}

double
measureAoePrecision(const WindowWork &work)
{
    LayerScheduler sched(work, false);
    return sched.measurePrecision();
}

} // namespace cegma
