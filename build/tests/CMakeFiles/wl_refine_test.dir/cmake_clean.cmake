file(REMOVE_RECURSE
  "CMakeFiles/wl_refine_test.dir/wl_refine_test.cc.o"
  "CMakeFiles/wl_refine_test.dir/wl_refine_test.cc.o.d"
  "wl_refine_test"
  "wl_refine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_refine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
