
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/train_test.cc" "tests/CMakeFiles/train_test.dir/train_test.cc.o" "gcc" "tests/CMakeFiles/train_test.dir/train_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/cegma_train.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cegma_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cegma_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cegma_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cegma_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cegma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
