# Empty compiler generated dependencies file for emf_pipeline_test.
# This may be replaced when dependencies are built.
