file(REMOVE_RECURSE
  "CMakeFiles/emf_pipeline_test.dir/emf_pipeline_test.cc.o"
  "CMakeFiles/emf_pipeline_test.dir/emf_pipeline_test.cc.o.d"
  "emf_pipeline_test"
  "emf_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emf_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
