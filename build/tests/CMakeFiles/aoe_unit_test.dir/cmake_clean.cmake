file(REMOVE_RECURSE
  "CMakeFiles/aoe_unit_test.dir/aoe_unit_test.cc.o"
  "CMakeFiles/aoe_unit_test.dir/aoe_unit_test.cc.o.d"
  "aoe_unit_test"
  "aoe_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoe_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
