# Empty dependencies file for aoe_unit_test.
# This may be replaced when dependencies are built.
