# Empty dependencies file for emf_test.
# This may be replaced when dependencies are built.
