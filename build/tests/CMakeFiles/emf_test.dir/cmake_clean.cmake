file(REMOVE_RECURSE
  "CMakeFiles/emf_test.dir/emf_test.cc.o"
  "CMakeFiles/emf_test.dir/emf_test.cc.o.d"
  "emf_test"
  "emf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
