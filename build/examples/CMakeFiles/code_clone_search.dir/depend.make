# Empty dependencies file for code_clone_search.
# This may be replaced when dependencies are built.
