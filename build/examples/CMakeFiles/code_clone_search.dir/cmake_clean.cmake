file(REMOVE_RECURSE
  "CMakeFiles/code_clone_search.dir/code_clone_search.cpp.o"
  "CMakeFiles/code_clone_search.dir/code_clone_search.cpp.o.d"
  "code_clone_search"
  "code_clone_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_clone_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
