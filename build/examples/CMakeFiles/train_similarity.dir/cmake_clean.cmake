file(REMOVE_RECURSE
  "CMakeFiles/train_similarity.dir/train_similarity.cpp.o"
  "CMakeFiles/train_similarity.dir/train_similarity.cpp.o.d"
  "train_similarity"
  "train_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
