# Empty compiler generated dependencies file for train_similarity.
# This may be replaced when dependencies are built.
