# Empty compiler generated dependencies file for realtime_matching.
# This may be replaced when dependencies are built.
