file(REMOVE_RECURSE
  "CMakeFiles/realtime_matching.dir/realtime_matching.cpp.o"
  "CMakeFiles/realtime_matching.dir/realtime_matching.cpp.o.d"
  "realtime_matching"
  "realtime_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
