# Empty compiler generated dependencies file for fig26_emf_matrix.
# This may be replaced when dependencies are built.
