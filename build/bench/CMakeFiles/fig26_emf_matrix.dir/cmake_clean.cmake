file(REMOVE_RECURSE
  "CMakeFiles/fig26_emf_matrix.dir/fig26_emf_matrix.cc.o"
  "CMakeFiles/fig26_emf_matrix.dir/fig26_emf_matrix.cc.o.d"
  "fig26_emf_matrix"
  "fig26_emf_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_emf_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
