file(REMOVE_RECURSE
  "CMakeFiles/fig21_breakdown_speedup.dir/fig21_breakdown_speedup.cc.o"
  "CMakeFiles/fig21_breakdown_speedup.dir/fig21_breakdown_speedup.cc.o.d"
  "fig21_breakdown_speedup"
  "fig21_breakdown_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_breakdown_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
