# Empty dependencies file for fig21_breakdown_speedup.
# This may be replaced when dependencies are built.
