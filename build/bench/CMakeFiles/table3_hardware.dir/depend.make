# Empty dependencies file for table3_hardware.
# This may be replaced when dependencies are built.
