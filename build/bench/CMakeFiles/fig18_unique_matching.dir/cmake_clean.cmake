file(REMOVE_RECURSE
  "CMakeFiles/fig18_unique_matching.dir/fig18_unique_matching.cc.o"
  "CMakeFiles/fig18_unique_matching.dir/fig18_unique_matching.cc.o.d"
  "fig18_unique_matching"
  "fig18_unique_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_unique_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
