# Empty compiler generated dependencies file for fig18_unique_matching.
# This may be replaced when dependencies are built.
