# Empty compiler generated dependencies file for fig04_reuse_baseline.
# This may be replaced when dependencies are built.
