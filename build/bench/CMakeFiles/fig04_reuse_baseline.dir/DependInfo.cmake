
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig04_reuse_baseline.cc" "bench/CMakeFiles/fig04_reuse_baseline.dir/fig04_reuse_baseline.cc.o" "gcc" "bench/CMakeFiles/fig04_reuse_baseline.dir/fig04_reuse_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/cegma_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cegma_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/emf/CMakeFiles/cegma_emf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cegma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gmn/CMakeFiles/cegma_gmn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cegma_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cegma_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cegma_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cegma_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cegma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
