file(REMOVE_RECURSE
  "CMakeFiles/fig04_reuse_baseline.dir/fig04_reuse_baseline.cc.o"
  "CMakeFiles/fig04_reuse_baseline.dir/fig04_reuse_baseline.cc.o.d"
  "fig04_reuse_baseline"
  "fig04_reuse_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_reuse_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
