file(REMOVE_RECURSE
  "CMakeFiles/stage_breakdown.dir/stage_breakdown.cc.o"
  "CMakeFiles/stage_breakdown.dir/stage_breakdown.cc.o.d"
  "stage_breakdown"
  "stage_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
