# Empty dependencies file for stage_breakdown.
# This may be replaced when dependencies are built.
