file(REMOVE_RECURSE
  "CMakeFiles/ablation_aoe.dir/ablation_aoe.cc.o"
  "CMakeFiles/ablation_aoe.dir/ablation_aoe.cc.o.d"
  "ablation_aoe"
  "ablation_aoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
