# Empty dependencies file for ablation_aoe.
# This may be replaced when dependencies are built.
