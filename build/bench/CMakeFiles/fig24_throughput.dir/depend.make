# Empty dependencies file for fig24_throughput.
# This may be replaced when dependencies are built.
