file(REMOVE_RECURSE
  "CMakeFiles/fig24_throughput.dir/fig24_throughput.cc.o"
  "CMakeFiles/fig24_throughput.dir/fig24_throughput.cc.o.d"
  "fig24_throughput"
  "fig24_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
