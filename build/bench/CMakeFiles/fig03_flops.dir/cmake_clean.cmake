file(REMOVE_RECURSE
  "CMakeFiles/fig03_flops.dir/fig03_flops.cc.o"
  "CMakeFiles/fig03_flops.dir/fig03_flops.cc.o.d"
  "fig03_flops"
  "fig03_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
