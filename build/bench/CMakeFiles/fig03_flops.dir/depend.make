# Empty dependencies file for fig03_flops.
# This may be replaced when dependencies are built.
