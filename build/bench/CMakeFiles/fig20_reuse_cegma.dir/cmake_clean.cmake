file(REMOVE_RECURSE
  "CMakeFiles/fig20_reuse_cegma.dir/fig20_reuse_cegma.cc.o"
  "CMakeFiles/fig20_reuse_cegma.dir/fig20_reuse_cegma.cc.o.d"
  "fig20_reuse_cegma"
  "fig20_reuse_cegma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_reuse_cegma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
