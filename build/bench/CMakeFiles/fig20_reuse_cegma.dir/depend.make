# Empty dependencies file for fig20_reuse_cegma.
# This may be replaced when dependencies are built.
