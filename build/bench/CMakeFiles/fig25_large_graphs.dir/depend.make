# Empty dependencies file for fig25_large_graphs.
# This may be replaced when dependencies are built.
