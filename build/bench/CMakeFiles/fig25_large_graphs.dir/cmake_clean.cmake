file(REMOVE_RECURSE
  "CMakeFiles/fig25_large_graphs.dir/fig25_large_graphs.cc.o"
  "CMakeFiles/fig25_large_graphs.dir/fig25_large_graphs.cc.o.d"
  "fig25_large_graphs"
  "fig25_large_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_large_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
