# Empty compiler generated dependencies file for ablation_matching_mode.
# This may be replaced when dependencies are built.
