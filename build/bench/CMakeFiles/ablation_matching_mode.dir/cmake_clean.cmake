file(REMOVE_RECURSE
  "CMakeFiles/ablation_matching_mode.dir/ablation_matching_mode.cc.o"
  "CMakeFiles/ablation_matching_mode.dir/ablation_matching_mode.cc.o.d"
  "ablation_matching_mode"
  "ablation_matching_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matching_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
