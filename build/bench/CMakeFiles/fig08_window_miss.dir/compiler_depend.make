# Empty compiler generated dependencies file for fig08_window_miss.
# This may be replaced when dependencies are built.
