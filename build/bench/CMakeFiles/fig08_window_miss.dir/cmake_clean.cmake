file(REMOVE_RECURSE
  "CMakeFiles/fig08_window_miss.dir/fig08_window_miss.cc.o"
  "CMakeFiles/fig08_window_miss.dir/fig08_window_miss.cc.o.d"
  "fig08_window_miss"
  "fig08_window_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_window_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
