# Empty compiler generated dependencies file for ablation_tagwidth.
# This may be replaced when dependencies are built.
