file(REMOVE_RECURSE
  "CMakeFiles/ablation_tagwidth.dir/ablation_tagwidth.cc.o"
  "CMakeFiles/ablation_tagwidth.dir/ablation_tagwidth.cc.o.d"
  "ablation_tagwidth"
  "ablation_tagwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tagwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
