file(REMOVE_RECURSE
  "CMakeFiles/fig22_breakdown_dram.dir/fig22_breakdown_dram.cc.o"
  "CMakeFiles/fig22_breakdown_dram.dir/fig22_breakdown_dram.cc.o.d"
  "fig22_breakdown_dram"
  "fig22_breakdown_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_breakdown_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
