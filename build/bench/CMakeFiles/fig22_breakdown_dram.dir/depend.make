# Empty dependencies file for fig22_breakdown_dram.
# This may be replaced when dependencies are built.
