# Empty compiler generated dependencies file for fig23_emf_cycles.
# This may be replaced when dependencies are built.
