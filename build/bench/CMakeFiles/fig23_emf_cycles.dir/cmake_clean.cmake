file(REMOVE_RECURSE
  "CMakeFiles/fig23_emf_cycles.dir/fig23_emf_cycles.cc.o"
  "CMakeFiles/fig23_emf_cycles.dir/fig23_emf_cycles.cc.o.d"
  "fig23_emf_cycles"
  "fig23_emf_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_emf_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
