# Empty compiler generated dependencies file for fig17_dram.
# This may be replaced when dependencies are built.
