file(REMOVE_RECURSE
  "CMakeFiles/fig17_dram.dir/fig17_dram.cc.o"
  "CMakeFiles/fig17_dram.dir/fig17_dram.cc.o.d"
  "fig17_dram"
  "fig17_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
