# Empty compiler generated dependencies file for fig07_redundancy.
# This may be replaced when dependencies are built.
