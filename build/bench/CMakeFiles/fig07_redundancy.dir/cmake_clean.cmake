file(REMOVE_RECURSE
  "CMakeFiles/fig07_redundancy.dir/fig07_redundancy.cc.o"
  "CMakeFiles/fig07_redundancy.dir/fig07_redundancy.cc.o.d"
  "fig07_redundancy"
  "fig07_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
