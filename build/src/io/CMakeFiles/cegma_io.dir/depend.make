# Empty dependencies file for cegma_io.
# This may be replaced when dependencies are built.
