file(REMOVE_RECURSE
  "libcegma_io.a"
)
