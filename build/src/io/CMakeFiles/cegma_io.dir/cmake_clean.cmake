file(REMOVE_RECURSE
  "CMakeFiles/cegma_io.dir/graph_io.cc.o"
  "CMakeFiles/cegma_io.dir/graph_io.cc.o.d"
  "CMakeFiles/cegma_io.dir/trace_io.cc.o"
  "CMakeFiles/cegma_io.dir/trace_io.cc.o.d"
  "libcegma_io.a"
  "libcegma_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
