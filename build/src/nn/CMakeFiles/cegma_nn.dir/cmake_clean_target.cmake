file(REMOVE_RECURSE
  "libcegma_nn.a"
)
