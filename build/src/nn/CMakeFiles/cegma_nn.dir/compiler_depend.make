# Empty compiler generated dependencies file for cegma_nn.
# This may be replaced when dependencies are built.
