file(REMOVE_RECURSE
  "CMakeFiles/cegma_nn.dir/cnn.cc.o"
  "CMakeFiles/cegma_nn.dir/cnn.cc.o.d"
  "CMakeFiles/cegma_nn.dir/gcn.cc.o"
  "CMakeFiles/cegma_nn.dir/gcn.cc.o.d"
  "CMakeFiles/cegma_nn.dir/linear.cc.o"
  "CMakeFiles/cegma_nn.dir/linear.cc.o.d"
  "CMakeFiles/cegma_nn.dir/mgnn.cc.o"
  "CMakeFiles/cegma_nn.dir/mgnn.cc.o.d"
  "CMakeFiles/cegma_nn.dir/ntn.cc.o"
  "CMakeFiles/cegma_nn.dir/ntn.cc.o.d"
  "libcegma_nn.a"
  "libcegma_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
