# Empty dependencies file for cegma_analysis.
# This may be replaced when dependencies are built.
