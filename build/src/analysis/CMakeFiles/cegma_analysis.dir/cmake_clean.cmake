file(REMOVE_RECURSE
  "CMakeFiles/cegma_analysis.dir/flops.cc.o"
  "CMakeFiles/cegma_analysis.dir/flops.cc.o.d"
  "CMakeFiles/cegma_analysis.dir/redundancy.cc.o"
  "CMakeFiles/cegma_analysis.dir/redundancy.cc.o.d"
  "CMakeFiles/cegma_analysis.dir/reuse.cc.o"
  "CMakeFiles/cegma_analysis.dir/reuse.cc.o.d"
  "libcegma_analysis.a"
  "libcegma_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
