file(REMOVE_RECURSE
  "libcegma_analysis.a"
)
