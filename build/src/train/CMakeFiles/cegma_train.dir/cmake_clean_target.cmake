file(REMOVE_RECURSE
  "libcegma_train.a"
)
