file(REMOVE_RECURSE
  "CMakeFiles/cegma_train.dir/grad_layers.cc.o"
  "CMakeFiles/cegma_train.dir/grad_layers.cc.o.d"
  "CMakeFiles/cegma_train.dir/siamese.cc.o"
  "CMakeFiles/cegma_train.dir/siamese.cc.o.d"
  "libcegma_train.a"
  "libcegma_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
