# Empty compiler generated dependencies file for cegma_train.
# This may be replaced when dependencies are built.
