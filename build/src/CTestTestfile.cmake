# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hash")
subdirs("tensor")
subdirs("graph")
subdirs("nn")
subdirs("gmn")
subdirs("emf")
subdirs("sim")
subdirs("accel")
subdirs("analysis")
subdirs("io")
subdirs("train")
