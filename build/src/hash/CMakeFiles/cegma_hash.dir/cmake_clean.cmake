file(REMOVE_RECURSE
  "CMakeFiles/cegma_hash.dir/xxhash.cc.o"
  "CMakeFiles/cegma_hash.dir/xxhash.cc.o.d"
  "libcegma_hash.a"
  "libcegma_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
