file(REMOVE_RECURSE
  "libcegma_hash.a"
)
