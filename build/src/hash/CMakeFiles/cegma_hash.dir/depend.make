# Empty dependencies file for cegma_hash.
# This may be replaced when dependencies are built.
