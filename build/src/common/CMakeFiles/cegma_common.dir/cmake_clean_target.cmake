file(REMOVE_RECURSE
  "libcegma_common.a"
)
