# Empty dependencies file for cegma_common.
# This may be replaced when dependencies are built.
