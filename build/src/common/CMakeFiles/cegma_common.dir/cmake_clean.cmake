file(REMOVE_RECURSE
  "CMakeFiles/cegma_common.dir/logging.cc.o"
  "CMakeFiles/cegma_common.dir/logging.cc.o.d"
  "CMakeFiles/cegma_common.dir/rng.cc.o"
  "CMakeFiles/cegma_common.dir/rng.cc.o.d"
  "CMakeFiles/cegma_common.dir/stats.cc.o"
  "CMakeFiles/cegma_common.dir/stats.cc.o.d"
  "CMakeFiles/cegma_common.dir/table.cc.o"
  "CMakeFiles/cegma_common.dir/table.cc.o.d"
  "libcegma_common.a"
  "libcegma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
