# Empty compiler generated dependencies file for cegma_emf.
# This may be replaced when dependencies are built.
