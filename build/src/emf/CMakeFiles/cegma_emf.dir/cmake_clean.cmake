file(REMOVE_RECURSE
  "CMakeFiles/cegma_emf.dir/emf.cc.o"
  "CMakeFiles/cegma_emf.dir/emf.cc.o.d"
  "CMakeFiles/cegma_emf.dir/emf_pipeline.cc.o"
  "CMakeFiles/cegma_emf.dir/emf_pipeline.cc.o.d"
  "libcegma_emf.a"
  "libcegma_emf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_emf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
