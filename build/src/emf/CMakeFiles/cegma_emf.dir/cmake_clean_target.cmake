file(REMOVE_RECURSE
  "libcegma_emf.a"
)
