file(REMOVE_RECURSE
  "libcegma_accel.a"
)
