file(REMOVE_RECURSE
  "CMakeFiles/cegma_accel.dir/accelerator.cc.o"
  "CMakeFiles/cegma_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/cegma_accel.dir/aoe_unit.cc.o"
  "CMakeFiles/cegma_accel.dir/aoe_unit.cc.o.d"
  "CMakeFiles/cegma_accel.dir/platform.cc.o"
  "CMakeFiles/cegma_accel.dir/platform.cc.o.d"
  "CMakeFiles/cegma_accel.dir/runner.cc.o"
  "CMakeFiles/cegma_accel.dir/runner.cc.o.d"
  "CMakeFiles/cegma_accel.dir/window.cc.o"
  "CMakeFiles/cegma_accel.dir/window.cc.o.d"
  "libcegma_accel.a"
  "libcegma_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
