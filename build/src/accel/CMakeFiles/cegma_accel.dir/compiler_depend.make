# Empty compiler generated dependencies file for cegma_accel.
# This may be replaced when dependencies are built.
