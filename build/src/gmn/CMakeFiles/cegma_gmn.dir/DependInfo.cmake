
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gmn/gmn_li.cc" "src/gmn/CMakeFiles/cegma_gmn.dir/gmn_li.cc.o" "gcc" "src/gmn/CMakeFiles/cegma_gmn.dir/gmn_li.cc.o.d"
  "/root/repo/src/gmn/graphsim.cc" "src/gmn/CMakeFiles/cegma_gmn.dir/graphsim.cc.o" "gcc" "src/gmn/CMakeFiles/cegma_gmn.dir/graphsim.cc.o.d"
  "/root/repo/src/gmn/model.cc" "src/gmn/CMakeFiles/cegma_gmn.dir/model.cc.o" "gcc" "src/gmn/CMakeFiles/cegma_gmn.dir/model.cc.o.d"
  "/root/repo/src/gmn/simgnn.cc" "src/gmn/CMakeFiles/cegma_gmn.dir/simgnn.cc.o" "gcc" "src/gmn/CMakeFiles/cegma_gmn.dir/simgnn.cc.o.d"
  "/root/repo/src/gmn/similarity.cc" "src/gmn/CMakeFiles/cegma_gmn.dir/similarity.cc.o" "gcc" "src/gmn/CMakeFiles/cegma_gmn.dir/similarity.cc.o.d"
  "/root/repo/src/gmn/workload.cc" "src/gmn/CMakeFiles/cegma_gmn.dir/workload.cc.o" "gcc" "src/gmn/CMakeFiles/cegma_gmn.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cegma_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cegma_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cegma_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cegma_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cegma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
