file(REMOVE_RECURSE
  "libcegma_gmn.a"
)
