file(REMOVE_RECURSE
  "CMakeFiles/cegma_gmn.dir/gmn_li.cc.o"
  "CMakeFiles/cegma_gmn.dir/gmn_li.cc.o.d"
  "CMakeFiles/cegma_gmn.dir/graphsim.cc.o"
  "CMakeFiles/cegma_gmn.dir/graphsim.cc.o.d"
  "CMakeFiles/cegma_gmn.dir/model.cc.o"
  "CMakeFiles/cegma_gmn.dir/model.cc.o.d"
  "CMakeFiles/cegma_gmn.dir/simgnn.cc.o"
  "CMakeFiles/cegma_gmn.dir/simgnn.cc.o.d"
  "CMakeFiles/cegma_gmn.dir/similarity.cc.o"
  "CMakeFiles/cegma_gmn.dir/similarity.cc.o.d"
  "CMakeFiles/cegma_gmn.dir/workload.cc.o"
  "CMakeFiles/cegma_gmn.dir/workload.cc.o.d"
  "libcegma_gmn.a"
  "libcegma_gmn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_gmn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
