# Empty compiler generated dependencies file for cegma_gmn.
# This may be replaced when dependencies are built.
