file(REMOVE_RECURSE
  "libcegma_tensor.a"
)
