# Empty dependencies file for cegma_tensor.
# This may be replaced when dependencies are built.
