file(REMOVE_RECURSE
  "CMakeFiles/cegma_tensor.dir/matrix.cc.o"
  "CMakeFiles/cegma_tensor.dir/matrix.cc.o.d"
  "libcegma_tensor.a"
  "libcegma_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
