# Empty dependencies file for cegma_sim.
# This may be replaced when dependencies are built.
