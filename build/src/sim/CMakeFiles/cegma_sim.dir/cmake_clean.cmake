file(REMOVE_RECURSE
  "CMakeFiles/cegma_sim.dir/area.cc.o"
  "CMakeFiles/cegma_sim.dir/area.cc.o.d"
  "CMakeFiles/cegma_sim.dir/buffer.cc.o"
  "CMakeFiles/cegma_sim.dir/buffer.cc.o.d"
  "CMakeFiles/cegma_sim.dir/config.cc.o"
  "CMakeFiles/cegma_sim.dir/config.cc.o.d"
  "CMakeFiles/cegma_sim.dir/energy.cc.o"
  "CMakeFiles/cegma_sim.dir/energy.cc.o.d"
  "CMakeFiles/cegma_sim.dir/mac_array.cc.o"
  "CMakeFiles/cegma_sim.dir/mac_array.cc.o.d"
  "CMakeFiles/cegma_sim.dir/result.cc.o"
  "CMakeFiles/cegma_sim.dir/result.cc.o.d"
  "libcegma_sim.a"
  "libcegma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
