file(REMOVE_RECURSE
  "libcegma_sim.a"
)
