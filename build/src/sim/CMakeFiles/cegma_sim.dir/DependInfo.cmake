
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/area.cc" "src/sim/CMakeFiles/cegma_sim.dir/area.cc.o" "gcc" "src/sim/CMakeFiles/cegma_sim.dir/area.cc.o.d"
  "/root/repo/src/sim/buffer.cc" "src/sim/CMakeFiles/cegma_sim.dir/buffer.cc.o" "gcc" "src/sim/CMakeFiles/cegma_sim.dir/buffer.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/cegma_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/cegma_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/cegma_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/cegma_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/mac_array.cc" "src/sim/CMakeFiles/cegma_sim.dir/mac_array.cc.o" "gcc" "src/sim/CMakeFiles/cegma_sim.dir/mac_array.cc.o.d"
  "/root/repo/src/sim/result.cc" "src/sim/CMakeFiles/cegma_sim.dir/result.cc.o" "gcc" "src/sim/CMakeFiles/cegma_sim.dir/result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cegma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
