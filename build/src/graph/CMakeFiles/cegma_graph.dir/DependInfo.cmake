
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/batch.cc" "src/graph/CMakeFiles/cegma_graph.dir/batch.cc.o" "gcc" "src/graph/CMakeFiles/cegma_graph.dir/batch.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/graph/CMakeFiles/cegma_graph.dir/dataset.cc.o" "gcc" "src/graph/CMakeFiles/cegma_graph.dir/dataset.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/cegma_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/cegma_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/cegma_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/cegma_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/wl_refine.cc" "src/graph/CMakeFiles/cegma_graph.dir/wl_refine.cc.o" "gcc" "src/graph/CMakeFiles/cegma_graph.dir/wl_refine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cegma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cegma_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
