# Empty dependencies file for cegma_graph.
# This may be replaced when dependencies are built.
