file(REMOVE_RECURSE
  "libcegma_graph.a"
)
