file(REMOVE_RECURSE
  "CMakeFiles/cegma_graph.dir/batch.cc.o"
  "CMakeFiles/cegma_graph.dir/batch.cc.o.d"
  "CMakeFiles/cegma_graph.dir/dataset.cc.o"
  "CMakeFiles/cegma_graph.dir/dataset.cc.o.d"
  "CMakeFiles/cegma_graph.dir/generators.cc.o"
  "CMakeFiles/cegma_graph.dir/generators.cc.o.d"
  "CMakeFiles/cegma_graph.dir/graph.cc.o"
  "CMakeFiles/cegma_graph.dir/graph.cc.o.d"
  "CMakeFiles/cegma_graph.dir/wl_refine.cc.o"
  "CMakeFiles/cegma_graph.dir/wl_refine.cc.o.d"
  "libcegma_graph.a"
  "libcegma_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
