file(REMOVE_RECURSE
  "CMakeFiles/cegma_sim_cli.dir/cegma_sim.cc.o"
  "CMakeFiles/cegma_sim_cli.dir/cegma_sim.cc.o.d"
  "cegma_sim"
  "cegma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cegma_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
