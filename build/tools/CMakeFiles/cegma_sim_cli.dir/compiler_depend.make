# Empty compiler generated dependencies file for cegma_sim_cli.
# This may be replaced when dependencies are built.
