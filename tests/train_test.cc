/**
 * @file
 * Tests for the training substrate: finite-difference gradient checks
 * for every differentiable block, Adam behaviour, and end-to-end
 * learning on a separable synthetic task.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "nn/gcn.hh"
#include "train/grad_layers.hh"
#include "train/siamese.hh"

namespace cegma {
namespace {

/** Scalar objective: sum of squares of a matrix. */
double
sumSq(const Matrix &m)
{
    double total = 0.0;
    for (size_t i = 0; i < m.size(); ++i)
        total += 0.5 * m.data()[i] * m.data()[i];
    return total;
}

/** dL/dy for sumSq. */
Matrix
sumSqGrad(const Matrix &m)
{
    Matrix g = m;
    return g;
}

TEST(DenseLayer, GradientCheckWeights)
{
    Rng rng(3);
    for (Activation act : {Activation::None, Activation::Tanh,
                           Activation::Relu, Activation::Sigmoid}) {
        DenseLayer layer(4, 3, rng, act);
        Matrix x(5, 4);
        x.fillXavier(rng);

        layer.zeroGrad();
        Matrix y = layer.forward(x);
        layer.backward(sumSqGrad(y));

        const double eps = 1e-3;
        // Check a handful of weight entries against finite differences.
        for (size_t idx : {0ul, 5ul, 11ul}) {
            float saved = layer.weight().data()[idx];
            layer.weight().data()[idx] = saved + static_cast<float>(eps);
            double up = sumSq(layer.forward(x));
            layer.weight().data()[idx] = saved - static_cast<float>(eps);
            double down = sumSq(layer.forward(x));
            layer.weight().data()[idx] = saved;
            double numeric = (up - down) / (2 * eps);
            double analytic = layer.weightGrad().data()[idx];
            EXPECT_NEAR(analytic, numeric,
                        2e-2 + 0.05 * std::fabs(numeric))
                << "act=" << static_cast<int>(act) << " idx=" << idx;
        }
    }
}

TEST(DenseLayer, GradientCheckInput)
{
    Rng rng(5);
    DenseLayer layer(4, 4, rng, Activation::Tanh);
    Matrix x(3, 4);
    x.fillXavier(rng);

    layer.zeroGrad();
    Matrix y = layer.forward(x);
    Matrix dx = layer.backward(sumSqGrad(y));

    const double eps = 1e-3;
    for (size_t idx : {0ul, 6ul, 11ul}) {
        Matrix xp = x, xm = x;
        xp.data()[idx] += static_cast<float>(eps);
        xm.data()[idx] -= static_cast<float>(eps);
        double numeric =
            (sumSq(layer.forward(xp)) - sumSq(layer.forward(xm))) /
            (2 * eps);
        EXPECT_NEAR(dx.data()[idx], numeric,
                    2e-2 + 0.05 * std::fabs(numeric));
    }
}

TEST(AggregateMean, BackwardIsTranspose)
{
    // <A x, y> == <x, A^T y> for the aggregation operator.
    Rng rng(7);
    Graph g = threadGraph(20, 24, rng);
    Matrix x(20, 3), y(20, 3);
    x.fillXavier(rng);
    y.fillXavier(rng);

    Matrix ax = aggregateMean(g, x, {});
    Matrix aty = aggregateMeanBackward(g, y);
    double lhs = 0.0, rhs = 0.0;
    for (size_t i = 0; i < ax.size(); ++i) {
        lhs += ax.data()[i] * y.data()[i];
        rhs += x.data()[i] * aty.data()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(SumPool, BackwardBroadcasts)
{
    Matrix dh(1, 2, {3.0f, -1.0f});
    Matrix dx = sumPoolBackward(dh, 4);
    ASSERT_EQ(dx.rows(), 4u);
    for (size_t v = 0; v < 4; ++v) {
        EXPECT_FLOAT_EQ(dx.at(v, 0), 3.0f);
        EXPECT_FLOAT_EQ(dx.at(v, 1), -1.0f);
    }
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize 0.5 (w - 3)^2 elementwise.
    Matrix w(1, 4);
    w.fill(0.0f);
    AdamState adam;
    for (int step = 0; step < 2000; ++step) {
        Matrix grad(1, 4);
        for (size_t i = 0; i < 4; ++i)
            grad.at(0, i) = w.at(0, i) - 3.0f;
        adam.update(w, grad, 0.05);
    }
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(w.at(0, i), 3.0f, 0.05f);
}

TEST(SiameseGcn, DistanceSymmetricInputsIsZero)
{
    Rng rng(11);
    Graph g = threadGraph(15, 18, rng);
    GraphPair same{g, g, true};
    SiameseGcn model({}, 7);
    EXPECT_NEAR(model.distance(same), 0.0, 1e-8);
}

TEST(SiameseGcn, TrainStepReducesLossOnOnePair)
{
    Rng rng(13);
    Graph g = threadGraph(20, 24, rng);
    GraphPair pos = makePairFromOriginal(g, true, rng);
    TrainConfig config;
    config.epochs = 1;
    SiameseGcn model(config, 21);
    double first = model.trainStep(pos);
    double loss = first;
    for (int i = 0; i < 50; ++i)
        loss = model.trainStep(pos);
    // A similar pair's distance (== loss) must shrink.
    EXPECT_LT(loss, first);
}

TEST(SiameseGcn, LearnsSeparableTask)
{
    // Similar pairs: same graph twice. Dissimilar: structurally very
    // different graphs (star vs dense blob). A contrastive Siamese
    // GCN must learn to separate them well above chance.
    Rng rng(17);
    std::vector<GraphPair> train, test;
    for (int i = 0; i < 60; ++i) {
        Graph star = threadGraph(20 + (i % 5), 22 + (i % 5), rng);
        Graph blob = erdosRenyiGnm(20 + (i % 5), 120, rng);
        GraphPair pos{star, star.substituteEdges(1, rng), true};
        GraphPair neg{star, blob, false};
        if (i < 40) {
            train.push_back(pos);
            train.push_back(neg);
        } else {
            test.push_back(pos);
            test.push_back(neg);
        }
    }
    TrainConfig config;
    config.epochs = 8;
    SiameseGcn model(config, 31);
    TrainReport report = trainSiamese(model, train, test);
    EXPECT_GT(report.finalAccuracy, 0.8);
    EXPECT_GE(report.finalAccuracy, report.initialAccuracy);
    // Loss must trend down over epochs.
    EXPECT_LT(report.epochLoss.back(), report.epochLoss.front());
}

} // namespace
} // namespace cegma
