/**
 * @file
 * Tests for the observability layer (src/obs): metrics registry
 * semantics, JSON/Prometheus exposition, trace-ring retention, the
 * disabled-path overhead contract, and the serving snapshot's JSON
 * well-formedness.
 */

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "obs/admin_http.hh"
#include "obs/build_info.hh"
#include "obs/metrics.hh"
#include "obs/slo.hh"
#include "obs/trace.hh"
#include "serve/metrics.hh"

using namespace cegma;

namespace {

/**
 * Minimal structural JSON validator: walks the text and checks that
 * braces/brackets nest, strings terminate, and values sit where values
 * belong. Enough to catch a missing comma or an unescaped quote in the
 * handwritten renderers without a JSON dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        return primitive();
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            ++pos_;
            if (c == '"')
                return true;
        }
        return false;
    }

    bool primitive()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
        }
        return pos_ > start;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

TEST(IntDistributionTest, EmptyQuantilesAreZero)
{
    IntDistribution dist;
    EXPECT_EQ(dist.total(), 0u);
    EXPECT_EQ(dist.valueAtQuantile(0.0), 0u);
    EXPECT_EQ(dist.valueAtQuantile(0.5), 0u);
    EXPECT_EQ(dist.valueAtQuantile(0.99), 0u);
    EXPECT_EQ(dist.valueAtQuantile(1.0), 0u);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("test.counter");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // find-or-create returns the same object.
    EXPECT_EQ(&reg.counter("test.counter"), &c);

    obs::Gauge &g = reg.gauge("test.gauge");
    g.set(-7);
    EXPECT_EQ(g.value(), -7);

    int64_t provided = 42;
    obs::Gauge &pg = reg.providerGauge(
        "test.provided", [&provided] { return provided; });
    EXPECT_EQ(pg.value(), 42);
    provided = 43;
    EXPECT_EQ(pg.value(), 43);

    obs::Histogram &h = reg.histogram("test.hist", "us");
    for (uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.p50, 50u);
    EXPECT_EQ(s.p99, 99u);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed)
{
    obs::MetricsRegistry reg;
    reg.counter("a.count").add(3);
    reg.gauge("b.gauge").set(-1);
    reg.histogram("c.hist", "us").record(17);
    std::string json = reg.snapshot().toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"build\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExposition)
{
    obs::MetricsRegistry reg;
    reg.counter("serve.requests.completed").add(9);
    reg.histogram("serve.latency.total", "us").record(1000);
    std::string text = reg.snapshot().toPrometheus();
    EXPECT_NE(text.find("serve_requests_completed 9"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("serve_latency_total_count 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos) << text;
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsConsistent)
{
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 4000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Mixed find-or-create and recording across threads: the
            // references must stay stable and no update may be lost.
            obs::Counter &c = reg.counter("conc.counter");
            obs::Histogram &h = reg.histogram("conc.hist", "us");
            for (int i = 0; i < kIters; ++i) {
                c.add();
                h.record(static_cast<uint64_t>(t));
                reg.counter("conc.counter2").add();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(reg.counter("conc.counter").value(),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.counter("conc.counter2").value(),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("conc.hist").count(),
              static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ServeMetricsTest, SnapshotJsonParsesBack)
{
    ServiceMetrics metrics;
    metrics.recordSubmitted();
    metrics.recordBatch(1);
    metrics.recordCompleted(120.0, 4500.0);
    MetricsSnapshot snap = metrics.snapshot(0);
    std::string json = snap.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"completed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"stage_queue_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"build\""), std::string::npos);
}

TEST(TraceTest, DisabledByDefaultAndNoSpansRecorded)
{
    obs::clearTrace();
    ASSERT_FALSE(obs::tracingEnabled());
    {
        CEGMA_TRACE_SCOPE("should.not.record");
    }
    EXPECT_TRUE(obs::collectSpans().empty());
}

TEST(TraceTest, RecordsNestedSpansWithArgs)
{
    obs::clearTrace();
    obs::setTracingEnabled(true);
    {
        obs::TraceScope outer("outer", "test", "batch_size", 7);
        CEGMA_TRACE_SCOPE_CAT("inner", "test");
    }
    obs::setTracingEnabled(false);
    std::vector<obs::SpanRecord> spans = obs::collectSpans();
    ASSERT_EQ(spans.size(), 2u);
    // start-time ordering: outer began first.
    EXPECT_STREQ(spans[0].name, "outer");
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_EQ(spans[0].argValue, 7u);
    EXPECT_GE(spans[0].durNs, spans[1].durNs);
    obs::clearTrace();
}

TEST(TraceTest, RingOverflowKeepsNewestSpans)
{
    obs::clearTrace();
    obs::setTraceRingCapacity(64);
    obs::setTracingEnabled(true);
    // Record from a fresh thread so the shrunken capacity applies (the
    // main thread's ring may already exist at the default size).
    std::thread([] {
        for (uint64_t i = 0; i < 200; ++i) {
            obs::recordSpan("span", "test", i, 1, "i", i);
        }
    }).join();
    obs::setTracingEnabled(false);
    std::vector<obs::SpanRecord> spans = obs::collectSpans();
    ASSERT_EQ(spans.size(), 64u);
    EXPECT_GE(obs::droppedSpans(), 200u - 64u);
    // The retained window is exactly the newest 64 records.
    EXPECT_EQ(spans.front().argValue, 200u - 64u);
    EXPECT_EQ(spans.back().argValue, 199u);
    obs::setTraceRingCapacity(1 << 15);
    obs::clearTrace();
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed)
{
    obs::clearTrace();
    obs::setTracingEnabled(true);
    {
        CEGMA_TRACE_SCOPE("exported");
    }
    obs::setTracingEnabled(false);
    std::string json = obs::chromeTraceJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"exported\""), std::string::npos);
    EXPECT_NE(json.find("\"build\""), std::string::npos);
    obs::clearTrace();
}

TEST(TraceTest, DisabledScopeOverheadIsNegligible)
{
    ASSERT_FALSE(obs::tracingEnabled());
    constexpr int kIters = 100000;
    uint64_t start = obs::nowNs();
    for (int i = 0; i < kIters; ++i) {
        CEGMA_TRACE_SCOPE("disabled.overhead");
    }
    uint64_t per_iter = (obs::nowNs() - start) / kIters;
    // One relaxed load + branch. The bound is generous (2 us) so
    // sanitizer builds pass; a real regression (e.g. taking a lock on
    // the disabled path) costs far more.
    EXPECT_LT(per_iter, 2000u);
}

TEST(BuildInfoTest, FieldsArePopulated)
{
    EXPECT_NE(obs::buildGitHash()[0], '\0');
    EXPECT_NE(obs::buildCompiler()[0], '\0');
    std::string line = obs::buildInfoString();
    EXPECT_NE(line.find("cegma"), std::string::npos);
    EXPECT_TRUE(JsonChecker(obs::buildInfoJson()).valid());
}

// ---- Rolling windows (fake clock: rotation is purely clock-driven) --

namespace {

/** A hand-advanced clock injectable into the windowed types. */
struct FakeClock
{
    uint64_t now = 0;
    obs::ClockFn fn()
    {
        return [this] { return now; };
    }
};

} // namespace

TEST(WindowedCounterTest, RotationAndExpiryAreExact)
{
    // 12 us window, 12 buckets -> 1 us per bucket.
    FakeClock clk;
    obs::WindowedCounter counter(12'000, 12, clk.fn());
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_DOUBLE_EQ(counter.ratePerSec(), 0.0);

    clk.now = 500; // bucket seq 0
    counter.add(5);
    EXPECT_EQ(counter.total(), 5u);

    clk.now = 1'500; // bucket seq 1
    counter.add(3);
    EXPECT_EQ(counter.total(), 8u);
    // 8 events over a 12 us window.
    EXPECT_DOUBLE_EQ(counter.ratePerSec(), 8.0 / 12e-6);

    // seq 12: the window is [seq 1, seq 12], so the seq-0 bucket
    // expired and only the 3 from seq 1 remain.
    clk.now = 12'499;
    EXPECT_EQ(counter.total(), 3u);

    // seq 13: everything recorded so far has expired. The new record
    // must lazily reclaim the stale seq-1 slot it rotates onto.
    clk.now = 13'500;
    EXPECT_EQ(counter.total(), 0u);
    counter.add(7);
    EXPECT_EQ(counter.total(), 7u);
}

TEST(WindowedCounterTest, ExactWindowEdgeLiveness)
{
    // 10 us window, 10 buckets -> 1 us per bucket. The liveness
    // predicate is oldest <= seq <= now_seq with
    // oldest = now_seq - buckets + 1: pin both edges exactly.
    FakeClock clk;
    obs::WindowedCounter counter(10'000, 10, clk.fn());
    clk.now = 0; // seq 0, the very first bucket
    counter.add(1);

    // now_seq 9 -> oldest 0: still live at the window's last tick.
    clk.now = 9'999;
    EXPECT_EQ(counter.total(), 1u);
    // now_seq 10 -> oldest 1: expired by exactly one bucket — no
    // off-by-one grace tick, no early expiry.
    clk.now = 10'000;
    EXPECT_EQ(counter.total(), 0u);

    // seq 10 wraps onto seq 0's ring slot: the record must reclaim the
    // stale slot (reset, restamp) rather than add into the corpse.
    counter.add(5);
    EXPECT_EQ(counter.total(), 5u);
    clk.now = 10'999; // same bucket, last tick before rotation
    EXPECT_EQ(counter.total(), 5u);
    clk.now = 20'000; // now_seq 20 -> oldest 11: gone again
    EXPECT_EQ(counter.total(), 0u);
}

TEST(WindowedDistributionTest, ExactWindowEdgeExpiry)
{
    // Same edge discipline for the distribution ring: a bucket's
    // samples survive through now_seq = seq + buckets - 1 and vanish
    // at now_seq = seq + buckets, and a wrapped slot never leaks its
    // previous occupant's samples into the merged summary.
    FakeClock clk;
    obs::WindowedDistribution dist(10'000, 10, clk.fn());
    clk.now = 0;
    dist.record(100);
    clk.now = 9'999;
    EXPECT_EQ(dist.summary().count, 1u);
    clk.now = 10'000;
    EXPECT_EQ(dist.summary().count, 0u);

    dist.record(7); // reclaims the wrapped seq-0 slot
    obs::WindowedSummary s = dist.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.sum, 7.0);
    EXPECT_EQ(s.p99, 7u); // the stale 100 must not resurface
}

TEST(WindowedDistributionTest, MergeOnReadQuantilesAreExact)
{
    FakeClock clk;
    obs::WindowedDistribution dist(12'000, 12, clk.fn());
    EXPECT_EQ(dist.summary().count, 0u);

    clk.now = 500; // bucket seq 0
    for (uint64_t v = 1; v <= 50; ++v)
        dist.record(v);
    clk.now = 1'500; // bucket seq 1
    for (uint64_t v = 51; v <= 100; ++v)
        dist.record(v);

    // Both buckets live: the merged view is exactly 1..100.
    obs::WindowedSummary s = dist.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
    EXPECT_EQ(s.p50, 50u);
    EXPECT_EQ(s.p95, 95u);
    EXPECT_EQ(s.p99, 99u);

    // seq 12: the seq-0 bucket (values 1..50) rotated out, so the
    // quantiles are now exact over 51..100 alone.
    clk.now = 12'499;
    s = dist.summary();
    EXPECT_EQ(s.count, 50u);
    EXPECT_DOUBLE_EQ(s.sum, 3775.0);
    EXPECT_EQ(s.p50, 75u);
    EXPECT_EQ(s.p99, 100u);

    // One bucket past that and the window is empty.
    clk.now = 13'500;
    EXPECT_EQ(dist.summary().count, 0u);
}

TEST(SloTrackerTest, BurnRateMathIsExact)
{
    // Single 12 us window so expiry is easy to stage.
    FakeClock clk;
    obs::SloConfig config;
    config.targetMs = 10.0;
    config.objective = 0.99;
    ASSERT_TRUE(config.enabled());
    obs::SloTracker slo(config, {12'000}, 12, clk.fn());
    ASSERT_EQ(slo.windows(), 1u);
    EXPECT_EQ(slo.windowNs(0), 12'000u);

    // Empty window: no burn.
    EXPECT_DOUBLE_EQ(slo.badFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(slo.burnRate(0), 0.0);

    // 99 good + 1 bad = exactly the 1% error budget -> burn rate 1.
    clk.now = 500;
    for (int i = 0; i < 99; ++i)
        slo.record(true);
    slo.record(false);
    EXPECT_DOUBLE_EQ(slo.badFraction(0), 0.01);
    EXPECT_NEAR(slo.burnRate(0), 1.0, 1e-9);

    // A second bad outcome doubles the burn (2% bad / 1% budget).
    clk.now = 1'500;
    slo.record(false);
    EXPECT_DOUBLE_EQ(slo.badFraction(0), 2.0 / 101.0);
    EXPECT_NEAR(slo.burnRate(0), (2.0 / 101.0) / 0.01, 1e-9);

    // Past the window every outcome expires and the burn resets.
    clk.now = 14'000;
    EXPECT_DOUBLE_EQ(slo.badFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(slo.burnRate(0), 0.0);
}

TEST(SloTrackerTest, ShortWindowForgetsWhileLongWindowRemembers)
{
    FakeClock clk;
    obs::SloConfig config;
    config.targetMs = 5.0;
    config.objective = 0.99;
    // 10 us and 100 us horizons, 10 buckets each.
    obs::SloTracker slo(config, {10'000, 100'000}, 10, clk.fn());
    ASSERT_EQ(slo.windows(), 2u);

    clk.now = 500;
    slo.record(false); // one all-bad sample
    EXPECT_DOUBLE_EQ(slo.badFraction(0), 1.0);
    EXPECT_DOUBLE_EQ(slo.badFraction(1), 1.0);

    // 15 us later: outside the short window, inside the long one.
    clk.now = 15'000;
    EXPECT_DOUBLE_EQ(slo.badFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(slo.badFraction(1), 1.0);
    EXPECT_NEAR(slo.burnRate(1), 100.0, 1e-6); // 100% bad / 1% budget
}

TEST(TailExemplarsTest, KeepsTopKSlowestFirstAndExpires)
{
    FakeClock clk;
    clk.now = 500;
    obs::TailExemplars exemplars(3, 1'000'000, 2, clk.fn());
    EXPECT_EQ(exemplars.topK(), 3u);

    const uint64_t totals[] = {10, 50, 30, 20, 40};
    for (uint64_t i = 0; i < 5; ++i) {
        obs::CriticalPath cp;
        cp.requestId = i + 1;
        cp.totalUs = totals[i];
        exemplars.record(cp);
    }

    // Only the three slowest survive, ordered slowest first.
    std::vector<obs::CriticalPath> got = exemplars.collect();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].totalUs, 50u);
    EXPECT_EQ(got[1].totalUs, 40u);
    EXPECT_EQ(got[2].totalUs, 30u);
    EXPECT_EQ(got[0].requestId, 2u); // identity rides along

    // Two windows later everything has rotated out.
    clk.now = 500 + 3 * 1'000'000;
    EXPECT_TRUE(exemplars.collect().empty());
}

TEST(CriticalPathTest, StageSumAndJsonShape)
{
    obs::CriticalPath cp;
    cp.requestId = 42;
    cp.queueUs = 7;
    cp.totalUs = 120;
    cp.embedUs = 50;
    cp.dedupUs = 5;
    cp.matchUs = 40;
    cp.headUs = 10;
    cp.memoUs = 2;
    cp.batchSize = 4;
    cp.epoch = 3;
    EXPECT_EQ(cp.stageSumUs(), 107u);
    std::string json = cp.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"id\": 42"), std::string::npos) << json;
    EXPECT_NE(json.find("\"stages_us\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"stage_sum_us\": 107"), std::string::npos)
        << json;
}

TEST(WindowedTest, ConcurrentRecordAndScrape)
{
    // Large real-clock window so nothing expires mid-test; the point
    // is the TSan-visible interleaving of record and merge-on-read.
    obs::WindowedDistribution dist(uint64_t{60} * 1'000'000'000, 12);
    obs::SloConfig config;
    config.targetMs = 1.0;
    obs::SloTracker slo(config);
    constexpr int kWriters = 6;
    constexpr int kReaders = 2;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([&dist, &slo, t] {
            for (int i = 0; i < kIters; ++i) {
                dist.record(static_cast<uint64_t>(t * kIters + i));
                slo.record(i % 2 == 0);
            }
        });
    }
    std::atomic<bool> done{false};
    for (int t = 0; t < kReaders; ++t) {
        threads.emplace_back([&dist, &slo, &done] {
            while (!done.load(std::memory_order_relaxed)) {
                (void)dist.summary();
                (void)dist.ratePerSec();
                for (size_t w = 0; w < slo.windows(); ++w)
                    (void)slo.burnRate(w);
            }
        });
    }
    for (int t = 0; t < kWriters; ++t)
        threads[static_cast<size_t>(t)].join();
    done.store(true, std::memory_order_relaxed);
    for (int t = 0; t < kReaders; ++t)
        threads[static_cast<size_t>(kWriters + t)].join();
    EXPECT_EQ(dist.summary().count,
              static_cast<uint64_t>(kWriters) * kIters);
    // Writers alternate good/bad, so every window burns at exactly
    // half the traffic against the 1% default budget.
    EXPECT_NEAR(slo.badFraction(0), 0.5, 1e-9);
}

// ---- Per-request stage attribution ----------------------------------

TEST(AttributionTest, AccumulatesOnlyWhenEnabledAndBound)
{
    ASSERT_FALSE(obs::attributionEnabled());
    obs::StageAccum accum;

    // Disabled: a bound thread-local must not receive anything.
    {
        obs::ScopedStageAccum bind(&accum);
        obs::attributeStageNs(&obs::StageAccum::embedNs, 100);
        obs::StageScope scope("embed", nullptr,
                              &obs::StageAccum::embedNs);
    }
    EXPECT_EQ(accum.embedNs.load(), 0u);

    // Enabled but unbound: still nothing.
    obs::setAttributionEnabled(true);
    obs::attributeStageNs(&obs::StageAccum::embedNs, 100);
    EXPECT_EQ(accum.embedNs.load(), 0u);

    // Enabled and bound: both the direct path and the scope land in
    // the selected slot, and the binding restores on scope exit.
    {
        obs::ScopedStageAccum bind(&accum);
        EXPECT_EQ(obs::currentStageAccum(), &accum);
        obs::attributeStageNs(&obs::StageAccum::memoNs, 250);
        obs::StageScope scope("match", nullptr,
                              &obs::StageAccum::matchNs);
    }
    obs::setAttributionEnabled(false);
    EXPECT_EQ(obs::currentStageAccum(), nullptr);
    EXPECT_EQ(accum.memoNs.load(), 250u);
    EXPECT_GT(accum.matchNs.load(), 0u);
    EXPECT_EQ(accum.embedNs.load(), 0u);
}

TEST(AttributionTest, DisabledStageScopeOverheadIsNegligible)
{
    ASSERT_FALSE(obs::tracingEnabled());
    ASSERT_FALSE(obs::attributionEnabled());
    constexpr int kIters = 100000;
    uint64_t start = obs::nowNs();
    for (int i = 0; i < kIters; ++i) {
        obs::StageScope scope("disabled.attr", nullptr,
                              &obs::StageAccum::embedNs);
    }
    uint64_t per_iter = (obs::nowNs() - start) / kIters;
    // Two relaxed loads + branches (tracing off, attribution off, no
    // histogram). Same generous sanitizer-safe bound as the trace
    // scope test.
    EXPECT_LT(per_iter, 2000u);
}

// ---- Prometheus exposition lint -------------------------------------

namespace {

/** Is `name` a valid Prometheus metric/label identifier? */
bool
promIdentifierOk(const std::string &name)
{
    if (name.empty())
        return false;
    for (size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
        bool digit = c >= '0' && c <= '9';
        if (!(alpha || (digit && i > 0)))
            return false;
    }
    return true;
}

/**
 * Lint one non-comment exposition line: `name[{labels}] value`, with
 * every label `key="escaped"` and the value a full double. Returns an
 * empty string when the line passes, else the complaint.
 */
std::string
lintPromLine(const std::string &line)
{
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos)
        return "no value separator";
    if (!promIdentifierOk(line.substr(0, name_end)))
        return "bad metric name";
    size_t pos = name_end;
    if (line[pos] == '{') {
        ++pos;
        while (pos < line.size() && line[pos] != '}') {
            size_t eq = line.find('=', pos);
            if (eq == std::string::npos ||
                !promIdentifierOk(line.substr(pos, eq - pos)))
                return "bad label name";
            if (eq + 1 >= line.size() || line[eq + 1] != '"')
                return "label value not quoted";
            pos = eq + 2;
            while (pos < line.size() && line[pos] != '"') {
                if (line[pos] == '\\') {
                    char esc = pos + 1 < line.size() ? line[pos + 1]
                                                     : '\0';
                    if (esc != '\\' && esc != '"' && esc != 'n')
                        return "bad escape in label value";
                    pos += 2;
                    continue;
                }
                ++pos;
            }
            if (pos >= line.size())
                return "unterminated label value";
            ++pos; // closing quote
            if (pos < line.size() && line[pos] == ',')
                ++pos;
        }
        if (pos >= line.size())
            return "unterminated label set";
        ++pos; // '}'
    }
    if (pos >= line.size() || line[pos] != ' ')
        return "missing space before value";
    const char *value = line.c_str() + pos + 1;
    char *end = nullptr;
    std::strtod(value, &end);
    if (end == value || *end != '\0')
        return "value is not a number";
    return "";
}

/** Lint a whole exposition body; returns the first complaint. */
std::string
lintPromText(const std::string &text)
{
    size_t start = 0;
    while (start < text.size()) {
        size_t eol = text.find('\n', start);
        if (eol == std::string::npos)
            return "missing trailing newline";
        std::string line = text.substr(start, eol - start);
        start = eol + 1;
        if (line.empty())
            return "empty line";
        if (line[0] == '#') {
            if (line.rfind("# TYPE ", 0) != 0 &&
                line.rfind("# HELP ", 0) != 0)
                return "bad comment line: " + line;
            continue;
        }
        std::string complaint = lintPromLine(line);
        if (!complaint.empty())
            return complaint + ": " + line;
    }
    return "";
}

} // namespace

TEST(PrometheusLintTest, LabelValueEscaping)
{
    EXPECT_EQ(obs::promEscapeLabelValue("plain"), "plain");
    EXPECT_EQ(obs::promEscapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::promEscapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::promEscapeLabelValue("a\nb"), "a\\nb");
    EXPECT_EQ(obs::promEscapeLabelValue("-O2 -march=\"x\"\n"),
              "-O2 -march=\\\"x\\\"\\n");
}

TEST(PrometheusLintTest, MetricNameSanitization)
{
    EXPECT_EQ(obs::promMetricName("serve.win1m.p99_us"),
              "serve_win1m_p99_us");
    EXPECT_EQ(obs::promMetricName("9lives"), "_9lives");
    EXPECT_EQ(obs::promMetricName("a-b c"), "a_b_c");
}

TEST(PrometheusLintTest, EveryExportedLinePasses)
{
    obs::MetricsRegistry reg;
    reg.counter("lint.count").add(3);
    reg.gauge("lint.gauge").set(-12);
    reg.floatGauge("lint.fgauge").set(0.25);
    reg.floatGauge("serve.slo.burn.win1m").set(1.5e-3);
    reg.providerFloatGauge("lint.provided", [] { return 2.75; });
    obs::Histogram &h = reg.histogram("lint.hist", "us");
    h.record(10);
    h.record(20);
    // Awkward metric name: must sanitize, not leak into the grammar.
    reg.counter("lint.weird-name 9").add(1);
    std::string text = reg.snapshot().toPrometheus();
    EXPECT_EQ(lintPromText(text), "") << text;
    EXPECT_NE(text.find("lint_count 3"), std::string::npos) << text;
    EXPECT_NE(text.find("lint_fgauge 0.25"), std::string::npos) << text;
    EXPECT_NE(text.find("serve_slo_burn_win1m 0.0015"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("cegma_build_info{git=\""), std::string::npos)
        << text;
}

TEST(FloatGaugeTest, SetProviderAndSnapshot)
{
    obs::MetricsRegistry reg;
    obs::FloatGauge &g = reg.floatGauge("fg.direct");
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    EXPECT_EQ(&reg.floatGauge("fg.direct"), &g);

    double provided = 0.125;
    reg.providerFloatGauge("fg.provided",
                           [&provided] { return provided; });
    provided = 0.5;
    obs::RegistrySnapshot snap = reg.snapshot();
    bool saw_direct = false;
    bool saw_provided = false;
    for (const obs::MetricValue &m : snap.metrics) {
        if (m.name == "fg.direct") {
            saw_direct = true;
            EXPECT_EQ(m.kind, obs::MetricValue::Kind::FloatGauge);
            EXPECT_DOUBLE_EQ(m.fgauge, 3.5);
        }
        if (m.name == "fg.provided") {
            saw_provided = true;
            EXPECT_DOUBLE_EQ(m.fgauge, 0.5);
        }
    }
    EXPECT_TRUE(saw_direct);
    EXPECT_TRUE(saw_provided);
}

// ---- Embedded admin HTTP server -------------------------------------

namespace {

/** One blocking HTTP exchange against loopback `port`. */
std::string
httpGet(uint16_t port, const std::string &request)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return response;
}

} // namespace

TEST(AdminServerTest, ServesHandlersOverRealSockets)
{
    obs::AdminServer server;
    server.handle("/ping", [](const obs::HttpRequest &req) {
        obs::HttpResponse resp;
        resp.body = "pong " + req.method + "\n";
        return resp;
    });
    server.handle("/busy", [](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.status = 503;
        resp.body = "draining\n";
        return resp;
    });

    obs::AdminServer::Config config;
    config.port = 0; // ephemeral
    ASSERT_TRUE(server.start(config)) << server.status();
    ASSERT_TRUE(server.running());
    uint16_t port = server.port();
    ASSERT_GT(port, 0);
    EXPECT_EQ(server.status(), "ok");

    std::string ok = httpGet(
        port, "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;
    EXPECT_NE(ok.find("pong GET"), std::string::npos) << ok;
    EXPECT_NE(ok.find("Content-Length:"), std::string::npos) << ok;

    // The query string is stripped before handler dispatch.
    std::string query = httpGet(
        port,
        "GET /ping?x=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(query.find("HTTP/1.1 200 OK"), std::string::npos) << query;

    // HEAD gets headers only.
    std::string head = httpGet(
        port, "HEAD /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos) << head;
    EXPECT_EQ(head.find("pong"), std::string::npos) << head;

    std::string busy = httpGet(
        port, "GET /busy HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(busy.find("HTTP/1.1 503"), std::string::npos) << busy;

    std::string missing = httpGet(
        port, "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos)
        << missing;

    std::string post = httpGet(
        port, "POST /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;

    std::string garbage = httpGet(port, "NONSENSE\r\n\r\n");
    EXPECT_NE(garbage.find("HTTP/1.1 400"), std::string::npos)
        << garbage;

    EXPECT_GE(server.requestsServed(), 6u);
    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), 0);
    server.stop(); // idempotent
}

TEST(AdminServerTest, ConcurrentScrapersAllComplete)
{
    obs::AdminServer server;
    std::atomic<uint64_t> hits{0};
    server.handle("/metrics", [&hits](const obs::HttpRequest &) {
        hits.fetch_add(1, std::memory_order_relaxed);
        obs::HttpResponse resp;
        resp.body = "m 1\n";
        return resp;
    });
    ASSERT_TRUE(server.start({})) << server.status();
    uint16_t port = server.port();
    constexpr int kThreads = 8;
    constexpr int kRequests = 5;
    std::atomic<int> okCount{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([port, &okCount] {
            for (int i = 0; i < kRequests; ++i) {
                std::string resp = httpGet(port,
                                           "GET /metrics HTTP/1.1\r\n"
                                           "Host: t\r\n"
                                           "Connection: close\r\n\r\n");
                if (resp.find("HTTP/1.1 200") != std::string::npos)
                    okCount.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    // Connections are served serially but queue in the listen backlog:
    // every scrape must still succeed.
    EXPECT_EQ(okCount.load(), kThreads * kRequests);
    EXPECT_EQ(hits.load(), static_cast<uint64_t>(kThreads) * kRequests);
    server.stop();
}

TEST(AdminServerTest, PeerClosingEarlyCountsWriteErrorAndServerSurvives)
{
    // Regression: serveConnection used to ignore sendAll's result, so
    // a peer that reset mid-response (a scraper timing out, a
    // port-scan) was invisible — and the body was still shoveled into
    // the dead socket. Now the failed header/body send increments
    // writeErrors() and skips the rest, and the serial accept loop
    // moves on to the next connection unharmed.
    obs::AdminServer server;
    server.handle("/big", [](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        // Far larger than the socket buffers, so the send cannot
        // complete before the reset arrives.
        resp.body.assign(size_t{8} << 20, 'x');
        return resp;
    });
    server.handle("/ping", [](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.body = "pong\n";
        return resp;
    });
    obs::AdminServer::Config config;
    config.ioTimeoutMs = 500; // bound the worst case (reset not seen)
    ASSERT_TRUE(server.start(config)) << server.status();
    uint16_t port = server.port();
    ASSERT_GT(port, 0);

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    // A tiny receive window keeps the server's sendAll in flight long
    // enough for the close below to land mid-response.
    int rcvbuf = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char request[] =
        "GET /big HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    ASSERT_GT(::send(fd, request, sizeof(request) - 1, 0), 0);
    // SO_LINGER 0 turns close() into an immediate RST: the peer is
    // gone before (or while) the server writes, never a graceful FIN.
    linger lin{};
    lin.l_onoff = 1;
    lin.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
    ::close(fd);

    for (int i = 0; i < 300 && server.writeErrors() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(server.writeErrors(), 1u);
    EXPECT_GE(server.requestsServed(), 1u);

    // The next scrape on a fresh connection is business as usual.
    std::string ok = httpGet(
        port, "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos) << ok;
    EXPECT_NE(ok.find("pong"), std::string::npos) << ok;
    server.stop();
}

TEST(ServeMetricsTest, WindowGaugesAndSloWithFakeClock)
{
    FakeClock clk;
    clk.now = 500;
    ServiceMetrics metrics(clk.fn());
    obs::SloConfig slo;
    slo.targetMs = 10.0; // 10 ms target
    slo.objective = 0.99;
    metrics.configureSlo(slo);
    ASSERT_NE(metrics.slo(), nullptr);

    // 9 on-target completions and 1 failure: 10% bad, burn rate 10.
    for (int i = 0; i < 9; ++i)
        metrics.recordCompleted(100.0, 5'000.0); // 5 ms, under target
    metrics.recordRejected();

    obs::RegistrySnapshot snap = metrics.registry().snapshot();
    auto find = [&snap](const std::string &name,
                        obs::MetricValue &out) {
        for (const obs::MetricValue &m : snap.metrics) {
            if (m.name == name) {
                out = m;
                return true;
            }
        }
        return false;
    };

    obs::MetricValue v;
    ASSERT_TRUE(find("serve.win1m.p99_us", v));
    EXPECT_EQ(v.gauge, 5'000);
    ASSERT_TRUE(find("serve.win10s.p50_us", v));
    EXPECT_EQ(v.gauge, 5'000);
    ASSERT_TRUE(find("serve.slo.target_ms", v));
    EXPECT_DOUBLE_EQ(v.fgauge, 10.0);
    ASSERT_TRUE(find("serve.slo.burn.win1m", v));
    EXPECT_NEAR(v.fgauge, 10.0, 1e-6); // 10% bad / 1% budget
    ASSERT_TRUE(find("serve.win1m.error_rate", v));
    EXPECT_NEAR(v.fgauge, 1.0 / 60.0, 1e-9); // 1 error / 60 s window

    // A completion over target is as bad as a failure.
    metrics.recordCompleted(100.0, 50'000.0); // 50 ms
    EXPECT_NEAR(metrics.slo()->badFraction(1), 2.0 / 11.0, 1e-9);

    // Freezing pins the gauges; later traffic no longer moves them.
    metrics.freezeWindowGauges();
    for (int i = 0; i < 5; ++i)
        metrics.recordCompleted(100.0, 9'000.0);
    snap = metrics.registry().snapshot();
    obs::MetricValue frozen;
    ASSERT_TRUE(find("serve.win1m.p99_us", frozen));
    EXPECT_EQ(frozen.gauge, 50'000);
}
