/**
 * @file
 * Tests for the observability layer (src/obs): metrics registry
 * semantics, JSON/Prometheus exposition, trace-ring retention, the
 * disabled-path overhead contract, and the serving snapshot's JSON
 * well-formedness.
 */

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "obs/build_info.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/metrics.hh"

using namespace cegma;

namespace {

/**
 * Minimal structural JSON validator: walks the text and checks that
 * braces/brackets nest, strings terminate, and values sit where values
 * belong. Enough to catch a missing comma or an unescaped quote in the
 * handwritten renderers without a JSON dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        return primitive();
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            ++pos_;
            if (c == '"')
                return true;
        }
        return false;
    }

    bool primitive()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            ++pos_;
        }
        return pos_ > start;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

TEST(IntDistributionTest, EmptyQuantilesAreZero)
{
    IntDistribution dist;
    EXPECT_EQ(dist.total(), 0u);
    EXPECT_EQ(dist.valueAtQuantile(0.0), 0u);
    EXPECT_EQ(dist.valueAtQuantile(0.5), 0u);
    EXPECT_EQ(dist.valueAtQuantile(0.99), 0u);
    EXPECT_EQ(dist.valueAtQuantile(1.0), 0u);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("test.counter");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // find-or-create returns the same object.
    EXPECT_EQ(&reg.counter("test.counter"), &c);

    obs::Gauge &g = reg.gauge("test.gauge");
    g.set(-7);
    EXPECT_EQ(g.value(), -7);

    int64_t provided = 42;
    obs::Gauge &pg = reg.providerGauge(
        "test.provided", [&provided] { return provided; });
    EXPECT_EQ(pg.value(), 42);
    provided = 43;
    EXPECT_EQ(pg.value(), 43);

    obs::Histogram &h = reg.histogram("test.hist", "us");
    for (uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    obs::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.p50, 50u);
    EXPECT_EQ(s.p99, 99u);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed)
{
    obs::MetricsRegistry reg;
    reg.counter("a.count").add(3);
    reg.gauge("b.gauge").set(-1);
    reg.histogram("c.hist", "us").record(17);
    std::string json = reg.snapshot().toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"build\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExposition)
{
    obs::MetricsRegistry reg;
    reg.counter("serve.requests.completed").add(9);
    reg.histogram("serve.latency.total", "us").record(1000);
    std::string text = reg.snapshot().toPrometheus();
    EXPECT_NE(text.find("serve_requests_completed 9"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("serve_latency_total_count 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos) << text;
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsConsistent)
{
    obs::MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 4000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Mixed find-or-create and recording across threads: the
            // references must stay stable and no update may be lost.
            obs::Counter &c = reg.counter("conc.counter");
            obs::Histogram &h = reg.histogram("conc.hist", "us");
            for (int i = 0; i < kIters; ++i) {
                c.add();
                h.record(static_cast<uint64_t>(t));
                reg.counter("conc.counter2").add();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(reg.counter("conc.counter").value(),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.counter("conc.counter2").value(),
              static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(reg.histogram("conc.hist").count(),
              static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ServeMetricsTest, SnapshotJsonParsesBack)
{
    ServiceMetrics metrics;
    metrics.recordSubmitted();
    metrics.recordBatch(1);
    metrics.recordCompleted(120.0, 4500.0);
    MetricsSnapshot snap = metrics.snapshot(0);
    std::string json = snap.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"completed\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"stage_queue_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"build\""), std::string::npos);
}

TEST(TraceTest, DisabledByDefaultAndNoSpansRecorded)
{
    obs::clearTrace();
    ASSERT_FALSE(obs::tracingEnabled());
    {
        CEGMA_TRACE_SCOPE("should.not.record");
    }
    EXPECT_TRUE(obs::collectSpans().empty());
}

TEST(TraceTest, RecordsNestedSpansWithArgs)
{
    obs::clearTrace();
    obs::setTracingEnabled(true);
    {
        obs::TraceScope outer("outer", "test", "batch_size", 7);
        CEGMA_TRACE_SCOPE_CAT("inner", "test");
    }
    obs::setTracingEnabled(false);
    std::vector<obs::SpanRecord> spans = obs::collectSpans();
    ASSERT_EQ(spans.size(), 2u);
    // start-time ordering: outer began first.
    EXPECT_STREQ(spans[0].name, "outer");
    EXPECT_STREQ(spans[1].name, "inner");
    EXPECT_EQ(spans[0].argValue, 7u);
    EXPECT_GE(spans[0].durNs, spans[1].durNs);
    obs::clearTrace();
}

TEST(TraceTest, RingOverflowKeepsNewestSpans)
{
    obs::clearTrace();
    obs::setTraceRingCapacity(64);
    obs::setTracingEnabled(true);
    // Record from a fresh thread so the shrunken capacity applies (the
    // main thread's ring may already exist at the default size).
    std::thread([] {
        for (uint64_t i = 0; i < 200; ++i) {
            obs::recordSpan("span", "test", i, 1, "i", i);
        }
    }).join();
    obs::setTracingEnabled(false);
    std::vector<obs::SpanRecord> spans = obs::collectSpans();
    ASSERT_EQ(spans.size(), 64u);
    EXPECT_GE(obs::droppedSpans(), 200u - 64u);
    // The retained window is exactly the newest 64 records.
    EXPECT_EQ(spans.front().argValue, 200u - 64u);
    EXPECT_EQ(spans.back().argValue, 199u);
    obs::setTraceRingCapacity(1 << 15);
    obs::clearTrace();
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed)
{
    obs::clearTrace();
    obs::setTracingEnabled(true);
    {
        CEGMA_TRACE_SCOPE("exported");
    }
    obs::setTracingEnabled(false);
    std::string json = obs::chromeTraceJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"exported\""), std::string::npos);
    EXPECT_NE(json.find("\"build\""), std::string::npos);
    obs::clearTrace();
}

TEST(TraceTest, DisabledScopeOverheadIsNegligible)
{
    ASSERT_FALSE(obs::tracingEnabled());
    constexpr int kIters = 100000;
    uint64_t start = obs::nowNs();
    for (int i = 0; i < kIters; ++i) {
        CEGMA_TRACE_SCOPE("disabled.overhead");
    }
    uint64_t per_iter = (obs::nowNs() - start) / kIters;
    // One relaxed load + branch. The bound is generous (2 us) so
    // sanitizer builds pass; a real regression (e.g. taking a lock on
    // the disabled path) costs far more.
    EXPECT_LT(per_iter, 2000u);
}

TEST(BuildInfoTest, FieldsArePopulated)
{
    EXPECT_NE(obs::buildGitHash()[0], '\0');
    EXPECT_NE(obs::buildCompiler()[0], '\0');
    std::string line = obs::buildInfoString();
    EXPECT_NE(line.find("cegma"), std::string::npos);
    EXPECT_TRUE(JsonChecker(obs::buildInfoJson()).valid());
}
