/**
 * @file
 * Parameterized property sweeps: scheduler invariants over the full
 * (scheme x buffer capacity) grid, dataset-family duplicate-structure
 * ordering, and platform dominance across graph scales.
 */

#include <gtest/gtest.h>

#include "accel/runner.hh"
#include "accel/window.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

namespace cegma {
namespace {

// ---------------------------------------------------------------
// Scheduler x capacity grid.
// ---------------------------------------------------------------

using SchedPoint = std::tuple<SchedulerKind, uint32_t>;

class SchedGrid : public ::testing::TestWithParam<SchedPoint>
{
  public:
    static std::string
    name(const ::testing::TestParamInfo<SchedPoint> &info)
    {
        auto [kind, cap] = info.param;
        const char *names[] = {"Separate", "Double", "Joint",
                               "Coordinated"};
        return std::string(names[static_cast<int>(kind)]) + "_cap" +
               std::to_string(cap);
    }
};

TEST_P(SchedGrid, CoverageAndSanity)
{
    auto [kind, cap] = GetParam();
    Rng rng(101 + cap);
    Graph t = threadGraph(64, 76, rng);
    Graph q = sparseSocialGraph(48, 90, rng);
    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = cap;
    work.hasMatching = true;

    ScheduleResult res = scheduleLayer(kind, work);
    EXPECT_EQ(res.arcsProcessed, t.numArcs() + q.numArcs());
    EXPECT_EQ(res.matchesProcessed,
              static_cast<uint64_t>(t.numNodes()) * q.numNodes());
    EXPECT_GE(res.loads, t.numNodes() + q.numNodes());
    EXPECT_GT(res.steps, 0u);
    // Loads are bounded by the trivially-worst schedule: refetching
    // both sides for every window step.
    EXPECT_LE(res.loads,
              res.steps * static_cast<uint64_t>(cap) +
                  t.numNodes() + q.numNodes());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedGrid,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::SeparatePhase,
                          SchedulerKind::DoubleWindow,
                          SchedulerKind::Joint,
                          SchedulerKind::Coordinated),
        ::testing::Values(4u, 8u, 16u, 64u, 256u)),
    SchedGrid::name);

// ---------------------------------------------------------------
// Dataset-family duplicate structure.
// ---------------------------------------------------------------

TEST(PropertySweep, ThreadGraphsOutDuplicateRandomOnes)
{
    // At every size, REDDIT-style thread graphs must carry more
    // depth-3 duplication than equally sized uniform random graphs.
    Rng rng(7);
    for (NodeId n : {50u, 150u, 400u}) {
        Graph thread_g = threadGraph(n, n + n / 6, rng);
        Graph random_g = erdosRenyiGnm(n, n + n / 6, rng);
        double thread_dup = wlRefine(thread_g, 3).duplicateFraction(3);
        double random_dup = wlRefine(random_g, 3).duplicateFraction(3);
        EXPECT_GT(thread_dup, random_dup) << "n=" << n;
    }
}

TEST(PropertySweep, ThreadGraphsStayDuplicateHeavyAtEverySize)
{
    // The thread generator's leaf-per-hub ratio is scale-free, so
    // REDDIT-style duplication stays high at every size.
    Rng rng(9);
    for (NodeId n : {60u, 240u, 960u}) {
        Graph g = threadGraph(n, n + n / 6, rng);
        EXPECT_GT(wlRefine(g, 3).duplicateFraction(3), 0.4)
            << "n=" << n;
    }
}

TEST(PropertySweep, SparseRandomDuplicationGrowsWithSize)
{
    // The Fig. 25 mechanism: sparse uniform graphs of constant average
    // degree repeat more local tree shapes as they grow.
    Rng rng(13);
    auto avg_dup = [&](NodeId n) {
        double total = 0;
        for (int trial = 0; trial < 4; ++trial) {
            Graph g = randomGraphLi(n, rng);
            total += wlRefine(g, 3).duplicateFraction(3);
        }
        return total / 4;
    };
    double small = avg_dup(100);
    double large = avg_dup(2000);
    EXPECT_GT(large, small);
}

// ---------------------------------------------------------------
// Platform dominance across graph scales.
// ---------------------------------------------------------------

class ScaleSweep : public ::testing::TestWithParam<NodeId>
{
};

TEST_P(ScaleSweep, CegmaDominatesAtEveryScale)
{
    NodeId n = GetParam();
    Rng rng(11 + n);
    Dataset ds;
    ds.spec = datasetSpec(DatasetId::RD_B);
    for (int i = 0; i < 4; ++i) {
        Graph g = randomGraphLi(n, rng);
        ds.pairs.push_back(makePairFromOriginal(g, (i % 2) == 0, rng));
    }
    auto traces = buildTraces(ModelId::GraphSim, ds, 0);
    double awb = runPlatform(PlatformId::AwbGcn, traces).cycles;
    double cegma = runPlatform(PlatformId::Cegma, traces).cycles;
    EXPECT_LT(cegma, awb) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScaleSweep,
                         ::testing::Values(16u, 64u, 256u, 1024u),
                         [](const auto &info) {
                             return "n" + std::to_string(info.param);
                         });

} // namespace
} // namespace cegma
