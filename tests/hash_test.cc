/**
 * @file
 * Unit tests for the from-scratch XXH32 implementation, including
 * reference-vector compatibility and streaming/one-shot agreement.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "hash/xxhash.hh"

namespace cegma {
namespace {

TEST(XxHash32, ReferenceVectors)
{
    // Known-answer tests against the reference xxHash library.
    EXPECT_EQ(xxhash32("", 0, 0), 0x02CC5D05u);
    EXPECT_EQ(xxhash32("a", 1, 0), 0x550D7456u);
    EXPECT_EQ(xxhash32("abc", 3, 0), 0x32D153FFu);
}

TEST(XxHash32, SeedChangesDigest)
{
    const char *msg = "duplicate node feature vector";
    EXPECT_NE(xxhash32(msg, std::strlen(msg), 0),
              xxhash32(msg, std::strlen(msg), 1));
}

TEST(XxHash32, LongInputsStable)
{
    std::vector<uint8_t> buf(1024);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 31 + 7);
    uint32_t h1 = xxhash32(buf.data(), buf.size(), 0);
    uint32_t h2 = xxhash32(buf.data(), buf.size(), 0);
    EXPECT_EQ(h1, h2);
    buf[512] ^= 1;
    EXPECT_NE(h1, xxhash32(buf.data(), buf.size(), 0));
}

TEST(XxHash32Stream, MatchesOneShotAcrossChunkings)
{
    Rng rng(77);
    std::vector<uint8_t> buf(257);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next64());

    uint32_t expected = xxhash32(buf.data(), buf.size(), 5);
    for (size_t chunk : {1ul, 3ul, 7ul, 16ul, 31ul, 64ul, 257ul}) {
        XxHash32Stream stream(5);
        size_t pos = 0;
        while (pos < buf.size()) {
            size_t take = std::min(chunk, buf.size() - pos);
            stream.update(buf.data() + pos, take);
            pos += take;
        }
        EXPECT_EQ(stream.digest(), expected) << "chunk=" << chunk;
    }
}

TEST(XxHash32Stream, DigestIsIdempotent)
{
    XxHash32Stream stream(0);
    stream.update("hello", 5);
    uint32_t d1 = stream.digest();
    uint32_t d2 = stream.digest();
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1, xxhash32("hello", 5, 0));
}

TEST(XxHash32Stream, ResetRestartsState)
{
    XxHash32Stream stream(9);
    stream.update("garbage", 7);
    stream.reset();
    stream.update("abc", 3);
    EXPECT_EQ(stream.digest(), xxhash32("abc", 3, 9));
}

TEST(XxHash32, EmptyStreamMatchesEmptyOneShot)
{
    XxHash32Stream stream(0);
    EXPECT_EQ(stream.digest(), xxhash32("", 0, 0));
}

TEST(HashFeatureVector, EqualVectorsCollideExactly)
{
    std::vector<float> a{1.0f, 2.0f, 3.5f, -0.0f};
    std::vector<float> b = a;
    EXPECT_EQ(hashFeatureVector(a.data(), a.size()),
              hashFeatureVector(b.data(), b.size()));
    b[3] = 0.0f; // -0.0f and 0.0f differ bitwise -> different tag
    EXPECT_NE(hashFeatureVector(a.data(), a.size()),
              hashFeatureVector(b.data(), b.size()));
}

TEST(HashFeatureVector, LowCollisionRateOnRandomVectors)
{
    // The paper quotes a ~0.00003% conflict rate; with 20k random
    // 64-float vectors we should see no collisions at all.
    Rng rng(123);
    std::set<uint32_t> tags;
    const int count = 20000;
    std::vector<float> vec(64);
    for (int i = 0; i < count; ++i) {
        for (auto &v : vec)
            v = static_cast<float>(rng.nextGaussian());
        tags.insert(hashFeatureVector(vec.data(), vec.size()));
    }
    EXPECT_EQ(tags.size(), static_cast<size_t>(count));
}

TEST(XxHash32, AllLengthsAgreeBetweenStreamAndOneShot)
{
    // Property sweep over lengths 0..64 covering all tail paths.
    Rng rng(31);
    std::vector<uint8_t> buf(64);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.next64());
    for (size_t len = 0; len <= buf.size(); ++len) {
        XxHash32Stream stream(17);
        stream.update(buf.data(), len);
        EXPECT_EQ(stream.digest(), xxhash32(buf.data(), len, 17))
            << "len=" << len;
    }
}

} // namespace
} // namespace cegma
