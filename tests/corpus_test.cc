/**
 * @file
 * The live-corpus subsystem's proof obligations:
 *   - dataset loaders hand out stable 64-bit ids: unique, disjoint
 *     between corpus and mutation pool, and prefix-stable as the
 *     corpus grows (candidate c keeps its id at any corpus size);
 *   - epoch/snapshot semantics: staged inserts are invisible until
 *     flush, pinned snapshots keep seeing entries removed in later
 *     epochs, retired epochs are reclaimed once unpinned, and
 *     compaction can never change what a pinned snapshot reads;
 *   - `shortlist` is a pure function of the snapshot's view — same
 *     slots at any thread count, and a fresh corpus bootstrapped with
 *     an epoch's live set reproduces the live corpus's shortlist;
 *   - `ShardedLruCache::erase`/`eraseIf` (shards 1 and 16) and
 *     `MemoCache::invalidate` remove exactly the keyed entries;
 *   - `planMutations`/`liveIdsByEpoch` replay: the offline oracle's
 *     per-epoch id lists equal `CorpusSnapshot::liveIds()` of the
 *     corpus that actually applied the plan;
 *   - storm tests: snapshots pinned while a mutator races always read
 *     exactly one epoch's corpus (the TSan tier runs these with race
 *     detection on);
 *   - the `LiveGate.*` CI tier: a seeded interleaved mutation+query
 *     workload at 8 threads returns, for every request, the pinned
 *     epoch's exact id list and scores bit-identical to a serial
 *     oracle model over that epoch's corpus — in exhaustive mode and
 *     in cascade mode (vs an offline rebuilt index) — with
 *     `corpus.epochs_reclaimed` > 0 by the end of the run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/sharded_lru.hh"
#include "corpus/live_corpus.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "graph/dataset.hh"
#include "graph/generators.hh"
#include "serve/loadgen.hh"
#include "serve/service.hh"

namespace cegma {
namespace {

/** id -> graph over bootstrap candidates plus the mutation pool. */
std::map<uint64_t, const Graph *>
graphById(const CloneSearchCorpus &corpus, const MutationPool &pool)
{
    std::map<uint64_t, const Graph *> by_id;
    for (size_t i = 0; i < corpus.candidates.size(); ++i)
        by_id[corpus.candidateIds[i]] = &corpus.candidates[i];
    for (size_t i = 0; i < pool.graphs.size(); ++i)
        by_id[pool.ids[i]] = &pool.graphs[i];
    return by_id;
}

/** Structural equality (CSR bits) of two graphs. */
bool sameGraph(const Graph &a, const Graph &b)
{
    if (a.numNodes() != b.numNodes() || a.numArcs() != b.numArcs())
        return false;
    if (a.labels() != b.labels())
        return false;
    for (NodeId v = 0; v < a.numNodes(); ++v) {
        auto na = a.neighbors(v);
        auto nb = b.neighbors(v);
        if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
            return false;
    }
    return true;
}

// ---- stable ids -----------------------------------------------------

TEST(StableIds, UniqueAndPrefixStableAcrossCorpusGrowth)
{
    CloneSearchCorpus small = makeCloneSearchCorpus(DatasetId::AIDS, 2, 8);
    CloneSearchCorpus big = makeCloneSearchCorpus(DatasetId::AIDS, 2, 16);
    ASSERT_EQ(small.candidateIds.size(), 8u);
    ASSERT_EQ(big.candidateIds.size(), 16u);

    // Growing the corpus must not renumber existing candidates.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(small.candidateIds[i], big.candidateIds[i])
            << "candidate " << i << " changed id when the corpus grew";

    std::set<uint64_t> ids(big.candidateIds.begin(),
                           big.candidateIds.end());
    EXPECT_EQ(ids.size(), big.candidateIds.size());

    // Same candidate graphs bit for bit regardless of corpus size.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_TRUE(sameGraph(small.candidates[i], big.candidates[i]));
}

TEST(StableIds, MutationPoolIdsDisjointFromCorpus)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 32);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 32);
    ASSERT_EQ(pool.graphs.size(), 32u);
    ASSERT_EQ(pool.ids.size(), 32u);

    std::set<uint64_t> ids(corpus.candidateIds.begin(),
                           corpus.candidateIds.end());
    for (uint64_t id : pool.ids)
        EXPECT_TRUE(ids.insert(id).second)
            << "pool id collides with corpus or another pool id";

    // Pure function of (dataset, count, seed).
    MutationPool again = makeMutationPool(DatasetId::AIDS, 32);
    EXPECT_EQ(again.ids, pool.ids);
}

// ---- epoch/snapshot semantics ---------------------------------------

TEST(LiveCorpusTest, StagedInsertInvisibleUntilFlush)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 4);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 1);

    LiveCorpus corpus;
    corpus.bootstrap(data.candidates, data.candidateIds);
    EXPECT_EQ(corpus.epoch(), 0u);
    EXPECT_EQ(corpus.liveCount(), 4u);

    LiveCorpus::SnapshotPtr before = corpus.pin();
    EXPECT_TRUE(corpus.insert(pool.ids[0], pool.graphs[0]));
    // Staged but unflushed: invisible even to a *new* pin.
    EXPECT_EQ(corpus.pin()->liveCount(), 4u);
    EXPECT_EQ(before->liveCount(), 4u);

    EXPECT_EQ(corpus.flush(), 1u);
    EXPECT_EQ(before->liveCount(), 4u); // pinned epoch unchanged
    LiveCorpus::SnapshotPtr after = corpus.pin();
    EXPECT_EQ(after->epoch(), 1u);
    EXPECT_EQ(after->liveCount(), 5u);

    // Slot order: bootstrap order, inserts appended.
    std::vector<uint64_t> expect = data.candidateIds;
    expect.push_back(pool.ids[0]);
    EXPECT_EQ(after->liveIds(), expect);
    EXPECT_EQ(before->liveIds(), data.candidateIds);
}

TEST(LiveCorpusTest, PinnedSnapshotOutlivesRemoval)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 4);
    LiveCorpus corpus;
    corpus.bootstrap(data.candidates, data.candidateIds);

    LiveCorpus::SnapshotPtr pinned = corpus.pin();
    EXPECT_TRUE(corpus.remove(data.candidateIds[1]));
    EXPECT_FALSE(corpus.remove(data.candidateIds[1])); // already staged
    EXPECT_FALSE(corpus.remove(0xdeadbeefull));        // unknown id
    corpus.flush();

    // The pinned epoch still sees the removed entry, bit for bit.
    EXPECT_EQ(pinned->liveCount(), 4u);
    ASSERT_TRUE(pinned->visible(1));
    EXPECT_TRUE(sameGraph(pinned->graph(1), data.candidates[1]));
    EXPECT_EQ(pinned->id(1), data.candidateIds[1]);

    // A fresh pin does not.
    LiveCorpus::SnapshotPtr now = corpus.pin();
    EXPECT_EQ(now->liveCount(), 3u);
    EXPECT_FALSE(now->visible(1));
    std::vector<uint64_t> expect = {data.candidateIds[0],
                                    data.candidateIds[2],
                                    data.candidateIds[3]};
    EXPECT_EQ(now->liveIds(), expect);

    // The id is free again: re-insert under the same stable id.
    EXPECT_TRUE(corpus.insert(data.candidateIds[1], data.candidates[1]));
    corpus.flush();
    LiveCorpus::SnapshotPtr readded = corpus.pin();
    EXPECT_EQ(readded->liveCount(), 4u);
    expect.push_back(data.candidateIds[1]); // appended, not slot 1
    EXPECT_EQ(readded->liveIds(), expect);
}

TEST(LiveCorpusTest, DuplicateInsertRefused)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 2);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 1);
    LiveCorpus corpus;
    corpus.bootstrap(data.candidates, data.candidateIds);

    EXPECT_FALSE(corpus.insert(data.candidateIds[0], pool.graphs[0]));
    EXPECT_TRUE(corpus.insert(pool.ids[0], pool.graphs[0]));
    // Staged ids are reserved too.
    EXPECT_FALSE(corpus.insert(pool.ids[0], pool.graphs[0]));
    EXPECT_EQ(corpus.inserts(), 1u);
}

TEST(LiveCorpusTest, SlotCapRefusesInsert)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 4);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 5);
    MutationConfig config;
    // The directory is sized max(maxSlots, 2 * bootstrap) = 8 slots:
    // bootstrap 4 + room for exactly four inserts.
    config.maxSlots = 5;
    LiveCorpus corpus(config);
    corpus.bootstrap(data.candidates, data.candidateIds);

    for (size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(corpus.insert(pool.ids[i], pool.graphs[i]));
    EXPECT_FALSE(corpus.insert(pool.ids[4], pool.graphs[4]));
    corpus.flush();
    // Slots are append-only: removal frees no slot numbers.
    corpus.remove(pool.ids[0]);
    corpus.flush();
    EXPECT_FALSE(corpus.insert(pool.ids[4], pool.graphs[4]));
}

TEST(LiveCorpusTest, EpochReclaimedOnlyAfterUnpin)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 4);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 4);
    LiveCorpus corpus;
    corpus.bootstrap(data.candidates, data.candidateIds);

    LiveCorpus::SnapshotPtr pinned = corpus.pin(); // pins epoch 0
    corpus.insert(pool.ids[0], pool.graphs[0]);
    corpus.flush();
    EXPECT_EQ(corpus.epochsReclaimed(), 0u); // epoch 0 still pinned

    pinned.reset(); // unpin
    corpus.insert(pool.ids[1], pool.graphs[1]);
    corpus.flush();
    EXPECT_GT(corpus.epochsReclaimed(), 0u);
}

TEST(LiveCorpusTest, CompactionNeverChangesAPinnedSnapshot)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 8);
    MutationConfig config;
    config.compactTombstoneRatio = 0.0; // compact at every flush
    LiveCorpus corpus(config);
    corpus.bootstrap(data.candidates, data.candidateIds);

    LiveCorpus::SnapshotPtr pinned = corpus.pin();
    corpus.remove(data.candidateIds[2]);
    corpus.flush();

    // Slot 2 died in epoch 1 > pinned epoch 0: compaction must retain
    // its payload as long as the pin lives.
    ASSERT_TRUE(pinned->visible(2));
    EXPECT_TRUE(sameGraph(pinned->graph(2), data.candidates[2]));
    std::vector<uint64_t> ids_before = pinned->liveIds();

    corpus.remove(data.candidateIds[5]);
    corpus.flush();
    EXPECT_TRUE(sameGraph(pinned->graph(2), data.candidates[2]));
    EXPECT_TRUE(sameGraph(pinned->graph(5), data.candidates[5]));
    EXPECT_EQ(pinned->liveIds(), ids_before);

    // Once the pin is gone, the eager ratio actually reclaims.
    pinned.reset();
    corpus.remove(data.candidateIds[7]);
    corpus.flush();
    EXPECT_GT(corpus.compactions(), 0u);
    EXPECT_EQ(corpus.pin()->liveCount(), 5u);
}

// ---- shortlist determinism ------------------------------------------

TEST(LiveCorpusTest, ShortlistPureFunctionOfSnapshot)
{
    CloneSearchCorpus data =
        makeCloneSearchCorpus(DatasetId::AIDS, 4, 64);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 8);
    std::unique_ptr<GmnModel> model = makeModel(ModelId::SimGnn);
    ASSERT_GT(model->coarseDim(), 0u);

    RetrievalConfig rc;
    rc.mode = RetrievalMode::Cascade;
    rc.shortlist = 12;
    auto descriptor = [&model](const Graph &g, std::vector<float> &out) {
        out.resize(model->coarseDim());
        model->coarseDescriptor(g, out.data());
    };

    LiveCorpus corpus;
    corpus.enableIndex(rc, true, descriptor);
    corpus.bootstrap(data.candidates, data.candidateIds);
    for (size_t i = 0; i < pool.graphs.size(); ++i)
        corpus.insert(pool.ids[i], pool.graphs[i]);
    corpus.remove(data.candidateIds[3]);
    corpus.remove(data.candidateIds[40]);
    corpus.flush();

    LiveCorpus::SnapshotPtr snap = corpus.pin();
    ThreadPool &tp = ThreadPool::instance();
    std::vector<uint32_t> at_one, at_eight;
    tp.setThreads(1);
    at_one = corpus.shortlist(*snap, data.queries[0], *model);
    tp.setThreads(8);
    at_eight = corpus.shortlist(*snap, data.queries[0], *model);
    tp.setThreads(0);
    EXPECT_EQ(at_one, at_eight);
    EXPECT_TRUE(std::is_sorted(at_one.begin(), at_one.end()));
    EXPECT_LE(at_one.size(), rc.shortlist);
    for (uint32_t s : at_one)
        EXPECT_TRUE(snap->visible(s));

    // Offline replay: a fresh corpus bootstrapped with this epoch's
    // live set shortlists the same graphs (compared by stable id —
    // slot numbers differ because the replay has no tombstones).
    std::map<uint64_t, const Graph *> by_id = graphById(data, pool);
    std::vector<uint64_t> live_ids = snap->liveIds();
    std::vector<Graph> live_graphs;
    for (uint64_t id : live_ids)
        live_graphs.push_back(*by_id.at(id));

    LiveCorpus replay;
    replay.enableIndex(rc, true, descriptor);
    replay.bootstrap(std::move(live_graphs), live_ids);
    LiveCorpus::SnapshotPtr rsnap = replay.pin();
    std::vector<uint32_t> offline =
        replay.shortlist(*rsnap, data.queries[0], *model);

    std::vector<uint64_t> live_picked, offline_picked;
    for (uint32_t s : at_one)
        live_picked.push_back(snap->id(s));
    for (uint32_t s : offline)
        offline_picked.push_back(rsnap->id(s));
    EXPECT_EQ(live_picked, offline_picked);
}

// ---- memo invalidation primitives -----------------------------------

TEST(ShardedLruTest, EraseAndEraseIfAtShards1And16)
{
    for (uint32_t shards : {1u, 16u}) {
        SCOPED_TRACE(testing::Message() << "shards=" << shards);
        ShardedLruCache<uint64_t, int> cache(0, shards);
        EXPECT_EQ(cache.numShards(), shards);
        for (uint64_t k = 0; k < 100; ++k)
            cache.insert(k, std::make_shared<int>(int(k)), 8);
        EXPECT_EQ(cache.size(), 100u);
        EXPECT_EQ(cache.bytes(), 800u);

        // Keyed erase: exactly the one entry, bytes released, holders
        // keep their value.
        ShardedLruCache<uint64_t, int>::ValuePtr held = cache.find(5);
        ASSERT_NE(held, nullptr);
        EXPECT_TRUE(cache.erase(5));
        EXPECT_FALSE(cache.erase(5));
        EXPECT_EQ(cache.find(5), nullptr);
        EXPECT_EQ(*held, 5);
        EXPECT_EQ(cache.size(), 99u);
        EXPECT_EQ(cache.bytes(), 792u);

        // Predicate erase: every even key (50 of them; 5 was odd).
        size_t removed = cache.eraseIf(
            [](const uint64_t &key) { return key % 2 == 0; });
        EXPECT_EQ(removed, 50u);
        EXPECT_EQ(cache.size(), 49u);
        EXPECT_EQ(cache.bytes(), 49u * 8);
        EXPECT_EQ(cache.erased(), 51u);
        EXPECT_EQ(cache.find(4), nullptr);
        EXPECT_NE(cache.find(7), nullptr);
    }
}

TEST(MemoTest, InvalidateRemovesOnlyTheKeyedGraph)
{
    CloneSearchCorpus data = makeCloneSearchCorpus(DatasetId::AIDS, 1, 2);
    const Graph &g0 = data.candidates[0];
    const Graph &g1 = data.candidates[1];

    MemoCache memo;
    memo.wl(g0, 2);
    memo.wl(g0, 3); // a second entry family member for the same graph
    memo.wl(g1, 2);
    EXPECT_GT(memo.bytes(), 0u);

    // Warm: repeats hit.
    size_t hits = memo.hits();
    memo.wl(g0, 2);
    EXPECT_GT(memo.hits(), hits);

    // Invalidating g0 drops both of its depths, not g1's entry.
    EXPECT_EQ(memo.invalidate(g0), 2u);
    EXPECT_EQ(memo.invalidate(g0), 0u); // idempotent

    size_t misses = memo.misses();
    memo.wl(g0, 2);
    EXPECT_GT(memo.misses(), misses); // rebuilt
    hits = memo.hits();
    memo.wl(g1, 2);
    EXPECT_GT(memo.hits(), hits); // survived
}

// ---- generators and load shaping ------------------------------------

TEST(GeneratorsTest, BinaryCfgDeterministicAndLabeled)
{
    Rng a(42), b(42), c(43);
    Graph g1 = binaryCfgGraph(64, a);
    Graph g2 = binaryCfgGraph(64, b);
    Graph g3 = binaryCfgGraph(64, c);
    EXPECT_TRUE(sameGraph(g1, g2)); // pure function of (n, rng state)
    EXPECT_FALSE(sameGraph(g1, g3));
    EXPECT_GT(g1.numNodes(), 0u);
    EXPECT_GT(g1.numEdges(), 0u);
    EXPECT_GE(g1.numDistinctLabels(), 2u); // instruction classes

    // The family is wired through the clone-search loaders.
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::BIN_CFG, 2, 8);
    ASSERT_EQ(corpus.candidates.size(), 8u);
    ASSERT_EQ(corpus.candidateIds.size(), 8u);
    std::set<uint64_t> ids(corpus.candidateIds.begin(),
                           corpus.candidateIds.end());
    EXPECT_EQ(ids.size(), 8u);
    MutationPool pool = makeMutationPool(DatasetId::BIN_CFG, 4);
    for (uint64_t id : pool.ids)
        EXPECT_TRUE(ids.insert(id).second);
}

TEST(ZipfTest, DeterministicSkewedAndUniformFallback)
{
    ZipfPicker zipf(100, 1.2);
    Rng a(9), b(9);
    std::vector<uint32_t> counts(100, 0);
    for (int i = 0; i < 2000; ++i) {
        uint32_t x = zipf.pick(a);
        ASSERT_LT(x, 100u);
        ASSERT_EQ(x, zipf.pick(b)); // same seed, same stream
        ++counts[x];
    }
    // Rank 0 dominates the tail under skew 1.2.
    EXPECT_GT(counts[0], counts[50] * 4);
    EXPECT_GT(counts[0], 100u);

    ZipfPicker uniform(100, 0.0);
    Rng u(9);
    for (int i = 0; i < 200; ++i)
        ASSERT_LT(uniform.pick(u), 100u);
}

// ---- plan / oracle replay -------------------------------------------

TEST(PlanTest, OracleMatchesLiveCorpusReplay)
{
    CloneSearchCorpus data =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 12);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 24);

    MutationMix mix;
    mix.perQuery = 0.7;
    mix.insertFraction = 0.5;
    mix.publishBatch = 2;
    constexpr uint32_t kRequests = 40;
    MutationPlan plan =
        planMutations(data.candidateIds, pool, kRequests, mix, 5);
    ASSERT_EQ(plan.before.size(), kRequests);
    ASSERT_EQ(plan.flushBefore.size(), kRequests);
    EXPECT_GT(plan.totalMutations, 0u);
    EXPECT_EQ(plan.totalInserts + plan.totalRemoves,
              plan.totalMutations);
    EXPECT_GT(plan.totalFlushes, 0u);

    // Pure function of its arguments.
    MutationPlan again =
        planMutations(data.candidateIds, pool, kRequests, mix, 5);
    EXPECT_EQ(again.totalMutations, plan.totalMutations);
    EXPECT_EQ(again.flushBefore, plan.flushBefore);

    std::vector<std::vector<uint64_t>> oracle =
        liveIdsByEpoch(data.candidateIds, pool, plan);
    ASSERT_EQ(oracle.size(), size_t(plan.totalFlushes) + 1);
    EXPECT_EQ(oracle[0], data.candidateIds);

    // Apply the plan to a real corpus; every flushed epoch's liveIds()
    // must equal the oracle's entry exactly (content and order).
    LiveCorpus corpus;
    corpus.bootstrap(data.candidates, data.candidateIds);
    EXPECT_EQ(corpus.pin()->liveIds(), oracle[0]);
    uint64_t epoch = 0;
    for (uint32_t i = 0; i < kRequests; ++i) {
        for (const MutationOp &op : plan.before[i]) {
            if (op.isInsert)
                ASSERT_TRUE(
                    corpus.insert(op.id, pool.graphs[op.poolIndex]));
            else
                ASSERT_TRUE(corpus.remove(op.id));
        }
        if (plan.flushBefore[i]) {
            epoch = corpus.flush();
            ASSERT_LT(epoch, oracle.size());
            LiveCorpus::SnapshotPtr snap = corpus.pin();
            EXPECT_EQ(snap->epoch(), epoch);
            EXPECT_EQ(snap->liveIds(), oracle[epoch]) << "epoch "
                                                      << epoch;
        }
    }
    uint64_t final_epoch = corpus.flush(); // trailing staged, if any
    EXPECT_EQ(final_epoch, plan.totalFlushes);
    EXPECT_EQ(corpus.pin()->liveIds(), oracle.back());
}

// ---- storms (the TSan tier runs these with race detection on) -------

TEST(LiveCorpusStorm, SnapshotsReadExactlyOneEpoch)
{
    CloneSearchCorpus data =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 24);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 96);

    MutationMix mix;
    mix.perQuery = 1.5;
    mix.publishBatch = 1;
    constexpr uint32_t kSteps = 60;
    MutationPlan plan =
        planMutations(data.candidateIds, pool, kSteps, mix, 17);
    std::vector<std::vector<uint64_t>> oracle =
        liveIdsByEpoch(data.candidateIds, pool, plan);

    LiveCorpus corpus;
    corpus.bootstrap(data.candidates, data.candidateIds);

    std::atomic<bool> done{false};
    std::atomic<uint64_t> pins{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
        readers.emplace_back([&] {
            // do-while: every reader validates at least one snapshot
            // even when the mutator finishes first (single-core CI).
            do {
                LiveCorpus::SnapshotPtr snap = corpus.pin();
                uint64_t epoch = snap->epoch();
                ASSERT_LT(epoch, oracle.size());
                // The consistency contract: a snapshot is exactly one
                // epoch's corpus, never a torn view.
                ASSERT_EQ(snap->liveIds(), oracle[epoch]);
                ASSERT_EQ(snap->liveCount(), oracle[epoch].size());
                pins.fetch_add(1, std::memory_order_relaxed);
            } while (!done.load(std::memory_order_acquire));
        });
    }

    for (uint32_t i = 0; i < kSteps; ++i) {
        for (const MutationOp &op : plan.before[i]) {
            if (op.isInsert)
                ASSERT_TRUE(
                    corpus.insert(op.id, pool.graphs[op.poolIndex]));
            else
                ASSERT_TRUE(corpus.remove(op.id));
        }
        if (plan.flushBefore[i])
            corpus.flush();
    }
    corpus.flush();
    done.store(true, std::memory_order_release);
    for (std::thread &t : readers)
        t.join();

    EXPECT_GT(pins.load(), 0u);
    // Readers released their pins continuously, so old epochs retired.
    EXPECT_GT(corpus.epochsReclaimed(), 0u);
    EXPECT_EQ(corpus.pin()->liveIds(), oracle.back());
}

// ---- LiveGate: the CI bit-identity tier -----------------------------

/**
 * Drive `service` through `plan`: stage each request's mutations,
 * publish at the plan's epoch boundaries, submit the request's query,
 * and return each request's (future, query index). Mutations run on
 * this thread while the dispatcher scores concurrently — the snapshot
 * scheme is what keeps every in-flight batch on one epoch.
 */
std::vector<std::pair<std::future<QueryResult>, uint32_t>>
driveMutatingWorkload(SearchService &service,
                      const std::vector<Graph> &queries,
                      const MutationPool &pool,
                      const MutationPlan &plan, const MutationMix &mix,
                      uint32_t num_requests, uint64_t seed)
{
    ZipfPicker picker(queries.size(), mix.zipfSkew);
    Rng rng(seed);
    std::vector<std::pair<std::future<QueryResult>, uint32_t>> out;
    out.reserve(num_requests);
    for (uint32_t i = 0; i < num_requests; ++i) {
        for (const MutationOp &op : plan.before[i]) {
            if (op.isInsert)
                EXPECT_TRUE(
                    service.insert(op.id, pool.graphs[op.poolIndex]));
            else
                EXPECT_TRUE(service.remove(op.id));
        }
        if (plan.flushBefore[i])
            service.flushMutations();
        uint32_t q = mix.zipfSkew > 0.0
                         ? picker.pick(rng)
                         : uint32_t(i % queries.size());
        out.emplace_back(service.submit(queries[q]), q);
    }
    service.flushMutations();
    return out;
}

TEST(LiveGate, ExhaustiveScoresBitIdenticalToPinnedEpochOracle)
{
    ThreadPool &tp = ThreadPool::instance();
    tp.setThreads(8);

    CloneSearchCorpus data =
        makeCloneSearchCorpus(DatasetId::AIDS, 6, 24);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 48);

    ServeConfig config;
    config.model = ModelId::GraphSim;
    config.maxBatch = 4;
    config.topK = 5;

    MutationMix mix;
    mix.perQuery = 0.5;
    mix.publishBatch = 2;
    mix.zipfSkew = 0.6;
    constexpr uint32_t kRequests = 48;
    MutationPlan plan =
        planMutations(data.candidateIds, pool, kRequests, mix, 21);
    ASSERT_GT(plan.totalInserts, 0u);
    ASSERT_GT(plan.totalRemoves, 0u);
    std::vector<std::vector<uint64_t>> oracle =
        liveIdsByEpoch(data.candidateIds, pool, plan);
    std::map<uint64_t, const Graph *> by_id = graphById(data, pool);

    SearchService service(config, data.candidates, data.candidateIds);
    auto pending = driveMutatingWorkload(service, data.queries, pool,
                                         plan, mix, kRequests, 31);

    // The serial oracle: a fresh same-seed model, scored pair by pair
    // on this thread. Memoized per (query, candidate id) — the skewed
    // query stream re-scores the same pairs often, and exact scores
    // are epoch-independent.
    std::unique_ptr<GmnModel> serial =
        makeModel(config.model, config.modelSeed);
    std::map<std::pair<uint32_t, uint64_t>, double> exact;
    uint64_t max_epoch = 0;
    for (auto &[future, q] : pending) {
        QueryResult result = future.get();
        max_epoch = std::max(max_epoch, result.epoch);
        ASSERT_LT(result.epoch, oracle.size());
        const std::vector<uint64_t> &expect_ids = oracle[result.epoch];
        ASSERT_NE(result.ids, nullptr);
        // The result's candidate list IS the pinned epoch's corpus.
        ASSERT_EQ(*result.ids, expect_ids);
        ASSERT_EQ(result.scores.size(), expect_ids.size());
        for (size_t p = 0; p < expect_ids.size(); ++p) {
            auto key = std::make_pair(q, expect_ids[p]);
            auto it = exact.find(key);
            if (it == exact.end())
                it = exact
                         .emplace(key,
                                  serial->score(GraphPairView(
                                      *by_id.at(expect_ids[p]),
                                      data.queries[q])))
                         .first;
            // Bit-identical, not approximately equal.
            ASSERT_EQ(result.scores[p], it->second)
                << "epoch " << result.epoch << " candidate " << p;
        }
        for (const SearchHit &hit : result.topK)
            EXPECT_EQ(hit.score, result.scores[hit.candidate]);
    }
    EXPECT_GT(max_epoch, 0u) << "workload never crossed an epoch";
    EXPECT_GT(service.corpus().epochsReclaimed(), 0u);
    EXPECT_EQ(service.metrics().corpusEpochsReclaimed,
              service.corpus().epochsReclaimed());
    tp.setThreads(0);
}

TEST(LiveGate, CascadeMatchesOfflineRebuiltIndex)
{
    ThreadPool &tp = ThreadPool::instance();
    tp.setThreads(8);

    CloneSearchCorpus data =
        makeCloneSearchCorpus(DatasetId::AIDS, 3, 40);
    MutationPool pool = makeMutationPool(DatasetId::AIDS, 24);

    ServeConfig config;
    config.model = ModelId::SimGnn;
    config.maxBatch = 4;
    config.topK = 5;
    config.retrieval.mode = RetrievalMode::Cascade;
    config.retrieval.shortlist = 8;

    MutationMix mix;
    mix.perQuery = 1.0;
    mix.publishBatch = 2;
    constexpr uint32_t kRequests = 16;
    MutationPlan plan =
        planMutations(data.candidateIds, pool, kRequests, mix, 3);
    std::vector<std::vector<uint64_t>> oracle =
        liveIdsByEpoch(data.candidateIds, pool, plan);
    std::map<uint64_t, const Graph *> by_id = graphById(data, pool);

    SearchService service(config, data.candidates, data.candidateIds);
    auto pending = driveMutatingWorkload(service, data.queries, pool,
                                         plan, mix, kRequests, 13);

    // Offline replay: per observed epoch, a fresh corpus + index
    // bootstrapped from the oracle's live set, under a fresh same-seed
    // model. Built lazily and cached per epoch.
    std::unique_ptr<GmnModel> serial =
        makeModel(config.model, config.modelSeed);
    ASSERT_GT(serial->coarseDim(), 0u);
    auto descriptor = [&serial](const Graph &g, std::vector<float> &out) {
        out.resize(serial->coarseDim());
        serial->coarseDescriptor(g, out.data());
    };
    std::map<uint64_t, std::unique_ptr<LiveCorpus>> replay;
    auto replayFor = [&](uint64_t epoch) -> LiveCorpus & {
        auto it = replay.find(epoch);
        if (it == replay.end()) {
            auto corpus = std::make_unique<LiveCorpus>(config.mutation);
            corpus->enableIndex(config.retrieval, true, descriptor);
            std::vector<Graph> graphs;
            for (uint64_t id : oracle[epoch])
                graphs.push_back(*by_id.at(id));
            corpus->bootstrap(std::move(graphs), oracle[epoch]);
            it = replay.emplace(epoch, std::move(corpus)).first;
        }
        return *it->second;
    };

    for (auto &[future, q] : pending) {
        QueryResult result = future.get();
        ASSERT_LT(result.epoch, oracle.size());
        ASSERT_NE(result.ids, nullptr);
        ASSERT_EQ(*result.ids, oracle[result.epoch]);

        // The offline corpus has no tombstones, so its slot s IS the
        // live-order position s — directly comparable to the served
        // result's score vector.
        LiveCorpus &offline = replayFor(result.epoch);
        LiveCorpus::SnapshotPtr snap = offline.pin();
        std::vector<uint32_t> shortlist =
            offline.shortlist(*snap, data.queries[q], *serial);

        ASSERT_EQ(result.scores.size(), oracle[result.epoch].size());
        size_t scored = 0;
        for (uint32_t p = 0; p < result.scores.size(); ++p) {
            bool listed = std::binary_search(shortlist.begin(),
                                             shortlist.end(), p);
            if (!listed) {
                EXPECT_TRUE(std::isnan(result.scores[p]))
                    << "pruned candidate " << p << " carries a score";
                continue;
            }
            ++scored;
            double expect = serial->score(GraphPairView(
                *by_id.at((*result.ids)[p]), data.queries[q]));
            ASSERT_EQ(result.scores[p], expect)
                << "epoch " << result.epoch << " candidate " << p;
        }
        EXPECT_EQ(scored, shortlist.size());
        EXPECT_LE(scored, config.retrieval.shortlist);
    }
    EXPECT_GT(service.corpus().epochsReclaimed(), 0u);
    tp.setThreads(0);
}

TEST(LiveGate, MutatingLoadgenEndToEnd)
{
    ThreadPool &tp = ThreadPool::instance();
    tp.setThreads(8);

    CloneSearchCorpus data =
        makeCloneSearchCorpus(DatasetId::BIN_CFG, 4, 16);
    MutationPool pool = makeMutationPool(DatasetId::BIN_CFG, 24);

    ServeConfig config;
    config.model = ModelId::GraphSim;
    config.maxBatch = 4;
    config.topK = 5;

    MutationMix mix;
    mix.perQuery = 0.75;
    mix.publishBatch = 2;
    mix.zipfSkew = 0.8;
    constexpr uint32_t kRequests = 24;
    MutationPlan plan =
        planMutations(data.candidateIds, pool, kRequests, mix, 7);

    SearchService service(config, data.candidates, data.candidateIds);
    LoadGenResult result = runOpenLoopMutating(
        service, data.queries, pool, plan, mix, kRequests, 400.0, 7);

    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.metrics.completed, kRequests);
    EXPECT_EQ(result.metrics.corpusInserts, plan.totalInserts);
    EXPECT_EQ(result.metrics.corpusRemoves, plan.totalRemoves);
    EXPECT_GT(result.metrics.corpusEpoch, 0u);
    EXPECT_GT(result.metrics.corpusEpochsReclaimed, 0u);
    EXPECT_EQ(service.corpusSize(),
              data.candidates.size() + plan.totalInserts -
                  plan.totalRemoves);
    tp.setThreads(0);
}

} // namespace
} // namespace cegma
