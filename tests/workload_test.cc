/**
 * @file
 * Focused tests for the workload tracer: hand-computed FLOP formulas
 * on tiny graphs and the custom-configuration builder.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gmn/workload.hh"
#include "graph/generators.hh"

namespace cegma {
namespace {

GraphPair
tinyPair()
{
    // Target: triangle (3 nodes, 3 edges). Query: path of 4.
    GraphPair pair;
    pair.target = Graph::fromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
    pair.query = Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
    pair.similar = true;
    return pair;
}

TEST(Workload, GcnFlopFormulasHandChecked)
{
    GraphPair pair = tinyPair();
    PairTrace trace = buildTrace(ModelId::SimGnn, pair);
    const uint64_t d = 64;
    const LayerWork &layer = trace.layers[0];
    // Aggregation: (arcs + 2n) * d. Triangle: 6 arcs, 3 nodes.
    EXPECT_EQ(layer.embedTarget.aggFlops, (6 + 2 * 3) * d);
    // Path: 6 arcs, 4 nodes.
    EXPECT_EQ(layer.embedQuery.aggFlops, (6 + 2 * 4) * d);
    // Combination: n * (2 d^2 + d).
    EXPECT_EQ(layer.embedTarget.combFlops, 3 * (2 * d * d + d));
    // Encoder: (n + m) dense 1 -> d.
    EXPECT_EQ(trace.encodeFlops, 7 * (2 * 1 * d + d));
}

TEST(Workload, MatchingFlopsByKind)
{
    GraphPair pair = tinyPair();
    PairTrace simgnn = buildTrace(ModelId::SimGnn, pair); // dot
    PairTrace graphsim = buildTrace(ModelId::GraphSim, pair); // cosine
    const uint64_t base = 2 * 3 * 4 * 64; // 2 n m d
    EXPECT_EQ(simgnn.layers.back().matching.simFlops, base);
    EXPECT_GT(graphsim.layers.back().matching.simFlops, base);
}

TEST(Workload, ModelWiseMatchesOnlyLastLayer)
{
    GraphPair pair = tinyPair();
    PairTrace trace = buildTrace(ModelId::SimGnn, pair);
    ASSERT_EQ(trace.layers.size(), 3u);
    EXPECT_FALSE(trace.layers[0].matching.present);
    EXPECT_FALSE(trace.layers[1].matching.present);
    EXPECT_TRUE(trace.layers[2].matching.present);
}

TEST(CustomTrace, LayerCountSweeps)
{
    Rng rng(3);
    Graph g = threadGraph(40, 48, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);

    ModelConfig config = modelConfig(ModelId::GraphSim);
    for (unsigned layers : {1u, 2u, 4u, 6u}) {
        config.numLayers = layers;
        PairTrace trace = buildCustomTrace(config, pair);
        EXPECT_EQ(trace.layers.size(), layers);
        size_t matchings = 0;
        for (const auto &layer : trace.layers)
            matchings += layer.matching.present;
        EXPECT_EQ(matchings, layers); // layer-wise
    }
}

TEST(CustomTrace, ModelWiseCheaperThanLayerWise)
{
    Rng rng(5);
    Graph g = threadGraph(80, 95, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);

    ModelConfig config = modelConfig(ModelId::GraphSim);
    config.numLayers = 4;
    config.layerwiseMatching = true;
    uint64_t layerwise = buildCustomTrace(config, pair).matchFlopsTotal();
    config.layerwiseMatching = false;
    uint64_t modelwise = buildCustomTrace(config, pair).matchFlopsTotal();
    EXPECT_NEAR(static_cast<double>(layerwise),
                4.0 * static_cast<double>(modelwise),
                0.01 * layerwise);
}

TEST(CustomTrace, CrossFeedbackUsesMgnnBackbone)
{
    Rng rng(7);
    Graph g = threadGraph(30, 36, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);

    ModelConfig config = modelConfig(ModelId::GraphSim);
    config.crossFeedback = true;
    config.similarity = SimilarityKind::Euclidean;
    PairTrace mgnn = buildCustomTrace(config, pair);
    config.crossFeedback = false;
    PairTrace gcn = buildCustomTrace(config, pair);
    // The edge MLP makes aggregation far more expensive.
    EXPECT_GT(mgnn.aggFlopsTotal(), 10 * gcn.aggFlopsTotal());
    EXPECT_GT(mgnn.layers[0].matching.crossFlops, 0u);
    EXPECT_EQ(gcn.layers[0].matching.crossFlops, 0u);
}

TEST(CustomTrace, DeeperWlLevelsNeverGainDuplicates)
{
    Rng rng(9);
    Graph g = threadGraph(100, 120, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);
    ModelConfig config = modelConfig(ModelId::GraphSim);
    config.numLayers = 5;
    PairTrace trace = buildCustomTrace(config, pair);
    uint32_t prev = 0;
    for (const auto &layer : trace.layers) {
        ASSERT_TRUE(layer.matching.present);
        EXPECT_GE(layer.matching.numUniqueTarget, prev);
        prev = layer.matching.numUniqueTarget;
    }
}

TEST(Workload, UniqueFractionMatchesClassProducts)
{
    Rng rng(11);
    Graph g = threadGraph(60, 70, rng);
    GraphPair pair = makePairFromOriginal(g, false, rng);
    PairTrace trace = buildTrace(ModelId::GmnLi, pair);
    for (const auto &layer : trace.layers) {
        const MatchingWork &match = layer.matching;
        // numUnique must equal the number of distinct class ids.
        std::vector<bool> seen_t(match.dupClassTarget.size(), false);
        uint32_t distinct = 0;
        std::vector<uint32_t> sorted = match.dupClassTarget;
        std::sort(sorted.begin(), sorted.end());
        for (size_t i = 0; i < sorted.size(); ++i) {
            if (i == 0 || sorted[i] != sorted[i - 1])
                ++distinct;
        }
        EXPECT_EQ(match.numUniqueTarget, distinct);
    }
}

} // namespace
} // namespace cegma
