/**
 * @file
 * Tests for the Elastic Matching Filter: Algorithm 1 semantics, the
 * cycle model, and agreement with both brute-force duplicate detection
 * and the functional GMN models' real feature matrices.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/model.hh"
#include "graph/generators.hh"

namespace cegma {
namespace {

TEST(EmfFilter, PaperFigureTenExample)
{
    // node1 and node2 share features: (1, h1) enters the RecordSet,
    // (2, 1) enters the TagMap.
    Matrix x(4, 3, {
        1, 2, 3, // node 0
        1, 2, 3, // node 1 == node 0
        4, 5, 6, // node 2
        7, 8, 9, // node 3
    });
    EmfResult result = emfFilter(x);
    EXPECT_EQ(result.numUnique(), 3u);
    EXPECT_EQ(result.numDuplicates(), 1u);
    ASSERT_EQ(result.tagMap.size(), 1u);
    EXPECT_EQ(result.tagMap[0].first, 1u);
    EXPECT_EQ(result.tagMap[0].second, 0u);
    EXPECT_TRUE(result.isUnique[0]);
    EXPECT_FALSE(result.isUnique[1]);
    EXPECT_EQ(result.uniqueOf[1], 0u);
    EXPECT_EQ(result.uniqueOf[2], 2u);
}

TEST(EmfFilter, RecordSetKeepsFirstOccurrence)
{
    Matrix x(3, 2, {5, 5, 5, 5, 5, 5});
    EmfResult result = emfFilter(x);
    EXPECT_EQ(result.numUnique(), 1u);
    EXPECT_EQ(result.recordSet[0].first, 0u);
    EXPECT_EQ(result.uniqueOf[2], 0u);
}

TEST(EmfFilter, MatchesBruteForceOnRandomDuplicates)
{
    Rng rng(3);
    const size_t n = 128, f = 16;
    Matrix base(12, f);
    base.fillXavier(rng);
    Matrix x(n, f);
    std::vector<uint32_t> truth(n);
    for (size_t v = 0; v < n; ++v) {
        truth[v] = static_cast<uint32_t>(rng.nextBounded(12));
        for (size_t j = 0; j < f; ++j)
            x.at(v, j) = base.at(truth[v], j);
    }
    EmfResult result = emfFilter(x);
    // Brute force: number of distinct rows.
    std::vector<uint32_t> first(12, UINT32_MAX);
    uint32_t distinct = 0;
    for (size_t v = 0; v < n; ++v) {
        if (first[truth[v]] == UINT32_MAX) {
            first[truth[v]] = static_cast<uint32_t>(v);
            ++distinct;
        }
        EXPECT_EQ(result.uniqueOf[v], first[truth[v]]);
    }
    EXPECT_EQ(result.numUnique(), distinct);
}

TEST(EmfFilter, AgreesWithFunctionalModelFeatures)
{
    // Run GraphSim and check the EMF on its real per-layer features
    // finds exactly the WL-predicted duplicate structure.
    Rng rng(5);
    Graph g = threadGraph(40, 48, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);
    auto model = makeModel(ModelId::GraphSim, 17);
    auto detail = model->forwardDetailed(pair);

    for (const Matrix &x : detail.xLayers) {
        EmfResult emf = emfFilter(x);
        // EMF unique count equals the number of distinct rows.
        for (size_t v = 0; v < x.rows(); ++v) {
            EXPECT_TRUE(x.rowsEqual(v, emf.uniqueOf[v]));
            if (emf.isUnique[v]) {
                EXPECT_EQ(emf.uniqueOf[v], v);
            }
        }
    }
}

TEST(EmfFilter, DedupReconstructionIsBitwiseExact)
{
    // The paper's core accuracy claim (Fig. 6): computing only the
    // unique rows/columns of S and copying them to the duplicates
    // reproduces the full similarity matrix *exactly*.
    Rng rng(29);
    Graph g = threadGraph(48, 56, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);
    auto model = makeModel(ModelId::GraphSim, 23);
    auto detail = model->forwardDetailed(pair);

    for (size_t k = 0; k < detail.simLayers.size(); ++k) {
        const Matrix &s = detail.simLayers[k];
        const Matrix &x = detail.xLayers[k + 1]; // matching inputs
        const Matrix &y = detail.yLayers[k + 1];
        EmfResult emf_t = emfFilter(x);
        EmfResult emf_q = emfFilter(y);

        // Reconstruct: compute only unique-row x unique-col cells,
        // then broadcast along the TagMap affiliations.
        Matrix rebuilt(s.rows(), s.cols());
        for (size_t i = 0; i < s.rows(); ++i) {
            for (size_t j = 0; j < s.cols(); ++j) {
                rebuilt.at(i, j) =
                    s.at(emf_t.uniqueOf[i], emf_q.uniqueOf[j]);
            }
        }
        EXPECT_TRUE(rebuilt.equals(s)) << "layer " << k;
        // And the dedup is genuinely nontrivial on thread graphs.
        EXPECT_LT(emf_t.numUnique(), x.rows());
    }
}

TEST(EmfFilterTags, EmptyAndSingle)
{
    EmfResult empty = emfFilterTags({});
    EXPECT_EQ(empty.numUnique(), 0u);
    EmfResult one = emfFilterTags({42});
    EXPECT_EQ(one.numUnique(), 1u);
    EXPECT_EQ(one.numDuplicates(), 0u);
}

TEST(EmfCycleModel, HashScalesWithNodesAndWidth)
{
    EmfCycleModel hw{32, 1024};
    uint64_t small = hw.hashCycles(100, 64 * 4);
    uint64_t more_nodes = hw.hashCycles(400, 64 * 4);
    uint64_t wider = hw.hashCycles(100, 256 * 4);
    EXPECT_GT(more_nodes, small);
    EXPECT_GT(wider, small);
    // 100 nodes over 32 lanes = 4 waves of (16 stripes + 3).
    EXPECT_EQ(small, 4u * 19u);
}

TEST(EmfCycleModel, FilterGrowsWithRecordSet)
{
    EmfCycleModel hw{32, 4};
    // All-unique stream: RecordSet grows, lookups get slower.
    std::vector<uint32_t> unique(64);
    for (uint32_t i = 0; i < 64; ++i)
        unique[i] = i;
    // All-duplicate stream: RecordSet stays at 1.
    std::vector<uint32_t> dup(64, 7);
    EXPECT_GT(hw.filterCycles(unique), hw.filterCycles(dup));
    // A small RecordSet sustains the 4-wide lookup pipeline.
    EXPECT_EQ(hw.filterCycles(dup), 16u);
}

TEST(EmfCycleModel, PaperScaleOverheadIsSubMicrosecond)
{
    // Fig. 23: per-graph EMF overheads are hundreds of cycles — far
    // below millisecond deadlines. Check the model's magnitude on an
    // RD-12K-sized graph (391 nodes, 64 features).
    EmfCycleModel hw{32, 1024};
    uint64_t hash = hw.hashCycles(391, 64 * 4);
    std::vector<uint32_t> classes(391);
    for (size_t i = 0; i < classes.size(); ++i)
        classes[i] = static_cast<uint32_t>(i % 40); // ~90% duplicates
    uint64_t filter = hw.filterCycles(classes);
    EXPECT_LT(hash, 10000u);
    EXPECT_LT(filter, 10000u);
    EXPECT_GT(hash, 100u);
}

} // namespace
} // namespace cegma
